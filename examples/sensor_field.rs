//! A sensor-field scenario: broadcast a firmware-update announcement across
//! a grid of battery-powered sensors and compare the energy bill of every
//! algorithm that applies in the No-CD model (the cheapest radios have no
//! collision detection).
//!
//! Run with: `cargo run --release --example sensor_field`

use ebc_core::baseline::bgi_decay_broadcast;
use ebc_core::cluster::{broadcast_theorem16, Theorem16Config};
use ebc_core::randomized::{broadcast_corollary13, broadcast_theorem11, Theorem11Config};
use ebc_graphs::deterministic::grid;
use ebc_radio::{Model, Sim};

fn main() {
    let side = 16;
    let graph = grid(side, side);
    let n = graph.n();
    println!(
        "sensor field: {side}×{side} grid, n = {n}, Δ = {}, D = {}\n",
        graph.max_degree(),
        2 * (side - 1)
    );
    println!(
        "{:<28} {:>12} {:>8} {:>8} {:>8}",
        "algorithm", "time (slots)", "E max", "E mean", "ok"
    );

    let row = |name: &str, f: &mut dyn FnMut(&mut Sim) -> bool| {
        let mut sim = Sim::new(graph.clone(), Model::NoCd, 1234);
        let ok = f(&mut sim);
        let r = sim.meter().report();
        println!(
            "{:<28} {:>12} {:>8} {:>8.1} {:>8}",
            name, r.time, r.max, r.mean, ok
        );
    };

    row("BGI decay [4]", &mut |sim| {
        bgi_decay_broadcast(sim, 0, None).all_informed()
    });
    row("Theorem 11 (clustering)", &mut |sim| {
        broadcast_theorem11(sim, 0, &Theorem11Config::default()).all_informed()
    });
    row("Corollary 13 (TDMA)", &mut |sim| {
        broadcast_corollary13(sim, 0).all_informed()
    });
    row("Theorem 16 (β = 0.25)", &mut |sim| {
        let cfg = Theorem16Config {
            beta_override: Some(0.25),
            ..Theorem16Config::default()
        };
        broadcast_theorem16(sim, 0, &cfg).all_informed()
    });

    println!(
        "\nEvery algorithm informs all sensors; they differ in how the\n\
         time/energy budget is split — the paper's central tradeoff."
    );
}
