//! One network, every model: how collision detection, LOCAL, and
//! determinism change the broadcast bill (the paper's Table 1, vertically).
//!
//! Run with: `cargo run --release --example model_comparison`

use ebc_core::det::{broadcast_det_cd, broadcast_det_local, DetCdConfig, DetLocalConfig};
use ebc_core::randomized::{
    broadcast_theorem11, broadcast_theorem12, Theorem11Config, Theorem12Config,
};
use ebc_radio::{Model, Sim};

fn main() {
    let graph = ebc_graphs::random::bounded_degree(64, 4, 1.5, 9);
    println!(
        "network: n = {}, Δ = {}, D = {}\n",
        graph.n(),
        graph.max_degree(),
        graph.diameter_exact().expect("connected")
    );
    println!(
        "{:<34} {:>14} {:>8} {:>8}",
        "algorithm / model", "time (slots)", "E max", "E mean"
    );

    let row = |name: &str, model: Model, f: &mut dyn FnMut(&mut Sim) -> bool| {
        let mut sim = Sim::new(graph.clone(), model, 2024);
        let ok = f(&mut sim);
        assert!(ok, "{name} failed to inform everyone");
        let r = sim.meter().report();
        println!("{:<34} {:>14} {:>8} {:>8.1}", name, r.time, r.max, r.mean);
    };

    row("Thm 11, randomized LOCAL", Model::Local, &mut |sim| {
        broadcast_theorem11(sim, 0, &Theorem11Config::default()).all_informed()
    });
    row("Thm 11, randomized CD", Model::Cd, &mut |sim| {
        broadcast_theorem11(sim, 0, &Theorem11Config::default()).all_informed()
    });
    row("Thm 11, randomized No-CD", Model::NoCd, &mut |sim| {
        broadcast_theorem11(sim, 0, &Theorem11Config::default()).all_informed()
    });
    row("Thm 12, randomized CD (ε=0.5)", Model::Cd, &mut |sim| {
        broadcast_theorem12(sim, 0, &Theorem12Config::default()).all_informed()
    });
    row("Thm 25, deterministic LOCAL", Model::Local, &mut |sim| {
        broadcast_det_local(sim, 0, &DetLocalConfig::default()).all_informed()
    });
    row("Thm 27, deterministic CD", Model::Cd, &mut |sim| {
        broadcast_det_cd(sim, 0, &DetCdConfig::default()).all_informed()
    });

    println!(
        "\nStronger feedback (CD) buys energy; randomness buys time;\n\
         determinism pays for certainty with polynomial time (Thm 27)."
    );
}
