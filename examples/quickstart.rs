//! Quickstart: energy-efficient broadcast on multi-hop radio networks.
//!
//! Runs the paper's Theorem 11 broadcast (No-CD) and the classic BGI decay
//! broadcast on rings of two sizes. The point of the paper is the *growth
//! rate*: BGI's per-device energy grows linearly with the diameter, the
//! clustering algorithm's only polylogarithmically (with admittedly large
//! constants — visible below, and acknowledged by the theory: the bounds
//! are asymptotic).
//!
//! Run with: `cargo run --release --example quickstart`

use ebc_core::baseline::bgi_decay_broadcast;
use ebc_core::randomized::{broadcast_theorem11, Theorem11Config};
use ebc_graphs::deterministic::cycle;
use ebc_radio::{Model, Sim};

fn main() {
    println!(
        "{:<10} {:>22} {:>22}",
        "n (ring)", "Thm 11 energy (max)", "BGI decay energy (max)"
    );
    let mut prev: Option<(u64, u64)> = None;
    for n in [128usize, 512, 2048] {
        let g = cycle(n);
        let mut sim = Sim::new(g.clone(), Model::NoCd, 7);
        let out = broadcast_theorem11(&mut sim, 0, &Theorem11Config::default());
        assert!(out.all_informed(), "broadcast must reach everyone");
        let e_t11 = sim.meter().max_energy();

        let mut sim = Sim::new(g, Model::NoCd, 7);
        let out = bgi_decay_broadcast(&mut sim, 0, None);
        assert!(out.all_informed());
        let e_bgi = sim.meter().max_energy();

        print!("{n:<10} {e_t11:>22} {e_bgi:>22}");
        if let Some((p11, pbgi)) = prev {
            print!(
                "   (growth ×{:.2} vs ×{:.2})",
                e_t11 as f64 / p11 as f64,
                e_bgi as f64 / pbgi as f64
            );
        }
        println!();
        prev = Some((e_t11, e_bgi));
    }
    println!(
        "\nQuadrupling n multiplies BGI's energy by ~4 (it is Θ(D)); Theorem 11's\n\
         barely moves (Θ(log Δ log² n)). The asymptotic crossover sits beyond\n\
         these sizes — constants are real — but the *shape* is the paper's."
    );
}
