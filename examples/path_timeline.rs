//! Figure 1 reproduction: a timeline of message traffic in the §8 path
//! algorithm. Messages propagate down-and-right one hop per slot, except
//! where a *blocking* vertex (one with a large blocking time B) absorbs
//! the synchronization traffic — exactly the picture in the paper.
//!
//! Legend:  `#` transmit   `o` receive   `.` listen (silence)
//!          `P` the payload transmission reaching that vertex
//!
//! Run with: `cargo run --release --example path_timeline`

use ebc_core::path::{run_path_broadcast, PathConfig};
use ebc_radio::{EventEngine, EventKind, Model};

fn main() {
    let n = 32;
    let seed = 8;
    let g = ebc_graphs::deterministic::path(n);
    let mut engine = EventEngine::new(g, Model::Local);
    engine.enable_telemetry();
    let cfg = PathConfig {
        oriented: true,
        cap_blocking: true,
    };
    let stats = run_path_broadcast(&mut engine, 0, &cfg, seed);
    assert!(stats.all_informed);

    let max_slot = stats.quiescence as usize;
    // grid[slot][vertex]
    let mut grid = vec![vec![' '; n]; max_slot + 1];
    let tel = engine.telemetry().expect("telemetry enabled");
    for e in tel.events() {
        let c = match e.kind() {
            EventKind::Tx => '#',
            EventKind::Recv => 'o',
            EventKind::Silence | EventKind::Noise => '.',
            _ => continue,
        };
        grid[e.slot as usize][e.node()] = c;
    }
    // Telemetry events are payload-agnostic; recover the payload's track from
    // the per-vertex delivery slots: vertex v first receives the payload at
    // `delivery_slot[v]`, transmitted by its upstream neighbor the same slot.
    for (v, slot) in stats.delivery_slot.iter().enumerate() {
        let Some(t) = *slot else { continue };
        let t = t as usize;
        if v == 0 || t > max_slot {
            continue; // the source holds the payload from the start
        }
        grid[t][v] = 'P';
        if grid[t][v - 1] == '#' {
            grid[t][v - 1] = 'P';
        }
    }

    println!("path of n = {n}, source = 0, seed = {seed} (paper Fig. 1)");
    println!(
        "delivery time = {} slots (≤ 2n = {}), max energy = {}, mean = {:.1}\n",
        stats.delivery_time,
        2 * n,
        engine.meter().max_energy(),
        engine.meter().report().mean
    );
    print!("slot  ");
    for v in 0..n {
        print!(
            "{}",
            if v % 10 == 0 {
                (b'0' + (v / 10) as u8) as char
            } else {
                ' '
            }
        );
    }
    println!();
    print!("      ");
    for v in 0..n {
        print!("{}", (b'0' + (v % 10) as u8) as char);
    }
    println!();
    for (t, row) in grid.iter().enumerate() {
        if row.iter().all(|&c| c == ' ') {
            continue;
        }
        print!("{t:>5} ");
        for &c in row {
            print!("{c}");
        }
        println!();
    }
    println!("\n# = sync transmission, P = payload, o = reception, . = idle listen");
}
