//! The §6 time/energy tradeoff: sweeping β in the Theorem 16 algorithm
//! trades diameter-shrinking iterations (time) against per-iteration
//! communication (energy) — the knob behind
//! `O(D^{1+ε} polylog n)` time at `polylog n` energy.
//!
//! Run with: `cargo run --release --example energy_time_tradeoff`

use ebc_core::cluster::{broadcast_theorem16, Theorem16Config};
use ebc_core::randomized::{broadcast_theorem11, Theorem11Config};
use ebc_radio::{Model, Sim};

fn main() {
    let graph = ebc_graphs::deterministic::grid(12, 12);
    println!("network: 12×12 grid, n = {}, D = {}\n", graph.n(), 22);
    println!(
        "{:<26} {:>14} {:>8} {:>8}",
        "algorithm", "time (slots)", "E max", "E mean"
    );

    for beta in [0.4, 0.3, 0.2, 0.1] {
        let mut sim = Sim::new(graph.clone(), Model::NoCd, 77);
        let cfg = Theorem16Config {
            beta_override: Some(beta),
            ..Theorem16Config::default()
        };
        let out = broadcast_theorem16(&mut sim, 0, &cfg);
        assert!(out.all_informed());
        let r = sim.meter().report();
        println!(
            "{:<26} {:>14} {:>8} {:>8.1}",
            format!("Thm 16, β = {beta}"),
            r.time,
            r.max,
            r.mean
        );
    }

    let mut sim = Sim::new(graph, Model::NoCd, 77);
    let out = broadcast_theorem11(&mut sim, 0, &Theorem11Config::default());
    assert!(out.all_informed());
    let r = sim.meter().report();
    println!(
        "{:<26} {:>14} {:>8} {:>8.1}",
        "Thm 11 (O(n)-time ref.)", r.time, r.max, r.mean
    );

    println!(
        "\nLarger β merges clusters faster per iteration but cuts more edges,\n\
         so more repair traffic; smaller β needs more iterations. Theorem 16\n\
         picks β = 1/log^{{1/ε}} n to balance the two."
    );
}
