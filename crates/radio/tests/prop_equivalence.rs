//! Differential property suite: the word-parallel bitset engine must be
//! bit-for-bit equivalent to the retained dense reference loop — informed
//! set, per-node energy, clock, `last_active`, `idle_skipped` — across
//! every collision model, on random graphs, random scripted behaviors,
//! and all three [`Schedule`] shapes (dense, sparse, dynamic).
//!
//! This extends the relay-chain equivalence test in `sim.rs` from one
//! hand-built scenario to the generated scenario space: any divergence in
//! the row-probe collision resolution ([`resolve_row`] early exits, CD\*'s
//! lowest-id pick, LOCAL's ascending message order) or in the schedule
//! drivers' clock/energy accounting fails here with the case seed.

use ebc_radio::{
    Action, FaultPlan, Feedback, Graph, JammerStrategy, Model, NodeId, Schedule, Sim, SlotBehavior,
    SparseSchedule,
};
use proptest::prelude::*;

/// Every fault plan at zero strength: the fault layer runs (draws its
/// verdicts, applies its empty event lists) but must never perturb the
/// engine. [`FaultPlan::None`] additionally asserts the no-state fast
/// path.
fn zero_strength_plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::None,
        FaultPlan::SlotLoss { p: 0.0 },
        FaultPlan::EdgeLoss { p: 0.0 },
        FaultPlan::Crash { schedule: vec![] },
        FaultPlan::Jammer {
            budget: u64::MAX,
            strategy: JammerStrategy::Random { p: 0.0 },
        },
        FaultPlan::Churn {
            leave: vec![],
            join: vec![],
        },
    ]
}

/// Splitmix-style mixer: a pure hash of (seed, v, t), so every engine
/// sees identical actions no matter how often or in what order it polls.
fn mix(seed: u64, v: u64, t: u64) -> u64 {
    let mut z =
        seed ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ t.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random connected-enough graph: a deterministic spanning path plus
/// `extra` random chords, so every density from near-tree to dense occurs.
fn random_graph(n: usize, seed: u64) -> Graph {
    let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let extra = (mix(seed, 0, 0) % (2 * n as u64)) as usize;
    for i in 0..extra {
        let u = (mix(seed, 1, i as u64) % n as u64) as usize;
        let v = (mix(seed, 2, i as u64) % n as u64) as usize;
        if u != v {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

/// A scripted behavior: the action of `(v, t)` is a pure function of the
/// seed, so the reference loop and every schedule shape replay the exact
/// same script. Records everything the engines must agree on.
struct Scripted {
    seed: u64,
    slots: u64,
    /// `informed[v]` once `v` received at least one message.
    informed: Vec<bool>,
    /// Every feedback delivery, in delivery order.
    log: Vec<(NodeId, u64, Feedback<u32>)>,
}

impl Scripted {
    fn new(seed: u64, n: usize, slots: u64) -> Self {
        Scripted {
            seed,
            slots,
            informed: vec![false; n],
            log: Vec::new(),
        }
    }

    /// Whether `v` is scripted to be active (non-idle) in slot `t`.
    fn active(&self, v: NodeId, t: u64) -> bool {
        mix(self.seed, v as u64, t) % 4 != 0
    }

    fn scripted_action(&self, v: NodeId, t: u64) -> Action<u32> {
        if !self.active(v, t) {
            return Action::Idle;
        }
        let msg = (v as u32) << 8 | (t as u32 & 0xff);
        match mix(self.seed, v as u64 ^ 0xabcd, t) % 4 {
            0 | 1 => Action::Listen,
            2 => Action::Send(msg),
            _ => Action::SendListen(msg),
        }
    }
}

impl SlotBehavior<u32> for Scripted {
    fn act(&mut self, v: NodeId, t: u64) -> Action<u32> {
        self.scripted_action(v, t)
    }

    fn feedback(&mut self, v: NodeId, t: u64, fb: Feedback<u32>) {
        if matches!(fb, Feedback::One(_) | Feedback::Many(_)) {
            self.informed[v] = true;
        }
        self.log.push((v, t, fb));
    }

    // Wake hints for Schedule::Dynamic: exactly the scripted active slots.
    // Skipped slots are Idle by construction and consume no randomness, so
    // the dynamic run must be bit-identical to the dense one.
    fn first_wake(&mut self, v: NodeId) -> Option<u64> {
        (0..self.slots).find(|&t| self.active(v, t))
    }

    fn next_wake(&mut self, v: NodeId, t: u64) -> Option<u64> {
        (t + 1..self.slots).find(|&t2| self.active(v, t2))
    }
}

/// What every engine/schedule combination must agree on.
#[derive(Debug, PartialEq)]
struct Outcome {
    informed: Vec<bool>,
    log: Vec<(NodeId, u64, Feedback<u32>)>,
    energy: Vec<u64>,
    clock: u64,
    last_active: Option<u64>,
}

fn outcome(sim: &Sim, b: Scripted) -> Outcome {
    Outcome {
        informed: b.informed,
        log: b.log,
        energy: (0..sim.graph().n())
            .map(|v| sim.meter().energy(v))
            .collect(),
        clock: sim.now(),
        last_active: sim.meter().last_active(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Telemetry differential: enabling the recorder must not perturb the
    /// engine. A traced dense drive must match the untraced reference —
    /// informed set, feedback log, per-node energy, clock, `last_active`,
    /// `idle_skipped`, and the rng-driven collision outcomes folded into
    /// all of those — bit-for-bit on every model, while actually
    /// recording (non-empty events and counters once anything transmits).
    #[test]
    fn telemetry_does_not_perturb_the_engine(
        n in 2usize..32,
        graph_seed in any::<u64>(),
        script_seed in any::<u64>(),
        slots in 1u64..20,
    ) {
        let graph = random_graph(n, graph_seed);
        let all: Vec<NodeId> = (0..n).collect();
        for model in Model::ALL {
            let mut plain_sim = Sim::new(graph.clone(), model, 0);
            let mut plain_b = Scripted::new(script_seed, n, slots);
            plain_sim.drive(Schedule::Dense { participants: &all, slots }, &mut plain_b);
            let plain_skipped = plain_sim.meter().idle_skipped();
            let plain = outcome(&plain_sim, plain_b);

            let mut traced_sim = Sim::new(graph.clone(), model, 0);
            traced_sim.enable_telemetry();
            let mut traced_b = Scripted::new(script_seed, n, slots);
            traced_sim.drive(Schedule::Dense { participants: &all, slots }, &mut traced_b);
            prop_assert_eq!(traced_sim.meter().idle_skipped(), plain_skipped);
            prop_assert_eq!(&outcome(&traced_sim, traced_b), &plain, "traced vs plain, {}", model);

            // The recorder really recorded: a scripted sender exists in
            // almost every case, and whenever one does the event ring and
            // the per-slot counters must have seen it.
            let tel = traced_sim.take_telemetry().expect("telemetry enabled");
            if plain.energy.iter().any(|&e| e > 0) {
                prop_assert!(tel.event_count() > 0, "no events on {}", model);
                prop_assert!(tel.counters().count() > 0, "no counters on {}", model);
            }
        }
    }
}

/// The zero-cost-when-off claim, measured: the untraced drive must not be
/// slower than the traced one beyond generous noise margins (median of
/// three runs each; the off path is a single `Option` check per slot).
/// This is deliberately one-sided — it catches the off path accidentally
/// growing recording work, without flaking on machine noise.
#[test]
fn telemetry_off_costs_nothing_measurable() {
    let n = 192;
    let slots = 384;
    let graph = random_graph(n, 0xfeed);
    let all: Vec<NodeId> = (0..n).collect();
    let run = |traced: bool| {
        let mut sim = Sim::new(graph.clone(), Model::Local, 0);
        if traced {
            sim.enable_telemetry();
        }
        let mut b = Scripted::new(0xbeef, n, slots);
        let start = std::time::Instant::now();
        sim.drive(
            Schedule::Dense {
                participants: &all,
                slots,
            },
            &mut b,
        );
        start.elapsed()
    };
    let median = |traced: bool| {
        let mut times: Vec<_> = (0..3).map(|_| run(traced)).collect();
        times.sort();
        times[1]
    };
    let off = median(false);
    let on = median(true);
    assert!(
        off <= on.mul_f64(1.25) + std::time::Duration::from_millis(50),
        "telemetry-off drive slower than traced: off={off:?} on={on:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bitset_engine_matches_dense_reference_on_all_models(
        n in 2usize..40,
        graph_seed in any::<u64>(),
        script_seed in any::<u64>(),
        slots in 1u64..24,
    ) {
        let graph = random_graph(n, graph_seed);
        let all: Vec<NodeId> = (0..n).collect();
        for model in Model::ALL {
            // Oracle: the retained iterator-based dense loop.
            let mut ref_sim = Sim::new(graph.clone(), model, 0);
            let mut ref_b = Scripted::new(script_seed, n, slots);
            ref_sim.run_reference(&all, slots, &mut ref_b);
            let reference = outcome(&ref_sim, ref_b);

            // Bitset path, dense schedule.
            let mut dense_sim = Sim::new(graph.clone(), model, 0);
            let mut dense_b = Scripted::new(script_seed, n, slots);
            dense_sim.drive(Schedule::Dense { participants: &all, slots }, &mut dense_b);
            let ref_skipped = ref_sim.meter().idle_skipped();
            prop_assert_eq!(dense_sim.meter().idle_skipped(), ref_skipped);
            prop_assert_eq!(&outcome(&dense_sim, dense_b), &reference, "dense vs reference, {}", model);

            // Bitset path, sparse schedule naming exactly the active polls.
            let probe = Scripted::new(script_seed, n, slots);
            let mut sparse = SparseSchedule::new();
            for t in 0..slots {
                let row: Vec<NodeId> = (0..n).filter(|&v| probe.active(v, t)).collect();
                if !row.is_empty() {
                    sparse.push(t, row);
                }
            }
            let mut sparse_sim = Sim::new(graph.clone(), model, 0);
            let mut sparse_b = Scripted::new(script_seed, n, slots);
            sparse_sim.drive(Schedule::Sparse { schedule: &sparse, slots }, &mut sparse_b);
            prop_assert_eq!(&outcome(&sparse_sim, sparse_b), &reference, "sparse vs reference, {}", model);

            // Bitset path, dynamic wake-queue fed by the scripted hints.
            let mut dyn_sim = Sim::new(graph.clone(), model, 0);
            let mut dyn_b = Scripted::new(script_seed, n, slots);
            dyn_sim.drive(Schedule::Dynamic { participants: &all, slots }, &mut dyn_b);
            prop_assert_eq!(&outcome(&dyn_sim, dyn_b), &reference, "dynamic vs reference, {}", model);

            // Sparse/dynamic batch-skip all-idle slots; the clock already
            // matched above, so skipped + simulated is conserved.
            prop_assert_eq!(sparse_sim.meter().idle_skipped(), slots - sparse.len() as u64);

            // Fault differential: a faulted drive at zero strength — every
            // plan kind with probability 0, empty event lists, or a jammer
            // that never fires — must pin the informed set, feedback log,
            // per-node energy, clock, `last_active`, and `idle_skipped`
            // bit-for-bit against the reference dense loop.
            for plan in zero_strength_plans() {
                let name = plan.name();
                let mut fault_sim = Sim::with_faults(graph.clone(), model, 0, plan);
                let mut fault_b = Scripted::new(script_seed, n, slots);
                fault_sim.drive(Schedule::Dense { participants: &all, slots }, &mut fault_b);
                prop_assert_eq!(fault_sim.meter().idle_skipped(), ref_skipped);
                prop_assert_eq!(
                    fault_sim.meter().total_lost_sends(),
                    0,
                    "zero-strength {} destroyed a send",
                    name
                );
                prop_assert_eq!(
                    &outcome(&fault_sim, fault_b),
                    &reference,
                    "faulted({}) vs reference, {}",
                    name,
                    model
                );
            }
        }
    }
}
