//! Packed `u64` bitset words — the struct-of-arrays state of the engine.
//!
//! The hot loops keep the per-slot transmitting/listening sets as one bit
//! per device, 64 devices per word: at n = 10^6 the transmitting set is
//! 128 KB and stays cache-resident, where a `Vec<u32>` of per-node marks
//! is 4 MB and thrashes. Collision resolution probes this set once per
//! CSR neighbor-row entry ([`crate::Graph::neighbor_row`]) with
//! model-specific early exit, so a listener's cost is `O(deg)` bit tests
//! against warm words instead of `O(deg)` cold scattered reads.

/// A fixed-capacity set over `0..n`, packed 64 bits per `u64` word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set with capacity for members `0..n`.
    pub fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Adds `i` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `i` is beyond the capacity.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Removes `i` from the set.
    ///
    /// # Panics
    ///
    /// Panics if `i` is beyond the capacity.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Whether `i` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `i` is beyond the capacity.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    /// Removes every member. `O(capacity / 64)` word writes.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// The number of members, by word-parallel popcount.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Removes every member of `other` from this set, word-parallel
    /// (`self &= !other`). Used by the fault layer to mask crashed and
    /// churned-out devices out of a slot's transmitting set in
    /// `O(capacity / 64)` word ops.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn and_not(&mut self, other: &BitSet) {
        assert_eq!(
            self.words.len(),
            other.words.len(),
            "cannot mask bitsets of different capacities"
        );
        for (w, m) in self.words.iter_mut().zip(&other.words) {
            *w &= !m;
        }
    }

    /// The backing words, 64 bits each, lowest indices in word 0.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert_eq!(s.count_ones(), 4);
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.count_ones(), 3);
    }

    #[test]
    fn clear_empties_all_words() {
        let mut s = BitSet::new(200);
        for i in (0..200).step_by(7) {
            s.insert(i);
        }
        s.clear();
        assert_eq!(s.count_ones(), 0);
        assert!(s.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn and_not_masks_word_parallel() {
        let mut s = BitSet::new(130);
        let mut mask = BitSet::new(130);
        for i in [0, 63, 64, 100, 129] {
            s.insert(i);
        }
        mask.insert(63);
        mask.insert(100);
        mask.insert(7); // not in s: masking a non-member is a no-op
        s.and_not(&mask);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(63) && !s.contains(100));
        assert_eq!(s.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "different capacities")]
    fn and_not_rejects_mismatched_capacities() {
        BitSet::new(64).and_not(&BitSet::new(128));
    }

    #[test]
    #[should_panic]
    fn out_of_capacity_panics() {
        let mut s = BitSet::new(64);
        s.insert(64);
    }
}
