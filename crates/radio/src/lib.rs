//! Discrete-slot synchronous radio network simulator with exact energy metering.
//!
//! This crate implements the abstract model of *The Energy Complexity of
//! Broadcast* (Chang, Dani, Hayes, He, Li, Pettie — PODC 2018): a connected
//! undirected graph of devices, time partitioned into slots agreed by all
//! devices, and per slot each device either **sends** a message, **listens**,
//! or **idles**. Sending and listening cost one unit of energy each; idling
//! is free. What a listener hears depends on the collision model:
//!
//! * [`Model::NoCd`] — zero or ≥2 transmitting neighbors are both heard as
//!   silence; exactly one neighbor's message is received.
//! * [`Model::Cd`] — zero transmitters are heard as silence, ≥2 as *noise*.
//! * [`Model::CdStar`] — like CD, but with ≥2 transmitters the listener
//!   receives an arbitrary one of the messages (paper §6.3).
//! * [`Model::Local`] — every listener hears every message transmitted by
//!   any neighbor; there are no collisions.
//! * [`Model::Beep`] — content-free: a listener only learns whether at least
//!   one neighbor transmitted.
//!
//! Two execution engines are provided:
//!
//! * [`Sim`] — the *phase-composed* engine. Algorithms in the paper are
//!   built from primitives occupying a contiguous block of slots with a
//!   known participant set; [`Sim::drive`] executes such a block under a
//!   [`Schedule`] (dense range, CSR-backed [`SparseSchedule`] slots, or a
//!   dynamic wake-queue fed by [`SlotBehavior`] hints), charging energy
//!   only for scheduled participants, while [`Sim::skip`] advances the
//!   global clock over provably-idle regions so reported *time* still
//!   counts them. Collision resolution is word-parallel: the transmitting
//!   set is a packed [`BitSet`] probed per CSR neighbor-row entry.
//! * [`EventEngine`] — an event-driven engine with a wake queue, for
//!   protocols whose wake times are data-dependent (the paper's §8 path
//!   algorithm). Nodes implement [`Protocol`].
//!
//! # Example
//!
//! ```
//! use ebc_radio::{Graph, Model, Schedule, Sim, Action, Feedback, SlotBehavior, NodeId};
//!
//! // A two-node path: node 0 sends "hi" once, node 1 listens.
//! let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
//! struct OneShot { heard: Option<&'static str> }
//! impl SlotBehavior<&'static str> for OneShot {
//!     fn act(&mut self, v: NodeId, _t: u64) -> Action<&'static str> {
//!         if v == 0 { Action::Send("hi") } else { Action::Listen }
//!     }
//!     fn feedback(&mut self, _v: NodeId, _t: u64, fb: Feedback<&'static str>) {
//!         if let Feedback::One(m) = fb { self.heard = Some(m); }
//!     }
//! }
//! let mut sim = Sim::new(g, Model::NoCd, 7);
//! let mut b = OneShot { heard: None };
//! sim.drive(Schedule::Dense { participants: &[0, 1], slots: 1 }, &mut b);
//! assert_eq!(b.heard, Some("hi"));
//! assert_eq!(sim.meter().energy(0), 1);
//! assert_eq!(sim.meter().energy(1), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod energy;
mod engine;
pub mod fault;
mod graph;
mod model;
pub mod rng;
mod sim;
pub mod telemetry;
mod trace;

pub use bitset::BitSet;
pub use energy::{EnergyMeter, EnergyReport};
pub use engine::{EventEngine, NextWake, Protocol, RunOutcome};
pub use fault::{FaultModel, FaultPlan, FaultState, JammerStrategy, SlotVerdict};
pub use graph::{Graph, GraphError};
pub use model::{resolve, Action, Feedback, Model};
pub use sim::{from_fns, Schedule, Sim, SlotBehavior, SparseSchedule};
pub use telemetry::{EventKind, Gauge, SlotCounters, SlotEvent, Span, Telemetry};
#[doc(hidden)]
pub use trace::{Trace, TraceEvent, TraceKind};

/// Index of a device (vertex) in the network, in `0..n`.
pub type NodeId = usize;

/// A slot number on the globally agreed clock (slot zero is shared).
pub type Slot = u64;
