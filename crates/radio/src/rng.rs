//! Deterministic per-node randomness derived from a single master seed.
//!
//! Every randomized algorithm in the paper assumes each device generates
//! private random bits. For reproducible simulation we derive one independent
//! stream per `(node, stream)` pair from a master seed with SplitMix64, and
//! hand out [`rand::rngs::SmallRng`] instances seeded from those streams.
//! Cluster-shared randomness (paper §6.2) uses the same derivation keyed by
//! the cluster id.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::NodeId;

/// One step of the SplitMix64 output function (a strong 64-bit mixer).
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a 64-bit sub-seed for `(node, stream)` under `master`.
pub fn derive_seed(master: u64, node: NodeId, stream: u64) -> u64 {
    let a = splitmix64(master ^ 0xa076_1d64_78bd_642f);
    let b = splitmix64(a ^ (node as u64).wrapping_mul(0xe703_7ed1_a0b4_28db));
    splitmix64(b ^ stream.wrapping_mul(0x8ebc_6af0_9c88_c6e3))
}

/// A private RNG for `node` on logical stream `stream`.
///
/// Distinct `(node, stream)` pairs yield independent streams; the same pair
/// always yields the same stream, making whole simulations reproducible.
pub fn node_rng(master: u64, node: NodeId, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, node, stream))
}

/// A shared RNG for a cluster rooted at `root` (paper §6.2's "shared random
/// string"): every member derives the identical stream from the cluster id.
pub fn cluster_rng(master: u64, root: NodeId, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master ^ 0x5bf0_3635_dcf9_8b5e, root, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn deterministic() {
        let mut a = node_rng(42, 7, 3);
        let mut b = node_rng(42, 7, 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn distinct_nodes_distinct_streams() {
        let mut a = node_rng(42, 7, 3);
        let mut b = node_rng(42, 8, 3);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn distinct_streams_distinct_output() {
        let mut a = node_rng(42, 7, 3);
        let mut b = node_rng(42, 7, 4);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn cluster_rng_shared_by_members() {
        // Two members deriving the cluster stream from the same root agree.
        let mut a = cluster_rng(1, 5, 0);
        let mut b = cluster_rng(1, 5, 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = cluster_rng(1, 6, 0);
        assert_ne!(node_rng(1, 5, 0).next_u64(), c.next_u64());
    }

    #[test]
    fn splitmix_avalanche() {
        // Flipping one input bit changes roughly half the output bits.
        let x = splitmix64(0x1234_5678);
        let y = splitmix64(0x1234_5679);
        let flips = (x ^ y).count_ones();
        assert!((16..=48).contains(&flips), "flips = {flips}");
    }
}
