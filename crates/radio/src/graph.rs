//! Immutable undirected graphs in compressed sparse row (CSR) form.

use crate::NodeId;

/// Error building a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    EndpointOutOfRange {
        /// The offending endpoint.
        endpoint: usize,
        /// The number of vertices the graph was declared with.
        n: usize,
    },
    /// An edge connected a vertex to itself; the radio model has no self-loops.
    SelfLoop(usize),
    /// The graph must have at least one vertex.
    Empty,
    /// Raw CSR arrays violated a structural invariant ([`Graph::from_csr_parts`]).
    InvalidCsr(&'static str),
}

impl core::fmt::Display for GraphError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GraphError::EndpointOutOfRange { endpoint, n } => {
                write!(f, "edge endpoint {endpoint} out of range for n = {n}")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at vertex {v}"),
            GraphError::Empty => write!(f, "graph must have at least one vertex"),
            GraphError::InvalidCsr(reason) => write!(f, "invalid CSR arrays: {reason}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable, undirected, simple graph stored in CSR form.
///
/// Vertices are `0..n`. Parallel edges are deduplicated at construction.
/// Neighbor lists are sorted, so membership tests are `O(log deg)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl Graph {
    /// Builds a graph on `n` vertices from an edge list.
    ///
    /// Edges may appear in either orientation and duplicates are removed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `n == 0`, an endpoint is out of range, or an
    /// edge is a self-loop.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        if n == 0 {
            return Err(GraphError::Empty);
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u >= n {
                return Err(GraphError::EndpointOutOfRange { endpoint: u, n });
            }
            if v >= n {
                return Err(GraphError::EndpointOutOfRange { endpoint: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            adj[u].push(v as u32);
            adj[v].push(u as u32);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u32);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u32);
        }
        Ok(Graph {
            n,
            offsets,
            neighbors,
        })
    }

    /// Rebuilds a graph from raw CSR arrays — the fast path for loaders
    /// that already hold the exact `offsets`/`neighbors` layout
    /// [`Graph::from_edges`] would produce (e.g. a binary on-disk cache).
    ///
    /// Every structural invariant the engines rely on is re-validated in
    /// `O(n + m)`: `offsets` has length `n + 1`, starts at 0, is monotone,
    /// and ends at `neighbors.len()`; every row is strictly ascending (so
    /// sorted *and* duplicate-free), in range, and loop-free; and the total
    /// adjacency length is even (an undirected graph stores each edge
    /// twice). Symmetry itself is not rechecked — a corrupted input that
    /// passes every check above but breaks symmetry is not representable
    /// by `from_edges` callers and is the caller's integrity problem
    /// (on-disk caches pair this with a content checksum).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] naming the violated invariant,
    /// or [`GraphError::Empty`] when `n == 0`.
    pub fn from_csr_parts(
        n: usize,
        offsets: Vec<u32>,
        neighbors: Vec<u32>,
    ) -> Result<Self, GraphError> {
        if n == 0 {
            return Err(GraphError::Empty);
        }
        if offsets.len() != n + 1 {
            return Err(GraphError::InvalidCsr("offsets length is not n + 1"));
        }
        if offsets[0] != 0 {
            return Err(GraphError::InvalidCsr("offsets must start at 0"));
        }
        if offsets[n] as usize != neighbors.len() {
            return Err(GraphError::InvalidCsr(
                "offsets must end at neighbors.len()",
            ));
        }
        if neighbors.len() % 2 != 0 {
            return Err(GraphError::InvalidCsr("odd adjacency length"));
        }
        for v in 0..n {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            if lo > hi {
                return Err(GraphError::InvalidCsr("offsets not monotone"));
            }
            let row = &neighbors[lo..hi];
            for (i, &u) in row.iter().enumerate() {
                if u as usize >= n {
                    return Err(GraphError::InvalidCsr("neighbor id out of range"));
                }
                if u as usize == v {
                    return Err(GraphError::InvalidCsr("self-loop in row"));
                }
                if i > 0 && row[i - 1] >= u {
                    return Err(GraphError::InvalidCsr("row not strictly ascending"));
                }
            }
        }
        Ok(Graph {
            n,
            offsets,
            neighbors,
        })
    }

    /// [`Graph::from_csr_parts`] minus the `O(n + m)` per-row invariant
    /// sweep: only the array *shapes* are checked (lengths, first/last
    /// offset, even adjacency). For callers that can prove the arrays
    /// are a byte-exact copy of a previously validated graph — e.g. a
    /// binary cache entry whose checksum just verified — where the full
    /// re-check would dominate the load. Still safe on bad input (every
    /// query indexes with bounds checks), but a row-level violation the
    /// shape checks cannot see yields panics or wrong neighbor sets
    /// downstream instead of an error here; when in doubt, use
    /// [`Graph::from_csr_parts`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] on a shape mismatch, or
    /// [`GraphError::Empty`] when `n == 0`.
    pub fn from_csr_parts_trusted(
        n: usize,
        offsets: Vec<u32>,
        neighbors: Vec<u32>,
    ) -> Result<Self, GraphError> {
        if n == 0 {
            return Err(GraphError::Empty);
        }
        if offsets.len() != n + 1 {
            return Err(GraphError::InvalidCsr("offsets length is not n + 1"));
        }
        if offsets[0] != 0 {
            return Err(GraphError::InvalidCsr("offsets must start at 0"));
        }
        if offsets[n] as usize != neighbors.len() {
            return Err(GraphError::InvalidCsr(
                "offsets must end at neighbors.len()",
            ));
        }
        if neighbors.len() % 2 != 0 {
            return Err(GraphError::InvalidCsr("odd adjacency length"));
        }
        Ok(Graph {
            n,
            offsets,
            neighbors,
        })
    }

    /// The number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The number of undirected edges.
    pub fn m(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// The neighbors of `v`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbor_row(v).iter().map(|&u| u as NodeId)
    }

    /// The CSR row of `v`: its neighbors as a sorted `&[u32]` slice.
    ///
    /// This is the word-parallel engines' entry point — callers test each
    /// row entry against a packed bitset instead of driving the
    /// [`neighbors`] iterator, and the sorted order means the first set bit
    /// found belongs to the lowest-id transmitting neighbor.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    ///
    /// [`neighbors`]: Graph::neighbors
    #[inline]
    pub fn neighbor_row(&self, v: NodeId) -> &[u32] {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// The CSR degree-prefix array: `offsets()[v]..offsets()[v + 1]` bounds
    /// `v`'s row inside [`neighbor_data`]. Length `n + 1`.
    ///
    /// [`neighbor_data`]: Graph::neighbor_data
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flat CSR neighbor array all rows are slices of (length `2m`).
    #[inline]
    pub fn neighbor_data(&self) -> &[u32] {
        &self.neighbors
    }

    /// The degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Whether `{u, v}` is an edge. `O(log deg(u))`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        self.neighbors[lo..hi].binary_search(&(v as u32)).is_ok()
    }

    /// BFS distances from `src`; unreachable vertices get `u32::MAX`.
    pub fn bfs(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u];
            for w in self.neighbors(u) {
                if dist[w] == u32::MAX {
                    dist[w] = du + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// The eccentricity of `v` (max distance to any vertex); `None` if the
    /// graph is disconnected.
    pub fn eccentricity(&self, v: NodeId) -> Option<u32> {
        let dist = self.bfs(v);
        let mx = *dist.iter().max()?;
        if mx == u32::MAX {
            None
        } else {
            Some(mx)
        }
    }

    /// The exact diameter, by running BFS from every vertex.
    ///
    /// `O(n (n + m))` — intended for test- and bench-scale graphs. Returns
    /// `None` if disconnected.
    pub fn diameter_exact(&self) -> Option<u32> {
        let mut d = 0u32;
        for v in 0..self.n {
            d = d.max(self.eccentricity(v)?);
        }
        Some(d)
    }

    /// A fast diameter *lower bound* via double-sweep BFS (exact on trees).
    ///
    /// Returns `None` if disconnected.
    pub fn diameter_double_sweep(&self) -> Option<u32> {
        let d0 = self.bfs(0);
        let (far, &mx) = d0
            .iter()
            .enumerate()
            .max_by_key(|&(_, d)| *d)
            .expect("graph is nonempty");
        if mx == u32::MAX {
            return None;
        }
        self.eccentricity(far)
    }

    /// Whether the graph is connected.
    pub fn is_connected(&self) -> bool {
        self.bfs(0).iter().all(|&d| d != u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Graph::from_edges(0, &[]), Err(GraphError::Empty));
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 2)]),
            Err(GraphError::EndpointOutOfRange { endpoint: 2, n: 2 })
        ));
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Graph::from_edges(3, &[(1, 1)]),
            Err(GraphError::SelfLoop(1))
        );
    }

    #[test]
    fn dedups_parallel_edges() {
        let g = Graph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(4, &[(2, 0), (2, 3), (2, 1)]).unwrap();
        let nb: Vec<_> = g.neighbors(2).collect();
        assert_eq!(nb, vec![0, 1, 3]);
    }

    #[test]
    fn path_distances() {
        let g = path(5);
        assert_eq!(g.bfs(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.diameter_exact(), Some(4));
        assert_eq!(g.diameter_double_sweep(), Some(4));
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_detected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.diameter_exact(), None);
        assert_eq!(g.eccentricity(0), None);
    }

    #[test]
    fn neighbor_row_matches_iterator_and_offsets() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 3), (2, 4), (1, 3)]).unwrap();
        for v in 0..5 {
            let row: Vec<NodeId> = g.neighbor_row(v).iter().map(|&u| u as NodeId).collect();
            let it: Vec<NodeId> = g.neighbors(v).collect();
            assert_eq!(row, it, "row/iterator mismatch at {v}");
            let lo = g.offsets()[v] as usize;
            let hi = g.offsets()[v + 1] as usize;
            assert_eq!(&g.neighbor_data()[lo..hi], g.neighbor_row(v));
            assert_eq!(hi - lo, g.degree(v));
        }
        assert_eq!(g.offsets().len(), 6);
        assert_eq!(g.neighbor_data().len(), 2 * g.m());
    }

    #[test]
    fn has_edge_both_orientations() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn from_csr_parts_round_trips_from_edges() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 3), (2, 4), (1, 3), (4, 5)]).unwrap();
        let rebuilt =
            Graph::from_csr_parts(g.n(), g.offsets().to_vec(), g.neighbor_data().to_vec()).unwrap();
        assert_eq!(g, rebuilt);
    }

    #[test]
    fn from_csr_parts_rejects_broken_invariants() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let (offs, nbrs) = (g.offsets().to_vec(), g.neighbor_data().to_vec());
        assert_eq!(
            Graph::from_csr_parts(0, vec![0], vec![]),
            Err(GraphError::Empty)
        );
        // Truncated offsets.
        assert!(matches!(
            Graph::from_csr_parts(4, offs[..4].to_vec(), nbrs.clone()),
            Err(GraphError::InvalidCsr(_))
        ));
        // Offsets not ending at the adjacency length.
        let mut short = nbrs.clone();
        short.pop();
        assert!(matches!(
            Graph::from_csr_parts(4, offs.clone(), short),
            Err(GraphError::InvalidCsr(_))
        ));
        // Out-of-range neighbor id.
        let mut oor = nbrs.clone();
        oor[0] = 9;
        assert!(matches!(
            Graph::from_csr_parts(4, offs.clone(), oor),
            Err(GraphError::InvalidCsr(_))
        ));
        // A self-loop in a row.
        let mut looped = nbrs.clone();
        looped[0] = 0;
        assert!(matches!(
            Graph::from_csr_parts(4, offs.clone(), looped),
            Err(GraphError::InvalidCsr(_))
        ));
        // An unsorted (here: duplicated) row.
        let dup = Graph::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let mut bad = dup.neighbor_data().to_vec();
        bad[1] = bad[0];
        assert!(matches!(
            Graph::from_csr_parts(3, dup.offsets().to_vec(), bad),
            Err(GraphError::InvalidCsr(_))
        ));
    }

    #[test]
    fn singleton_graph() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(g.n(), 1);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.diameter_exact(), Some(0));
    }
}
