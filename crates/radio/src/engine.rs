//! The event-driven engine, for protocols with data-dependent wake times.
//!
//! The paper's §8 path algorithm sleeps for long, input-dependent stretches
//! (blocking times, listen alarms), so iterating every device every slot
//! would cost `Θ(n · T)` host time. This engine keeps a wake queue and does
//! work proportional to the number of wake events — which for energy-
//! efficient protocols is proportional to the energy actually spent.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::bitset::BitSet;
use crate::model::{resolve_row, Action, Feedback, Model};
use crate::telemetry::Telemetry;
use crate::trace::Trace;
use crate::{EnergyMeter, Graph, NodeId, Slot};

/// When a device next wants to wake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextWake {
    /// Wake at this (strictly future) slot.
    At(Slot),
    /// The device has terminated and never wakes again.
    Done,
}

/// A device protocol executed by the [`EventEngine`].
///
/// The engine calls [`first_wake`] once per device, then repeatedly
/// [`on_wake`] (at the requested slot) and [`after_slot`] (with feedback if
/// the device listened).
///
/// [`first_wake`]: Protocol::first_wake
/// [`on_wake`]: Protocol::on_wake
/// [`after_slot`]: Protocol::after_slot
pub trait Protocol<M> {
    /// The first slot at which `v` wakes, or [`NextWake::Done`] if it never
    /// participates.
    fn first_wake(&mut self, v: NodeId) -> NextWake;

    /// The action of `v` at its wake slot `now`.
    fn on_wake(&mut self, v: NodeId, now: Slot) -> Action<M>;

    /// Called after the slot resolves. `heard` is `Some` iff `v` listened.
    /// Returns when `v` wakes next; must be strictly after `now`.
    fn after_slot(&mut self, v: NodeId, now: Slot, heard: Option<Feedback<M>>) -> NextWake;
}

/// The result of an [`EventEngine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// `true` if every device reached [`NextWake::Done`] before the cap.
    pub completed: bool,
    /// The last slot in which any device woke, if any did.
    pub last_slot: Option<Slot>,
}

/// Event-driven executor over a graph and collision model.
#[derive(Debug)]
pub struct EventEngine {
    graph: Arc<Graph>,
    model: Model,
    meter: EnergyMeter,
    /// Opt-in structured recorder; `None` keeps every hook to one check.
    telemetry: Option<Box<Telemetry>>,
    sending: Vec<u32>,
    /// Scratch: the packed transmitting set of the current slot.
    tx: BitSet,
    /// Scratch: the packed listening set of the current slot.
    listening: BitSet,
}

impl EventEngine {
    /// A fresh engine over `graph` under `model`.
    ///
    /// Accepts either an owned [`Graph`] or an [`Arc<Graph>`], so seed
    /// sweeps can share one CSR allocation across engines.
    pub fn new(graph: impl Into<Arc<Graph>>, model: Model) -> Self {
        let graph = graph.into();
        let n = graph.n();
        EventEngine {
            graph,
            model,
            meter: EnergyMeter::new(n),
            telemetry: None,
            sending: vec![0; n],
            tx: BitSet::new(n),
            listening: BitSet::new(n),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The shared handle to the underlying graph (cheap to clone).
    pub fn graph_arc(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The energy meter.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Starts recording structured [`Telemetry`] with the default ring
    /// capacities (idempotent). Recording never perturbs the run.
    pub fn enable_telemetry(&mut self) {
        if self.telemetry.is_none() {
            self.telemetry = Some(Box::new(Telemetry::new()));
        }
    }

    /// Whether a telemetry recorder is attached.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// The telemetry recorded so far, if enabled.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_deref()
    }

    /// Detaches and returns the recorder (for exporting after a run).
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.telemetry.take().map(|t| *t)
    }

    /// Records an already-closed phase span. No-op without telemetry.
    pub fn span_at(&mut self, name: &'static str, start: Slot, end: Slot) {
        if let Some(t) = &mut self.telemetry {
            t.span_at(name, start, end);
        }
    }

    /// Records one gauge sample. No-op without telemetry.
    pub fn record_gauge(&mut self, name: &'static str, slot: Slot, value: f64) {
        if let Some(t) = &mut self.telemetry {
            t.record_gauge(name, slot, value);
        }
    }

    /// Compatibility shim for the retired string-based trace: enables
    /// telemetry. Ported callers use [`EventEngine::enable_telemetry`].
    #[doc(hidden)]
    #[deprecated(note = "use enable_telemetry(); the string-based trace is retired")]
    pub fn enable_trace(&mut self) {
        self.enable_telemetry();
    }

    /// Compatibility shim: reconstructs a [`Trace`] view from telemetry
    /// events (payload strings are empty — see [`Trace::from_telemetry`]).
    #[doc(hidden)]
    #[deprecated(note = "use telemetry(); the string-based trace is retired")]
    pub fn trace(&self) -> Option<Trace> {
        self.telemetry.as_deref().map(Trace::from_telemetry)
    }

    /// Runs `protocol` until every device terminates or a device asks to
    /// wake after `max_slot` (a safety cap against runaway protocols).
    ///
    /// # Panics
    ///
    /// Panics if a device schedules a wake that is not strictly in the
    /// future.
    pub fn run<M, P>(&mut self, protocol: &mut P, max_slot: Slot) -> RunOutcome
    where
        M: Clone + core::fmt::Debug,
        P: Protocol<M>,
    {
        let n = self.graph.n();
        let mut queue: BinaryHeap<Reverse<(Slot, NodeId)>> = BinaryHeap::new();
        for v in 0..n {
            match protocol.first_wake(v) {
                NextWake::At(t) => queue.push(Reverse((t, v))),
                NextWake::Done => {}
            }
        }
        let mut awake: Vec<NodeId> = Vec::new();
        let mut senders: Vec<(NodeId, M)> = Vec::new();
        let mut listeners: Vec<NodeId> = Vec::new();
        let mut last_slot = None;
        let mut truncated = false;
        while let Some(&Reverse((t, _))) = queue.peek() {
            if t > max_slot {
                truncated = true;
                break;
            }
            awake.clear();
            senders.clear();
            listeners.clear();
            while let Some(&Reverse((t2, v))) = queue.peek() {
                if t2 != t {
                    break;
                }
                queue.pop();
                awake.push(v);
            }
            last_slot = Some(t);
            if let Some(tel) = &mut self.telemetry {
                tel.begin_slot(t, awake.len() as u32);
            }
            for &v in &awake {
                match protocol.on_wake(v, t) {
                    Action::Idle => {}
                    Action::Send(m) => {
                        self.meter.charge_send(v, t);
                        if let Some(tel) = &mut self.telemetry {
                            tel.note_tx(v);
                        }
                        senders.push((v, m));
                    }
                    Action::Listen => {
                        self.meter.charge_listen(v, t);
                        self.listening.insert(v);
                        listeners.push(v);
                    }
                    Action::SendListen(m) => {
                        self.meter.charge_send(v, t);
                        self.meter.charge_listen(v, t);
                        if let Some(tel) = &mut self.telemetry {
                            tel.note_tx(v);
                        }
                        senders.push((v, m));
                        self.listening.insert(v);
                        listeners.push(v);
                    }
                }
            }
            for (i, (v, _)) in senders.iter().enumerate() {
                self.sending[*v] = i as u32 + 1;
                self.tx.insert(*v);
            }
            for &v in &awake {
                let heard = if self.listening.contains(v) {
                    let fb = resolve_row(
                        self.model,
                        self.graph.neighbor_row(v),
                        &self.tx,
                        &self.sending,
                        &senders,
                    );
                    if let Some(tel) = &mut self.telemetry {
                        match &fb {
                            Feedback::Silence => tel.note_silence(v),
                            Feedback::Noise | Feedback::Beep => tel.note_noise(v),
                            Feedback::One(_) | Feedback::Many(_) => tel.note_recv(v),
                        }
                    }
                    Some(fb)
                } else {
                    None
                };
                match protocol.after_slot(v, t, heard) {
                    NextWake::At(t2) => {
                        assert!(t2 > t, "device {v} scheduled non-future wake {t2} <= {t}");
                        queue.push(Reverse((t2, v)));
                    }
                    NextWake::Done => {}
                }
            }
            for (v, _) in &senders {
                self.sending[*v] = 0;
                self.tx.remove(*v);
            }
            for &v in &listeners {
                self.listening.remove(v);
            }
            if let Some(tel) = &mut self.telemetry {
                tel.end_slot();
            }
        }
        RunOutcome {
            completed: !truncated,
            last_slot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A relay race along a path: node 0 sends at slot 1; each node listens
    /// at its own index slot and relays one slot later.
    struct Relay {
        n: usize,
        got: Vec<bool>,
    }

    impl Protocol<u8> for Relay {
        fn first_wake(&mut self, v: NodeId) -> NextWake {
            NextWake::At(v as Slot + 1)
        }
        fn on_wake(&mut self, v: NodeId, _now: Slot) -> Action<u8> {
            if v == 0 {
                Action::Send(7)
            } else {
                Action::Listen
            }
        }
        fn after_slot(&mut self, v: NodeId, now: Slot, heard: Option<Feedback<u8>>) -> NextWake {
            if v == 0 {
                self.got[0] = true;
                return NextWake::Done;
            }
            match heard {
                Some(Feedback::One(7)) => {
                    self.got[v] = true;
                    if v + 1 < self.n {
                        // Relay: become a sender next slot.
                        NextWake::At(now + 1)
                    } else {
                        NextWake::Done
                    }
                }
                _ if self.got[v] => {
                    // Already relayed (we woke once more to send).
                    NextWake::Done
                }
                _ => NextWake::At(now + 1),
            }
        }
    }

    // Relay as written above listens forever; simpler correctness test below.

    struct PingPong {
        rounds: u32,
        log: Vec<(Slot, NodeId)>,
    }

    impl Protocol<u32> for PingPong {
        fn first_wake(&mut self, v: NodeId) -> NextWake {
            let _ = v;
            NextWake::At(1)
        }
        fn on_wake(&mut self, v: NodeId, now: Slot) -> Action<u32> {
            // Node 0 sends on odd slots, node 1 listens on odd slots;
            // roles swap on even slots.
            let odd = now % 2 == 1;
            if (v == 0) == odd {
                Action::Send(now as u32)
            } else {
                Action::Listen
            }
        }
        fn after_slot(&mut self, v: NodeId, now: Slot, heard: Option<Feedback<u32>>) -> NextWake {
            if let Some(Feedback::One(m)) = heard {
                self.log.push((m as Slot, v));
            }
            if now >= self.rounds as Slot {
                NextWake::Done
            } else {
                NextWake::At(now + 1)
            }
        }
    }

    #[test]
    fn ping_pong_alternates() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let mut eng = EventEngine::new(g, Model::NoCd);
        let mut p = PingPong {
            rounds: 6,
            log: Vec::new(),
        };
        let out = eng.run(&mut p, 100);
        assert!(out.completed);
        assert_eq!(out.last_slot, Some(6));
        // Every slot 1..=6 delivered a message to the listening side.
        assert_eq!(p.log.len(), 6);
        for (i, &(slot, _)) in p.log.iter().enumerate() {
            assert_eq!(slot, i as Slot + 1);
        }
        // Each node spent exactly 6 energy (send or listen each slot).
        assert_eq!(eng.meter().energy(0), 6);
        assert_eq!(eng.meter().energy(1), 6);
    }

    #[test]
    fn truncation_reported() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let mut eng = EventEngine::new(g, Model::NoCd);
        let mut p = PingPong {
            rounds: 1000,
            log: Vec::new(),
        };
        let out = eng.run(&mut p, 10);
        assert!(!out.completed);
        assert!(out.last_slot.unwrap() <= 10);
    }

    #[test]
    fn sleeping_nodes_cost_nothing() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        struct OnlyZero;
        impl Protocol<u8> for OnlyZero {
            fn first_wake(&mut self, v: NodeId) -> NextWake {
                if v == 0 {
                    NextWake::At(5)
                } else {
                    NextWake::Done
                }
            }
            fn on_wake(&mut self, _v: NodeId, _now: Slot) -> Action<u8> {
                Action::Send(1)
            }
            fn after_slot(&mut self, _v: NodeId, _now: Slot, _h: Option<Feedback<u8>>) -> NextWake {
                NextWake::Done
            }
        }
        let mut eng = EventEngine::new(g, Model::Cd);
        let out = eng.run(&mut OnlyZero, 100);
        assert!(out.completed);
        assert_eq!(out.last_slot, Some(5));
        assert_eq!(eng.meter().energy(0), 1);
        assert_eq!(eng.meter().energy(1), 0);
        assert_eq!(eng.meter().energy(2), 0);
    }

    #[test]
    #[should_panic(expected = "non-future wake")]
    fn non_future_wake_panics() {
        let g = Graph::from_edges(1, &[]).unwrap();
        struct Bad;
        impl Protocol<u8> for Bad {
            fn first_wake(&mut self, _v: NodeId) -> NextWake {
                NextWake::At(1)
            }
            fn on_wake(&mut self, _v: NodeId, _now: Slot) -> Action<u8> {
                Action::Idle
            }
            fn after_slot(&mut self, _v: NodeId, now: Slot, _h: Option<Feedback<u8>>) -> NextWake {
                NextWake::At(now)
            }
        }
        EventEngine::new(g, Model::NoCd).run(&mut Bad, 100);
    }

    #[test]
    fn relay_reaches_everyone_without_collisions() {
        // Schedule relays so transmissions never collide: node v listens at
        // slot v (when its upstream neighbor relays) and sends at slot v+1.
        let n = 8;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        struct Chain {
            n: usize,
            got: Vec<bool>,
        }
        impl Protocol<u8> for Chain {
            fn first_wake(&mut self, v: NodeId) -> NextWake {
                if v == 0 {
                    NextWake::At(1)
                } else {
                    NextWake::At(v as Slot)
                }
            }
            fn on_wake(&mut self, v: NodeId, now: Slot) -> Action<u8> {
                if v == 0 {
                    Action::Send(42)
                } else if now == v as Slot {
                    Action::Listen
                } else {
                    // Second wake: relay.
                    Action::Send(42)
                }
            }
            fn after_slot(
                &mut self,
                v: NodeId,
                now: Slot,
                heard: Option<Feedback<u8>>,
            ) -> NextWake {
                if v == 0 {
                    self.got[0] = true;
                    return NextWake::Done;
                }
                if let Some(Feedback::One(42)) = heard {
                    self.got[v] = true;
                    if v + 1 < self.n {
                        return NextWake::At(now + 1);
                    }
                }
                NextWake::Done
            }
        }
        let mut eng = EventEngine::new(g, Model::NoCd);
        let mut p = Chain {
            n,
            got: vec![false; n],
        };
        let out = eng.run(&mut p, 1000);
        assert!(out.completed);
        assert!(p.got.iter().all(|&b| b), "got = {:?}", p.got);
        // The message advances one hop per slot; the last listener hears it
        // at slot n-1.
        assert_eq!(out.last_slot, Some(n as Slot - 1));
        // Interior nodes: 1 listen + 1 send.
        assert_eq!(eng.meter().energy(3), 2);
        // Endpoints: 1 each.
        assert_eq!(eng.meter().energy(0), 1);
        assert_eq!(eng.meter().energy(n - 1), 1);
    }

    #[test]
    fn dense_slots_resolve_feedback_for_exactly_the_listeners() {
        // Every device is awake every slot; roles alternate by slot parity,
        // so yesterday's listeners are today's senders. Listeners must get
        // `Some` feedback, senders `None`, with no carry-over between slots.
        let n = 12;
        let g = crate::Graph::from_edges(
            n,
            &(0..n)
                .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        struct Dense {
            rounds: Slot,
            heard: Vec<(Slot, NodeId, bool)>,
        }
        impl Protocol<u8> for Dense {
            fn first_wake(&mut self, _v: NodeId) -> NextWake {
                NextWake::At(1)
            }
            fn on_wake(&mut self, v: NodeId, now: Slot) -> Action<u8> {
                if (v as Slot + now) % 2 == 0 {
                    Action::Listen
                } else {
                    Action::Send(1)
                }
            }
            fn after_slot(
                &mut self,
                v: NodeId,
                now: Slot,
                heard: Option<Feedback<u8>>,
            ) -> NextWake {
                self.heard.push((now, v, heard.is_some()));
                if now >= self.rounds {
                    NextWake::Done
                } else {
                    NextWake::At(now + 1)
                }
            }
        }
        let mut eng = EventEngine::new(g, Model::Cd);
        let mut p = Dense {
            rounds: 4,
            heard: Vec::new(),
        };
        let out = eng.run(&mut p, 100);
        assert!(out.completed);
        assert_eq!(p.heard.len(), 4 * n);
        for &(now, v, got) in &p.heard {
            let listened = (v as Slot + now) % 2 == 0;
            assert_eq!(got, listened, "slot {now} node {v}");
        }
        // 6 senders per slot on a clique: every listener heard noise, which
        // the meter sees as one listen charge per listening slot.
        assert_eq!(eng.meter().energy(0), 4);
    }

    // Silence the unused struct warning for Relay (kept as documentation of
    // a subtle pitfall: listen-forever protocols never complete).
    #[test]
    fn relay_struct_is_constructible() {
        let r = Relay {
            n: 1,
            got: vec![false],
        };
        assert_eq!(r.n, 1);
    }
}
