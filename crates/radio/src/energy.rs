//! Exact per-device energy accounting.

use crate::{NodeId, Slot};

/// Meters every send and listen, per device, over a whole simulation.
///
/// Energy complexity in the paper is the number of slots a device transmits
/// or listens; a full-duplex slot counts both. The meter also records the
/// last slot in which *any* device was active, which is the simulation's
/// time complexity.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    sends: Vec<u64>,
    listens: Vec<u64>,
    /// Sends charged in slots the fault layer lost or jammed — energy
    /// paid for transmissions nobody could decode (the retry cost of
    /// unreliable channels). Always ≤ `sends`, element-wise.
    lost_sends: Vec<u64>,
    last_active: Option<Slot>,
    idle_skipped: u64,
}

impl EnergyMeter {
    /// A meter for `n` devices with all counters zero.
    pub fn new(n: usize) -> Self {
        EnergyMeter {
            sends: vec![0; n],
            listens: vec![0; n],
            lost_sends: vec![0; n],
            last_active: None,
            idle_skipped: 0,
        }
    }

    /// Records that `v` transmitted in slot `t`.
    pub fn charge_send(&mut self, v: NodeId, t: Slot) {
        self.sends[v] += 1;
        self.bump(t);
    }

    /// Records that `v` listened in slot `t`.
    pub fn charge_listen(&mut self, v: NodeId, t: Slot) {
        self.listens[v] += 1;
        self.bump(t);
    }

    fn bump(&mut self, t: Slot) {
        self.last_active = Some(self.last_active.map_or(t, |x| x.max(t)));
    }

    /// Records `slots` slots in which every device provably idled and the
    /// clock advanced in one batch (the [`crate::Sim::skip`] path and the
    /// gaps of a sparse schedule). Idling is free, so no energy is charged;
    /// the counter only makes the batching observable in reports.
    pub fn note_skip(&mut self, slots: u64) {
        self.idle_skipped += slots;
    }

    /// Total slots batch-skipped as provably idle.
    pub fn idle_skipped(&self) -> u64 {
        self.idle_skipped
    }

    /// Records that `v`'s already-charged send fell in a slot the fault
    /// layer destroyed (lost or jammed) — the energy stays charged; this
    /// counter makes the waste observable.
    pub fn note_lost_send(&mut self, v: NodeId) {
        self.lost_sends[v] += 1;
    }

    /// Sends by `v` that a fault destroyed (already counted in
    /// [`EnergyMeter::sends`]).
    pub fn lost_sends(&self, v: NodeId) -> u64 {
        self.lost_sends[v]
    }

    /// Total fault-destroyed sends across all devices.
    pub fn total_lost_sends(&self) -> u64 {
        self.lost_sends.iter().sum()
    }

    /// Total energy spent by `v` (sends + listens).
    pub fn energy(&self, v: NodeId) -> u64 {
        self.sends[v] + self.listens[v]
    }

    /// Number of transmissions by `v`.
    pub fn sends(&self, v: NodeId) -> u64 {
        self.sends[v]
    }

    /// Number of listening slots of `v`.
    pub fn listens(&self, v: NodeId) -> u64 {
        self.listens[v]
    }

    /// The maximum energy over all devices — the paper's energy complexity.
    pub fn max_energy(&self) -> u64 {
        (0..self.sends.len())
            .map(|v| self.energy(v))
            .max()
            .unwrap_or(0)
    }

    /// Sum of energy over all devices.
    pub fn total_energy(&self) -> u64 {
        (0..self.sends.len()).map(|v| self.energy(v)).sum()
    }

    /// Mean per-device energy.
    pub fn mean_energy(&self) -> f64 {
        if self.sends.is_empty() {
            0.0
        } else {
            self.total_energy() as f64 / self.sends.len() as f64
        }
    }

    /// The last slot in which any device was active, if any.
    pub fn last_active(&self) -> Option<Slot> {
        self.last_active
    }

    /// A summary snapshot suitable for printing in benchmark tables.
    ///
    /// Percentiles use the ceil-based nearest-rank definition: the q-th
    /// percentile is the smallest value with at least `⌈q·len⌉` values at
    /// or below it. (The old `((len-1)·q) as usize` truncated — on a
    /// 4-device network "p95" reported index 2, roughly p66.)
    pub fn report(&self) -> EnergyReport {
        let n = self.sends.len();
        let mut energies: Vec<u64> = (0..n).map(|v| self.energy(v)).collect();
        energies.sort_unstable();
        let p = |q: f64| -> u64 {
            if energies.is_empty() {
                0
            } else {
                let rank = (energies.len() as f64 * q).ceil() as usize;
                energies[rank.clamp(1, energies.len()) - 1]
            }
        };
        EnergyReport {
            max: self.max_energy(),
            mean: self.mean_energy(),
            median: p(0.5),
            p95: p(0.95),
            total: self.total_energy(),
            time: self.last_active.map_or(0, |t| t + 1),
            idle_skipped: self.idle_skipped,
            lost_sends: self.total_lost_sends(),
        }
    }

    /// Resets all counters (devices and clock history).
    pub fn reset(&mut self) {
        self.sends.iter_mut().for_each(|x| *x = 0);
        self.listens.iter_mut().for_each(|x| *x = 0);
        self.lost_sends.iter_mut().for_each(|x| *x = 0);
        self.last_active = None;
        self.idle_skipped = 0;
    }

    /// Folds `other`'s charges into this meter (device-wise sums, latest
    /// activity wins). Used when a sub-engine runs part of a simulation —
    /// e.g. an event-driven phase inside a slot-driven algorithm — and its
    /// energy must count toward the enclosing run.
    ///
    /// # Panics
    ///
    /// Panics if the meters track different device counts.
    pub fn merge(&mut self, other: &EnergyMeter) {
        assert_eq!(
            self.sends.len(),
            other.sends.len(),
            "cannot merge meters over different device counts"
        );
        for (a, b) in self.sends.iter_mut().zip(&other.sends) {
            *a += b;
        }
        for (a, b) in self.listens.iter_mut().zip(&other.listens) {
            *a += b;
        }
        for (a, b) in self.lost_sends.iter_mut().zip(&other.lost_sends) {
            *a += b;
        }
        self.idle_skipped += other.idle_skipped;
        if let Some(t) = other.last_active {
            self.bump(t);
        }
    }
}

/// Aggregate energy/time statistics for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Maximum per-device energy (the paper's energy complexity).
    pub max: u64,
    /// Mean per-device energy.
    pub mean: f64,
    /// Median per-device energy.
    pub median: u64,
    /// 95th-percentile per-device energy.
    pub p95: u64,
    /// Total energy across all devices.
    pub total: u64,
    /// Number of slots up to and including the last active one.
    pub time: u64,
    /// Slots the simulation batch-skipped as provably idle (free time the
    /// engine never simulated slot-by-slot).
    pub idle_skipped: u64,
    /// Sends destroyed by the fault layer (energy paid for transmissions
    /// nobody could decode); 0 in every clean run.
    pub lost_sends: u64,
}

impl core::fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "time={} slots ({} idle-skipped), energy max={} mean={:.1} median={} p95={} total={}",
            self.time, self.idle_skipped, self.max, self.mean, self.median, self.p95, self.total
        )?;
        if self.lost_sends > 0 {
            write!(f, " ({} sends lost to faults)", self.lost_sends)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sends_and_listens() {
        let mut m = EnergyMeter::new(3);
        m.charge_send(0, 5);
        m.charge_listen(0, 6);
        m.charge_listen(2, 9);
        assert_eq!(m.energy(0), 2);
        assert_eq!(m.energy(1), 0);
        assert_eq!(m.energy(2), 1);
        assert_eq!(m.sends(0), 1);
        assert_eq!(m.listens(0), 1);
        assert_eq!(m.max_energy(), 2);
        assert_eq!(m.total_energy(), 3);
        assert_eq!(m.last_active(), Some(9));
    }

    #[test]
    fn last_active_is_max_not_last_call() {
        let mut m = EnergyMeter::new(2);
        m.charge_send(0, 100);
        m.charge_send(1, 7);
        assert_eq!(m.last_active(), Some(100));
    }

    #[test]
    fn report_statistics() {
        let mut m = EnergyMeter::new(4);
        for t in 0..10 {
            m.charge_listen(0, t);
        }
        m.charge_send(1, 3);
        let r = m.report();
        assert_eq!(r.max, 10);
        assert_eq!(r.total, 11);
        assert_eq!(r.time, 10);
        assert!((r.mean - 11.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_use_ceil_based_nearest_rank() {
        // Energies 1, 2, 3, 4 across four devices: p95's rank is ⌈4·0.95⌉
        // = 4 → the max; the median's rank is ⌈4·0.5⌉ = 2.
        let mut m = EnergyMeter::new(4);
        for v in 0..4 {
            for t in 0..=v as u64 {
                m.charge_listen(v, t);
            }
        }
        let r = m.report();
        assert_eq!(r.p95, 4, "p95 on 4 devices must be the max");
        assert_eq!(r.median, 2);

        // 20 devices with energies 1..=20: rank ⌈20·0.95⌉ = 19 → value 19.
        let mut m = EnergyMeter::new(20);
        for v in 0..20 {
            for t in 0..=v as u64 {
                m.charge_send(v, t);
            }
        }
        let r = m.report();
        assert_eq!(r.p95, 19);
        assert_eq!(r.median, 10);
    }

    #[test]
    fn single_device_percentiles_are_its_energy() {
        let mut m = EnergyMeter::new(1);
        m.charge_send(0, 0);
        m.charge_listen(0, 1);
        let r = m.report();
        assert_eq!(r.median, 2);
        assert_eq!(r.p95, 2);
    }

    #[test]
    fn merge_sums_charges_and_takes_latest_activity() {
        let mut a = EnergyMeter::new(3);
        a.charge_send(0, 5);
        a.charge_listen(2, 9);
        let mut b = EnergyMeter::new(3);
        b.charge_send(0, 2);
        b.charge_listen(1, 30);
        a.merge(&b);
        assert_eq!(a.sends(0), 2);
        assert_eq!(a.listens(1), 1);
        assert_eq!(a.listens(2), 1);
        assert_eq!(a.last_active(), Some(30));
        // Merging an untouched meter changes nothing.
        a.merge(&EnergyMeter::new(3));
        assert_eq!(a.total_energy(), 4);
        assert_eq!(a.last_active(), Some(30));
    }

    #[test]
    #[should_panic(expected = "different device counts")]
    fn merge_rejects_mismatched_sizes() {
        EnergyMeter::new(2).merge(&EnergyMeter::new(3));
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = EnergyMeter::new(2);
        m.charge_send(0, 1);
        m.reset();
        assert_eq!(m.total_energy(), 0);
        assert_eq!(m.last_active(), None);
    }

    #[test]
    fn empty_meter() {
        let m = EnergyMeter::new(0);
        assert_eq!(m.max_energy(), 0);
        assert_eq!(m.mean_energy(), 0.0);
    }

    #[test]
    fn report_of_zero_device_meter_is_all_zero() {
        let r = EnergyMeter::new(0).report();
        assert_eq!(
            r,
            EnergyReport {
                max: 0,
                mean: 0.0,
                median: 0,
                p95: 0,
                total: 0,
                time: 0,
                idle_skipped: 0,
                lost_sends: 0
            }
        );
    }

    #[test]
    fn lost_sends_are_counted_merged_and_reset() {
        let mut m = EnergyMeter::new(3);
        m.charge_send(0, 1);
        m.note_lost_send(0);
        m.charge_send(2, 2);
        assert_eq!(m.lost_sends(0), 1);
        assert_eq!(m.lost_sends(2), 0);
        assert_eq!(m.total_lost_sends(), 1);
        assert_eq!(m.report().lost_sends, 1);
        let mut other = EnergyMeter::new(3);
        other.note_lost_send(2);
        m.merge(&other);
        assert_eq!(m.total_lost_sends(), 2);
        m.reset();
        assert_eq!(m.total_lost_sends(), 0);
    }

    #[test]
    fn idle_skips_are_counted_merged_and_reset() {
        let mut m = EnergyMeter::new(2);
        m.note_skip(100);
        m.note_skip(23);
        assert_eq!(m.idle_skipped(), 123);
        assert_eq!(m.total_energy(), 0, "idling is free");
        assert_eq!(m.last_active(), None, "skips are not activity");
        let mut other = EnergyMeter::new(2);
        other.note_skip(7);
        m.merge(&other);
        assert_eq!(m.idle_skipped(), 130);
        assert_eq!(m.report().idle_skipped, 130);
        m.reset();
        assert_eq!(m.idle_skipped(), 0);
    }

    #[test]
    fn report_with_devices_but_no_charges() {
        // Devices exist but nothing ever sent or listened: every statistic
        // is zero and no slot counts as active.
        let m = EnergyMeter::new(5);
        let r = m.report();
        assert_eq!(r.max, 0);
        assert_eq!(r.mean, 0.0);
        assert_eq!(r.median, 0);
        assert_eq!(r.p95, 0);
        assert_eq!(r.total, 0);
        assert_eq!(r.time, 0);
        assert_eq!(m.last_active(), None);
    }

    #[test]
    fn skip_only_sim_charges_nothing_but_advances_clock() {
        // A simulation that only skips provably-idle regions: the global
        // clock moves, the meter stays empty (idling is free), and the
        // report's activity-based time stays zero.
        use crate::{Graph, Model, Sim};
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut sim = Sim::new(g, Model::NoCd, 1);
        sim.skip(1000);
        assert_eq!(sim.now(), 1000);
        assert_eq!(sim.meter().total_energy(), 0);
        assert_eq!(sim.meter().last_active(), None);
        assert_eq!(sim.meter().report().time, 0);
    }

    #[test]
    fn charge_after_skip_counts_skipped_slots_in_time() {
        use crate::{from_fns, Action, Graph, Model, Sim};
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let mut sim = Sim::new(g, Model::NoCd, 1);
        sim.skip(50);
        let mut b = from_fns(
            |v, _t| {
                if v == 0 {
                    Action::Send(1u8)
                } else {
                    Action::Listen
                }
            },
            |_v, _t, _fb| {},
        );
        sim.run(&[0, 1], 1, &mut b);
        let r = sim.meter().report();
        assert_eq!(r.total, 2);
        // Time counts through the skipped region up to the active slot.
        assert_eq!(r.time, 51);
    }
}
