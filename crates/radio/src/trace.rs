//! Optional event tracing, used to render the paper's Figure 1.

use crate::{NodeId, Slot};

/// What happened to one device in one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// The device transmitted; payload rendered with `Debug`.
    Send(String),
    /// The device listened and received exactly one message.
    Recv(String),
    /// The device listened and heard silence.
    HeardSilence,
    /// The device listened and heard noise (CD) or a beep (Beep).
    HeardNoise,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global slot number.
    pub slot: Slot,
    /// The device involved.
    pub node: NodeId,
    /// What it did / heard.
    pub kind: TraceKind,
}

/// An append-only log of slot events.
///
/// Tracing is opt-in ([`crate::Sim::enable_trace`]) because message payloads
/// are stringified eagerly.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, slot: Slot, node: NodeId, kind: TraceKind) {
        self.events.push(TraceEvent { slot, node, kind });
    }

    /// All recorded events in append order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events affecting a single device, in slot order.
    pub fn for_node(&self, v: NodeId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.node == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut t = Trace::new();
        t.push(0, 1, TraceKind::Send("m".into()));
        t.push(1, 2, TraceKind::Recv("m".into()));
        t.push(2, 1, TraceKind::HeardSilence);
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.for_node(1).count(), 2);
        assert_eq!(t.for_node(2).count(), 1);
        assert_eq!(t.for_node(9).count(), 0);
    }
}
