//! Legacy string-based event tracing — retained as a compatibility shim.
//!
//! The structured [`crate::telemetry`] layer replaced this module: it
//! records binary-packed events in bounded rings instead of eagerly
//! stringified payloads, and adds per-slot counters, phase spans, and
//! gauges. The deprecated [`crate::Sim::trace`] /
//! [`crate::EventEngine::trace`] shims reconstruct a [`Trace`] view from
//! telemetry events (with empty payload strings — payloads are no longer
//! recorded); new code should read [`crate::Telemetry`] directly.

use crate::telemetry::{EventKind, Telemetry};
use crate::{NodeId, Slot};

/// What happened to one device in one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// The device transmitted; payload rendered with `Debug`.
    Send(String),
    /// The device listened and received exactly one message.
    Recv(String),
    /// The device listened and heard silence.
    HeardSilence,
    /// The device listened and heard noise (CD) or a beep (Beep).
    HeardNoise,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global slot number.
    pub slot: Slot,
    /// The device involved.
    pub node: NodeId,
    /// What it did / heard.
    pub kind: TraceKind,
}

/// An append-only log of slot events.
///
/// Tracing is opt-in ([`crate::Sim::enable_trace`]) because message payloads
/// are stringified eagerly.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// A trace view reconstructed from telemetry events, for callers of
    /// the deprecated trace API. Payload strings are empty (telemetry
    /// never stringifies messages); `Lost`/`Crashed` events have no
    /// legacy equivalent and are skipped; `Jammed` listeners map to
    /// [`TraceKind::HeardNoise`].
    pub fn from_telemetry(tel: &Telemetry) -> Trace {
        let mut t = Trace::new();
        for e in tel.events() {
            let kind = match e.kind() {
                EventKind::Tx => TraceKind::Send(String::new()),
                EventKind::Recv => TraceKind::Recv(String::new()),
                EventKind::Silence => TraceKind::HeardSilence,
                EventKind::Noise | EventKind::Jammed => TraceKind::HeardNoise,
                EventKind::Lost | EventKind::Crashed => continue,
            };
            t.push(e.slot, e.node(), kind);
        }
        t
    }

    /// Appends an event.
    pub fn push(&mut self, slot: Slot, node: NodeId, kind: TraceKind) {
        self.events.push(TraceEvent { slot, node, kind });
    }

    /// All recorded events in append order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events affecting a single device, in slot order.
    pub fn for_node(&self, v: NodeId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.node == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut t = Trace::new();
        t.push(0, 1, TraceKind::Send("m".into()));
        t.push(1, 2, TraceKind::Recv("m".into()));
        t.push(2, 1, TraceKind::HeardSilence);
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.for_node(1).count(), 2);
        assert_eq!(t.for_node(2).count(), 1);
        assert_eq!(t.for_node(9).count(), 0);
    }
}
