//! Fault injection at the slot pipeline's single choke point.
//!
//! Every transmission in the engine flows through [`crate::Sim`]'s
//! `step_slot`, so faults are applied exactly once per simulated slot —
//! after behaviors act (senders pay for the attempt either way) and
//! before collision resolution computes feedback. Dense, sparse, and
//! dynamic schedules and all five collision models inherit every fault
//! for free.
//!
//! A [`FaultPlan`] declares *what* goes wrong; the engine-side
//! [`FaultState`] tracks *where the plan is* (which devices are down,
//! how much jamming budget remains, which events already fired). All
//! randomness is a pure hash of the fault key and the **global** slot
//! number — never a sequential stream — so batch-skipped slots draw
//! nothing and the three schedule shapes stay bit-identical under the
//! same plan. [`FaultPlan::None`] is never consulted at all: the engine
//! stores no fault state for it, so a clean run is bit-for-bit the
//! pre-fault engine.

use crate::bitset::BitSet;
use crate::model::{Feedback, Model};
use crate::rng::splitmix64;
use crate::{NodeId, Slot};

/// The stream label under which [`crate::Sim`] derives the fault key
/// from its master seed via [`crate::rng::derive_seed`] — disjoint from
/// every algorithm-visible stream, so adding faults never perturbs an
/// algorithm's own random draws.
pub const FAULT_STREAM: u64 = 0xfa01_7bad_51de_c0de;

/// How a [`FaultPlan::Jammer`] decides which slots to hit.
#[derive(Debug, Clone, PartialEq)]
pub enum JammerStrategy {
    /// Jam every slot whose global number is ≡ 0 (mod `period`).
    Periodic {
        /// The jamming period in slots (must be ≥ 1).
        period: u64,
    },
    /// Jam each slot independently with probability `p`.
    Random {
        /// Per-slot jamming probability in `[0, 1]`.
        p: f64,
    },
    /// Jam exactly the slots in which some device transmits — a
    /// carrier-sensing adversary that never wastes budget on silence.
    Reactive,
}

/// A declarative fault plan for one simulation run.
///
/// Plans are pure data: pass one to [`crate::Sim::with_faults`] and the
/// engine applies it deterministically. Randomized plans (slot loss,
/// edge loss, random jamming) draw from a key derived from the
/// simulation's master seed under [`FAULT_STREAM`], so two runs with the
/// same seed and plan fail identically.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum FaultPlan {
    /// No faults. The engine stores no fault state for this plan, so a
    /// `None` run is bit-identical to the pre-fault engine.
    #[default]
    None,
    /// Each simulated slot is independently *lost* with probability `p`:
    /// every transmission in it vanishes (listeners resolve an empty
    /// channel → [`Feedback::Silence`] in every model) while senders
    /// still pay send energy — the retry cost of unreliable channels.
    SlotLoss {
        /// Per-slot loss probability in `[0, 1]`.
        p: f64,
    },
    /// Each directed delivery (sender → listener) is independently
    /// dropped with probability `p` in each slot — the classic
    /// independent-link-loss model. Different listeners of the same
    /// sender fail independently.
    EdgeLoss {
        /// Per-delivery drop probability in `[0, 1]`.
        p: f64,
    },
    /// Devices crash permanently: at global slot `t`, device `v` goes
    /// down for every `(t, v)` in `schedule`. Down devices are never
    /// polled, transmit nothing, hear nothing, and pay no energy.
    Crash {
        /// `(global slot, device)` crash events, in any order.
        schedule: Vec<(Slot, NodeId)>,
    },
    /// An adversary with a finite jamming `budget`. A jammed slot
    /// reaches every listener as channel garbage: [`Feedback::Silence`]
    /// under No-CD (collisions are indistinguishable from silence),
    /// [`Feedback::Noise`] under CD/CD\*/LOCAL, [`Feedback::Beep`]
    /// under Beep. One budget unit buys one slot actually heard by at
    /// least one listener; slots nobody observes are free, so budget
    /// consumption is identical across schedule shapes.
    Jammer {
        /// How many observed slots the adversary can jam.
        budget: u64,
        /// Which slots it targets.
        strategy: JammerStrategy,
    },
    /// Churn: devices leave and later (re)join. `leave` takes a device
    /// down at a global slot exactly like a crash; `join` brings it back
    /// up. A device down over a window misses every delivery in it.
    Churn {
        /// `(global slot, device)` leave events.
        leave: Vec<(Slot, NodeId)>,
        /// `(global slot, device)` join events.
        join: Vec<(Slot, NodeId)>,
    },
}

impl FaultPlan {
    /// The stable kebab-case name of the plan kind (the bench matrix's
    /// fault-axis value): `"none"`, `"slot-loss"`, `"edge-loss"`,
    /// `"crash"`, `"jammer"`, or `"churn"`.
    pub fn name(&self) -> &'static str {
        match self {
            FaultPlan::None => "none",
            FaultPlan::SlotLoss { .. } => "slot-loss",
            FaultPlan::EdgeLoss { .. } => "edge-loss",
            FaultPlan::Crash { .. } => "crash",
            FaultPlan::Jammer { .. } => "jammer",
            FaultPlan::Churn { .. } => "churn",
        }
    }

    /// Whether this plan can ever perturb a run (everything but `None`).
    pub fn is_active(&self) -> bool {
        !matches!(self, FaultPlan::None)
    }
}

/// What the fault layer decides about one simulated slot's channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotVerdict {
    /// The channel behaves normally.
    Clean,
    /// Every transmission is dropped: listeners resolve an empty
    /// transmitting set (silence in every model).
    Lost,
    /// The adversary transmits garbage: every listener hears
    /// [`jam_feedback`] for its model, regardless of real senders.
    Jammed,
}

/// The choke-point contract between the engine and a fault model.
///
/// [`crate::Sim`] calls these hooks from `step_slot`, in order:
/// [`begin_slot`] once per simulated slot (before polling anyone), then
/// [`is_down`] per participant, then — only if some participant
/// listened — [`verdict`] once, then [`edge_alive`] per (listener,
/// transmitting neighbor) pair when [`filters_edges`] is set. Skipped
/// slots call nothing, so implementations must derive randomness as a
/// pure function of the global slot, never from a sequential stream.
///
/// [`begin_slot`]: FaultModel::begin_slot
/// [`is_down`]: FaultModel::is_down
/// [`verdict`]: FaultModel::verdict
/// [`edge_alive`]: FaultModel::edge_alive
/// [`filters_edges`]: FaultModel::filters_edges
pub trait FaultModel: core::fmt::Debug {
    /// Applies every crash/churn event scheduled at or before `slot`.
    /// Called once per simulated slot, before any behavior is polled;
    /// batch-skipped ranges are caught up by the next simulated slot.
    fn begin_slot(&mut self, slot: Slot);

    /// Whether device `v` is currently down (crashed or churned out).
    fn is_down(&self, v: NodeId) -> bool;

    /// The packed down-set, one bit per device — the engine masks the
    /// slot's transmitting set against it word-parallel.
    fn down(&self) -> &BitSet;

    /// Whether any device is currently down (fast-path gate for the
    /// per-participant and word-parallel masking).
    fn any_down(&self) -> bool;

    /// The channel verdict for `slot`. Called at most once per simulated
    /// slot, and only when at least one (up) participant listened —
    /// unobserved slots never consume jamming budget, keeping budget
    /// spend invariant across schedule shapes. `any_tx` reports whether
    /// some up device transmitted (for [`JammerStrategy::Reactive`]).
    fn verdict(&mut self, slot: Slot, any_tx: bool) -> SlotVerdict;

    /// Whether deliveries must be filtered per (listener, sender) edge.
    /// When `false` the engine keeps the word-parallel row probe.
    fn filters_edges(&self) -> bool;

    /// Whether the directed delivery `sender → listener` survives
    /// `slot`. Only consulted when [`FaultModel::filters_edges`].
    fn edge_alive(&self, slot: Slot, listener: NodeId, sender: NodeId) -> bool;
}

/// What every listener hears in a jammed slot, per model: the adversary
/// floods the channel, so under No-CD the collision is indistinguishable
/// from silence, under CD/CD\*/LOCAL it is noise (garbage is not a
/// decodable message, even for CD\*'s arbitrary pick), and under Beep
/// the jammer's carrier is just another beep.
pub fn jam_feedback<M>(model: Model) -> Feedback<M> {
    match model {
        Model::NoCd => Feedback::Silence,
        Model::Cd | Model::CdStar | Model::Local => Feedback::Noise,
        Model::Beep => Feedback::Beep,
    }
}

/// A crash/churn membership event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// The device goes down.
    Down,
    /// The device comes back up.
    Up,
}

/// The engine-side state of a [`FaultPlan`]: the realized down-set,
/// remaining jam budget, and the cursor into the sorted event list.
/// Construct via [`FaultState::new`]; [`crate::Sim::with_faults`] does
/// this for you.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    /// The fault key all randomized draws hash from (derived from the
    /// simulation master seed under [`FAULT_STREAM`]).
    key: u64,
    /// Packed set of currently-down devices.
    down: BitSet,
    /// `down.count_ones() > 0`, tracked incrementally.
    down_count: usize,
    /// Crash/churn events sorted by `(slot, node, kind)`; `Down` sorts
    /// before `Up`, so a same-slot leave+join nets to up.
    events: Vec<(Slot, NodeId, EventKind)>,
    /// First unapplied index into `events`.
    next_event: usize,
    /// Remaining jamming budget (meaningful for `Jammer` plans only).
    jam_budget: u64,
    /// Devices whose `Down` transition fired in the most recent
    /// [`FaultModel::begin_slot`] — the telemetry layer's crash events.
    newly_down: Vec<NodeId>,
}

impl FaultState {
    /// Fault state for `plan` over `n` devices, drawing from `key`.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]`, a periodic jammer
    /// has period 0, or an event names a device `>= n`.
    pub fn new(plan: FaultPlan, key: u64, n: usize) -> Self {
        let mut events: Vec<(Slot, NodeId, EventKind)> = Vec::new();
        match &plan {
            FaultPlan::None | FaultPlan::EdgeLoss { .. } => {}
            FaultPlan::SlotLoss { p } => {
                assert!((0.0..=1.0).contains(p), "slot-loss p={p} outside [0, 1]");
            }
            FaultPlan::Crash { schedule } => {
                events.extend(schedule.iter().map(|&(t, v)| (t, v, EventKind::Down)));
            }
            FaultPlan::Jammer { strategy, .. } => match strategy {
                JammerStrategy::Periodic { period } => {
                    assert!(*period >= 1, "jammer period must be >= 1");
                }
                JammerStrategy::Random { p } => {
                    assert!((0.0..=1.0).contains(p), "jammer p={p} outside [0, 1]");
                }
                JammerStrategy::Reactive => {}
            },
            FaultPlan::Churn { leave, join } => {
                events.extend(leave.iter().map(|&(t, v)| (t, v, EventKind::Down)));
                events.extend(join.iter().map(|&(t, v)| (t, v, EventKind::Up)));
            }
        }
        if let FaultPlan::EdgeLoss { p } = &plan {
            assert!((0.0..=1.0).contains(p), "edge-loss p={p} outside [0, 1]");
        }
        for &(_, v, _) in &events {
            assert!(v < n, "fault event names device {v} >= n = {n}");
        }
        events.sort_unstable();
        let jam_budget = match &plan {
            FaultPlan::Jammer { budget, .. } => *budget,
            _ => 0,
        };
        FaultState {
            plan,
            key,
            down: BitSet::new(n),
            down_count: 0,
            events,
            next_event: 0,
            jam_budget,
            newly_down: Vec::new(),
        }
    }

    /// The plan this state realizes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Remaining jamming budget (0 for non-jammer plans).
    pub fn jam_budget(&self) -> u64 {
        self.jam_budget
    }

    /// How many devices are currently down.
    pub fn down_count(&self) -> usize {
        self.down_count
    }

    /// The devices whose crash/leave transition fired in the most
    /// recent [`FaultModel::begin_slot`] — batch-skipped ranges surface
    /// all their due transitions at the next simulated slot.
    pub fn newly_down(&self) -> &[NodeId] {
        &self.newly_down
    }

    /// A uniform draw in `[0, 1)` as a pure hash of the key and up to
    /// three coordinates — no sequential state, so skipped slots and
    /// reordered calls cannot shift any other draw.
    fn unit(&self, stream: u64, a: u64, b: u64, c: u64) -> f64 {
        let h = splitmix64(
            self.key
                ^ stream
                ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ b.wrapping_mul(0xbf58_476d_1ce4_e5b9)
                ^ c.wrapping_mul(0x94d0_49bb_1331_11eb),
        );
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-draw stream labels, keeping slot-loss, jammer, and edge draws
/// independent even at equal coordinates.
const STREAM_SLOT_LOSS: u64 = 0x51a7_1055;
const STREAM_JAMMER: u64 = 0x7a33_ed00;
const STREAM_EDGE: u64 = 0xed6e_d601;

impl FaultModel for FaultState {
    fn begin_slot(&mut self, slot: Slot) {
        if !self.newly_down.is_empty() {
            self.newly_down.clear();
        }
        while let Some(&(t, v, kind)) = self.events.get(self.next_event) {
            if t > slot {
                break;
            }
            match kind {
                EventKind::Down => {
                    if !self.down.contains(v) {
                        self.down.insert(v);
                        self.down_count += 1;
                        self.newly_down.push(v);
                    }
                }
                EventKind::Up => {
                    if self.down.contains(v) {
                        self.down.remove(v);
                        self.down_count -= 1;
                        // A same-batch leave+join nets to up: it is not a
                        // crash transition for this slot.
                        if let Some(pos) = self.newly_down.iter().position(|&u| u == v) {
                            self.newly_down.swap_remove(pos);
                        }
                    }
                }
            }
            self.next_event += 1;
        }
    }

    fn is_down(&self, v: NodeId) -> bool {
        self.down_count > 0 && self.down.contains(v)
    }

    fn down(&self) -> &BitSet {
        &self.down
    }

    fn any_down(&self) -> bool {
        self.down_count > 0
    }

    fn verdict(&mut self, slot: Slot, any_tx: bool) -> SlotVerdict {
        match &self.plan {
            FaultPlan::SlotLoss { p } => {
                if self.unit(STREAM_SLOT_LOSS, slot, 0, 0) < *p {
                    SlotVerdict::Lost
                } else {
                    SlotVerdict::Clean
                }
            }
            FaultPlan::Jammer { strategy, .. } => {
                if self.jam_budget == 0 {
                    return SlotVerdict::Clean;
                }
                let jam = match strategy {
                    JammerStrategy::Periodic { period } => slot % period == 0,
                    JammerStrategy::Random { p } => self.unit(STREAM_JAMMER, slot, 0, 0) < *p,
                    JammerStrategy::Reactive => any_tx,
                };
                if jam {
                    self.jam_budget -= 1;
                    SlotVerdict::Jammed
                } else {
                    SlotVerdict::Clean
                }
            }
            FaultPlan::None
            | FaultPlan::EdgeLoss { .. }
            | FaultPlan::Crash { .. }
            | FaultPlan::Churn { .. } => SlotVerdict::Clean,
        }
    }

    fn filters_edges(&self) -> bool {
        matches!(self.plan, FaultPlan::EdgeLoss { .. })
    }

    fn edge_alive(&self, slot: Slot, listener: NodeId, sender: NodeId) -> bool {
        match &self.plan {
            FaultPlan::EdgeLoss { p } => {
                self.unit(STREAM_EDGE, slot, listener as u64, sender as u64) >= *p
            }
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(plan: FaultPlan, n: usize) -> FaultState {
        FaultState::new(plan, 0xdead_beef, n)
    }

    #[test]
    fn plan_names_are_stable() {
        assert_eq!(FaultPlan::None.name(), "none");
        assert_eq!(FaultPlan::SlotLoss { p: 0.5 }.name(), "slot-loss");
        assert_eq!(FaultPlan::EdgeLoss { p: 0.5 }.name(), "edge-loss");
        assert_eq!(FaultPlan::Crash { schedule: vec![] }.name(), "crash");
        assert_eq!(
            FaultPlan::Jammer {
                budget: 1,
                strategy: JammerStrategy::Reactive
            }
            .name(),
            "jammer"
        );
        assert_eq!(
            FaultPlan::Churn {
                leave: vec![],
                join: vec![]
            }
            .name(),
            "churn"
        );
        assert!(!FaultPlan::None.is_active());
        assert!(FaultPlan::SlotLoss { p: 0.0 }.is_active());
    }

    #[test]
    fn slot_loss_draws_are_pure_functions_of_the_slot() {
        let mut a = state(FaultPlan::SlotLoss { p: 0.5 }, 4);
        let mut b = state(FaultPlan::SlotLoss { p: 0.5 }, 4);
        // b queries a scrambled subset in a different order: verdicts
        // must agree wherever both looked.
        let a_verdicts: Vec<SlotVerdict> = (0..100).map(|t| a.verdict(t, true)).collect();
        for t in (0..100).rev().step_by(3) {
            assert_eq!(b.verdict(t, false), a_verdicts[t as usize]);
        }
        let lost = a_verdicts
            .iter()
            .filter(|v| **v == SlotVerdict::Lost)
            .count();
        assert!((20..=80).contains(&lost), "p=0.5 lost {lost}/100");
    }

    #[test]
    fn zero_probability_plans_never_fire() {
        let mut s = state(FaultPlan::SlotLoss { p: 0.0 }, 4);
        assert!((0..200).all(|t| s.verdict(t, true) == SlotVerdict::Clean));
        let e = state(FaultPlan::EdgeLoss { p: 0.0 }, 4);
        assert!((0..200).all(|t| e.edge_alive(t, 1, 2)));
        let mut j = state(
            FaultPlan::Jammer {
                budget: u64::MAX,
                strategy: JammerStrategy::Random { p: 0.0 },
            },
            4,
        );
        assert!((0..200).all(|t| j.verdict(t, true) == SlotVerdict::Clean));
    }

    #[test]
    fn certain_probability_plans_always_fire() {
        let mut s = state(FaultPlan::SlotLoss { p: 1.0 }, 4);
        assert!((0..200).all(|t| s.verdict(t, false) == SlotVerdict::Lost));
        let e = state(FaultPlan::EdgeLoss { p: 1.0 }, 4);
        assert!((0..200).all(|t| !e.edge_alive(t, 1, 2)));
    }

    #[test]
    fn crash_events_apply_in_slot_order_and_catch_up_after_skips() {
        let mut s = state(
            FaultPlan::Crash {
                schedule: vec![(10, 2), (5, 0)],
            },
            4,
        );
        s.begin_slot(0);
        assert!(!s.any_down());
        s.begin_slot(5);
        assert!(s.is_down(0) && !s.is_down(2));
        // A batch-skip jumped the clock past slot 10: the next simulated
        // slot catches up on everything due.
        s.begin_slot(100);
        assert!(s.is_down(0) && s.is_down(2));
        assert_eq!(s.down().count_ones(), 2);
    }

    #[test]
    fn churn_leave_then_join_restores_the_device() {
        let mut s = state(
            FaultPlan::Churn {
                leave: vec![(3, 1)],
                join: vec![(7, 1)],
            },
            4,
        );
        s.begin_slot(3);
        assert!(s.is_down(1));
        s.begin_slot(6);
        assert!(s.is_down(1));
        s.begin_slot(7);
        assert!(!s.is_down(1));
        assert!(!s.any_down());
    }

    #[test]
    fn same_slot_leave_and_join_nets_to_up() {
        let mut s = state(
            FaultPlan::Churn {
                leave: vec![(4, 2)],
                join: vec![(4, 2)],
            },
            4,
        );
        s.begin_slot(4);
        assert!(!s.is_down(2), "Down sorts before Up at equal slots");
        assert!(
            s.newly_down().is_empty(),
            "a netted leave+join is not a crash transition"
        );
    }

    #[test]
    fn newly_down_reports_each_transition_once() {
        let mut s = state(
            FaultPlan::Crash {
                schedule: vec![(5, 0), (10, 2)],
            },
            4,
        );
        s.begin_slot(0);
        assert!(s.newly_down().is_empty());
        s.begin_slot(5);
        assert_eq!(s.newly_down(), &[0]);
        s.begin_slot(6);
        assert!(s.newly_down().is_empty(), "transitions report only once");
        // A batch skip past slot 10 surfaces the due transition at the
        // next simulated slot.
        s.begin_slot(100);
        assert_eq!(s.newly_down(), &[2]);
        assert_eq!(s.down_count(), 2);
    }

    #[test]
    fn jammer_budget_depletes_only_on_jammed_slots() {
        let mut s = state(
            FaultPlan::Jammer {
                budget: 2,
                strategy: JammerStrategy::Periodic { period: 3 },
            },
            4,
        );
        let verdicts: Vec<SlotVerdict> = (0..9).map(|t| s.verdict(t, true)).collect();
        assert_eq!(verdicts[0], SlotVerdict::Jammed);
        assert_eq!(verdicts[1], SlotVerdict::Clean);
        assert_eq!(verdicts[3], SlotVerdict::Jammed);
        // Budget exhausted: slot 6 would match the period but stays clean.
        assert_eq!(verdicts[6], SlotVerdict::Clean);
        assert_eq!(s.jam_budget(), 0);
    }

    #[test]
    fn reactive_jammer_only_spends_on_transmissions() {
        let mut s = state(
            FaultPlan::Jammer {
                budget: 10,
                strategy: JammerStrategy::Reactive,
            },
            4,
        );
        assert_eq!(s.verdict(0, false), SlotVerdict::Clean);
        assert_eq!(s.jam_budget(), 10);
        assert_eq!(s.verdict(1, true), SlotVerdict::Jammed);
        assert_eq!(s.jam_budget(), 9);
    }

    #[test]
    fn edge_loss_is_directional_and_per_pair() {
        let e = state(FaultPlan::EdgeLoss { p: 0.5 }, 64);
        let mut alive = 0;
        let mut asymmetric = 0;
        for t in 0..50 {
            for u in 0..8 {
                for v in 0..8 {
                    if u == v {
                        continue;
                    }
                    if e.edge_alive(t, u, v) {
                        alive += 1;
                    }
                    if e.edge_alive(t, u, v) != e.edge_alive(t, v, u) {
                        asymmetric += 1;
                    }
                }
            }
        }
        let total = 50 * 8 * 7;
        assert!(
            (total / 3..=2 * total / 3).contains(&alive),
            "alive {alive}/{total}"
        );
        assert!(asymmetric > 0, "directional losses must be independent");
    }

    #[test]
    fn jam_feedback_per_model() {
        assert_eq!(jam_feedback::<u32>(Model::NoCd), Feedback::Silence);
        assert_eq!(jam_feedback::<u32>(Model::Cd), Feedback::Noise);
        assert_eq!(jam_feedback::<u32>(Model::CdStar), Feedback::Noise);
        assert_eq!(jam_feedback::<u32>(Model::Local), Feedback::Noise);
        assert_eq!(jam_feedback::<u32>(Model::Beep), Feedback::Beep);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_probability_above_one() {
        state(FaultPlan::SlotLoss { p: 1.5 }, 4);
    }

    #[test]
    #[should_panic(expected = ">= n")]
    fn rejects_out_of_range_device() {
        state(
            FaultPlan::Crash {
                schedule: vec![(0, 9)],
            },
            4,
        );
    }
}
