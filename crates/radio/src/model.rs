//! Collision models and channel resolution.

use crate::bitset::BitSet;
use crate::NodeId;

/// The collision-detection model governing what listeners hear (paper §1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// No collision detection: 0 or ≥2 transmitting neighbors are both heard
    /// as silence.
    NoCd,
    /// Collision detection: 0 transmitters → silence, ≥2 → noise.
    Cd,
    /// Like CD, but with ≥2 transmitters the listener receives an arbitrary
    /// one of the messages (the paper's CD\* model, §6.3). This simulator
    /// deterministically delivers the lowest-id sender's message.
    CdStar,
    /// Every listener hears every message transmitted by any neighbor; no
    /// collisions (the paper's LOCAL-with-energy model).
    Local,
    /// Content-free beeping: a listener learns only whether ≥1 neighbor
    /// transmitted (§6.3 footnote).
    Beep,
}

impl Model {
    /// All models, in the order they appear in the paper's Table 1.
    pub const ALL: [Model; 5] = [
        Model::NoCd,
        Model::Cd,
        Model::CdStar,
        Model::Local,
        Model::Beep,
    ];

    /// A short human-readable name (`"No-CD"`, `"CD"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Model::NoCd => "No-CD",
            Model::Cd => "CD",
            Model::CdStar => "CD*",
            Model::Local => "LOCAL",
            Model::Beep => "Beep",
        }
    }
}

impl core::fmt::Display for Model {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a device chooses to do in a slot.
///
/// `Send` and `Listen` each cost one unit of energy; `Idle` is free;
/// `SendListen` (full duplex, used by the Theorem 2 reduction and the §8
/// path algorithm's analysis model) costs two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<M> {
    /// Stay asleep; costs nothing, and yields no feedback.
    Idle,
    /// Transmit `M`; the sender gets no feedback.
    Send(M),
    /// Listen to the channel; feedback per the collision model.
    Listen,
    /// Transmit and listen simultaneously (full duplex).
    SendListen(M),
}

impl<M> Action<M> {
    /// The energy this action costs (0, 1, or 2).
    pub fn energy(&self) -> u64 {
        match self {
            Action::Idle => 0,
            Action::Send(_) | Action::Listen => 1,
            Action::SendListen(_) => 2,
        }
    }

    /// The message being transmitted, if any.
    pub fn message(&self) -> Option<&M> {
        match self {
            Action::Send(m) | Action::SendListen(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this action listens.
    pub fn listens(&self) -> bool {
        matches!(self, Action::Listen | Action::SendListen(_))
    }
}

/// What a listening device hears at the end of a slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Feedback<M> {
    /// The silence signal λS (no transmitting neighbor — or, under No-CD, a
    /// collision indistinguishable from it).
    Silence,
    /// The noise signal λN (≥2 transmitting neighbors, CD only).
    Noise,
    /// Exactly one message received (or the arbitrary pick under CD\*).
    One(M),
    /// All messages from all transmitting neighbors (LOCAL only), ordered by
    /// sender id.
    Many(Vec<M>),
    /// At least one neighbor beeped (Beep model only).
    Beep,
}

impl<M> Feedback<M> {
    /// The single received message, if the feedback carries exactly one.
    pub fn message(&self) -> Option<&M> {
        match self {
            Feedback::One(m) => Some(m),
            Feedback::Many(v) if v.len() == 1 => v.first(),
            _ => None,
        }
    }

    /// Whether the feedback indicates ≥1 transmitting neighbor.
    ///
    /// Under No-CD this is only `true` when a message was received; silence
    /// from a collision is indistinguishable from true silence, faithfully
    /// to the model.
    pub fn heard_activity(&self) -> bool {
        !matches!(self, Feedback::Silence)
    }
}

/// Resolves what one listener hears, given its transmitting neighbors.
///
/// `senders` must iterate the listener's transmitting neighbors in
/// ascending `NodeId` order (as [`crate::Graph::neighbors`] does). The
/// listener itself is never among them: a device does not hear itself.
pub fn resolve<M: Clone>(model: Model, senders: impl Iterator<Item = (NodeId, M)>) -> Feedback<M> {
    match model {
        Model::Local => {
            let msgs: Vec<M> = senders.map(|(_, m)| m).collect();
            if msgs.is_empty() {
                Feedback::Silence
            } else {
                Feedback::Many(msgs)
            }
        }
        Model::Beep => {
            if senders.count() == 0 {
                Feedback::Silence
            } else {
                Feedback::Beep
            }
        }
        Model::NoCd | Model::Cd | Model::CdStar => {
            let mut iter = senders;
            match (iter.next(), iter.next()) {
                (None, _) => Feedback::Silence,
                (Some((_, m)), None) => Feedback::One(m),
                (Some((_, first)), Some(_)) => match model {
                    Model::NoCd => Feedback::Silence,
                    Model::Cd => Feedback::Noise,
                    Model::CdStar => Feedback::One(first),
                    _ => unreachable!(),
                },
            }
        }
    }
}

/// Resolves one listener's feedback against the packed transmitting set.
///
/// `row` is the listener's sorted CSR neighbor row; `tx` marks the slot's
/// transmitting devices; `sending[u]` is the 1-based index of `u` in
/// `senders` (0 when not transmitting). The listener hears a message iff
/// exactly one neighbor bit is set in `tx`; the 0/1/many count maps to
/// model feedback exactly as [`resolve`] does, but the scan early-exits
/// per model: CD\* and Beep stop at the first set bit (sorted rows make it
/// the lowest-id sender), No-CD and CD at the second, and only LOCAL walks
/// the full row to collect every message. Messages are cloned only on
/// actual delivery.
pub(crate) fn resolve_row<M: Clone>(
    model: Model,
    row: &[u32],
    tx: &BitSet,
    sending: &[u32],
    senders: &[(NodeId, M)],
) -> Feedback<M> {
    let msg = |u: u32| senders[sending[u as usize] as usize - 1].1.clone();
    match model {
        Model::Local => {
            let msgs: Vec<M> = row
                .iter()
                .filter(|&&u| tx.contains(u as usize))
                .map(|&u| msg(u))
                .collect();
            if msgs.is_empty() {
                Feedback::Silence
            } else {
                Feedback::Many(msgs)
            }
        }
        Model::Beep => {
            if row.iter().any(|&u| tx.contains(u as usize)) {
                Feedback::Beep
            } else {
                Feedback::Silence
            }
        }
        Model::CdStar => match row.iter().find(|&&u| tx.contains(u as usize)) {
            // Rows are sorted, so the first transmitting neighbor found is
            // the lowest-id one — CD*'s pick whether it is alone or not.
            Some(&u) => Feedback::One(msg(u)),
            None => Feedback::Silence,
        },
        Model::NoCd | Model::Cd => {
            let mut first: Option<u32> = None;
            for &u in row {
                if tx.contains(u as usize) {
                    if first.is_some() {
                        return match model {
                            Model::NoCd => Feedback::Silence,
                            _ => Feedback::Noise,
                        };
                    }
                    first = Some(u);
                }
            }
            match first {
                Some(u) => Feedback::One(msg(u)),
                None => Feedback::Silence,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn senders<'a>(
        ms: &'a [(NodeId, &'static str)],
    ) -> impl Iterator<Item = (NodeId, &'static str)> + 'a {
        ms.iter().copied()
    }

    #[test]
    fn nocd_semantics() {
        assert_eq!(resolve(Model::NoCd, senders(&[])), Feedback::Silence);
        assert_eq!(
            resolve(Model::NoCd, senders(&[(3, "a")])),
            Feedback::One("a")
        );
        assert_eq!(
            resolve(Model::NoCd, senders(&[(3, "a"), (5, "b")])),
            Feedback::Silence
        );
    }

    #[test]
    fn cd_semantics() {
        assert_eq!(resolve(Model::Cd, senders(&[])), Feedback::Silence);
        assert_eq!(resolve(Model::Cd, senders(&[(3, "a")])), Feedback::One("a"));
        assert_eq!(
            resolve(Model::Cd, senders(&[(3, "a"), (5, "b")])),
            Feedback::Noise
        );
    }

    #[test]
    fn cdstar_picks_lowest_id() {
        assert_eq!(
            resolve(Model::CdStar, senders(&[(3, "a"), (5, "b")])),
            Feedback::One("a")
        );
    }

    #[test]
    fn local_hears_everything() {
        assert_eq!(
            resolve(Model::Local, senders(&[(3, "a"), (5, "b")])),
            Feedback::Many(vec!["a", "b"])
        );
        assert_eq!(resolve(Model::Local, senders(&[])), Feedback::Silence);
    }

    #[test]
    fn beep_is_content_free() {
        assert_eq!(resolve(Model::Beep, senders(&[(1, "x")])), Feedback::Beep);
        assert_eq!(
            resolve(Model::Beep, senders(&[(1, "x"), (2, "y")])),
            Feedback::Beep
        );
        assert_eq!(resolve(Model::Beep, senders(&[])), Feedback::Silence);
    }

    #[test]
    fn action_energy() {
        assert_eq!(Action::<u8>::Idle.energy(), 0);
        assert_eq!(Action::Send(1u8).energy(), 1);
        assert_eq!(Action::<u8>::Listen.energy(), 1);
        assert_eq!(Action::SendListen(1u8).energy(), 2);
    }

    #[test]
    fn feedback_message_accessor() {
        assert_eq!(Feedback::One(7).message(), Some(&7));
        assert_eq!(Feedback::Many(vec![7]).message(), Some(&7));
        assert_eq!(Feedback::Many(vec![7, 8]).message(), None);
        assert_eq!(Feedback::<u8>::Silence.message(), None);
        assert_eq!(Feedback::<u8>::Noise.message(), None);
    }

    #[test]
    fn heard_activity() {
        assert!(!Feedback::<u8>::Silence.heard_activity());
        assert!(Feedback::<u8>::Noise.heard_activity());
        assert!(Feedback::One(1u8).heard_activity());
        assert!(Feedback::<u8>::Beep.heard_activity());
    }
    #[test]
    fn model_names_are_distinct() {
        let names: std::collections::HashSet<&str> = Model::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), Model::ALL.len());
        assert_eq!(format!("{}", Model::CdStar), "CD*");
    }

    #[test]
    fn resolve_row_agrees_with_iterator_resolve() {
        // Every subset of a 4-neighbor row, under every model, must match
        // the iterator-based reference resolver exactly.
        let row: Vec<u32> = vec![1, 2, 4, 7];
        for mask in 0u32..16 {
            let mut tx = BitSet::new(8);
            let mut sending = vec![0u32; 8];
            let senders: Vec<(NodeId, u32)> = row
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, &u)| (u as NodeId, 100 + u))
                .collect();
            for (i, &(v, _)) in senders.iter().enumerate() {
                sending[v] = i as u32 + 1;
                tx.insert(v);
            }
            for model in Model::ALL {
                let via_row = resolve_row(model, &row, &tx, &sending, &senders);
                let via_iter = resolve(model, senders.iter().cloned());
                assert_eq!(via_row, via_iter, "{model} mask {mask}");
            }
        }
    }

    #[test]
    fn action_message_accessor() {
        assert_eq!(Action::Send(5u8).message(), Some(&5));
        assert_eq!(Action::SendListen(5u8).message(), Some(&5));
        assert_eq!(Action::<u8>::Listen.message(), None);
        assert!(Action::<u8>::Listen.listens());
        assert!(Action::SendListen(5u8).listens());
        assert!(!Action::Send(5u8).listens());
    }
}
