//! Structured, zero-cost-when-off instrumentation for the engines.
//!
//! The paper's protocols are phase machines — epochs, down-sweep rounds,
//! cluster stages, decay sweeps — whose behavior used to be invisible
//! except through final [`crate::EnergyMeter`] aggregates (plus the old
//! stringified trace that existed solely to render Figure 1). This module
//! is the observability layer that replaces it:
//!
//! * **Slot events** ([`SlotEvent`]) — one binary-packed record per
//!   node-level channel event (tx / recv / silence / noise / jammed /
//!   lost / crashed), held in a bounded drop-oldest ring buffer. No
//!   `String` is ever formatted.
//! * **Per-slot counters** ([`SlotCounters`]) — an aggregate time series
//!   (transmitters, deliveries, collisions, loss/jam tallies, down
//!   devices) with one row per *simulated* slot, also ring-bounded.
//! * **Phase spans** ([`Span`]) — named, nestable intervals that
//!   algorithm code opens and closes around its protocol phases via
//!   [`Telemetry::span_enter`] / [`Telemetry::span_exit`] (or records
//!   retroactively via [`Telemetry::span_at`]).
//! * **Gauges** — named `(slot, value)` samples for algorithm-level
//!   curves the engine cannot see, e.g. the informed-set size.
//!
//! Recording is opt-in per engine ([`crate::Sim::enable_telemetry`]).
//! When it is off the engines hold no `Telemetry` at all — every hook is
//! a single `Option` check on a `None` — so instrumented and
//! uninstrumented runs are bit-identical in results, energy, clock, and
//! random streams (property-tested in `tests/prop_equivalence.rs`).
//!
//! Two exporters are provided: [`Telemetry::chrome_trace`] emits Chrome
//! trace-event JSON loadable in Perfetto (`ui.perfetto.dev`) with one
//! microsecond standing in for one slot, and [`Telemetry::to_jsonl`]
//! emits the full record set as compact JSON Lines for ad-hoc tooling.

use std::collections::VecDeque;

use crate::{NodeId, Slot};

/// Default capacity of the slot-event ring buffer (events beyond it drop
/// the oldest first; see [`Telemetry::events_dropped`]).
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 20;

/// Default capacity of the per-slot counter ring buffer.
pub const DEFAULT_COUNTER_CAPACITY: usize = 1 << 16;

/// Maximum number of recorded spans; spans past it are counted, not
/// stored ([`Telemetry::spans_dropped`]). Spans are per protocol phase,
/// not per slot, so real runs sit far below this.
pub const MAX_SPANS: usize = 1 << 16;

/// What one [`SlotEvent`] records about one node in one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The node transmitted (it may still be lost or jammed later in
    /// the same slot — those add separate events).
    Tx,
    /// The node listened and decoded at least one message.
    Recv,
    /// The node listened and heard silence.
    Silence,
    /// The node listened and heard noise (or a beep under Beep).
    Noise,
    /// The node listened into a jammed slot and heard channel garbage.
    Jammed,
    /// The node's transmission this slot was destroyed by a fault
    /// verdict (slot loss or jamming) — the per-slot view of
    /// `lost_sends`.
    Lost,
    /// The node went down (crashed or churned out) at this slot.
    Crashed,
}

impl EventKind {
    /// The stable lowercase name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Tx => "tx",
            EventKind::Recv => "recv",
            EventKind::Silence => "silence",
            EventKind::Noise => "noise",
            EventKind::Jammed => "jammed",
            EventKind::Lost => "lost",
            EventKind::Crashed => "crashed",
        }
    }

    fn from_bits(bits: u64) -> EventKind {
        match bits {
            0 => EventKind::Tx,
            1 => EventKind::Recv,
            2 => EventKind::Silence,
            3 => EventKind::Noise,
            4 => EventKind::Jammed,
            5 => EventKind::Lost,
            _ => EventKind::Crashed,
        }
    }

    fn to_bits(self) -> u64 {
        match self {
            EventKind::Tx => 0,
            EventKind::Recv => 1,
            EventKind::Silence => 2,
            EventKind::Noise => 3,
            EventKind::Jammed => 4,
            EventKind::Lost => 5,
            EventKind::Crashed => 6,
        }
    }
}

/// One binary-packed slot event: 16 bytes, no heap data.
///
/// The node id and kind share one word (`node << 3 | kind`), so a full
/// default ring holds a million events in 16 MiB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotEvent {
    /// The global slot the event happened in.
    pub slot: Slot,
    data: u64,
}

impl SlotEvent {
    fn new(slot: Slot, node: NodeId, kind: EventKind) -> SlotEvent {
        SlotEvent {
            slot,
            data: ((node as u64) << 3) | kind.to_bits(),
        }
    }

    /// The node the event concerns.
    pub fn node(&self) -> NodeId {
        (self.data >> 3) as NodeId
    }

    /// What happened.
    pub fn kind(&self) -> EventKind {
        EventKind::from_bits(self.data & 0b111)
    }
}

/// Aggregate counters for one simulated slot.
///
/// Skipped slots ([`crate::Sim::skip`]) produce no row — the series
/// covers exactly the slots the engine stepped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotCounters {
    /// The global slot number.
    pub slot: Slot,
    /// Participants offered a poll this slot (including masked-down
    /// devices).
    pub polled: u32,
    /// Devices that transmitted.
    pub tx: u32,
    /// Devices that listened.
    pub listeners: u32,
    /// Listeners that decoded at least one message.
    pub delivered: u32,
    /// Listeners that heard a collision (noise/beep).
    pub collisions: u32,
    /// Listeners that heard silence.
    pub silent: u32,
    /// Transmissions destroyed by a fault verdict this slot.
    pub lost: u32,
    /// Listeners that heard a jammed channel this slot.
    pub jammed: u32,
    /// Devices currently down (crashed or churned out).
    pub down: u32,
}

impl SlotCounters {
    /// Energy charged this slot: every transmitter and every listener
    /// pays one unit (a send+listen device pays both).
    pub fn energy(&self) -> u64 {
        self.tx as u64 + self.listeners as u64
    }
}

/// One named phase interval, in slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The phase name (a static label from the algorithm code).
    pub name: &'static str,
    /// First slot of the phase.
    pub start: Slot,
    /// One past the last slot of the phase; [`Slot::MAX`] while the
    /// span is still open.
    pub end: Slot,
    /// Nesting depth at the time the span was opened (0 = top level).
    pub depth: u32,
}

impl Span {
    /// Whether the span has not been closed yet.
    pub fn is_open(&self) -> bool {
        self.end == Slot::MAX
    }
}

/// One named gauge sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gauge {
    /// The slot the sample refers to.
    pub slot: Slot,
    /// The series name (a static label from the algorithm code).
    pub name: &'static str,
    /// The sampled value.
    pub value: f64,
}

/// The recording state behind an instrumented engine run.
///
/// Engines own one behind an `Option` (see
/// [`crate::Sim::enable_telemetry`]); algorithms reach it through the
/// engine's span/gauge forwarding methods, and callers pull it out with
/// [`crate::Sim::take_telemetry`] to export.
#[derive(Debug, Clone)]
pub struct Telemetry {
    events: VecDeque<SlotEvent>,
    events_cap: usize,
    events_dropped: u64,
    counters: VecDeque<SlotCounters>,
    counters_cap: usize,
    counters_dropped: u64,
    /// The row being filled for the slot currently stepping.
    current: SlotCounters,
    /// Whether `current` holds a begun-but-unflushed row.
    current_open: bool,
    spans: Vec<Span>,
    spans_dropped: u64,
    /// Indices of open spans in `spans` (`None` if that enter was
    /// dropped at capacity — the matching exit then balances silently).
    open: Vec<Option<usize>>,
    gauges: Vec<Gauge>,
    /// The largest slot seen, used to close still-open spans on export.
    last_slot: Slot,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A recorder with the default ring capacities.
    pub fn new() -> Telemetry {
        Telemetry::with_capacity(DEFAULT_EVENT_CAPACITY, DEFAULT_COUNTER_CAPACITY)
    }

    /// A recorder holding at most `events` slot events and `counters`
    /// per-slot rows (both drop-oldest once full).
    pub fn with_capacity(events: usize, counters: usize) -> Telemetry {
        Telemetry {
            events: VecDeque::new(),
            events_cap: events.max(1),
            events_dropped: 0,
            counters: VecDeque::new(),
            counters_cap: counters.max(1),
            counters_dropped: 0,
            current: SlotCounters::default(),
            current_open: false,
            spans: Vec::new(),
            spans_dropped: 0,
            open: Vec::new(),
            gauges: Vec::new(),
            last_slot: 0,
        }
    }

    /// Opens the counter row for `slot` with `polled` offered
    /// participants. Called by the engine once per simulated slot.
    pub fn begin_slot(&mut self, slot: Slot, polled: u32) {
        if self.current_open {
            self.flush_current();
        }
        self.current = SlotCounters {
            slot,
            polled,
            ..SlotCounters::default()
        };
        self.current_open = true;
        self.last_slot = self.last_slot.max(slot);
    }

    /// Flushes the current counter row. Called by the engine at the end
    /// of each simulated slot.
    pub fn end_slot(&mut self) {
        if self.current_open {
            self.flush_current();
        }
    }

    fn flush_current(&mut self) {
        if self.counters.len() == self.counters_cap {
            self.counters.pop_front();
            self.counters_dropped += 1;
        }
        self.counters.push_back(self.current);
        self.current_open = false;
    }

    fn push_event(&mut self, node: NodeId, kind: EventKind) {
        if self.events.len() == self.events_cap {
            self.events.pop_front();
            self.events_dropped += 1;
        }
        self.events
            .push_back(SlotEvent::new(self.current.slot, node, kind));
    }

    /// Records that `node` transmitted in the current slot.
    pub fn note_tx(&mut self, node: NodeId) {
        self.current.tx += 1;
        self.push_event(node, EventKind::Tx);
    }

    /// Records that listener `node` decoded at least one message.
    pub fn note_recv(&mut self, node: NodeId) {
        self.current.listeners += 1;
        self.current.delivered += 1;
        self.push_event(node, EventKind::Recv);
    }

    /// Records that listener `node` heard silence.
    pub fn note_silence(&mut self, node: NodeId) {
        self.current.listeners += 1;
        self.current.silent += 1;
        self.push_event(node, EventKind::Silence);
    }

    /// Records that listener `node` heard a collision (noise or beep).
    pub fn note_noise(&mut self, node: NodeId) {
        self.current.listeners += 1;
        self.current.collisions += 1;
        self.push_event(node, EventKind::Noise);
    }

    /// Records that listener `node` heard a jammed channel.
    pub fn note_jammed(&mut self, node: NodeId) {
        self.current.listeners += 1;
        self.current.jammed += 1;
        self.push_event(node, EventKind::Jammed);
    }

    /// Records that `node`'s transmission was destroyed by the slot's
    /// fault verdict.
    pub fn note_lost(&mut self, node: NodeId) {
        self.current.lost += 1;
        self.push_event(node, EventKind::Lost);
    }

    /// Records that `node` went down at the current slot.
    pub fn note_crashed(&mut self, node: NodeId) {
        self.push_event(node, EventKind::Crashed);
    }

    /// Sets the current slot's count of down devices.
    pub fn set_down(&mut self, down: u32) {
        self.current.down = down;
    }

    /// Opens a phase span named `name` at `start`. Spans nest: a later
    /// enter before this one's exit records a deeper span.
    pub fn span_enter(&mut self, name: &'static str, start: Slot) {
        self.last_slot = self.last_slot.max(start);
        let depth = self.open.len() as u32;
        if self.spans.len() >= MAX_SPANS {
            self.spans_dropped += 1;
            self.open.push(None);
            return;
        }
        self.open.push(Some(self.spans.len()));
        self.spans.push(Span {
            name,
            start,
            end: Slot::MAX,
            depth,
        });
    }

    /// Closes the innermost open span at `end`. A stray exit with no
    /// open span is ignored.
    pub fn span_exit(&mut self, end: Slot) {
        self.last_slot = self.last_slot.max(end);
        if let Some(Some(i)) = self.open.pop() {
            let span = &mut self.spans[i];
            span.end = end.max(span.start);
        }
    }

    /// Records an already-closed span retroactively, at the current
    /// nesting depth — for phases whose bounds are only known after the
    /// fact (e.g. per-sweep intervals inside one dense drive).
    pub fn span_at(&mut self, name: &'static str, start: Slot, end: Slot) {
        self.last_slot = self.last_slot.max(end);
        if self.spans.len() >= MAX_SPANS {
            self.spans_dropped += 1;
            return;
        }
        self.spans.push(Span {
            name,
            start,
            end: end.max(start),
            depth: self.open.len() as u32,
        });
    }

    /// Records one sample of the gauge series `name` at `slot` — e.g.
    /// the informed-set size after each relabeling round.
    pub fn record_gauge(&mut self, name: &'static str, slot: Slot, value: f64) {
        self.last_slot = self.last_slot.max(slot);
        self.gauges.push(Gauge { slot, name, value });
    }

    /// The retained slot events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = SlotEvent> + '_ {
        self.events.iter().copied()
    }

    /// The number of retained slot events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// How many events the ring dropped (oldest-first) over capacity.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// The retained per-slot counter rows, oldest first.
    pub fn counters(&self) -> impl Iterator<Item = SlotCounters> + '_ {
        self.counters.iter().copied()
    }

    /// How many counter rows the ring dropped over capacity.
    pub fn counters_dropped(&self) -> u64 {
        self.counters_dropped
    }

    /// All recorded spans, in open order. Still-open spans have
    /// `end == Slot::MAX` (see [`Span::is_open`]).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// How many spans were dropped at [`MAX_SPANS`].
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    /// All recorded gauge samples, in record order.
    pub fn gauges(&self) -> &[Gauge] {
        &self.gauges
    }

    /// The events of kind `kind`, oldest first.
    pub fn events_of(&self, kind: EventKind) -> impl Iterator<Item = SlotEvent> + '_ {
        self.events
            .iter()
            .copied()
            .filter(move |e| e.kind() == kind)
    }

    /// The largest slot any record refers to.
    pub fn last_slot(&self) -> Slot {
        self.last_slot
    }

    /// Exports everything as Chrome trace-event JSON — load the string
    /// (saved as a `.json` file) in Perfetto or `chrome://tracing`.
    ///
    /// Mapping: one trace microsecond stands for one slot. Spans become
    /// complete (`"ph": "X"`) events on one track, so nesting renders as
    /// stacked intervals; per-slot counter rows and gauges become
    /// counter (`"ph": "C"`) series; fault events (lost / jammed /
    /// crashed) become instants (`"ph": "i"`) so a faulted run's damage
    /// is visible slot-by-slot. Tx/recv/silence/noise events are left to
    /// the counter series (and to [`Telemetry::to_jsonl`]) — emitting an
    /// instant per node-slot would dwarf the rest of the trace.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"ebc-sim\"}}",
        );
        for span in &self.spans {
            let end = if span.is_open() {
                self.last_slot.max(span.start)
            } else {
                span.end
            };
            let dur = (end - span.start).max(1);
            out.push_str(&format!(
                ",{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{},\
                 \"dur\":{},\"pid\":0,\"tid\":0}}",
                escape(span.name),
                span.start,
                dur
            ));
        }
        for row in &self.counters {
            out.push_str(&format!(
                ",{{\"name\":\"slots\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\
                 \"tx\":{},\"listeners\":{},\"delivered\":{},\"collisions\":{},\
                 \"silent\":{},\"lost\":{},\"jammed\":{},\"down\":{}}}}}",
                row.slot,
                row.tx,
                row.listeners,
                row.delivered,
                row.collisions,
                row.silent,
                row.lost,
                row.jammed,
                row.down
            ));
        }
        for g in &self.gauges {
            out.push_str(&format!(
                ",{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\
                 \"args\":{{\"{}\":{}}}}}",
                escape(g.name),
                g.slot,
                escape(g.name),
                json_num(g.value)
            ));
        }
        for e in &self.events {
            let kind = e.kind();
            if matches!(
                kind,
                EventKind::Lost | EventKind::Jammed | EventKind::Crashed
            ) {
                out.push_str(&format!(
                    ",{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":0,\
                     \"s\":\"g\",\"args\":{{\"node\":{}}}}}",
                    kind.name(),
                    e.slot,
                    e.node()
                ));
            }
        }
        out.push_str("]}");
        out
    }

    /// Exports everything as JSON Lines: one `meta` line (drop tallies),
    /// then one line per span, counter row, gauge sample, and slot event
    /// — the complete record set, including the per-node events the
    /// Chrome exporter folds into counters.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"meta\",\"events_dropped\":{},\"counters_dropped\":{},\
             \"spans_dropped\":{},\"last_slot\":{}}}\n",
            self.events_dropped, self.counters_dropped, self.spans_dropped, self.last_slot
        ));
        for span in &self.spans {
            out.push_str(&format!(
                "{{\"type\":\"span\",\"name\":\"{}\",\"start\":{},\"end\":{},\
                 \"depth\":{}}}\n",
                escape(span.name),
                span.start,
                if span.is_open() {
                    self.last_slot.max(span.start)
                } else {
                    span.end
                },
                span.depth
            ));
        }
        for row in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counters\",\"slot\":{},\"polled\":{},\"tx\":{},\
                 \"listeners\":{},\"delivered\":{},\"collisions\":{},\"silent\":{},\
                 \"lost\":{},\"jammed\":{},\"down\":{}}}\n",
                row.slot,
                row.polled,
                row.tx,
                row.listeners,
                row.delivered,
                row.collisions,
                row.silent,
                row.lost,
                row.jammed,
                row.down
            ));
        }
        for g in &self.gauges {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"slot\":{},\"value\":{}}}\n",
                escape(g.name),
                g.slot,
                json_num(g.value)
            ));
        }
        for e in &self.events {
            out.push_str(&format!(
                "{{\"type\":\"event\",\"slot\":{},\"node\":{},\"kind\":\"{}\"}}\n",
                e.slot,
                e.node(),
                e.kind().name()
            ));
        }
        out
    }
}

/// Escapes a label for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    if s.chars().all(|c| c != '"' && c != '\\' && c >= ' ') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if c < ' ' => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a gauge value as a JSON number (non-finite values, which no
/// recorder produces in practice, degrade to `0`).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pack_node_and_kind() {
        let e = SlotEvent::new(42, 123_456, EventKind::Jammed);
        assert_eq!(e.slot, 42);
        assert_eq!(e.node(), 123_456);
        assert_eq!(e.kind(), EventKind::Jammed);
        for kind in [
            EventKind::Tx,
            EventKind::Recv,
            EventKind::Silence,
            EventKind::Noise,
            EventKind::Jammed,
            EventKind::Lost,
            EventKind::Crashed,
        ] {
            assert_eq!(SlotEvent::new(0, 7, kind).kind(), kind);
            assert_eq!(EventKind::from_bits(kind.to_bits()), kind);
        }
    }

    #[test]
    fn counters_aggregate_per_slot() {
        let mut t = Telemetry::new();
        t.begin_slot(3, 5);
        t.note_tx(0);
        t.note_tx(1);
        t.note_recv(2);
        t.note_noise(3);
        t.note_silence(4);
        t.end_slot();
        let rows: Vec<_> = t.counters().collect();
        assert_eq!(rows.len(), 1);
        let row = rows[0];
        assert_eq!(row.slot, 3);
        assert_eq!(row.polled, 5);
        assert_eq!(row.tx, 2);
        assert_eq!(row.listeners, 3);
        assert_eq!(row.delivered, 1);
        assert_eq!(row.collisions, 1);
        assert_eq!(row.silent, 1);
        assert_eq!(row.energy(), 5);
        assert_eq!(t.event_count(), 5);
    }

    #[test]
    fn event_ring_drops_oldest_first() {
        let mut t = Telemetry::with_capacity(3, 2);
        for slot in 0..5 {
            t.begin_slot(slot, 1);
            t.note_tx(slot as NodeId);
            t.end_slot();
        }
        assert_eq!(t.events_dropped(), 2);
        let slots: Vec<Slot> = t.events().map(|e| e.slot).collect();
        assert_eq!(slots, vec![2, 3, 4], "oldest events dropped first");
        assert_eq!(t.counters_dropped(), 3);
        let rows: Vec<Slot> = t.counters().map(|r| r.slot).collect();
        assert_eq!(rows, vec![3, 4]);
    }

    #[test]
    fn spans_nest_and_close_in_order() {
        let mut t = Telemetry::new();
        t.span_enter("outer", 0);
        t.span_enter("inner", 2);
        t.span_exit(5);
        t.span_exit(9);
        t.span_at("retro", 3, 4);
        assert_eq!(t.spans().len(), 3);
        let [outer, inner, retro] = [t.spans()[0], t.spans()[1], t.spans()[2]];
        assert_eq!(
            (outer.name, outer.start, outer.end, outer.depth),
            ("outer", 0, 9, 0)
        );
        assert_eq!(
            (inner.name, inner.start, inner.end, inner.depth),
            ("inner", 2, 5, 1)
        );
        assert_eq!(
            (retro.name, retro.start, retro.end, retro.depth),
            ("retro", 3, 4, 0)
        );
        assert!(!outer.is_open());
        // A stray exit is ignored.
        t.span_exit(10);
        assert_eq!(t.spans().len(), 3);
    }

    #[test]
    fn open_spans_export_to_the_last_seen_slot() {
        let mut t = Telemetry::new();
        t.span_enter("unfinished", 4);
        t.record_gauge("informed", 20, 7.0);
        assert!(t.spans()[0].is_open());
        let trace = t.chrome_trace();
        // Exported with dur = last_slot - start, not u64::MAX.
        assert!(trace.contains("\"name\":\"unfinished\""));
        assert!(trace.contains("\"dur\":16"));
    }

    #[test]
    fn jsonl_lists_every_record() {
        let mut t = Telemetry::new();
        t.span_enter("phase", 0);
        t.begin_slot(0, 2);
        t.note_tx(0);
        t.note_lost(0);
        t.note_jammed(1);
        t.end_slot();
        t.span_exit(1);
        t.record_gauge("informed", 1, 2.0);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        // meta + 1 span + 1 counters + 1 gauge + 3 events.
        assert_eq!(lines.len(), 7);
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(jsonl.contains("\"kind\":\"lost\""));
        assert!(jsonl.contains("\"kind\":\"jammed\""));
        assert!(jsonl.contains("\"name\":\"informed\""));
    }

    #[test]
    fn chrome_trace_emits_fault_instants_but_not_tx_instants() {
        let mut t = Telemetry::new();
        t.begin_slot(0, 2);
        t.note_tx(0);
        t.note_crashed(1);
        t.end_slot();
        let trace = t.chrome_trace();
        assert!(trace.contains("\"name\":\"crashed\""));
        assert!(!trace.contains("\"name\":\"tx\""), "tx stays in counters");
        assert!(trace.contains("\"name\":\"slots\""));
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\u000ab");
    }
}
