//! The phase-composed simulation engine.

use std::sync::Arc;

use crate::model::{resolve, Action, Feedback, Model};
use crate::trace::{Trace, TraceKind};
use crate::{EnergyMeter, Graph, NodeId, Slot};

/// Per-slot behavior of the devices taking part in one primitive.
///
/// A *primitive* is a contiguous block of slots with a fixed participant set
/// (e.g. one SR-communication instance). The engine calls [`act`] for every
/// participant at the start of each slot, resolves the channel, then calls
/// [`feedback`] on every participant that listened.
///
/// [`act`]: SlotBehavior::act
/// [`feedback`]: SlotBehavior::feedback
pub trait SlotBehavior<M> {
    /// The action of device `v` in local slot `t` (0-based within the
    /// primitive).
    fn act(&mut self, v: NodeId, t: u64) -> Action<M>;

    /// Delivers channel feedback to `v` for local slot `t`. Called only if
    /// `v` listened in that slot.
    fn feedback(&mut self, v: NodeId, t: u64, fb: Feedback<M>);
}

/// Builds a [`SlotBehavior`] from two closures — handy in tests.
pub fn from_fns<M, A, F>(act: A, feedback: F) -> impl SlotBehavior<M>
where
    A: FnMut(NodeId, u64) -> Action<M>,
    F: FnMut(NodeId, u64, Feedback<M>),
{
    struct FnBehavior<A, F>(A, F);
    impl<M, A, F> SlotBehavior<M> for FnBehavior<A, F>
    where
        A: FnMut(NodeId, u64) -> Action<M>,
        F: FnMut(NodeId, u64, Feedback<M>),
    {
        fn act(&mut self, v: NodeId, t: u64) -> Action<M> {
            (self.0)(v, t)
        }
        fn feedback(&mut self, v: NodeId, t: u64, fb: Feedback<M>) {
            (self.1)(v, t, fb)
        }
    }
    FnBehavior(act, feedback)
}

/// A synchronous radio network simulation with a global slot clock.
///
/// Algorithms drive the simulation as a sequence of primitives via
/// [`Sim::run`], interleaved with [`Sim::skip`] for slot ranges in which the
/// algorithm's schedule provably keeps every device idle. Energy is metered
/// exactly; time is the global clock.
///
/// The master `seed` is exposed so algorithm implementations can derive
/// per-node randomness with [`crate::rng`]; the engine itself is
/// deterministic.
#[derive(Debug)]
pub struct Sim {
    graph: Arc<Graph>,
    model: Model,
    clock: Slot,
    meter: EnergyMeter,
    trace: Option<Trace>,
    seed: u64,
    /// Scratch: per-node index+1 into the current slot's sender list.
    sending: Vec<u32>,
}

impl Sim {
    /// A fresh simulation over `graph` under `model` with master `seed`.
    ///
    /// Accepts either an owned [`Graph`] or an [`Arc<Graph>`]; parallel seed
    /// sweeps pass `Arc::clone`s of one shared graph so the CSR arrays are
    /// never deep-copied per seed.
    pub fn new(graph: impl Into<Arc<Graph>>, model: Model, seed: u64) -> Self {
        let graph = graph.into();
        let n = graph.n();
        Sim {
            graph,
            model,
            clock: 0,
            meter: EnergyMeter::new(n),
            trace: None,
            seed,
            sending: vec![0; n],
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The shared handle to the underlying graph (cheap to clone; useful
    /// for spawning sub-engines over the same topology).
    pub fn graph_arc(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The collision model.
    pub fn model(&self) -> Model {
        self.model
    }

    /// The master seed for deriving per-node randomness.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The current global slot.
    pub fn now(&self) -> Slot {
        self.clock
    }

    /// The energy meter.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Advances the clock over `slots` slots in which every device idles.
    ///
    /// Idling is free, so no energy is charged; the meter counts the
    /// batch-skipped slots (`idle_skipped`) so reports can show how much of
    /// the clock was never simulated slot-by-slot.
    pub fn skip(&mut self, slots: u64) {
        self.clock += slots;
        self.meter.note_skip(slots);
    }

    /// Folds a sub-engine's [`EnergyMeter`] into this simulation's meter —
    /// for algorithms that delegate a phase to an [`crate::EventEngine`]
    /// over the same graph. The caller advances the clock with [`skip`].
    ///
    /// # Panics
    ///
    /// Panics if the meters track different device counts.
    ///
    /// [`skip`]: Sim::skip
    pub fn absorb_meter(&mut self, other: &EnergyMeter) {
        self.meter.merge(other);
    }

    /// Starts recording a [`Trace`] of all subsequent slots.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::new());
    }

    /// The trace recorded so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Runs one primitive: `slots` slots in which exactly `participants`
    /// may act (all other devices idle).
    ///
    /// `participants` must not contain duplicates.
    ///
    /// # Panics
    ///
    /// Panics if a participant id is out of range.
    pub fn run<M, B>(&mut self, participants: &[NodeId], slots: u64, behavior: &mut B)
    where
        M: Clone + core::fmt::Debug,
        B: SlotBehavior<M>,
    {
        debug_assert!(
            {
                let mut seen = participants.to_vec();
                seen.sort_unstable();
                seen.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate participants"
        );
        let mut senders: Vec<(NodeId, M)> = Vec::new();
        let mut listeners: Vec<NodeId> = Vec::new();
        for t in 0..slots {
            self.step_slot(participants, t, behavior, &mut senders, &mut listeners);
        }
    }

    /// Runs one primitive of `slots` slots under a *sparse public
    /// schedule*: `schedule` names, per possibly-active local slot, the
    /// only devices that may act; every unlisted slot is provably idle for
    /// all devices and advances the clock in one batch (the [`skip`] path),
    /// never polling any behavior.
    ///
    /// This is the engine-level batching that keeps schedules with long
    /// idle stretches — Theorem 27's per-ID reserved intervals, TDMA frames
    /// — from costing wall-clock proportional to their slot count: cost is
    /// `O(Σ |scheduled participants|)`, not `O(devices × slots)`.
    ///
    /// Scheduled slots must be strictly increasing and `< slots`; a
    /// device listed in a slot may still act [`Action::Idle`] there.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is unsorted, exceeds `slots`, or lists a
    /// duplicate participant within one slot.
    ///
    /// [`skip`]: Sim::skip
    pub fn run_scheduled<M, B>(
        &mut self,
        schedule: &[(u64, Vec<NodeId>)],
        slots: u64,
        behavior: &mut B,
    ) where
        M: Clone + core::fmt::Debug,
        B: SlotBehavior<M>,
    {
        let mut senders: Vec<(NodeId, M)> = Vec::new();
        let mut listeners: Vec<NodeId> = Vec::new();
        let mut next = 0u64;
        for (t, participants) in schedule {
            assert!(
                *t >= next,
                "schedule slots must be strictly increasing (slot {t} after {next})"
            );
            assert!(*t < slots, "scheduled slot {t} outside 0..{slots}");
            debug_assert!(
                {
                    let mut seen = participants.to_vec();
                    seen.sort_unstable();
                    seen.windows(2).all(|w| w[0] != w[1])
                },
                "duplicate participants in slot {t}"
            );
            self.skip(t - next);
            self.step_slot(participants, *t, behavior, &mut senders, &mut listeners);
            next = t + 1;
        }
        self.skip(slots - next);
    }

    /// Simulates one slot (local slot number `t`) for `participants`,
    /// advancing the clock by one. `senders`/`listeners` are caller-owned
    /// scratch so multi-slot drivers reuse the allocations.
    fn step_slot<M, B>(
        &mut self,
        participants: &[NodeId],
        t: u64,
        behavior: &mut B,
        senders: &mut Vec<(NodeId, M)>,
        listeners: &mut Vec<NodeId>,
    ) where
        M: Clone + core::fmt::Debug,
        B: SlotBehavior<M>,
    {
        senders.clear();
        listeners.clear();
        let now = self.clock;
        for &v in participants {
            let action = behavior.act(v, t);
            match &action {
                Action::Idle => {}
                Action::Send(m) => {
                    self.meter.charge_send(v, now);
                    if let Some(tr) = &mut self.trace {
                        tr.push(now, v, TraceKind::Send(format!("{m:?}")));
                    }
                    senders.push((v, m.clone()));
                }
                Action::Listen => {
                    self.meter.charge_listen(v, now);
                    listeners.push(v);
                }
                Action::SendListen(m) => {
                    self.meter.charge_send(v, now);
                    self.meter.charge_listen(v, now);
                    if let Some(tr) = &mut self.trace {
                        tr.push(now, v, TraceKind::Send(format!("{m:?}")));
                    }
                    senders.push((v, m.clone()));
                    listeners.push(v);
                }
            }
        }
        for (i, (v, _)) in senders.iter().enumerate() {
            self.sending[*v] = i as u32 + 1;
        }
        for &v in listeners.iter() {
            let fb = resolve(
                self.model,
                self.graph.neighbors(v).filter_map(|u| {
                    let idx = self.sending[u];
                    (idx != 0).then(|| (u, senders[idx as usize - 1].1.clone()))
                }),
            );
            if let Some(tr) = &mut self.trace {
                let kind = match &fb {
                    Feedback::Silence => TraceKind::HeardSilence,
                    Feedback::Noise | Feedback::Beep => TraceKind::HeardNoise,
                    Feedback::One(m) => TraceKind::Recv(format!("{m:?}")),
                    Feedback::Many(ms) => TraceKind::Recv(format!("{ms:?}")),
                };
                tr.push(now, v, kind);
            }
            behavior.feedback(v, t, fb);
        }
        for (v, _) in senders.iter() {
            self.sending[*v] = 0;
        }
        self.clock += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(leaves: usize) -> Graph {
        // Vertex 0 is the hub.
        let edges: Vec<_> = (1..=leaves).map(|v| (0, v)).collect();
        Graph::from_edges(leaves + 1, &edges).unwrap()
    }

    #[test]
    fn collision_heard_as_silence_in_nocd() {
        let mut sim = Sim::new(star(2), Model::NoCd, 0);
        let mut got = None;
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::Listen
                } else {
                    Action::Send(v)
                }
            },
            |_, _, fb| got = Some(fb),
        );
        sim.run(&[0, 1, 2], 1, &mut b);
        drop(b);
        assert_eq!(got, Some(Feedback::Silence));
    }

    #[test]
    fn collision_heard_as_noise_in_cd() {
        let mut sim = Sim::new(star(2), Model::Cd, 0);
        let mut got = None;
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::Listen
                } else {
                    Action::Send(v)
                }
            },
            |_, _, fb| got = Some(fb),
        );
        sim.run(&[0, 1, 2], 1, &mut b);
        drop(b);
        assert_eq!(got, Some(Feedback::Noise));
    }

    #[test]
    fn non_participants_stay_idle_and_free() {
        let mut sim = Sim::new(star(3), Model::NoCd, 0);
        let mut b = from_fns(|_, _| Action::Send(1u8), |_, _, _| panic!("nobody listens"));
        sim.run(&[1], 4, &mut b);
        assert_eq!(sim.meter().energy(1), 4);
        assert_eq!(sim.meter().energy(0), 0);
        assert_eq!(sim.meter().energy(2), 0);
    }

    #[test]
    fn skip_advances_clock_without_energy() {
        let mut sim = Sim::new(star(1), Model::Cd, 0);
        sim.skip(100);
        assert_eq!(sim.now(), 100);
        assert_eq!(sim.meter().total_energy(), 0);
        let mut b = from_fns(|_, _| Action::Send(0u8), |_, _, _| {});
        sim.run(&[0], 1, &mut b);
        assert_eq!(sim.meter().last_active(), Some(100));
    }

    #[test]
    fn sender_does_not_hear_itself() {
        // Full duplex: node 1 sends+listens; node 2 sends. Node 1 hears only
        // node 2's message (they are both leaves, not adjacent), i.e. silence
        // since leaves aren't neighbors — then test on an edge instead.
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let mut sim = Sim::new(g, Model::Cd, 0);
        let mut got = None;
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::SendListen("a")
                } else {
                    Action::Idle
                }
            },
            |_, _, fb| got = Some(fb),
        );
        sim.run(&[0, 1], 1, &mut b);
        drop(b);
        // Node 0's own transmission must not reach its own listener.
        assert_eq!(got, Some(Feedback::Silence));
        assert_eq!(sim.meter().energy(0), 2);
    }

    #[test]
    fn full_duplex_hears_neighbor() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let mut sim = Sim::new(g, Model::Cd, 0);
        let mut got = Vec::new();
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::SendListen("a")
                } else {
                    Action::SendListen("b")
                }
            },
            |v, _, fb| got.push((v, fb)),
        );
        sim.run(&[0, 1], 1, &mut b);
        drop(b);
        got.sort_by_key(|(v, _)| *v);
        assert_eq!(got, vec![(0, Feedback::One("b")), (1, Feedback::One("a"))]);
    }

    #[test]
    fn local_delivers_all_messages() {
        let mut sim = Sim::new(star(3), Model::Local, 0);
        let mut got = None;
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::Listen
                } else {
                    Action::Send(v as u8)
                }
            },
            |_, _, fb| got = Some(fb),
        );
        sim.run(&[0, 1, 2, 3], 1, &mut b);
        drop(b);
        assert_eq!(got, Some(Feedback::Many(vec![1, 2, 3])));
    }

    #[test]
    fn trace_records_sends_and_receptions() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let mut sim = Sim::new(g, Model::NoCd, 0);
        sim.enable_trace();
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::Send(9u8)
                } else {
                    Action::Listen
                }
            },
            |_, _, _| {},
        );
        sim.run(&[0, 1], 1, &mut b);
        let tr = sim.trace().unwrap();
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.events()[0].kind, TraceKind::Send("9".into()));
        assert_eq!(tr.events()[1].kind, TraceKind::Recv("9".into()));
    }

    #[test]
    fn sims_over_one_arc_share_the_graph_allocation() {
        let g = Arc::new(star(2));
        let a = Sim::new(Arc::clone(&g), Model::Cd, 0);
        let b = Sim::new(Arc::clone(&g), Model::Cd, 1);
        assert!(Arc::ptr_eq(a.graph_arc(), b.graph_arc()));
        assert!(Arc::ptr_eq(a.graph_arc(), &g));
    }

    #[test]
    fn run_scheduled_matches_dense_run() {
        // The same star broadcast driven densely and sparsely must produce
        // identical feedback, energy, and clock.
        let dense = |sim: &mut Sim| {
            let mut got = Vec::new();
            let mut b = from_fns(
                |v, t| {
                    if v == 0 && t == 3 {
                        Action::Send(7u8)
                    } else if v != 0 && t == 3 {
                        Action::Listen
                    } else {
                        Action::Idle
                    }
                },
                |v, _, fb| got.push((v, fb)),
            );
            sim.run(&[0, 1, 2], 10, &mut b);
            drop(b);
            got
        };
        let sparse = |sim: &mut Sim| {
            let mut got = Vec::new();
            let mut b = from_fns(
                |v, t| {
                    assert_eq!(t, 3, "only the scheduled slot is polled");
                    if v == 0 {
                        Action::Send(7u8)
                    } else {
                        Action::Listen
                    }
                },
                |v, _, fb| got.push((v, fb)),
            );
            sim.run_scheduled(&[(3, vec![0, 1, 2])], 10, &mut b);
            drop(b);
            got
        };
        let mut a = Sim::new(star(2), Model::Cd, 0);
        let mut b = Sim::new(star(2), Model::Cd, 0);
        let ga = dense(&mut a);
        let gb = sparse(&mut b);
        assert_eq!(ga, gb);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.meter().report().total, b.meter().report().total);
        assert_eq!(a.meter().last_active(), b.meter().last_active());
        // The sparse run batch-skipped the 9 unscheduled slots.
        assert_eq!(b.meter().idle_skipped(), 9);
    }

    #[test]
    fn run_scheduled_is_equivalent_to_the_dense_loop_on_a_relay_chain() {
        // A multi-hop relay on the path 0–1–…–5: node v transmits in slot
        // 3v once informed, node v+1 listens there; every other slot is
        // provably idle. Driven (a) slot-by-slot through `Sim::run` with
        // an explicitly idle behavior off-schedule and (b) sparsely
        // through `run_scheduled`, the two runs must agree on the final
        // informed set, every per-node energy, the total, the clock, and
        // the last active slot — with the whole difference showing up in
        // `idle_skipped` accounting.
        const N: usize = 6;
        const SLOTS: u64 = 3 * (N as u64 - 1) + 1;
        struct Relay {
            informed: Vec<bool>,
        }
        impl Relay {
            // The only possibly-active slots: sender v and listener v+1
            // in slot 3v.
            fn roles(t: u64) -> Option<(NodeId, NodeId)> {
                (t % 3 == 0 && (t / 3) as usize + 1 < N)
                    .then(|| ((t / 3) as usize, (t / 3) as usize + 1))
            }
        }
        impl SlotBehavior<u8> for Relay {
            fn act(&mut self, v: NodeId, t: u64) -> Action<u8> {
                match Relay::roles(t) {
                    Some((sender, _)) if v == sender && self.informed[v] => Action::Send(7),
                    Some((_, listener)) if v == listener => Action::Listen,
                    _ => Action::Idle,
                }
            }
            fn feedback(&mut self, v: NodeId, _t: u64, fb: Feedback<u8>) {
                if matches!(fb, Feedback::One(7)) {
                    self.informed[v] = true;
                }
            }
        }
        let path =
            || Graph::from_edges(N, &(0..N - 1).map(|v| (v, v + 1)).collect::<Vec<_>>()).unwrap();
        let fresh = || Relay {
            informed: std::iter::once(true).chain((1..N).map(|_| false)).collect(),
        };

        let mut dense_sim = Sim::new(path(), Model::NoCd, 0);
        let mut dense = fresh();
        let all: Vec<NodeId> = (0..N).collect();
        dense_sim.run(&all, SLOTS, &mut dense);

        let mut sparse_sim = Sim::new(path(), Model::NoCd, 0);
        let mut sparse = fresh();
        let schedule: Vec<(u64, Vec<NodeId>)> = (0..SLOTS)
            .filter_map(|t| Relay::roles(t).map(|(s, l)| (t, vec![s, l])))
            .collect();
        sparse_sim.run_scheduled(&schedule, SLOTS, &mut sparse);

        // The relay reached the far end both ways.
        assert_eq!(dense.informed, vec![true; N]);
        assert_eq!(sparse.informed, dense.informed, "informed sets differ");
        // Exact energy equivalence, node by node.
        for v in 0..N {
            assert_eq!(
                dense_sim.meter().energy(v),
                sparse_sim.meter().energy(v),
                "node {v} energy differs"
            );
        }
        assert_eq!(
            dense_sim.meter().total_energy(),
            sparse_sim.meter().total_energy()
        );
        assert_eq!(dense_sim.now(), sparse_sim.now());
        assert_eq!(
            dense_sim.meter().last_active(),
            sparse_sim.meter().last_active()
        );
        // idle_skipped accounts exactly for the unscheduled slots: the
        // dense loop simulated all of them, the sparse loop none.
        assert_eq!(dense_sim.meter().idle_skipped(), 0);
        assert_eq!(
            sparse_sim.meter().idle_skipped(),
            SLOTS - schedule.len() as u64
        );
    }

    #[test]
    fn run_scheduled_batches_trailing_and_leading_gaps() {
        let mut sim = Sim::new(star(1), Model::Cd, 0);
        let mut b = from_fns(|_, _| Action::Send(1u8), |_, _, _| {});
        sim.run_scheduled(&[(100, vec![0]), (200, vec![1])], 1_000_000, &mut b);
        assert_eq!(sim.now(), 1_000_000);
        assert_eq!(sim.meter().last_active(), Some(200));
        assert_eq!(sim.meter().total_energy(), 2);
        assert_eq!(sim.meter().idle_skipped(), 1_000_000 - 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn run_scheduled_rejects_unsorted_schedules() {
        let mut sim = Sim::new(star(1), Model::Cd, 0);
        let mut b = from_fns(|_, _| Action::<u8>::Idle, |_, _, _| {});
        sim.run_scheduled(&[(5, vec![0]), (5, vec![1])], 10, &mut b);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn run_scheduled_rejects_out_of_range_slots() {
        let mut sim = Sim::new(star(1), Model::Cd, 0);
        let mut b = from_fns(|_, _| Action::<u8>::Idle, |_, _, _| {});
        sim.run_scheduled(&[(10, vec![0])], 10, &mut b);
    }

    #[test]
    fn skip_is_metered_as_idle() {
        let mut sim = Sim::new(star(1), Model::Cd, 0);
        sim.skip(42);
        assert_eq!(sim.meter().idle_skipped(), 42);
        assert_eq!(sim.meter().total_energy(), 0);
    }

    #[test]
    fn local_slot_numbers_are_zero_based_per_primitive() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let mut sim = Sim::new(g, Model::NoCd, 0);
        let mut slots_seen = Vec::new();
        let mut b = from_fns(
            |_, t| {
                slots_seen.push(t);
                Action::<u8>::Idle
            },
            |_, _, _| {},
        );
        sim.run(&[0], 2, &mut b);
        sim.run(&[0], 2, &mut b);
        drop(b);
        assert_eq!(slots_seen, vec![0, 1, 0, 1]);
        assert_eq!(sim.now(), 4);
    }
}
