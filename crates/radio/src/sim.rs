//! The phase-composed simulation engine and the [`Schedule`] driving API.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::bitset::BitSet;
use crate::fault::{jam_feedback, FaultModel, FaultPlan, FaultState, SlotVerdict, FAULT_STREAM};
use crate::model::{resolve, resolve_row, Action, Feedback, Model};
use crate::telemetry::Telemetry;
use crate::trace::Trace;
use crate::{EnergyMeter, Graph, NodeId, Slot};

/// Per-slot behavior of the devices taking part in one primitive.
///
/// A *primitive* is a contiguous block of slots with a fixed participant set
/// (e.g. one SR-communication instance). The engine calls [`act`] for every
/// participant at the start of each slot, resolves the channel, then calls
/// [`feedback`] on every participant that listened.
///
/// [`act`]: SlotBehavior::act
/// [`feedback`]: SlotBehavior::feedback
pub trait SlotBehavior<M> {
    /// The action of device `v` in local slot `t` (0-based within the
    /// primitive).
    fn act(&mut self, v: NodeId, t: u64) -> Action<M>;

    /// Delivers channel feedback to `v` for local slot `t`. Called only if
    /// `v` listened in that slot.
    fn feedback(&mut self, v: NodeId, t: u64, fb: Feedback<M>);

    /// For [`Schedule::Dynamic`]: the first local slot at which `v` wants
    /// to be polled, or `None` if it never participates. Wakes at or
    /// beyond the schedule's slot count are dropped. Defaults to slot 0,
    /// so behaviors written for the dense loop compile unchanged.
    fn first_wake(&mut self, v: NodeId) -> Option<u64> {
        let _ = v;
        Some(0)
    }

    /// For [`Schedule::Dynamic`]: the next local slot (strictly after `t`)
    /// at which `v` wants to be polled, or `None` once it is done. Called
    /// after `v`'s slot-`t` action (and any feedback) resolved. The
    /// default — wake every following slot — makes a `Dynamic` schedule
    /// equivalent to a `Dense` one.
    ///
    /// A hint must only skip slots in which `v` would provably return
    /// [`Action::Idle`] without consuming randomness; then energy, clock,
    /// and random streams are bit-identical to the dense loop.
    fn next_wake(&mut self, v: NodeId, t: u64) -> Option<u64> {
        let _ = v;
        Some(t + 1)
    }
}

/// Builds a [`SlotBehavior`] from two closures — handy in tests.
pub fn from_fns<M, A, F>(act: A, feedback: F) -> impl SlotBehavior<M>
where
    A: FnMut(NodeId, u64) -> Action<M>,
    F: FnMut(NodeId, u64, Feedback<M>),
{
    struct FnBehavior<A, F>(A, F);
    impl<M, A, F> SlotBehavior<M> for FnBehavior<A, F>
    where
        A: FnMut(NodeId, u64) -> Action<M>,
        F: FnMut(NodeId, u64, Feedback<M>),
    {
        fn act(&mut self, v: NodeId, t: u64) -> Action<M> {
            (self.0)(v, t)
        }
        fn feedback(&mut self, v: NodeId, t: u64, fb: Feedback<M>) {
            (self.1)(v, t, fb)
        }
    }
    FnBehavior(act, feedback)
}

/// A CSR-backed sparse slot schedule: the possibly-active slots of one
/// primitive, each with its participant row stored in one flat array and
/// borrowed back as a `&[NodeId]` slice — no per-slot `Vec` allocation.
///
/// Build with [`push`] (slots strictly increasing), drive with
/// [`Schedule::Sparse`]. Reusable across primitives.
///
/// [`push`]: SparseSchedule::push
#[derive(Debug, Clone)]
pub struct SparseSchedule {
    slots: Vec<Slot>,
    /// Degree-prefix bounds into `participants`; length `slots.len() + 1`.
    offsets: Vec<u32>,
    participants: Vec<NodeId>,
}

impl Default for SparseSchedule {
    fn default() -> Self {
        Self::new()
    }
}

impl SparseSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        SparseSchedule {
            slots: Vec::new(),
            offsets: vec![0],
            participants: Vec::new(),
        }
    }

    /// Appends `slot` with its participant set.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not strictly after the last pushed slot.
    pub fn push(&mut self, slot: Slot, participants: impl IntoIterator<Item = NodeId>) {
        if let Some(&last) = self.slots.last() {
            assert!(
                slot > last,
                "schedule slots must be strictly increasing (slot {slot} after {})",
                last + 1
            );
        }
        self.slots.push(slot);
        self.participants.extend(participants);
        self.offsets.push(self.participants.len() as u32);
    }

    /// The `(slot, participant row)` pairs, in increasing slot order.
    pub fn entries(&self) -> impl Iterator<Item = (Slot, &[NodeId])> + '_ {
        self.slots.iter().enumerate().map(move |(i, &t)| {
            let lo = self.offsets[i] as usize;
            let hi = self.offsets[i + 1] as usize;
            (t, &self.participants[lo..hi])
        })
    }

    /// The number of scheduled slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no slot is scheduled.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The total number of scheduled participant polls (Σ row lengths).
    pub fn total_participants(&self) -> usize {
        self.participants.len()
    }
}

/// How one primitive's slots map to participant sets — the unified driving
/// API behind [`Sim::drive`].
///
/// Every variant occupies local slots `0..slots` on the clock; behaviors
/// see 0-based local slot numbers either way. Unscheduled slots are
/// batch-skipped ([`Sim::skip`]) and never poll anyone, so host cost is
/// proportional to scheduled participant polls, not `devices × slots`.
#[derive(Debug)]
pub enum Schedule<'a> {
    /// Every slot polls the same participant set (the classic dense loop).
    Dense {
        /// The devices polled in every slot.
        participants: &'a [NodeId],
        /// The number of slots.
        slots: u64,
    },
    /// Only the listed slots poll anyone; everything between is skipped in
    /// one clock batch.
    Sparse {
        /// The CSR-backed slot → participants map.
        schedule: &'a SparseSchedule,
        /// The total slots the primitive occupies (≥ every scheduled slot).
        slots: u64,
    },
    /// A wake-queue fed by the behavior's [`SlotBehavior::first_wake`] /
    /// [`SlotBehavior::next_wake`] hints: each device is polled exactly at
    /// the slots it asks for, so devices that are done — or asleep between
    /// data-dependent wake times — cost nothing.
    Dynamic {
        /// The devices offered a first wake.
        participants: &'a [NodeId],
        /// The number of slots; wake hints at or beyond it are dropped.
        slots: u64,
    },
}

/// The wake queue behind [`Schedule::Dynamic`]: a calendar ring of
/// per-slot buckets covering the next [`WakeQueue::WINDOW`] slots — O(1)
/// enqueue, one occupancy-bitmap word scan to find the next busy slot —
/// with a `BTreeMap` overflow for wakes farther out.
///
/// The ring matters because the common wake hint is `t + 1` (an active
/// device polling every slot): routing those through a `BTreeMap` costs a
/// tree probe per device per slot, which dominated large dynamic
/// primitives. Bucket `Vec`s are recycled through a pool, so the steady
/// state allocates nothing.
struct WakeQueue {
    /// Bucket for slot `t` (with `base ≤ t < base + ring.len()`) is
    /// `ring[t % ring.len()]`.
    ring: Vec<Vec<NodeId>>,
    /// Occupancy bitmap over ring indices.
    occupied: Vec<u64>,
    /// Wakes at or beyond `base + ring.len()` at enqueue time.
    far: BTreeMap<u64, Vec<NodeId>>,
    /// Recycled bucket allocations.
    pool: Vec<Vec<NodeId>>,
    /// The earliest slot still queueable; advances past each popped slot.
    base: u64,
}

impl WakeQueue {
    const WINDOW: u64 = 1024;

    fn new(slots: u64) -> WakeQueue {
        let win = Self::WINDOW.min(slots.max(1)) as usize;
        WakeQueue {
            ring: (0..win).map(|_| Vec::new()).collect(),
            occupied: vec![0u64; win.div_ceil(64)],
            far: BTreeMap::new(),
            pool: Vec::new(),
            base: 0,
        }
    }

    fn push(&mut self, t: u64, v: NodeId) {
        debug_assert!(t >= self.base, "wake {t} before queue base {}", self.base);
        let len = self.ring.len() as u64;
        if t - self.base < len {
            let i = (t % len) as usize;
            self.ring[i].push(v);
            self.occupied[i >> 6] |= 1 << (i & 63);
        } else {
            self.far
                .entry(t)
                .or_insert_with(|| self.pool.pop().unwrap_or_default())
                .push(v);
        }
    }

    /// The earliest queued slot, if any.
    fn next_slot(&self) -> Option<u64> {
        let len = self.ring.len();
        let start = (self.base % len as u64) as usize;
        let ring_next = self
            .scan_range(start, len)
            .map(|i| i - start)
            .or_else(|| self.scan_range(0, start).map(|i| len - start + i))
            .map(|steps| self.base + steps as u64);
        let far_next = self.far.keys().next().copied();
        match (ring_next, far_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// First occupied ring index in `lo..hi`, scanning bitmap words.
    fn scan_range(&self, lo: usize, hi: usize) -> Option<usize> {
        if lo >= hi {
            return None;
        }
        let lo_w = lo >> 6;
        let hi_w = (hi - 1) >> 6;
        for w in lo_w..=hi_w {
            let mut word = self.occupied[w];
            if w == lo_w {
                word &= !0u64 << (lo & 63);
            }
            if w == hi_w && (hi & 63) != 0 {
                word &= (1u64 << (hi & 63)) - 1;
            }
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Takes the batch queued for slot `t` (from [`WakeQueue::next_slot`])
    /// and advances the queue past it.
    fn pop(&mut self, t: u64) -> Vec<NodeId> {
        let len = self.ring.len() as u64;
        let mut batch = if t - self.base < len {
            let i = (t % len) as usize;
            self.occupied[i >> 6] &= !(1 << (i & 63));
            std::mem::replace(&mut self.ring[i], self.pool.pop().unwrap_or_default())
        } else {
            self.pool.pop().unwrap_or_default()
        };
        // A slot can sit in both stores: enqueued far, then `base`
        // advanced to within a window of it.
        if let Some(extra) = self.far.remove(&t) {
            batch.extend_from_slice(&extra);
            self.recycle(extra);
        }
        self.base = t + 1;
        batch
    }

    fn recycle(&mut self, mut bucket: Vec<NodeId>) {
        bucket.clear();
        self.pool.push(bucket);
    }
}

/// A synchronous radio network simulation with a global slot clock.
///
/// Algorithms drive the simulation as a sequence of primitives via
/// [`Sim::drive`] (dense, sparse, or dynamically scheduled — see
/// [`Schedule`]), interleaved with [`Sim::skip`] for slot ranges in which
/// the algorithm's schedule provably keeps every device idle. Energy is
/// metered exactly; time is the global clock.
///
/// The master `seed` is exposed so algorithm implementations can derive
/// per-node randomness with [`crate::rng`]; the engine itself is
/// deterministic.
#[derive(Debug)]
pub struct Sim {
    graph: Arc<Graph>,
    model: Model,
    clock: Slot,
    meter: EnergyMeter,
    /// The opt-in structured recorder; `None` (the default) keeps every
    /// instrumentation hook to a single pointer check, so uninstrumented
    /// runs are bit-identical to the pre-telemetry engine.
    telemetry: Option<Box<Telemetry>>,
    seed: u64,
    /// Scratch: per-node index+1 into the current slot's sender list.
    sending: Vec<u32>,
    /// Scratch: the packed transmitting set of the current slot — the
    /// word-parallel state listeners probe during collision resolution.
    tx: BitSet,
    /// The realized fault plan, if any. [`FaultPlan::None`] is stored as
    /// `None` here, so clean runs never touch the fault layer at all and
    /// stay bit-identical to the pre-fault engine.
    faults: Option<FaultState>,
}

impl Sim {
    /// A fresh simulation over `graph` under `model` with master `seed`.
    ///
    /// Accepts either an owned [`Graph`] or an [`Arc<Graph>`]; parallel seed
    /// sweeps pass `Arc::clone`s of one shared graph so the CSR arrays are
    /// never deep-copied per seed.
    pub fn new(graph: impl Into<Arc<Graph>>, model: Model, seed: u64) -> Self {
        let graph = graph.into();
        let n = graph.n();
        Sim {
            graph,
            model,
            clock: 0,
            meter: EnergyMeter::new(n),
            telemetry: None,
            seed,
            sending: vec![0; n],
            tx: BitSet::new(n),
            faults: None,
        }
    }

    /// A fresh simulation with a [`FaultPlan`] applied at the slot
    /// pipeline's choke point: crashed/churned devices are masked out of
    /// every slot (no polls, no energy), lost slots drop all
    /// transmissions, jammed slots reach every listener as channel
    /// garbage, and edge loss filters individual deliveries.
    ///
    /// The fault layer's randomness is a pure hash of a key derived from
    /// `seed` under the dedicated [`FAULT_STREAM`], so it never perturbs
    /// an algorithm's own random draws, and [`FaultPlan::None`] is
    /// bit-identical to [`Sim::new`].
    ///
    /// # Panics
    ///
    /// Panics if the plan is malformed (probability outside `[0, 1]`,
    /// zero jammer period, or an event naming a device `>= n`).
    pub fn with_faults(
        graph: impl Into<Arc<Graph>>,
        model: Model,
        seed: u64,
        plan: FaultPlan,
    ) -> Self {
        let mut sim = Sim::new(graph, model, seed);
        if plan.is_active() {
            let key = crate::rng::derive_seed(seed, 0, FAULT_STREAM);
            let n = sim.graph.n();
            sim.faults = Some(FaultState::new(plan, key, n));
        }
        sim
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The shared handle to the underlying graph (cheap to clone; useful
    /// for spawning sub-engines over the same topology).
    pub fn graph_arc(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The collision model.
    pub fn model(&self) -> Model {
        self.model
    }

    /// The master seed for deriving per-node randomness.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The current global slot.
    pub fn now(&self) -> Slot {
        self.clock
    }

    /// The fault plan in force ([`FaultPlan::None`] for a clean run).
    pub fn fault_plan(&self) -> &FaultPlan {
        static NONE: FaultPlan = FaultPlan::None;
        self.faults.as_ref().map_or(&NONE, |f| f.plan())
    }

    /// The realized fault state, if an active plan is in force — for
    /// inspecting the remaining jam budget or the current down-set.
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// The energy meter.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Advances the clock over `slots` slots in which every device idles.
    ///
    /// Idling is free, so no energy is charged; the meter counts the
    /// batch-skipped slots (`idle_skipped`) so reports can show how much of
    /// the clock was never simulated slot-by-slot.
    pub fn skip(&mut self, slots: u64) {
        self.clock += slots;
        self.meter.note_skip(slots);
    }

    /// Folds a sub-engine's [`EnergyMeter`] into this simulation's meter —
    /// for algorithms that delegate a phase to an [`crate::EventEngine`]
    /// over the same graph. The caller advances the clock with [`skip`].
    ///
    /// # Panics
    ///
    /// Panics if the meters track different device counts.
    ///
    /// [`skip`]: Sim::skip
    pub fn absorb_meter(&mut self, other: &EnergyMeter) {
        self.meter.merge(other);
    }

    /// Starts recording structured [`Telemetry`] (slot events, per-slot
    /// counters, phase spans, gauges) for all subsequent slots, with the
    /// default ring capacities. Idempotent: an already-attached recorder
    /// keeps its records.
    ///
    /// Recording never perturbs the run: the informed set, per-node
    /// energy, clock, and every random stream are bit-identical with
    /// telemetry on or off (property-tested across all models).
    pub fn enable_telemetry(&mut self) {
        if self.telemetry.is_none() {
            self.telemetry = Some(Box::new(Telemetry::new()));
        }
    }

    /// Attaches a caller-configured recorder (e.g. custom ring
    /// capacities), replacing any existing one.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(Box::new(telemetry));
    }

    /// Whether a telemetry recorder is attached — algorithms gate any
    /// non-trivial instrumentation work (e.g. computing an informed-set
    /// curve) on this so uninstrumented runs pay nothing.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// The telemetry recorded so far, if enabled.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_deref()
    }

    /// Detaches and returns the recorder (for exporting after a run).
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.telemetry.take().map(|t| *t)
    }

    /// Opens a phase span named `name` at the current slot. No-op
    /// without telemetry. See [`Telemetry::span_enter`].
    pub fn span_enter(&mut self, name: &'static str) {
        let now = self.clock;
        if let Some(t) = &mut self.telemetry {
            t.span_enter(name, now);
        }
    }

    /// Closes the innermost open span at the current slot. No-op
    /// without telemetry.
    pub fn span_exit(&mut self) {
        let now = self.clock;
        if let Some(t) = &mut self.telemetry {
            t.span_exit(now);
        }
    }

    /// Records an already-closed span retroactively. No-op without
    /// telemetry. See [`Telemetry::span_at`].
    pub fn span_at(&mut self, name: &'static str, start: Slot, end: Slot) {
        if let Some(t) = &mut self.telemetry {
            t.span_at(name, start, end);
        }
    }

    /// Records one gauge sample (e.g. the informed-set size at `slot`).
    /// No-op without telemetry. See [`Telemetry::record_gauge`].
    pub fn record_gauge(&mut self, name: &'static str, slot: Slot, value: f64) {
        if let Some(t) = &mut self.telemetry {
            t.record_gauge(name, slot, value);
        }
    }

    /// Compatibility shim for the retired string-based trace: enables
    /// telemetry. Ported callers use [`Sim::enable_telemetry`].
    #[doc(hidden)]
    #[deprecated(note = "use enable_telemetry(); the string-based trace is retired")]
    pub fn enable_trace(&mut self) {
        self.enable_telemetry();
    }

    /// Compatibility shim: reconstructs a [`Trace`] view from the
    /// telemetry events. Message payloads are no longer stringified, so
    /// `Send`/`Recv` records carry empty payload strings.
    #[doc(hidden)]
    #[deprecated(note = "use telemetry(); the string-based trace is retired")]
    pub fn trace(&self) -> Option<Trace> {
        self.telemetry.as_deref().map(Trace::from_telemetry)
    }

    /// Runs one primitive under `schedule` — the single driving core every
    /// schedule shape goes through.
    ///
    /// The clock advances over exactly the schedule's `slots` slots;
    /// unscheduled stretches are batch-skipped via [`Sim::skip`] without
    /// polling any behavior. Collision resolution probes the packed
    /// transmitting set per CSR neighbor-row entry with model-specific
    /// early exit (see [`crate::BitSet`]).
    ///
    /// # Panics
    ///
    /// Panics if a scheduled slot is out of range, a participant id is out
    /// of range, a [`Schedule::Dynamic`] wake hint is not strictly in the
    /// future, or (debug builds) a slot's participants contain duplicates.
    pub fn drive<M, B>(&mut self, schedule: Schedule<'_>, behavior: &mut B)
    where
        M: Clone + core::fmt::Debug,
        B: SlotBehavior<M>,
    {
        let mut senders: Vec<(NodeId, M)> = Vec::new();
        let mut listeners: Vec<NodeId> = Vec::new();
        match schedule {
            Schedule::Dense {
                participants,
                slots,
            } => {
                self.debug_check_distinct(participants);
                for t in 0..slots {
                    self.step_slot(
                        participants,
                        t,
                        behavior,
                        &mut senders,
                        &mut listeners,
                        false,
                    );
                }
            }
            Schedule::Sparse { schedule, slots } => {
                let mut next = 0u64;
                for (t, participants) in schedule.entries() {
                    assert!(t < slots, "scheduled slot {t} outside 0..{slots}");
                    self.debug_check_distinct(participants);
                    self.skip(t - next);
                    self.step_slot(
                        participants,
                        t,
                        behavior,
                        &mut senders,
                        &mut listeners,
                        false,
                    );
                    next = t + 1;
                }
                self.skip(slots - next);
            }
            Schedule::Dynamic {
                participants,
                slots,
            } => {
                self.debug_check_distinct(participants);
                // Each device has at most one pending wake, so batches are
                // duplicate-free.
                let mut wake = WakeQueue::new(slots);
                for &v in participants {
                    if let Some(t) = behavior.first_wake(v) {
                        if t < slots {
                            wake.push(t, v);
                        }
                    }
                }
                let mut next = 0u64;
                while let Some(t) = wake.next_slot() {
                    let mut batch = wake.pop(t);
                    // Poll in ascending id order — the same order a dense
                    // loop over a sorted participant list would use.
                    batch.sort_unstable();
                    self.skip(t - next);
                    self.step_slot(&batch, t, behavior, &mut senders, &mut listeners, false);
                    next = t + 1;
                    for &v in &batch {
                        if let Some(t2) = behavior.next_wake(v, t) {
                            assert!(t2 > t, "device {v} scheduled non-future wake {t2} <= {t}");
                            if t2 < slots {
                                wake.push(t2, v);
                            }
                        }
                    }
                    wake.recycle(batch);
                }
                self.skip(slots - next);
            }
        }
    }

    /// Compatibility shim: `slots` dense slots in which exactly
    /// `participants` may act — a thin wrapper over [`Sim::drive`] with
    /// [`Schedule::Dense`].
    ///
    /// Every production call site has been ported to `drive`; this
    /// wrapper is retained only for the test suites' one-liners and is
    /// hidden from the documented API. Do not add new callers.
    ///
    /// `participants` must not contain duplicates.
    ///
    /// # Panics
    ///
    /// Panics if a participant id is out of range.
    #[doc(hidden)]
    pub fn run<M, B>(&mut self, participants: &[NodeId], slots: u64, behavior: &mut B)
    where
        M: Clone + core::fmt::Debug,
        B: SlotBehavior<M>,
    {
        self.drive(
            Schedule::Dense {
                participants,
                slots,
            },
            behavior,
        )
    }

    /// Compatibility shim: `slots` slots under a sparse public schedule
    /// given as `(slot, participants)` pairs — copies the per-slot
    /// `Vec`s into a [`SparseSchedule`] and calls [`Sim::drive`].
    ///
    /// Every production call site builds the `SparseSchedule` directly
    /// (one flat allocation, rows borrowed as slices) and drives
    /// [`Schedule::Sparse`]; this wrapper is retained only for the test
    /// suites and is hidden from the documented API. Do not add new
    /// callers.
    ///
    /// Scheduled slots must be strictly increasing and `< slots`; a
    /// device listed in a slot may still act [`Action::Idle`] there.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is unsorted, exceeds `slots`, or lists a
    /// duplicate participant within one slot.
    #[doc(hidden)]
    pub fn run_scheduled<M, B>(
        &mut self,
        schedule: &[(u64, Vec<NodeId>)],
        slots: u64,
        behavior: &mut B,
    ) where
        M: Clone + core::fmt::Debug,
        B: SlotBehavior<M>,
    {
        let mut sparse = SparseSchedule::new();
        for (t, participants) in schedule {
            sparse.push(*t, participants.iter().copied());
        }
        self.drive(
            Schedule::Sparse {
                schedule: &sparse,
                slots,
            },
            behavior,
        )
    }

    /// The retained dense reference loop: semantically identical to
    /// driving [`Schedule::Dense`], but resolving every listener through
    /// the original iterator-based neighbor scan instead of the packed
    /// transmitting-set probe. Kept as the oracle for the dense-vs-bitset
    /// differential suite and as the `dense` side of the slots-per-second
    /// benchmark; production call sites should use [`Sim::drive`].
    pub fn run_reference<M, B>(&mut self, participants: &[NodeId], slots: u64, behavior: &mut B)
    where
        M: Clone + core::fmt::Debug,
        B: SlotBehavior<M>,
    {
        self.debug_check_distinct(participants);
        let mut senders: Vec<(NodeId, M)> = Vec::new();
        let mut listeners: Vec<NodeId> = Vec::new();
        for t in 0..slots {
            self.step_slot(
                participants,
                t,
                behavior,
                &mut senders,
                &mut listeners,
                true,
            );
        }
    }

    /// O(k) duplicate-participant check against the `sending` scratch
    /// (all-zero between slots): stamp every participant, panic on a
    /// repeat, unstamp. One shared implementation for all [`Schedule`]
    /// variants; debug builds only (release builds skip the scan).
    fn debug_check_distinct(&mut self, participants: &[NodeId]) {
        if cfg!(debug_assertions) {
            for &v in participants {
                assert!(self.sending[v] == 0, "duplicate participant {v}");
                self.sending[v] = u32::MAX;
            }
            for &v in participants {
                self.sending[v] = 0;
            }
        }
    }

    /// Simulates one slot (local slot number `t`) for `participants`,
    /// advancing the clock by one. `senders`/`listeners` are caller-owned
    /// scratch so multi-slot drivers reuse the allocations. `reference`
    /// selects the iterator-based resolver ([`Sim::run_reference`]).
    fn step_slot<M, B>(
        &mut self,
        participants: &[NodeId],
        t: u64,
        behavior: &mut B,
        senders: &mut Vec<(NodeId, M)>,
        listeners: &mut Vec<NodeId>,
        reference: bool,
    ) where
        M: Clone + core::fmt::Debug,
        B: SlotBehavior<M>,
    {
        senders.clear();
        listeners.clear();
        let now = self.clock;
        if let Some(f) = &mut self.faults {
            f.begin_slot(now);
        }
        if let Some(tel) = &mut self.telemetry {
            tel.begin_slot(now, participants.len() as u32);
            if let Some(f) = &self.faults {
                for &v in f.newly_down() {
                    tel.note_crashed(v);
                }
                tel.set_down(f.down_count() as u32);
            }
        }
        for &v in participants {
            // Down devices (crashed or churned out) are masked before the
            // poll: no action, no feedback, no energy, and their private
            // random streams stay untouched until they rejoin.
            if let Some(f) = &self.faults {
                if f.any_down() && f.is_down(v) {
                    continue;
                }
            }
            let action = behavior.act(v, t);
            match &action {
                Action::Idle => {}
                Action::Send(m) => {
                    self.meter.charge_send(v, now);
                    if let Some(tel) = &mut self.telemetry {
                        tel.note_tx(v);
                    }
                    senders.push((v, m.clone()));
                }
                Action::Listen => {
                    self.meter.charge_listen(v, now);
                    listeners.push(v);
                }
                Action::SendListen(m) => {
                    self.meter.charge_send(v, now);
                    self.meter.charge_listen(v, now);
                    if let Some(tel) = &mut self.telemetry {
                        tel.note_tx(v);
                    }
                    senders.push((v, m.clone()));
                    listeners.push(v);
                }
            }
        }
        for (i, (v, _)) in senders.iter().enumerate() {
            self.sending[*v] = i as u32 + 1;
            self.tx.insert(*v);
        }
        // The fault choke point: every transmission in every schedule
        // shape passes through here before collision resolution.
        let mut verdict = SlotVerdict::Clean;
        if let Some(f) = &mut self.faults {
            if f.any_down() {
                // Word-parallel enforcement that no down device transmits.
                // The poll loop above already masks them, so this is a
                // (cheap) invariant, not a second decision point.
                self.tx.and_not(f.down());
            }
            // Unobserved slots never draw a verdict: jamming budget is
            // only spent on slots some listener actually hears, which
            // keeps budget consumption invariant across schedule shapes.
            if !listeners.is_empty() {
                verdict = f.verdict(now, !senders.is_empty());
            }
            if verdict != SlotVerdict::Clean {
                // Senders already paid for the attempt — that charge is
                // the retry energy of unreliable channels; the meter
                // tallies the wasted transmissions separately.
                for (v, _) in senders.iter() {
                    self.meter.note_lost_send(*v);
                }
                if let Some(tel) = &mut self.telemetry {
                    for (v, _) in senders.iter() {
                        tel.note_lost(*v);
                    }
                }
            }
            if verdict == SlotVerdict::Lost {
                // Drop every transmission before resolution: listeners
                // then resolve an empty channel, which is silence in
                // every model.
                for (v, _) in senders.iter() {
                    self.sending[*v] = 0;
                    self.tx.remove(*v);
                }
            }
        }
        for &v in listeners.iter() {
            let fb = if verdict == SlotVerdict::Jammed {
                jam_feedback(self.model)
            } else if let Some(f) = self.faults.as_ref().filter(|f| f.filters_edges()) {
                // Edge loss needs a per-(listener, sender) decision, so
                // this plan drops from the word-parallel row probe to the
                // filtered iterator scan.
                resolve(
                    self.model,
                    self.graph.neighbors(v).filter_map(|u| {
                        let idx = self.sending[u];
                        (idx != 0 && f.edge_alive(now, v, u))
                            .then(|| (u, senders[idx as usize - 1].1.clone()))
                    }),
                )
            } else if reference {
                resolve(
                    self.model,
                    self.graph.neighbors(v).filter_map(|u| {
                        let idx = self.sending[u];
                        (idx != 0).then(|| (u, senders[idx as usize - 1].1.clone()))
                    }),
                )
            } else {
                resolve_row(
                    self.model,
                    self.graph.neighbor_row(v),
                    &self.tx,
                    &self.sending,
                    senders,
                )
            };
            if let Some(tel) = &mut self.telemetry {
                if verdict == SlotVerdict::Jammed {
                    tel.note_jammed(v);
                } else {
                    match &fb {
                        Feedback::Silence => tel.note_silence(v),
                        Feedback::Noise | Feedback::Beep => tel.note_noise(v),
                        Feedback::One(_) | Feedback::Many(_) => tel.note_recv(v),
                    }
                }
            }
            behavior.feedback(v, t, fb);
        }
        for (v, _) in senders.iter() {
            self.sending[*v] = 0;
            self.tx.remove(*v);
        }
        if let Some(tel) = &mut self.telemetry {
            tel.end_slot();
        }
        self.clock += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::JammerStrategy;

    fn star(leaves: usize) -> Graph {
        // Vertex 0 is the hub.
        let edges: Vec<_> = (1..=leaves).map(|v| (0, v)).collect();
        Graph::from_edges(leaves + 1, &edges).unwrap()
    }

    #[test]
    fn collision_heard_as_silence_in_nocd() {
        let mut sim = Sim::new(star(2), Model::NoCd, 0);
        let mut got = None;
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::Listen
                } else {
                    Action::Send(v)
                }
            },
            |_, _, fb| got = Some(fb),
        );
        sim.run(&[0, 1, 2], 1, &mut b);
        drop(b);
        assert_eq!(got, Some(Feedback::Silence));
    }

    #[test]
    fn collision_heard_as_noise_in_cd() {
        let mut sim = Sim::new(star(2), Model::Cd, 0);
        let mut got = None;
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::Listen
                } else {
                    Action::Send(v)
                }
            },
            |_, _, fb| got = Some(fb),
        );
        sim.run(&[0, 1, 2], 1, &mut b);
        drop(b);
        assert_eq!(got, Some(Feedback::Noise));
    }

    #[test]
    fn non_participants_stay_idle_and_free() {
        let mut sim = Sim::new(star(3), Model::NoCd, 0);
        let mut b = from_fns(|_, _| Action::Send(1u8), |_, _, _| panic!("nobody listens"));
        sim.run(&[1], 4, &mut b);
        assert_eq!(sim.meter().energy(1), 4);
        assert_eq!(sim.meter().energy(0), 0);
        assert_eq!(sim.meter().energy(2), 0);
    }

    #[test]
    fn skip_advances_clock_without_energy() {
        let mut sim = Sim::new(star(1), Model::Cd, 0);
        sim.skip(100);
        assert_eq!(sim.now(), 100);
        assert_eq!(sim.meter().total_energy(), 0);
        let mut b = from_fns(|_, _| Action::Send(0u8), |_, _, _| {});
        sim.run(&[0], 1, &mut b);
        assert_eq!(sim.meter().last_active(), Some(100));
    }

    #[test]
    fn sender_does_not_hear_itself() {
        // Full duplex: node 1 sends+listens; node 2 sends. Node 1 hears only
        // node 2's message (they are both leaves, not adjacent), i.e. silence
        // since leaves aren't neighbors — then test on an edge instead.
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let mut sim = Sim::new(g, Model::Cd, 0);
        let mut got = None;
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::SendListen("a")
                } else {
                    Action::Idle
                }
            },
            |_, _, fb| got = Some(fb),
        );
        sim.run(&[0, 1], 1, &mut b);
        drop(b);
        // Node 0's own transmission must not reach its own listener.
        assert_eq!(got, Some(Feedback::Silence));
        assert_eq!(sim.meter().energy(0), 2);
    }

    #[test]
    fn full_duplex_hears_neighbor() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let mut sim = Sim::new(g, Model::Cd, 0);
        let mut got = Vec::new();
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::SendListen("a")
                } else {
                    Action::SendListen("b")
                }
            },
            |v, _, fb| got.push((v, fb)),
        );
        sim.run(&[0, 1], 1, &mut b);
        drop(b);
        got.sort_by_key(|(v, _)| *v);
        assert_eq!(got, vec![(0, Feedback::One("b")), (1, Feedback::One("a"))]);
    }

    #[test]
    fn local_delivers_all_messages() {
        let mut sim = Sim::new(star(3), Model::Local, 0);
        let mut got = None;
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::Listen
                } else {
                    Action::Send(v as u8)
                }
            },
            |_, _, fb| got = Some(fb),
        );
        sim.run(&[0, 1, 2, 3], 1, &mut b);
        drop(b);
        assert_eq!(got, Some(Feedback::Many(vec![1, 2, 3])));
    }

    #[test]
    fn telemetry_records_sends_and_receptions() {
        use crate::telemetry::EventKind;
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let mut sim = Sim::new(g, Model::NoCd, 0);
        sim.enable_telemetry();
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::Send(9u8)
                } else {
                    Action::Listen
                }
            },
            |_, _, _| {},
        );
        sim.run(&[0, 1], 1, &mut b);
        let tel = sim.telemetry().unwrap();
        let events: Vec<_> = tel.events().collect();
        assert_eq!(events.len(), 2);
        assert_eq!((events[0].node(), events[0].kind()), (0, EventKind::Tx));
        assert_eq!((events[1].node(), events[1].kind()), (1, EventKind::Recv));
        let rows: Vec<_> = tel.counters().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!((rows[0].polled, rows[0].tx, rows[0].delivered), (2, 1, 1));
        // take_telemetry hands the recorder over and detaches it.
        let owned = sim.take_telemetry().unwrap();
        assert_eq!(owned.event_count(), 2);
        assert!(!sim.telemetry_enabled());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_trace_shim_still_reports_event_kinds() {
        use crate::trace::TraceKind;
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let mut sim = Sim::new(g, Model::NoCd, 0);
        sim.enable_trace();
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::Send(9u8)
                } else {
                    Action::Listen
                }
            },
            |_, _, _| {},
        );
        sim.run(&[0, 1], 1, &mut b);
        // Payload strings are no longer recorded; kinds and order survive.
        let tr = sim.trace().unwrap();
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.events()[0].kind, TraceKind::Send(String::new()));
        assert_eq!(tr.events()[1].kind, TraceKind::Recv(String::new()));
        assert_eq!(tr.events()[0].node, 0);
        assert_eq!(tr.events()[1].node, 1);
    }

    #[test]
    fn telemetry_surfaces_fault_verdicts_per_slot() {
        use crate::telemetry::EventKind;
        // Slot loss with p = 1: every send is Lost, every listener hears
        // recorded Silence — the per-slot view of lost_sends.
        let mut sim = Sim::with_faults(star(1), Model::Cd, 3, FaultPlan::SlotLoss { p: 1.0 });
        sim.enable_telemetry();
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::Listen
                } else {
                    Action::Send(1u8)
                }
            },
            |_, _, _| {},
        );
        sim.drive(
            Schedule::Dense {
                participants: &[0, 1],
                slots: 3,
            },
            &mut b,
        );
        drop(b);
        let tel = sim.telemetry().unwrap();
        assert_eq!(tel.events_of(EventKind::Lost).count(), 3);
        assert_eq!(tel.events_of(EventKind::Silence).count(), 3);
        let row = tel.counters().next().unwrap();
        assert_eq!((row.tx, row.lost, row.silent), (1, 1, 1));
        assert_eq!(
            tel.counters().map(|r| r.lost as u64).sum::<u64>(),
            sim.meter().total_lost_sends()
        );
    }

    #[test]
    fn telemetry_marks_jammed_listeners_and_crashes() {
        use crate::telemetry::EventKind;
        let mut sim = Sim::with_faults(
            star(2),
            Model::Cd,
            3,
            FaultPlan::Jammer {
                budget: 1,
                strategy: JammerStrategy::Reactive,
            },
        );
        sim.enable_telemetry();
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::Listen
                } else {
                    Action::Send(v as u8)
                }
            },
            |_, _, _| {},
        );
        sim.drive(
            Schedule::Dense {
                participants: &[0, 1, 2],
                slots: 2,
            },
            &mut b,
        );
        drop(b);
        let tel = sim.telemetry().unwrap();
        // Slot 0 is jammed (budget 1); slot 1 is a clean collision.
        assert_eq!(tel.events_of(EventKind::Jammed).count(), 1);
        assert_eq!(tel.events_of(EventKind::Noise).count(), 1);
        assert_eq!(tel.events_of(EventKind::Lost).count(), 2);
        let rows: Vec<_> = tel.counters().collect();
        assert_eq!((rows[0].jammed, rows[0].lost), (1, 2));
        assert_eq!((rows[1].jammed, rows[1].collisions), (0, 1));

        // A crash schedule produces one Crashed event at the crash slot
        // and the down gauge in subsequent rows.
        let mut sim = Sim::with_faults(
            star(1),
            Model::Cd,
            3,
            FaultPlan::Crash {
                schedule: vec![(1, 1)],
            },
        );
        sim.enable_telemetry();
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::Listen
                } else {
                    Action::Send(1u8)
                }
            },
            |_, _, _| {},
        );
        sim.drive(
            Schedule::Dense {
                participants: &[0, 1],
                slots: 3,
            },
            &mut b,
        );
        drop(b);
        let tel = sim.telemetry().unwrap();
        let crashes: Vec<_> = tel.events_of(EventKind::Crashed).collect();
        assert_eq!(crashes.len(), 1);
        assert_eq!((crashes[0].slot, crashes[0].node()), (1, 1));
        let rows: Vec<_> = tel.counters().collect();
        assert_eq!(rows[0].down, 0);
        assert_eq!(rows[1].down, 1);
        assert_eq!(rows[2].down, 1);
    }

    #[test]
    fn spans_and_gauges_record_through_the_sim() {
        let mut sim = Sim::new(star(1), Model::Cd, 0);
        // All span/gauge calls are no-ops without telemetry.
        sim.span_enter("ignored");
        sim.span_exit();
        sim.record_gauge("ignored", 0, 1.0);
        assert!(sim.telemetry().is_none());
        sim.enable_telemetry();
        sim.span_enter("phase");
        sim.skip(10);
        let mut b = from_fns(|_, _| Action::Send(0u8), |_, _, _| {});
        sim.run(&[0], 2, &mut b);
        sim.span_exit();
        sim.span_at("retro", 3, 7);
        sim.record_gauge("informed", 12, 2.0);
        let tel = sim.telemetry().unwrap();
        assert_eq!(tel.spans().len(), 2);
        assert_eq!((tel.spans()[0].start, tel.spans()[0].end), (0, 12));
        assert_eq!((tel.spans()[1].start, tel.spans()[1].end), (3, 7));
        assert_eq!(tel.gauges().len(), 1);
        // Skipped slots produce no counter rows.
        assert_eq!(tel.counters().count(), 2);
    }

    #[test]
    fn sims_over_one_arc_share_the_graph_allocation() {
        let g = Arc::new(star(2));
        let a = Sim::new(Arc::clone(&g), Model::Cd, 0);
        let b = Sim::new(Arc::clone(&g), Model::Cd, 1);
        assert!(Arc::ptr_eq(a.graph_arc(), b.graph_arc()));
        assert!(Arc::ptr_eq(a.graph_arc(), &g));
    }

    #[test]
    fn run_scheduled_matches_dense_run() {
        // The same star broadcast driven densely and sparsely must produce
        // identical feedback, energy, and clock.
        let dense = |sim: &mut Sim| {
            let mut got = Vec::new();
            let mut b = from_fns(
                |v, t| {
                    if v == 0 && t == 3 {
                        Action::Send(7u8)
                    } else if v != 0 && t == 3 {
                        Action::Listen
                    } else {
                        Action::Idle
                    }
                },
                |v, _, fb| got.push((v, fb)),
            );
            sim.run(&[0, 1, 2], 10, &mut b);
            drop(b);
            got
        };
        let sparse = |sim: &mut Sim| {
            let mut got = Vec::new();
            let mut b = from_fns(
                |v, t| {
                    assert_eq!(t, 3, "only the scheduled slot is polled");
                    if v == 0 {
                        Action::Send(7u8)
                    } else {
                        Action::Listen
                    }
                },
                |v, _, fb| got.push((v, fb)),
            );
            sim.run_scheduled(&[(3, vec![0, 1, 2])], 10, &mut b);
            drop(b);
            got
        };
        let mut a = Sim::new(star(2), Model::Cd, 0);
        let mut b = Sim::new(star(2), Model::Cd, 0);
        let ga = dense(&mut a);
        let gb = sparse(&mut b);
        assert_eq!(ga, gb);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.meter().report().total, b.meter().report().total);
        assert_eq!(a.meter().last_active(), b.meter().last_active());
        // The sparse run batch-skipped the 9 unscheduled slots.
        assert_eq!(b.meter().idle_skipped(), 9);
    }

    #[test]
    fn run_scheduled_is_equivalent_to_the_dense_loop_on_a_relay_chain() {
        // A multi-hop relay on the path 0–1–…–5: node v transmits in slot
        // 3v once informed, node v+1 listens there; every other slot is
        // provably idle. Driven (a) slot-by-slot through `Sim::run` with
        // an explicitly idle behavior off-schedule and (b) sparsely
        // through `run_scheduled`, the two runs must agree on the final
        // informed set, every per-node energy, the total, the clock, and
        // the last active slot — with the whole difference showing up in
        // `idle_skipped` accounting.
        const N: usize = 6;
        const SLOTS: u64 = 3 * (N as u64 - 1) + 1;
        struct Relay {
            informed: Vec<bool>,
        }
        impl Relay {
            // The only possibly-active slots: sender v and listener v+1
            // in slot 3v.
            fn roles(t: u64) -> Option<(NodeId, NodeId)> {
                (t % 3 == 0 && (t / 3) as usize + 1 < N)
                    .then(|| ((t / 3) as usize, (t / 3) as usize + 1))
            }
        }
        impl SlotBehavior<u8> for Relay {
            fn act(&mut self, v: NodeId, t: u64) -> Action<u8> {
                match Relay::roles(t) {
                    Some((sender, _)) if v == sender && self.informed[v] => Action::Send(7),
                    Some((_, listener)) if v == listener => Action::Listen,
                    _ => Action::Idle,
                }
            }
            fn feedback(&mut self, v: NodeId, _t: u64, fb: Feedback<u8>) {
                if matches!(fb, Feedback::One(7)) {
                    self.informed[v] = true;
                }
            }
        }
        let path =
            || Graph::from_edges(N, &(0..N - 1).map(|v| (v, v + 1)).collect::<Vec<_>>()).unwrap();
        let fresh = || Relay {
            informed: std::iter::once(true).chain((1..N).map(|_| false)).collect(),
        };

        let mut dense_sim = Sim::new(path(), Model::NoCd, 0);
        let mut dense = fresh();
        let all: Vec<NodeId> = (0..N).collect();
        dense_sim.run(&all, SLOTS, &mut dense);

        let mut sparse_sim = Sim::new(path(), Model::NoCd, 0);
        let mut sparse = fresh();
        let schedule: Vec<(u64, Vec<NodeId>)> = (0..SLOTS)
            .filter_map(|t| Relay::roles(t).map(|(s, l)| (t, vec![s, l])))
            .collect();
        sparse_sim.run_scheduled(&schedule, SLOTS, &mut sparse);

        // The relay reached the far end both ways.
        assert_eq!(dense.informed, vec![true; N]);
        assert_eq!(sparse.informed, dense.informed, "informed sets differ");
        // Exact energy equivalence, node by node.
        for v in 0..N {
            assert_eq!(
                dense_sim.meter().energy(v),
                sparse_sim.meter().energy(v),
                "node {v} energy differs"
            );
        }
        assert_eq!(
            dense_sim.meter().total_energy(),
            sparse_sim.meter().total_energy()
        );
        assert_eq!(dense_sim.now(), sparse_sim.now());
        assert_eq!(
            dense_sim.meter().last_active(),
            sparse_sim.meter().last_active()
        );
        // idle_skipped accounts exactly for the unscheduled slots: the
        // dense loop simulated all of them, the sparse loop none.
        assert_eq!(dense_sim.meter().idle_skipped(), 0);
        assert_eq!(
            sparse_sim.meter().idle_skipped(),
            SLOTS - schedule.len() as u64
        );
    }

    #[test]
    fn dynamic_schedule_with_default_hints_matches_dense() {
        // With the default first_wake/next_wake (wake every slot), a
        // Dynamic schedule must be indistinguishable from Dense: same
        // feedback, energy, clock, and zero idle_skipped.
        let run_with = |dynamic: bool| {
            let mut sim = Sim::new(star(2), Model::Cd, 0);
            let mut got = Vec::new();
            let mut b = from_fns(
                |v, t| {
                    if v == 0 && t % 2 == 1 {
                        Action::Listen
                    } else if v != 0 && t % 2 == 1 {
                        Action::Send(v as u8)
                    } else {
                        Action::Idle
                    }
                },
                |v, t, fb| got.push((v, t, fb)),
            );
            let participants: Vec<NodeId> = vec![0, 1, 2];
            if dynamic {
                sim.drive(
                    Schedule::Dynamic {
                        participants: &participants,
                        slots: 6,
                    },
                    &mut b,
                );
            } else {
                sim.drive(
                    Schedule::Dense {
                        participants: &participants,
                        slots: 6,
                    },
                    &mut b,
                );
            }
            drop(b);
            (
                got,
                sim.now(),
                (0..3).map(|v| sim.meter().energy(v)).collect::<Vec<_>>(),
                sim.meter().idle_skipped(),
            )
        };
        assert_eq!(run_with(false), run_with(true));
    }

    #[test]
    fn dynamic_relay_chain_matches_dense_and_skips_idle_slots() {
        // The relay-chain scenario again, this time driven dynamically:
        // wake hints only skip provably-idle slots, so the informed set,
        // per-node energy, clock, and last_active must all match the dense
        // loop bit-for-bit while the host only polls the active devices.
        const N: usize = 6;
        const SLOTS: u64 = 3 * (N as u64 - 1) + 1;
        struct Relay {
            informed: Vec<bool>,
        }
        impl Relay {
            fn roles(t: u64) -> Option<(NodeId, NodeId)> {
                (t % 3 == 0 && (t / 3) as usize + 1 < N)
                    .then(|| ((t / 3) as usize, (t / 3) as usize + 1))
            }
        }
        impl SlotBehavior<u8> for Relay {
            fn act(&mut self, v: NodeId, t: u64) -> Action<u8> {
                match Relay::roles(t) {
                    Some((sender, _)) if v == sender && self.informed[v] => Action::Send(7),
                    Some((_, listener)) if v == listener => Action::Listen,
                    _ => Action::Idle,
                }
            }
            fn feedback(&mut self, v: NodeId, _t: u64, fb: Feedback<u8>) {
                if matches!(fb, Feedback::One(7)) {
                    self.informed[v] = true;
                }
            }
            // Node v's only possibly-active slots: listen at 3(v-1), send
            // at 3v (senders run 0..N-1). Every skipped slot is Idle by
            // construction and draws no randomness.
            fn first_wake(&mut self, v: NodeId) -> Option<u64> {
                if v == 0 {
                    Some(0)
                } else {
                    Some(3 * (v as u64 - 1))
                }
            }
            fn next_wake(&mut self, v: NodeId, t: u64) -> Option<u64> {
                if t == 3 * (v as u64) {
                    None // just had the send slot
                } else if v + 1 < N {
                    Some(3 * v as u64)
                } else {
                    None // the far endpoint never sends
                }
            }
        }
        let path =
            || Graph::from_edges(N, &(0..N - 1).map(|v| (v, v + 1)).collect::<Vec<_>>()).unwrap();
        let fresh = || Relay {
            informed: std::iter::once(true).chain((1..N).map(|_| false)).collect(),
        };
        let all: Vec<NodeId> = (0..N).collect();

        let mut dense_sim = Sim::new(path(), Model::NoCd, 0);
        let mut dense = fresh();
        dense_sim.drive(
            Schedule::Dense {
                participants: &all,
                slots: SLOTS,
            },
            &mut dense,
        );

        let mut dyn_sim = Sim::new(path(), Model::NoCd, 0);
        let mut dynamic = fresh();
        dyn_sim.drive(
            Schedule::Dynamic {
                participants: &all,
                slots: SLOTS,
            },
            &mut dynamic,
        );

        assert_eq!(dense.informed, vec![true; N]);
        assert_eq!(dynamic.informed, dense.informed);
        for v in 0..N {
            assert_eq!(
                dense_sim.meter().energy(v),
                dyn_sim.meter().energy(v),
                "node {v} energy differs"
            );
        }
        assert_eq!(dense_sim.now(), dyn_sim.now());
        assert_eq!(
            dense_sim.meter().last_active(),
            dyn_sim.meter().last_active()
        );
        // Slots with no pending wake were batch-skipped, not simulated.
        assert_eq!(dyn_sim.meter().idle_skipped(), 2 * (N as u64 - 1) + 1);
    }

    #[test]
    #[should_panic(expected = "non-future wake")]
    fn dynamic_rejects_non_future_wakes() {
        let mut sim = Sim::new(star(1), Model::Cd, 0);
        struct Bad;
        impl SlotBehavior<u8> for Bad {
            fn act(&mut self, _v: NodeId, _t: u64) -> Action<u8> {
                Action::Idle
            }
            fn feedback(&mut self, _v: NodeId, _t: u64, _fb: Feedback<u8>) {}
            fn next_wake(&mut self, _v: NodeId, t: u64) -> Option<u64> {
                Some(t)
            }
        }
        sim.drive(
            Schedule::Dynamic {
                participants: &[0],
                slots: 10,
            },
            &mut Bad,
        );
    }

    #[test]
    fn sparse_schedule_is_reusable_across_primitives() {
        // One SparseSchedule built once, driven twice: the second primitive
        // sees fresh 0-based local slots and the clock keeps advancing.
        let mut sparse = SparseSchedule::new();
        sparse.push(1, [0usize]);
        sparse.push(4, [0usize, 1]);
        assert_eq!(sparse.len(), 2);
        assert!(!sparse.is_empty());
        assert_eq!(sparse.total_participants(), 3);
        let rows: Vec<(Slot, Vec<NodeId>)> =
            sparse.entries().map(|(t, row)| (t, row.to_vec())).collect();
        assert_eq!(rows, vec![(1, vec![0]), (4, vec![0, 1])]);

        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let mut sim = Sim::new(g, Model::Cd, 0);
        let mut polls = Vec::new();
        let mut b = from_fns(
            |v, t| {
                polls.push((v, t));
                Action::<u8>::Idle
            },
            |_, _, _| {},
        );
        sim.drive(
            Schedule::Sparse {
                schedule: &sparse,
                slots: 6,
            },
            &mut b,
        );
        sim.drive(
            Schedule::Sparse {
                schedule: &sparse,
                slots: 6,
            },
            &mut b,
        );
        drop(b);
        assert_eq!(sim.now(), 12);
        assert_eq!(polls, vec![(0, 1), (0, 4), (1, 4), (0, 1), (0, 4), (1, 4)]);
    }

    #[test]
    fn run_reference_matches_bitset_drive() {
        // The retained iterator-based oracle and the bitset path must agree
        // exactly on a broadcast with collisions.
        let run_with = |reference: bool| {
            let mut sim = Sim::new(star(3), Model::NoCd, 0);
            let mut got = Vec::new();
            let mut b = from_fns(
                |v, t| match (v, t) {
                    (0, _) => Action::Listen,
                    (v, t) if v as u64 % 2 == t % 2 => Action::Send(v as u8),
                    _ => Action::Idle,
                },
                |v, t, fb| got.push((v, t, fb)),
            );
            let all: Vec<NodeId> = (0..4).collect();
            if reference {
                sim.run_reference(&all, 4, &mut b);
            } else {
                sim.run(&all, 4, &mut b);
            }
            drop(b);
            let energy: Vec<u64> = (0..4).map(|v| sim.meter().energy(v)).collect();
            (got, energy, sim.now(), sim.meter().last_active())
        };
        assert_eq!(run_with(true), run_with(false));
    }

    #[test]
    fn run_scheduled_batches_trailing_and_leading_gaps() {
        let mut sim = Sim::new(star(1), Model::Cd, 0);
        let mut b = from_fns(|_, _| Action::Send(1u8), |_, _, _| {});
        sim.run_scheduled(&[(100, vec![0]), (200, vec![1])], 1_000_000, &mut b);
        assert_eq!(sim.now(), 1_000_000);
        assert_eq!(sim.meter().last_active(), Some(200));
        assert_eq!(sim.meter().total_energy(), 2);
        assert_eq!(sim.meter().idle_skipped(), 1_000_000 - 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn run_scheduled_rejects_unsorted_schedules() {
        let mut sim = Sim::new(star(1), Model::Cd, 0);
        let mut b = from_fns(|_, _| Action::<u8>::Idle, |_, _, _| {});
        sim.run_scheduled(&[(5, vec![0]), (5, vec![1])], 10, &mut b);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn run_scheduled_rejects_out_of_range_slots() {
        let mut sim = Sim::new(star(1), Model::Cd, 0);
        let mut b = from_fns(|_, _| Action::<u8>::Idle, |_, _, _| {});
        sim.run_scheduled(&[(10, vec![0])], 10, &mut b);
    }

    #[test]
    fn skip_is_metered_as_idle() {
        let mut sim = Sim::new(star(1), Model::Cd, 0);
        sim.skip(42);
        assert_eq!(sim.meter().idle_skipped(), 42);
        assert_eq!(sim.meter().total_energy(), 0);
    }

    #[test]
    fn local_slot_numbers_are_zero_based_per_primitive() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let mut sim = Sim::new(g, Model::NoCd, 0);
        let mut slots_seen = Vec::new();
        let mut b = from_fns(
            |_, t| {
                slots_seen.push(t);
                Action::<u8>::Idle
            },
            |_, _, _| {},
        );
        sim.run(&[0], 2, &mut b);
        sim.run(&[0], 2, &mut b);
        drop(b);
        assert_eq!(slots_seen, vec![0, 1, 0, 1]);
        assert_eq!(sim.now(), 4);
    }

    /// Leaves send every slot, the hub listens every slot; returns the
    /// hub's per-slot feedback after `slots` slots.
    fn hub_feedback(mut sim: Sim, leaves: usize, slots: u64) -> Vec<Feedback<usize>> {
        let mut heard = Vec::new();
        let all: Vec<NodeId> = (0..=leaves).collect();
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::Listen
                } else {
                    Action::Send(v)
                }
            },
            |_, _, fb| heard.push(fb),
        );
        sim.drive(
            Schedule::Dense {
                participants: &all,
                slots,
            },
            &mut b,
        );
        drop(b);
        heard
    }

    #[test]
    fn none_plan_stores_no_fault_state() {
        let sim = Sim::with_faults(star(2), Model::Cd, 7, FaultPlan::None);
        assert!(sim.fault_state().is_none());
        assert_eq!(sim.fault_plan(), &FaultPlan::None);
        let sim = Sim::with_faults(star(2), Model::Cd, 7, FaultPlan::SlotLoss { p: 0.5 });
        assert_eq!(sim.fault_plan().name(), "slot-loss");
        assert!(sim.fault_state().is_some());
    }

    #[test]
    fn certain_slot_loss_silences_every_delivery_but_charges_senders() {
        let sim = Sim::with_faults(star(1), Model::Cd, 3, FaultPlan::SlotLoss { p: 1.0 });
        let heard = hub_feedback(sim, 1, 4);
        assert_eq!(heard, vec![Feedback::Silence; 4]);
    }

    #[test]
    fn slot_loss_retry_energy_is_charged_and_tallied() {
        let mut sim = Sim::with_faults(star(1), Model::Cd, 3, FaultPlan::SlotLoss { p: 1.0 });
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::Listen
                } else {
                    Action::Send(1u8)
                }
            },
            |_, _, _| {},
        );
        sim.drive(
            Schedule::Dense {
                participants: &[0, 1],
                slots: 5,
            },
            &mut b,
        );
        drop(b);
        // The sender paid for all 5 attempts; all 5 were destroyed.
        assert_eq!(sim.meter().sends(1), 5);
        assert_eq!(sim.meter().lost_sends(1), 5);
        assert_eq!(sim.meter().report().lost_sends, 5);
        // The listener still paid to listen to silence.
        assert_eq!(sim.meter().listens(0), 5);
    }

    #[test]
    fn certain_edge_loss_silences_deliveries_per_edge() {
        let sim = Sim::with_faults(star(1), Model::Cd, 3, FaultPlan::EdgeLoss { p: 1.0 });
        let heard = hub_feedback(sim, 1, 4);
        assert_eq!(heard, vec![Feedback::Silence; 4]);
    }

    #[test]
    fn crashed_device_is_masked_out_of_polls_energy_and_resolution() {
        // Leaf 1 crashes at global slot 2 of 6: it transmits (and pays)
        // only before the crash, and the hub hears it collide with leaf 2
        // only while it is still up.
        let sim = Sim::with_faults(
            star(2),
            Model::Cd,
            3,
            FaultPlan::Crash {
                schedule: vec![(2, 1)],
            },
        );
        let heard = hub_feedback(sim, 2, 6);
        assert_eq!(heard[0], Feedback::Noise);
        assert_eq!(heard[1], Feedback::Noise);
        // From slot 2 on only leaf 2 transmits: a clean single delivery.
        assert!(heard[2..].iter().all(|fb| *fb == Feedback::One(2)));
    }

    #[test]
    fn crash_energy_stops_at_the_crash_slot() {
        let mut sim = Sim::with_faults(
            star(1),
            Model::Cd,
            3,
            FaultPlan::Crash {
                schedule: vec![(3, 1)],
            },
        );
        let mut b = from_fns(
            |v, _| {
                if v == 0 {
                    Action::Listen
                } else {
                    Action::Send(1u8)
                }
            },
            |_, _, _| {},
        );
        sim.drive(
            Schedule::Dense {
                participants: &[0, 1],
                slots: 10,
            },
            &mut b,
        );
        drop(b);
        assert_eq!(sim.meter().sends(1), 3, "no polls after the crash");
        assert_eq!(sim.meter().listens(0), 10, "the hub stays up");
    }

    #[test]
    fn churned_device_misses_the_down_window_then_rejoins() {
        let sim = Sim::with_faults(
            star(1),
            Model::Cd,
            3,
            FaultPlan::Churn {
                leave: vec![(1, 1)],
                join: vec![(3, 1)],
            },
        );
        let heard = hub_feedback(sim, 1, 5);
        assert_eq!(
            heard,
            vec![
                Feedback::One(1),
                Feedback::Silence,
                Feedback::Silence,
                Feedback::One(1),
                Feedback::One(1),
            ]
        );
    }

    #[test]
    fn reactive_jammer_spends_budget_only_on_observed_transmissions() {
        let mut sim = Sim::with_faults(
            star(1),
            Model::Cd,
            3,
            FaultPlan::Jammer {
                budget: 2,
                strategy: JammerStrategy::Reactive,
            },
        );
        let mut heard = Vec::new();
        // The leaf transmits only in slots 2, 4, 6; the hub always listens.
        let mut b = from_fns(
            |v, t| {
                if v == 0 {
                    Action::Listen
                } else if t % 2 == 0 && t > 0 {
                    Action::Send(1u8)
                } else {
                    Action::Idle
                }
            },
            |_, _, fb| heard.push(fb),
        );
        sim.drive(
            Schedule::Dense {
                participants: &[0, 1],
                slots: 8,
            },
            &mut b,
        );
        drop(b);
        // Budget 2 hits the first two transmissions; the third gets through.
        assert_eq!(heard[2], Feedback::Noise);
        assert_eq!(heard[4], Feedback::Noise);
        assert_eq!(heard[6], Feedback::One(1));
        assert_eq!(sim.fault_state().unwrap().jam_budget(), 0);
        assert_eq!(sim.meter().total_lost_sends(), 2);
    }

    #[test]
    fn periodic_jammer_budget_is_schedule_shape_invariant() {
        // A jammer with period 1 (every observed slot) and budget 2 must
        // spend the same two units whether idle stretches are simulated
        // (dense) or batch-skipped (sparse): unobserved slots are free.
        let run = |sparse: bool| -> Vec<Feedback<u8>> {
            let mut sim = Sim::with_faults(
                star(1),
                Model::Cd,
                3,
                FaultPlan::Jammer {
                    budget: 2,
                    strategy: JammerStrategy::Periodic { period: 1 },
                },
            );
            let mut heard = Vec::new();
            let active = [2u64, 5, 9];
            let mut b = from_fns(
                |v, t| {
                    if !active.contains(&t) {
                        Action::Idle
                    } else if v == 0 {
                        Action::Listen
                    } else {
                        Action::Send(1u8)
                    }
                },
                |_, _, fb| heard.push(fb),
            );
            if sparse {
                let mut sched = SparseSchedule::new();
                for &t in &active {
                    sched.push(t, [0, 1]);
                }
                sim.drive(
                    Schedule::Sparse {
                        schedule: &sched,
                        slots: 12,
                    },
                    &mut b,
                );
            } else {
                sim.drive(
                    Schedule::Dense {
                        participants: &[0, 1],
                        slots: 12,
                    },
                    &mut b,
                );
            }
            drop(b);
            heard
        };
        let dense = run(false);
        let sparse = run(true);
        assert_eq!(dense, sparse);
        assert_eq!(
            dense,
            vec![Feedback::Noise, Feedback::Noise, Feedback::One(1)]
        );
    }

    #[test]
    fn fault_events_fire_even_across_batch_skipped_ranges() {
        // The crash lands at slot 50, inside a skipped stretch: the next
        // simulated slot must still see the device down.
        let sim_run = |crash_at: u64| -> Vec<Feedback<u8>> {
            let mut sim = Sim::with_faults(
                star(1),
                Model::Cd,
                3,
                FaultPlan::Crash {
                    schedule: vec![(crash_at, 1)],
                },
            );
            let mut heard = Vec::new();
            let mut sched = SparseSchedule::new();
            sched.push(100, [0, 1]);
            let mut b = from_fns(
                |v, _| {
                    if v == 0 {
                        Action::Listen
                    } else {
                        Action::Send(1u8)
                    }
                },
                |_, _, fb| heard.push(fb),
            );
            sim.drive(
                Schedule::Sparse {
                    schedule: &sched,
                    slots: 101,
                },
                &mut b,
            );
            drop(b);
            heard
        };
        assert_eq!(sim_run(50), vec![Feedback::Silence]);
        assert_eq!(sim_run(200), vec![Feedback::One(1)]);
    }
}
