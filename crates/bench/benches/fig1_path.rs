//! `cargo bench` target regenerating this experiment's table and
//! `BENCH_fig1_path.json` (in the current directory).
fn main() {
    let spec = ebc_bench::find_experiment("fig1_path").expect("registered experiment");
    let config = ebc_bench::RunConfig::default();
    ebc_bench::run_to_files(spec, &config, std::path::Path::new(".")).expect("write results");
}
