//! `cargo bench` target regenerating this experiment's table.
fn main() {
    ebc_bench::e10_fig1_path();
}
