//! `cargo bench` target regenerating this experiment's table.
fn main() {
    ebc_bench::e6_table1_cdfast();
}
