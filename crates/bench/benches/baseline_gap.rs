//! `cargo bench` target regenerating this experiment's table.
fn main() {
    ebc_bench::e13_baseline_gap();
}
