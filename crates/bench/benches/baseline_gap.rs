//! `cargo bench` target regenerating this experiment's table and
//! `BENCH_baseline_gap.json` (in the current directory).
fn main() {
    let spec = ebc_bench::find_experiment("baseline_gap").expect("registered experiment");
    let config = ebc_bench::RunConfig::default();
    ebc_bench::run_to_files(spec, &config, std::path::Path::new(".")).expect("write results");
}
