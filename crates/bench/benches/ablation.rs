//! `cargo bench` target regenerating this experiment's table.
fn main() {
    ebc_bench::e12_ablation();
}
