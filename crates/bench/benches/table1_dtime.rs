//! `cargo bench` target regenerating this experiment's table.
fn main() {
    ebc_bench::e2_table1_dtime();
}
