//! Criterion slots-per-second benchmark of the two engine cores: the
//! retained dense reference loop (`Sim::run_reference`, per-listener
//! neighbor iteration) against the word-parallel bitset engine behind
//! [`Sim::drive`] — the tentpole's before/after pair.
//!
//! Each size runs a fixed number of dense slots per iteration (scaled so
//! one iteration stays in the milliseconds), so slots/s is
//! `slots × 10⁹ / (ns/iter)` with the slot count in the benchmark id.
//! The workload is deterministic — every 16th vertex (rotating with the
//! slot index) transmits while the rest listen — so both cores resolve
//! the same collision pattern and the comparison is allocation-free.

use criterion::{criterion_group, criterion_main, Criterion};
use ebc_graphs::families::Family;
use ebc_radio::{Action, Feedback, Model, NodeId, Schedule, Sim};
use std::sync::Arc;

/// `(n requested, dense slots per iteration)`: 2^10, 2^16, and the
/// million-node tier (2^20 − 1 vertices — the complete-binary-tree
/// generator's exact size).
const SIZES: &[(usize, u64)] = &[(1 << 10, 512), (1 << 16, 16), (1048575, 4)];

fn graph_for(n: usize) -> Arc<ebc_radio::Graph> {
    Arc::new(Family::BinaryTree.instance(n, 0xebc0 + n as u64).graph)
}

/// One deterministic engine workload: vertices with `(v + t) % 16 == 0`
/// send, everyone else listens.
fn workload(n: usize) -> impl FnMut(NodeId, u64) -> Action<u8> {
    debug_assert!(n >= 16);
    move |v, t| {
        if (v as u64 + t) % 16 == 0 {
            Action::Send(1u8)
        } else {
            Action::Listen
        }
    }
}

fn bench_engines(c: &mut Criterion) {
    for &(n, slots) in SIZES {
        let graph = graph_for(n);
        let all: Vec<NodeId> = (0..graph.n()).collect();
        let nv = graph.n();

        c.bench_function(&format!("engine_dense_n{nv}_slots{slots}"), |b| {
            let mut sim = Sim::new(Arc::clone(&graph), Model::NoCd, 0);
            b.iter(|| {
                let mut heard = 0u64;
                let mut behavior = ebc_radio::from_fns(workload(nv), |_v, _t, fb| {
                    if !matches!(fb, Feedback::Silence) {
                        heard += 1;
                    }
                });
                sim.run_reference(&all, slots, &mut behavior);
                drop(behavior);
                heard
            })
        });

        c.bench_function(&format!("engine_bitset_n{nv}_slots{slots}"), |b| {
            let mut sim = Sim::new(Arc::clone(&graph), Model::NoCd, 0);
            b.iter(|| {
                let mut heard = 0u64;
                let mut behavior = ebc_radio::from_fns(workload(nv), |_v, _t, fb| {
                    if !matches!(fb, Feedback::Silence) {
                        heard += 1;
                    }
                });
                sim.drive(
                    Schedule::Dense {
                        participants: &all,
                        slots,
                    },
                    &mut behavior,
                );
                drop(behavior);
                heard
            })
        });
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
