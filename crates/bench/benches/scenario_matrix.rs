//! `cargo bench` target regenerating the full scenario matrix and
//! `BENCH_scenario_matrix.json` (in the current directory).
fn main() {
    let spec = ebc_bench::find_experiment("scenario_matrix").expect("registered experiment");
    let config = ebc_bench::RunConfig::default();
    ebc_bench::run_to_files(spec, &config, std::path::Path::new(".")).expect("write results");
}
