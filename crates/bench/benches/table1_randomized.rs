//! `cargo bench` target regenerating this experiment's table.
fn main() {
    ebc_bench::e1_table1_randomized();
}
