//! `cargo bench` target regenerating this experiment's table.
fn main() {
    ebc_bench::e3_table1_bounded();
}
