//! Criterion micro-benchmarks of the simulator substrate: wall-clock cost
//! of channel resolution, decay SR-communication, and deterministic SR —
//! the inner loops every experiment above rests on.

use criterion::{criterion_group, criterion_main, Criterion};
use ebc_core::srcomm::{det_sr, Sr};
use ebc_core::util::NodeRngs;
use ebc_graphs::deterministic::star;
use ebc_radio::{Model, NodeId, Sim};

fn bench_decay_sr(c: &mut Criterion) {
    let delta = 64;
    let g = star(delta);
    let senders: Vec<(NodeId, u32)> = (1..=delta).map(|v| (v, v as u32)).collect();
    c.bench_function("decay_sr_star64", |b| {
        b.iter(|| {
            let mut sim = Sim::new(g.clone(), Model::NoCd, 5);
            let sr = Sr::Decay { delta, sweeps: 10 };
            let got = sr.run(
                &mut sim,
                &senders,
                &[0],
                &mut NodeRngs::new(5, delta + 1, 1),
            );
            std::hint::black_box(got)
        })
    });
}

fn bench_cd_sr(c: &mut Criterion) {
    let delta = 64;
    let g = star(delta);
    let senders: Vec<(NodeId, u32)> = (1..=delta).map(|v| (v, v as u32)).collect();
    c.bench_function("cd_transform_sr_star64", |b| {
        b.iter(|| {
            let mut sim = Sim::new(g.clone(), Model::Cd, 5);
            let sr = Sr::CdTransform {
                delta,
                epochs: 20,
                relevance_check: false,
            };
            let got = sr.run(
                &mut sim,
                &senders,
                &[0],
                &mut NodeRngs::new(5, delta + 1, 1),
            );
            std::hint::black_box(got)
        })
    });
}

fn bench_det_sr(c: &mut Criterion) {
    let delta = 64;
    let g = star(delta);
    let senders: Vec<(NodeId, u64)> = (1..=delta).map(|v| (v, v as u64)).collect();
    c.bench_function("det_sr_star64_space1024", |b| {
        b.iter(|| {
            let mut sim = Sim::new(g.clone(), Model::Cd, 0);
            std::hint::black_box(det_sr(&mut sim, &senders, &[0], 1024))
        })
    });
}

criterion_group!(benches, bench_decay_sr, bench_cd_sr, bench_det_sr);
criterion_main!(benches);
