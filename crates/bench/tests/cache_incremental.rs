//! End-to-end incremental-sweep checks through the public API: a cold
//! run populates the cell cache, a warm run under identical config and
//! sources re-executes nothing, and the emitted documents stay
//! bit-identical either way — the cache must be invisible in every
//! output except its own counters.

use ebc_bench::baseline::baseline_doc;
use ebc_bench::measure::RunConfig;
use ebc_bench::{find_experiment, run_experiment};

fn quick_config(cache_dir: &std::path::Path) -> RunConfig {
    RunConfig {
        seeds: Some(2),
        quick: true,
        cache_dir: Some(cache_dir.to_path_buf()),
        ..RunConfig::default()
    }
}

#[test]
fn warm_rerun_executes_zero_cells_and_emits_identical_documents() {
    let dir = std::env::temp_dir().join("ebc_cache_incremental");
    std::fs::remove_dir_all(&dir).ok();
    let spec = find_experiment("table1_det").unwrap();
    let config = quick_config(&dir);

    let cold = run_experiment(spec, &config);
    let stats = cold.cache.expect("cache configured");
    assert_eq!(stats.hits, 0, "cold run cannot hit");
    assert_eq!(stats.misses, cold.cases.len());
    assert_eq!(stats.invalidated, 0);
    assert!(!cold.cases.is_empty());

    let warm = run_experiment(spec, &config);
    let stats = warm.cache.expect("cache configured");
    assert_eq!(stats.misses, 0, "warm run must re-execute nothing");
    assert_eq!(stats.invalidated, 0);
    assert_eq!(stats.hits, warm.cases.len());

    // The wall-clock profile tells the same story: every warm cell is
    // marked cached with exactly zero sim time (nothing executed), which
    // is what CI's warm-gate assertion on BENCH_profile.json reads.
    assert_eq!(warm.profile.cells.len(), warm.cases.len());
    for cell in &warm.profile.cells {
        assert!(
            cell.cached,
            "warm cell {} not served from cache",
            cell.label
        );
        assert_eq!(
            cell.sim,
            std::time::Duration::ZERO,
            "warm cell {} spent sim time",
            cell.label
        );
    }
    let cold_sim = cold.profile.totals().1;
    assert!(cold_sim > std::time::Duration::ZERO, "cold run simulated");

    // Loaded cells must be indistinguishable from executed ones: same
    // result JSON (modulo the cache counters) and same baseline doc,
    // which is what the gate diffs against.
    let strip = |r: &ebc_bench::ExperimentResult| {
        let mut r = clone_result(r);
        r.cache = None;
        r.to_json().to_string_pretty()
    };
    assert_eq!(strip(&cold), strip(&warm));
    assert_eq!(
        baseline_doc(&cold).to_string_pretty(),
        baseline_doc(&warm).to_string_pretty()
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn uncached_and_cached_runs_agree() {
    let dir = std::env::temp_dir().join("ebc_cache_vs_uncached");
    std::fs::remove_dir_all(&dir).ok();
    let spec = find_experiment("fig1_path").unwrap();

    let cached = run_experiment(spec, &quick_config(&dir));
    assert!(cached.cache.is_some());
    let uncached = run_experiment(
        spec,
        &RunConfig {
            seeds: Some(2),
            quick: true,
            ..RunConfig::default()
        },
    );
    assert!(uncached.cache.is_none());
    assert_eq!(
        baseline_doc(&cached).to_string_pretty(),
        baseline_doc(&uncached).to_string_pretty()
    );

    std::fs::remove_dir_all(&dir).ok();
}

fn clone_result(r: &ebc_bench::ExperimentResult) -> ebc_bench::ExperimentResult {
    ebc_bench::ExperimentResult {
        spec: r.spec,
        config: r.config.clone(),
        cases: r.cases.clone(),
        extra: r.extra.clone(),
        cache: r.cache,
        profile: r.profile.clone(),
    }
}
