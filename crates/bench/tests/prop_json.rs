//! Property tests on the hand-rolled JSON layer: `Json::parse` must
//! invert the serializer over the whole document space the harness can
//! emit — nested arrays/objects, escaped strings (quotes, backslashes,
//! control characters, unicode), both number flavors, and the documented
//! non-finite-float normalization (`NaN`/`±inf` serialize as `null`).
//!
//! The baseline gate *parses its own emissions back*, so any value the
//! serializer can produce but the parser mangles would silently corrupt
//! the gate.

use ebc_bench::json::Json;
use proptest::prelude::*;

/// Splitmix-style step for the deterministic document builder.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A string exercising the escaper: plain ASCII, quotes, backslashes,
/// newlines/tabs, raw control characters, and multi-byte unicode.
fn arb_string(state: &mut u64) -> String {
    const ALPHABET: &[&str] = &[
        "a", "Z", "0", " ", "\"", "\\", "\n", "\r", "\t", "\u{8}", "\u{c}", "\u{1}", "\u{1f}", "é",
        "∆", "エ", "/", "{", "]", ":", ",",
    ];
    let len = (mix(state) % 12) as usize;
    (0..len)
        .map(|_| ALPHABET[(mix(state) as usize) % ALPHABET.len()])
        .collect()
}

/// A finite float (re-rolls the odd non-finite bit pattern).
fn arb_finite_f64(state: &mut u64) -> f64 {
    loop {
        let x = f64::from_bits(mix(state));
        if x.is_finite() {
            return x;
        }
    }
}

/// An arbitrary document of bounded depth. Leaves at depth 0.
fn arb_json(state: &mut u64, depth: u32) -> Json {
    let choice = mix(state) % if depth == 0 { 5 } else { 7 };
    match choice {
        0 => Json::Null,
        1 => Json::Bool(mix(state) % 2 == 0),
        2 => Json::Int(mix(state) as i64),
        3 => Json::Num(arb_finite_f64(state)),
        4 => Json::Str(arb_string(state)),
        5 => {
            let len = (mix(state) % 4) as usize;
            Json::Arr((0..len).map(|_| arb_json(state, depth - 1)).collect())
        }
        _ => {
            let len = (mix(state) % 4) as usize;
            Json::Obj(
                (0..len)
                    .map(|_| (arb_string(state), arb_json(state, depth - 1)))
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_inverts_emit_over_arbitrary_documents(seed in any::<u64>()) {
        let mut state = seed;
        let doc = arb_json(&mut state, 3);
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text)
            .unwrap_or_else(|e| panic!("emitted unparseable JSON ({e}):\n{text}"));
        prop_assert_eq!(&parsed, &doc, "round trip changed the document:\n{}", text);
        // And re-serialization is byte-identical — the property that keeps
        // checked-in baselines diff-stable.
        prop_assert_eq!(parsed.to_string_pretty(), text);
    }

    #[test]
    fn nonfinite_floats_normalize_to_null(seed in any::<u64>()) {
        // The documented lossy edge: non-finite numbers serialize as
        // `null` (as serde_json does in lossy mode), so they come back as
        // Json::Null — never as a parse error or a mangled number.
        let mut state = seed;
        let x = match mix(&mut state) % 3 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        let doc = Json::Obj(vec![
            ("bad".to_string(), Json::Num(x)),
            ("good".to_string(), Json::Num(arb_finite_f64(&mut state))),
        ]);
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        prop_assert_eq!(parsed.get("bad"), Some(&Json::Null));
        prop_assert!(parsed.get("good").unwrap().as_f64().is_some());
    }
}
