//! Round-trips the telemetry layer's Chrome trace-event export through
//! the bench crate's JSON parser — the same parser `--serve`'s
//! `telemetry` verb and CI's smoke validation read the file with. A
//! malformed export (bad escaping, missing required fields, spans that
//! don't nest) fails here before it fails inside Perfetto.

use ebc_bench::json::Json;
use ebc_core::suite::by_name;
use ebc_graphs::deterministic::cycle;
use ebc_radio::{Model, Sim};

/// One traced run of a real algorithm with nested protocol phases.
fn traced_run() -> ebc_radio::Telemetry {
    let graph = cycle(24);
    let mut sim = Sim::new(graph, Model::Cd, 11);
    sim.enable_telemetry();
    let alg = by_name("theorem11").expect("registered");
    alg.run(&mut sim, 0);
    sim.take_telemetry().expect("telemetry enabled")
}

#[test]
fn chrome_trace_round_trips_through_the_json_parser() {
    let tel = traced_run();
    let doc = Json::parse(&tel.chrome_trace()).expect("exporter must emit valid JSON");

    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("top-level traceEvents array");
    assert!(!events.is_empty());

    let mut spans = Vec::new();
    for ev in events {
        // Every event carries the fields the trace viewers key on.
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .expect("every event has a ph");
        assert!(ev.get("pid").is_some(), "every event has a pid");
        match ph {
            "M" => {} // metadata events carry no timestamp
            "X" => {
                let ts = ev.get("ts").and_then(Json::as_f64).expect("span ts");
                let dur = ev.get("dur").and_then(Json::as_f64).expect("span dur");
                assert!(dur >= 0.0);
                let name = ev.get("name").and_then(Json::as_str).expect("span name");
                spans.push((name.to_string(), ts, ts + dur));
            }
            "C" | "i" => {
                assert!(ev.get("ts").and_then(Json::as_f64).is_some(), "{ph} ts");
                assert!(ev.get("name").is_some(), "{ph} name");
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }

    // The run produced real protocol phases: the adapter's top-level span
    // plus nested internals, and the parsed intervals actually nest — an
    // inner span never crosses the top-level one's boundary.
    let (top_name, top_start, top_end) = spans
        .iter()
        .cloned()
        .max_by(|a, b| (a.2 - a.1).total_cmp(&(b.2 - b.1)))
        .expect("at least one span");
    assert_eq!(top_name, "theorem11");
    assert!(spans.len() > 1, "no nested phase spans");
    for (name, start, end) in &spans {
        assert!(
            *start >= top_start && *end <= top_end,
            "span {name} [{start}, {end}] escapes the top-level \
             {top_name} [{top_start}, {top_end}]"
        );
    }
    assert!(
        spans.iter().any(|(name, _, _)| name == "relabel"),
        "theorem11's relabel phase missing: {spans:?}"
    );
}

#[test]
fn jsonl_export_round_trips_line_by_line() {
    let tel = traced_run();
    let jsonl = tel.to_jsonl();
    let mut kinds = Vec::new();
    for line in jsonl.lines() {
        let row = Json::parse(line).expect("every JSONL line parses alone");
        let kind = row
            .get("type")
            .and_then(Json::as_str)
            .expect("every row is typed")
            .to_string();
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    assert!(kinds.contains(&"meta".to_string()), "{kinds:?}");
    assert!(kinds.contains(&"span".to_string()), "{kinds:?}");
    assert!(kinds.contains(&"counters".to_string()), "{kinds:?}");
    assert!(kinds.contains(&"event".to_string()), "{kinds:?}");
}
