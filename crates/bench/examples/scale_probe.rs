//! Ad-hoc wall-clock probe for the headline large-n cells.
//!
//! `cargo run --release -p ebc-bench --example scale_probe [n...]`

use std::sync::Arc;
use std::time::Instant;

use ebc_core::suite::by_name;
use ebc_graphs::families::Family;
use ebc_radio::{Model, Sim};

fn main() {
    let sizes: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("size"))
        .collect();
    let sizes = if sizes.is_empty() {
        vec![4096, 65536, 1048575]
    } else {
        sizes
    };
    let cells = [
        ("naive_flood", Model::Local),
        ("theorem11", Model::Local),
        ("theorem12", Model::Cd),
    ];
    for &n in &sizes {
        let t0 = Instant::now();
        let graph = Arc::new(Family::BinaryTree.instance(n, 0xebc0 + n as u64).graph);
        println!(
            "n={} built ({} vertices) in {:?}",
            n,
            graph.n(),
            t0.elapsed()
        );
        for (name, model) in cells {
            let alg = by_name(name).unwrap();
            let t0 = Instant::now();
            let mut sim = Sim::new(Arc::clone(&graph), model, 1000);
            let out = alg.run(&mut sim, 0);
            println!(
                "  {name:<12} n={n} time={:?} informed={} slots={}",
                t0.elapsed(),
                out.all_informed(),
                sim.now()
            );
        }
    }
}
