//! Ad-hoc probe: cost of one big CD SR round and its setup pieces.
//!
//! `cargo run --release -p ebc-bench --example sr_probe`

use std::sync::Arc;
use std::time::Instant;

use ebc_core::srcomm::Sr;
use ebc_core::util::{IdIndex, NodeRngs};
use ebc_graphs::families::Family;
use ebc_radio::{Model, NodeId, Sim};

fn main() {
    let graph = Arc::new(Family::BinaryTree.instance(131071, 0xebc0).graph);
    let n = graph.n();
    let mut sim = Sim::new(Arc::clone(&graph), Model::Cd, 0);
    let mut rngs = NodeRngs::new(1, n, 7);
    let sr = Sr::CdTransform {
        delta: 3,
        epochs: 46,
        relevance_check: true,
    };
    let senders: Vec<(NodeId, u32)> = (0..n).step_by(2).map(|v| (v, 1u32)).collect();
    let receivers: Vec<NodeId> = (1..n).step_by(2).collect();

    let t0 = Instant::now();
    let reps = 20;
    for _ in 0..reps {
        let got = sr.run(&mut sim, &senders, &receivers, &mut rngs);
        std::hint::black_box(got.len());
    }
    println!(
        "sr.run (|S|={} |R|={}): {:?}/round",
        senders.len(),
        receivers.len(),
        t0.elapsed() / reps
    );

    let t0 = Instant::now();
    for _ in 0..reps {
        let idx = IdIndex::new(senders.iter().map(|(v, _)| *v));
        std::hint::black_box(idx.len());
    }
    println!("IdIndex::new(65k sorted): {:?}", t0.elapsed() / reps);

    // Component costs at the poll scale of one big round (~6M polls).
    let polls = 6_000_000u64;
    let send_index = IdIndex::new(senders.iter().map(|(v, _)| *v));
    let t0 = Instant::now();
    let mut acc = 0usize;
    for i in 0..polls {
        acc = acc.wrapping_add(
            send_index
                .get(((i * 2) % n as u64) as usize)
                .unwrap_or(usize::MAX),
        );
    }
    std::hint::black_box(acc);
    println!("IdIndex.get x{polls}: {:?}", t0.elapsed());

    let t0 = Instant::now();
    let mut hits = 0u64;
    {
        use rand::Rng;
        for i in 0..polls {
            let v = ((i * 2) % n as u64) as usize;
            if rngs.get(v).gen_bool(0.25) {
                hits += 1;
            }
        }
    }
    std::hint::black_box(hits);
    println!("rngs.get+gen_bool x{polls}: {:?}", t0.elapsed());

    // Raw engine cost: same wake pattern, trivial behavior (all senders
    // wake every slot, no receivers).
    let all: Vec<NodeId> = (0..n).collect();
    let mut beh = ebc_radio::from_fns(
        |_v, _t| ebc_radio::Action::Send(1u8),
        |_v, _t, _fb: ebc_radio::Feedback<u8>| {},
    );
    let t0 = Instant::now();
    sim.drive(
        ebc_radio::Schedule::Dense {
            participants: &all,
            slots: 46,
        },
        &mut beh,
    );
    println!(
        "dense all-send 46 slots ({} polls): {:?}",
        46 * n,
        t0.elapsed()
    );

    // A second shape: few senders, many receivers (early down rounds).
    let senders2: Vec<(NodeId, u32)> = (0..64).map(|v| (v, 1u32)).collect();
    let receivers2: Vec<NodeId> = (64..n).collect();
    let t0 = Instant::now();
    for _ in 0..reps {
        let got = sr.run(&mut sim, &senders2, &receivers2, &mut rngs);
        std::hint::black_box(got.len());
    }
    println!(
        "sr.run (|S|=64 |R|={}): {:?}/round",
        receivers2.len(),
        t0.elapsed() / reps
    );
    println!("clock {}", sim.now());
}
