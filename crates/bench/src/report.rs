//! Human-readable rendering of experiment results: one aligned table per
//! experiment (params on the left, metric summaries on the right), the
//! paper bound above, the expected shape below.
//!
//! Each metric gets two columns: its per-seed `mean ±std_dev`, and the
//! width of the bootstrap 95% CI on that mean (`ci95w`, blank for
//! single-seed cases) — a direct read on how much of a cell's value is
//! seed noise. The resample count follows the run's `--resamples` knob.

use crate::experiments::ExperimentResult;
use crate::json::Json;
use crate::stats;

/// Renders `result` as an aligned text table.
pub fn render(result: &ExperimentResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\n=== {} — {} ===\n",
        result.spec.name, result.spec.title
    ));
    out.push_str(&format!("paper: {}\n", result.spec.paper));

    // Column layout: union of param keys, then union of metric names.
    let mut param_keys: Vec<&'static str> = Vec::new();
    let mut metric_keys: Vec<&'static str> = Vec::new();
    for case in &result.cases {
        for (k, _) in &case.params {
            if !param_keys.contains(k) {
                param_keys.push(k);
            }
        }
        for (k, _) in &case.summary.metrics {
            if !metric_keys.contains(k) {
                metric_keys.push(k);
            }
        }
    }

    let resamples = result.config.resamples();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let header: Vec<String> = param_keys
        .iter()
        .map(|k| k.to_string())
        .chain(
            metric_keys
                .iter()
                .flat_map(|k| [format!("{k} (mean)"), format!("{k} (ci95w)")]),
        )
        .collect();
    for case in &result.cases {
        let mut row: Vec<String> = Vec::new();
        for key in &param_keys {
            row.push(
                case.params
                    .iter()
                    .find(|(k, _)| k == key)
                    .map_or(String::new(), |(_, v)| render_param(v)),
            );
        }
        // The bootstrap streams are seeded from the case identity, so the
        // rendered CI widths reproduce across reruns and machines.
        let identity: String = case
            .params
            .iter()
            .map(|(k, v)| format!("{k}={}", render_param(v)))
            .collect::<Vec<_>>()
            .join("/");
        for key in &metric_keys {
            row.push(case.summary.metric(key).map_or(String::new(), |s| {
                if s.min == s.max {
                    format_num(s.mean)
                } else {
                    format!("{} ±{}", format_num(s.mean), format_num(s.std_dev))
                }
            }));
            let values = case.metric_values(key);
            let ci = if values.len() >= 2 {
                let seed = stats::seed_from_parts(&[result.spec.name, &identity, key]);
                stats::bootstrap_ci(&values, resamples, seed, |xs| {
                    xs.iter().sum::<f64>() / xs.len() as f64
                })
            } else {
                None
            };
            row.push(ci.map_or(String::new(), |(lo, hi)| format_num(hi - lo)));
        }
        rows.push(row);
    }

    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r[i].chars().count())
                .max()
                .unwrap_or(0)
                .max(h.chars().count())
        })
        .collect();
    let render_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&render_row(&header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in &rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out.push_str(&format!("shape: {}\n", result.spec.note));
    if let Some(cache) = &result.cache {
        out.push_str(&format!(
            "cache: {} hits, {} misses, {} invalidated ({} executed)\n",
            cache.hits,
            cache.misses,
            cache.invalidated,
            cache.executed()
        ));
    }
    // Experiment-specific top-level fields (e.g. the scenario matrix's
    // skip accounting) — scalars and flat objects, one line each.
    for (key, value) in &result.extra {
        if *key == "fits" {
            out.push_str(&render_fits_summary(value));
            continue;
        }
        match value {
            Json::Obj(pairs)
                if pairs
                    .iter()
                    .all(|(_, v)| !matches!(v, Json::Obj(_) | Json::Arr(_))) =>
            {
                let body: Vec<String> = pairs
                    .iter()
                    .map(|(k, v)| format!("{k}={}", render_param(v)))
                    .collect();
                out.push_str(&format!("{key}: {}\n", body.join(" ")));
            }
            Json::Arr(_) | Json::Obj(_) => {}
            scalar => out.push_str(&format!("{key}: {}\n", render_param(scalar))),
        }
    }
    out
}

/// One line breaking the run's wall-clock into graph build / sim /
/// analysis / cache time — the same totals `BENCH_profile.json` records
/// for this experiment. Kept out of [`render`] because wall-clock varies
/// between reruns while the rendered table must not; empty when the run
/// profiled no cells.
pub fn render_profile(result: &ExperimentResult) -> String {
    if result.profile.cells.is_empty() {
        return String::new();
    }
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let (build, sim, cache) = result.profile.totals();
    let analysis = result.profile.analysis;
    format!(
        "profile: {} cells — build {:.1}ms, sim {:.1}ms, analysis {:.1}ms, \
         cache {:.1}ms (total {:.1}ms)\n",
        result.profile.cells.len(),
        ms(build),
        ms(sim),
        ms(analysis),
        ms(cache),
        ms(build + sim + analysis + cache)
    )
}

/// One line summarizing the scaling fits: how the cells' `energy_max`
/// growth classifies, plus the truncation count.
fn render_fits_summary(fits: &Json) -> String {
    let Some(cells) = fits.as_arr() else {
        return String::new();
    };
    let mut by_class: Vec<(String, usize)> = Vec::new();
    let mut truncated = 0usize;
    for cell in cells {
        if cell.get("truncated") == Some(&Json::Bool(true)) {
            truncated += 1;
        }
        let class = cell
            .get("metrics")
            .and_then(|m| m.get("energy_max"))
            .and_then(|m| m.get("class"))
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        match by_class.iter_mut().find(|(c, _)| *c == class) {
            Some((_, n)) => *n += 1,
            None => by_class.push((class, 1)),
        }
    }
    let breakdown: Vec<String> = by_class.iter().map(|(c, n)| format!("{n} {c}")).collect();
    format!(
        "fits: {} cells (energy_max: {}; {} truncated by budget)\n",
        cells.len(),
        breakdown.join(", "),
        truncated
    )
}

fn render_param(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        Json::Int(i) => i.to_string(),
        Json::Num(x) => format_num(*x),
        Json::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

fn format_num(x: f64) -> String {
    if !x.is_finite() {
        "-".to_string()
    } else if x == x.trunc() && x.abs() < 1e12 {
        format!("{x:.0}")
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{find_experiment, run_experiment};
    use crate::measure::RunConfig;

    #[test]
    fn render_contains_params_and_metrics() {
        let config = RunConfig {
            seeds: Some(1),
            quick: true,
            ..RunConfig::default()
        };
        let result = run_experiment(find_experiment("table1_det").unwrap(), &config);
        let text = render(&result);
        assert!(text.contains("theorem25"), "{text}");
        assert!(text.contains("energy_max"), "{text}");
        assert!(text.contains("shape:"), "{text}");
        // Every metric gets its bootstrap-CI-width companion column.
        assert!(text.contains("energy_max (ci95w)"), "{text}");
        // The wall-clock breakdown is rendered separately (it varies
        // between reruns, so it must stay out of the stable table).
        let profile = render_profile(&result);
        assert!(profile.starts_with("profile:"), "{profile}");
        assert!(profile.contains("sim "), "{profile}");
        assert!(!text.contains("profile:"), "{text}");
    }

    #[test]
    fn multi_seed_ci_columns_are_deterministic() {
        // The CI bootstrap streams are seeded from (experiment, case
        // identity, metric), so rendering the same result twice — and
        // re-running the experiment — must produce identical tables.
        let config = RunConfig {
            seeds: Some(3),
            quick: true,
            ..RunConfig::default()
        };
        let spec = find_experiment("table1_randomized").unwrap();
        let a = render(&run_experiment(spec, &config));
        let b = render(&run_experiment(spec, &config));
        assert_eq!(a, b);
        // With three varying seeds at least one CI cell must be filled:
        // strictly more non-blank columns than the mean columns alone
        // would produce is hard to count positionally, so check the
        // cheap invariant instead — some case varies and bootstrap_ci
        // yields a width for it.
        let result = run_experiment(spec, &config);
        let case = result
            .cases
            .iter()
            .find(|c| {
                c.summary
                    .metric("time")
                    .is_some_and(|s| s.min != s.max && c.metric_values("time").len() >= 2)
            })
            .expect("some case varies across seeds");
        let values = case.metric_values("time");
        let ci = stats::bootstrap_ci(&values, result.config.resamples(), 7, |xs| {
            xs.iter().sum::<f64>() / xs.len() as f64
        });
        assert!(ci.is_some(), "varying case yielded no CI");
    }

    #[test]
    fn format_num_is_compact() {
        assert_eq!(format_num(1234.0), "1234");
        assert_eq!(format_num(1234.5), "1234.5");
        assert_eq!(format_num(0.25), "0.250");
        assert_eq!(format_num(f64::NAN), "-");
    }
}
