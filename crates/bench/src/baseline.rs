//! Checked-in baselines and the CI regression gate.
//!
//! [`baseline_doc`] distills a scenario-matrix run into a compact,
//! diff-friendly document: per-case summary means of the gate metrics and
//! per-cell fitted scaling exponents. `--update-baselines` writes it under
//! `bench-baselines/`; `--check-against <dir>` re-runs the matrix, builds
//! the same document fresh, and diffs the two with per-metric tolerances —
//! a nonzero exit on any out-of-tolerance drift gates PRs on both
//! correctness (absolute energy/time means) *and* asymptotics (fitted
//! exponents and growth classes).
//!
//! Sweeps are deterministic given their seeds, so in CI the diff is
//! normally exact; the tolerances exist to absorb intentional small
//! reparameterizations without churning the baselines. Both the gate and
//! the updater force an unlimited cell budget — wall-clock truncation
//! would make the case set machine-dependent.

use std::path::{Path, PathBuf};

use crate::analysis::{self, FIT_METRICS};
use crate::experiments::ExperimentResult;
use crate::json::Json;
use crate::measure::Case;

/// Summary metrics the gate diffs case-by-case.
pub const GATE_METRICS: [&str; 3] = ["energy_mean", "energy_max", "time"];

/// The baseline file name for one experiment (`<name>.json` in the
/// baseline directory).
pub fn baseline_path(dir: &Path, experiment: &str) -> PathBuf {
    dir.join(format!("{experiment}.json"))
}

/// Per-metric tolerances for [`diff`].
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Maximum relative drift of a per-case summary mean.
    pub metric_rel: f64,
    /// Maximum absolute drift of a fitted power-law exponent.
    pub exponent_abs: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            metric_rel: 0.10,
            exponent_abs: 0.25,
        }
    }
}

/// What a baseline comparison found.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Out-of-tolerance drifts and coverage losses — any entry here gates.
    pub regressions: Vec<String>,
    /// Benign differences (new coverage the baseline predates).
    pub notes: Vec<String>,
}

impl DiffReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn case_key(case: &Case) -> Option<String> {
    let get = |key: &str| {
        case.params
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| match v {
                Json::Str(s) => s.clone(),
                Json::Int(i) => i.to_string(),
                other => format!("{other:?}"),
            })
    };
    Some(format!(
        "{}/{}/{}/n={}",
        get("algorithm")?,
        get("family")?,
        get("model")?,
        get("n")?
    ))
}

/// Distills `result` into the baseline document the gate stores and diffs.
pub fn baseline_doc(result: &ExperimentResult) -> Json {
    let mut cases = Vec::new();
    for case in &result.cases {
        let Some(key) = case_key(case) else { continue };
        let mut obj = Json::obj().field("case", key);
        for metric in GATE_METRICS {
            let mean = case.summary.metric(metric).map_or(f64::NAN, |s| s.mean);
            obj = obj.field(metric, mean);
        }
        cases.push(obj);
    }
    let fits = analysis::scaling_fits(&result.cases);
    let mut fit_rows = Vec::new();
    for cell in &fits {
        for m in &cell.metrics {
            if !FIT_METRICS.contains(&m.metric) {
                continue;
            }
            fit_rows.push(
                Json::obj()
                    .field(
                        "cell",
                        format!("{}/{}/{}", cell.algorithm, cell.family, cell.model),
                    )
                    .field("metric", m.metric)
                    .field("points", m.points)
                    .field("class", m.class.as_str())
                    .field(
                        "exponent",
                        m.power.map_or(Json::Null, |f| Json::Num(f.slope)),
                    ),
            );
        }
    }
    Json::obj()
        .field("schema_version", crate::experiments::SCHEMA_VERSION)
        .field("experiment", result.spec.name)
        .field(
            "config",
            Json::obj()
                .field("quick", result.config.quick)
                .field("seeds", result.config.seeds.map_or(Json::Null, Json::from)),
        )
        .field("cases", Json::Arr(cases))
        .field("fits", Json::Arr(fit_rows))
}

fn rows_by_key<'a>(doc: &'a Json, section: &str, key: &str) -> Vec<(&'a str, &'a Json)> {
    doc.get(section)
        .and_then(Json::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|r| r.get(key).and_then(Json::as_str).map(|k| (k, r)))
                .collect()
        })
        .unwrap_or_default()
}

fn rel_drift(base: f64, fresh: f64) -> f64 {
    if base == fresh {
        return 0.0; // covers 0 == 0 and exact reproduction
    }
    (fresh - base).abs() / base.abs().max(1e-12)
}

/// Diffs a fresh baseline document against the checked-in one.
pub fn diff(baseline: &Json, fresh: &Json, tol: &Tolerances) -> DiffReport {
    let mut report = DiffReport::default();
    for field in ["experiment", "config"] {
        let (b, f) = (baseline.get(field), fresh.get(field));
        if b != f {
            report.regressions.push(format!(
                "{field} mismatch: baseline {b:?} vs fresh {f:?} — \
                 compare like with like (same --quick/--seeds), or refresh \
                 with --update-baselines"
            ));
        }
    }

    let fresh_cases: std::collections::HashMap<&str, &Json> =
        rows_by_key(fresh, "cases", "case").into_iter().collect();
    for (key, base_row) in rows_by_key(baseline, "cases", "case") {
        let Some(fresh_row) = fresh_cases.get(key) else {
            report
                .regressions
                .push(format!("case {key}: present in baseline, missing fresh"));
            continue;
        };
        for metric in GATE_METRICS {
            let b = base_row.get(metric).and_then(Json::as_f64);
            let f = fresh_row.get(metric).and_then(Json::as_f64);
            match (b, f) {
                (Some(b), Some(f)) => {
                    let drift = rel_drift(b, f);
                    if drift > tol.metric_rel {
                        report.regressions.push(format!(
                            "case {key}: {metric} drifted {:+.1}% (baseline {b}, fresh {f}, \
                             tolerance ±{:.0}%)",
                            100.0 * (f - b) / b.abs().max(1e-12),
                            100.0 * tol.metric_rel,
                        ));
                    }
                }
                _ => report.regressions.push(format!(
                    "case {key}: {metric} not comparable (baseline {b:?}, fresh {f:?})"
                )),
            }
        }
    }
    let baseline_keys: std::collections::HashSet<&str> = rows_by_key(baseline, "cases", "case")
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    for (key, _) in rows_by_key(fresh, "cases", "case") {
        if !baseline_keys.contains(key) {
            report.notes.push(format!(
                "case {key}: new (not in baseline — refresh to gate it)"
            ));
        }
    }

    let fit_key = |row: &Json| -> Option<String> {
        Some(format!(
            "{} [{}]",
            row.get("cell")?.as_str()?,
            row.get("metric")?.as_str()?
        ))
    };
    let fresh_fits: std::collections::HashMap<String, &Json> = fresh
        .get("fits")
        .and_then(Json::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|r| fit_key(r).map(|k| (k, r)))
                .collect()
        })
        .unwrap_or_default();
    for row in baseline.get("fits").and_then(Json::as_arr).unwrap_or(&[]) {
        let Some(key) = fit_key(row) else { continue };
        let Some(fresh_row) = fresh_fits.get(&key) else {
            report
                .regressions
                .push(format!("fit {key}: present in baseline, missing fresh"));
            continue;
        };
        let b_class = row.get("class").and_then(Json::as_str);
        let f_class = fresh_row.get("class").and_then(Json::as_str);
        if b_class != f_class {
            report.regressions.push(format!(
                "fit {key}: growth class changed {} → {}",
                b_class.unwrap_or("?"),
                f_class.unwrap_or("?")
            ));
        }
        let b_points = row.get("points").and_then(Json::as_f64);
        let f_points = fresh_row.get("points").and_then(Json::as_f64);
        if b_points != f_points {
            report.regressions.push(format!(
                "fit {key}: n-point coverage changed {b_points:?} → {f_points:?}"
            ));
        }
        match (
            row.get("exponent").and_then(Json::as_f64),
            fresh_row.get("exponent").and_then(Json::as_f64),
        ) {
            (Some(b), Some(f)) => {
                if (f - b).abs() > tol.exponent_abs {
                    report.regressions.push(format!(
                        "fit {key}: exponent drifted {b:.3} → {f:.3} \
                         (tolerance ±{:.2})",
                        tol.exponent_abs
                    ));
                }
            }
            (None, None) => {}
            (b, f) => report.regressions.push(format!(
                "fit {key}: exponent not comparable (baseline {b:?}, fresh {f:?})"
            )),
        }
    }
    // The symmetric half: fit rows only the fresh run has are ungated
    // exponent coverage — surface them like new cases.
    let baseline_fit_keys: std::collections::HashSet<String> = baseline
        .get("fits")
        .and_then(Json::as_arr)
        .map(|rows| rows.iter().filter_map(&fit_key).collect())
        .unwrap_or_default();
    for key in fresh_fits.keys() {
        if !baseline_fit_keys.contains(key) {
            report.notes.push(format!(
                "fit {key}: new (not in baseline — refresh to gate it)"
            ));
        }
    }
    report
}

/// Writes `result`'s baseline document under `dir`. Returns the path.
pub fn write_baseline(dir: &Path, result: &ExperimentResult) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = baseline_path(dir, result.spec.name);
    std::fs::write(&path, baseline_doc(result).to_string_pretty())?;
    Ok(path)
}

/// Diffs `result` against the baseline checked in under `dir`.
pub fn check_against(
    dir: &Path,
    result: &ExperimentResult,
    tol: &Tolerances,
) -> Result<DiffReport, String> {
    let path = baseline_path(dir, result.spec.name);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let baseline =
        Json::parse(&text).map_err(|e| format!("cannot parse baseline {}: {e}", path.display()))?;
    Ok(diff(&baseline, &baseline_doc(result), tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{find_experiment, run_experiment};
    use crate::measure::{RunConfig, UNLIMITED_BUDGET_MS};

    fn gate_config() -> RunConfig {
        RunConfig {
            seeds: Some(1),
            quick: true,
            budget_ms: Some(UNLIMITED_BUDGET_MS),
            family: Some("cycle".into()),
            model: Some("local".into()),
            ..RunConfig::default()
        }
    }

    /// The shared gate-config matrix run: deterministic by design, so
    /// the six tests here share one sweep instead of re-simulating it.
    fn matrix_result() -> &'static ExperimentResult {
        static RESULT: std::sync::OnceLock<ExperimentResult> = std::sync::OnceLock::new();
        RESULT.get_or_init(|| {
            run_experiment(find_experiment("scenario_matrix").unwrap(), &gate_config())
        })
    }

    #[test]
    fn identical_runs_pass_the_gate() {
        let result = matrix_result();
        let doc = baseline_doc(result);
        // Byte-stable: document ↔ parse round trip.
        assert_eq!(Json::parse(&doc.to_string_pretty()).unwrap(), doc);
        let report = diff(&doc, &baseline_doc(result), &Tolerances::default());
        assert!(report.passed(), "regressions: {:?}", report.regressions);
        assert!(report.notes.is_empty(), "notes: {:?}", report.notes);
    }

    #[test]
    fn planted_energy_regression_fails_the_gate() {
        let result = matrix_result();
        let baseline = baseline_doc(result);
        // Plant: halve the baseline's recorded energy means (as if the
        // fresh run's energy doubled).
        let planted = plant(&baseline, |row| {
            if let Json::Obj(pairs) = row {
                for (k, v) in pairs.iter_mut() {
                    if k == "energy_mean" {
                        if let Some(x) = v.as_f64() {
                            *v = Json::Num(x / 2.0);
                        }
                    }
                }
            }
        });
        let report = diff(&planted, &baseline_doc(result), &Tolerances::default());
        assert!(!report.passed());
        assert!(
            report.regressions.iter().any(|r| r.contains("energy_mean")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn planted_exponent_regression_fails_the_gate() {
        let result = matrix_result();
        let baseline = baseline_doc(result);
        let planted = plant_fits(&baseline, |row| {
            if let Json::Obj(pairs) = row {
                for (k, v) in pairs.iter_mut() {
                    if k == "exponent" {
                        if let Some(x) = v.as_f64() {
                            *v = Json::Num(x + 1.0);
                        }
                    }
                }
            }
        });
        let report = diff(&planted, &baseline_doc(result), &Tolerances::default());
        assert!(!report.passed());
        assert!(
            report.regressions.iter().any(|r| r.contains("exponent")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn missing_and_new_cases_are_detected() {
        let result = matrix_result();
        let baseline = baseline_doc(result);
        // Drop one fresh case → "missing fresh" regression; drop one
        // baseline case → "new" note.
        let drop_first = |doc: &Json| -> Json {
            let mut doc = doc.clone();
            if let Json::Obj(pairs) = &mut doc {
                for (k, v) in pairs.iter_mut() {
                    if k == "cases" {
                        if let Json::Arr(rows) = v {
                            rows.remove(0);
                        }
                    }
                }
            }
            doc
        };
        let report = diff(&baseline, &drop_first(&baseline), &Tolerances::default());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("missing fresh")));
        let report = diff(&drop_first(&baseline), &baseline, &Tolerances::default());
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(report.notes.iter().any(|n| n.contains("new")));
    }

    #[test]
    fn config_mismatch_is_a_regression() {
        let result = matrix_result();
        let baseline = baseline_doc(result);
        let mut other = gate_config();
        other.seeds = Some(2);
        let fresh = baseline_doc(&run_experiment(
            find_experiment("scenario_matrix").unwrap(),
            &other,
        ));
        let report = diff(&baseline, &fresh, &Tolerances::default());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("config mismatch")));
    }

    #[test]
    fn write_and_check_round_trip_through_disk() {
        let dir = std::env::temp_dir().join("ebc_bench_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let result = matrix_result();
        let path = write_baseline(&dir, result).unwrap();
        assert!(path.ends_with("scenario_matrix.json"));
        let report = check_against(&dir, result, &Tolerances::default()).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
        std::fs::remove_file(&path).ok();
        assert!(check_against(&dir, result, &Tolerances::default()).is_err());
    }

    fn plant(doc: &Json, mutate: impl Fn(&mut Json)) -> Json {
        plant_section(doc, "cases", mutate)
    }

    fn plant_fits(doc: &Json, mutate: impl Fn(&mut Json)) -> Json {
        plant_section(doc, "fits", mutate)
    }

    fn plant_section(doc: &Json, section: &str, mutate: impl Fn(&mut Json)) -> Json {
        let mut doc = doc.clone();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == section {
                    if let Json::Arr(rows) = v {
                        for row in rows.iter_mut() {
                            mutate(row);
                        }
                    }
                }
            }
        }
        doc
    }
}
