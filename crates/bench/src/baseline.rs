//! Checked-in baselines and the CI regression gate, over **every**
//! registered experiment.
//!
//! [`baseline_doc`] distills one experiment run into a compact,
//! diff-friendly document: per-case summary means, the experiment's
//! [`Gateable`] scalars (e.g. `fig1_path`'s `within_2n` rate, Theorem 2's
//! slot counts), and — where the cases form `(algorithm, family, model)`
//! cells — fitted scaling exponents with their bootstrap CIs.
//! `--update-baselines` writes one `bench-baselines/<experiment>.json`
//! per registered experiment; `--check-against <dir>` re-runs each
//! experiment, builds the same document fresh, and diffs the two — a
//! nonzero exit on any out-of-tolerance drift gates PRs on correctness
//! (absolute means and scalars) *and* asymptotics (exponents and growth
//! classes).
//!
//! Exponents gate on **CI overlap**, not a fixed band: a drift only
//! regresses when the baseline and fresh bootstrap intervals exclude each
//! other, and a growth-class flip only fails outright between two
//! `class_confident` fits whose CIs exclude each other (anything softer
//! is reported as a note) — quick-mode fits over ~4 n-points are noisy
//! enough that a hand-tuned band either trips on seed noise or masks
//! real drift. Means and scalars keep a relative
//! tolerance: sweeps are deterministic given their seeds, so in CI those
//! diffs are normally exact, and the tolerance exists to absorb
//! intentional small reparameterizations without churning the baselines.
//! Both the gate and the updater force an unlimited cell budget —
//! wall-clock truncation would make the case set machine-dependent.

use std::path::{Path, PathBuf};

use crate::analysis::{self, ci_from_json, ci_json, FIT_METRICS};
use crate::cache::CacheStats;
use crate::experiments::{ExperimentResult, Gateable};
use crate::json::Json;
use crate::measure::Case;

/// The baseline file name for one experiment (`<name>.json` in the
/// baseline directory).
pub fn baseline_path(dir: &Path, experiment: &str) -> PathBuf {
    dir.join(format!("{experiment}.json"))
}

/// Per-metric tolerances for [`diff`].
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Maximum relative drift of a per-case summary mean or gate scalar.
    pub metric_rel: f64,
    /// Maximum absolute drift of a fitted power-law exponent — the
    /// fallback band, used only when either side lacks a bootstrap CI
    /// (CI-overlap is the primary gate).
    pub exponent_abs: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            metric_rel: 0.10,
            exponent_abs: 0.25,
        }
    }
}

/// What a baseline comparison found.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Out-of-tolerance drifts and coverage losses — any entry here gates.
    pub regressions: Vec<String>,
    /// Benign differences (new coverage the baseline predates).
    pub notes: Vec<String>,
}

impl DiffReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn param_value(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        Json::Int(i) => i.to_string(),
        Json::Num(x) => format!("{x}"),
        Json::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

/// The stable identity of one case: every param as `key=value`, joined
/// with `/`. Works for any experiment's parameter shape (the matrix's
/// `(algorithm, family, model, n)` cells, `fig1_path`'s `(graph, n)`,
/// Theorem 2's `(gadget, k, protocol, model)` …).
fn case_key(case: &Case) -> String {
    case.params
        .iter()
        .map(|(k, v)| format!("{k}={}", param_value(v)))
        .collect::<Vec<_>>()
        .join("/")
}

/// Distills `result` into the baseline document the gate stores and
/// diffs: gate scalars, per-case summary means of every recorded metric,
/// and per-cell fits with bootstrap exponent CIs.
pub fn baseline_doc(result: &ExperimentResult) -> Json {
    let scalars = result
        .gate_scalars()
        .into_iter()
        .map(|s| Json::obj().field("scalar", s.name).field("value", s.value))
        .collect();
    let mut cases = Vec::new();
    for case in &result.cases {
        let mut obj = Json::obj().field("case", case_key(case));
        for (metric, stats) in &case.summary.metrics {
            obj = obj.field(metric, stats.mean);
        }
        cases.push(obj);
    }
    // The scenario matrix already computed (and emitted) its fits — reuse
    // them rather than re-running the 200-resample bootstrap over every
    // cell; other experiments compute theirs here (usually no cells).
    let fit_rows = match result.extra.iter().find(|(k, _)| *k == "fits") {
        Some((_, fits)) => fit_rows_from_json(fits),
        None => fit_rows_from_cells(&analysis::scaling_fits(
            &result.cases,
            result.config.resamples(),
        )),
    };
    Json::obj()
        .field("schema_version", crate::experiments::SCHEMA_VERSION)
        .field("experiment", result.spec.name)
        .field(
            "config",
            Json::obj()
                .field("quick", result.config.quick)
                .field("seeds", result.config.seeds.map_or(Json::Null, Json::from)),
        )
        .field("scalars", Json::Arr(scalars))
        .field("cases", Json::Arr(cases))
        .field("fits", Json::Arr(fit_rows))
}

/// The per-fit gate rows, distilled from freshly computed [`analysis`]
/// cells. Must stay field-for-field identical to [`fit_rows_from_json`].
fn fit_rows_from_cells(fits: &[analysis::CellFit]) -> Vec<Json> {
    let mut rows = Vec::new();
    for cell in fits {
        for m in &cell.metrics {
            if !FIT_METRICS.contains(&m.metric) {
                continue;
            }
            rows.push(
                Json::obj()
                    .field(
                        "cell",
                        format!("{}/{}/{}", cell.algorithm, cell.family, cell.model),
                    )
                    .field("metric", m.metric)
                    .field("points", m.points)
                    .field("class", m.class.as_str())
                    .field("class_confident", m.class_confident)
                    .field(
                        "exponent",
                        m.power.map_or(Json::Null, |f| Json::Num(f.slope)),
                    )
                    .field("exponent_ci", ci_json(m.exponent_ci)),
            );
        }
    }
    rows
}

/// The per-fit gate rows, lifted from an experiment's already-serialized
/// `fits` section ([`analysis::fits_to_json`] layout). Must stay
/// field-for-field identical to [`fit_rows_from_cells`].
fn fit_rows_from_json(fits: &Json) -> Vec<Json> {
    let mut rows = Vec::new();
    for cell in fits.as_arr().unwrap_or(&[]) {
        let name = |key: &str| cell.get(key).and_then(Json::as_str).unwrap_or("?");
        let cell_key = format!("{}/{}/{}", name("algorithm"), name("family"), name("model"));
        for metric in FIT_METRICS {
            let Some(m) = cell.get("metrics").and_then(|ms| ms.get(metric)) else {
                continue;
            };
            let lift = |key: &str| m.get(key).cloned().unwrap_or(Json::Null);
            rows.push(
                Json::obj()
                    .field("cell", cell_key.as_str())
                    .field("metric", metric)
                    .field("points", lift("points"))
                    .field("class", lift("class"))
                    .field("class_confident", lift("class_confident"))
                    .field("exponent", lift("exponent"))
                    .field("exponent_ci", lift("exponent_ci")),
            );
        }
    }
    rows
}

fn rows_by_key<'a>(doc: &'a Json, section: &str, key: &str) -> Vec<(&'a str, &'a Json)> {
    doc.get(section)
        .and_then(Json::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|r| r.get(key).and_then(Json::as_str).map(|k| (k, r)))
                .collect()
        })
        .unwrap_or_default()
}

fn rel_drift(base: f64, fresh: f64) -> f64 {
    if base == fresh {
        return 0.0; // covers 0 == 0 and exact reproduction
    }
    (fresh - base).abs() / base.abs().max(1e-12)
}

/// Whether two intervals exclude each other (strictly disjoint).
fn cis_disjoint(a: (f64, f64), b: (f64, f64)) -> bool {
    a.1 < b.0 || b.1 < a.0
}

/// Diffs the metric fields (everything except the `key` field) of one
/// baseline row against its fresh counterpart, with relative tolerance.
fn diff_row_metrics(
    report: &mut DiffReport,
    kind: &str,
    key: &str,
    base_row: &Json,
    fresh_row: &Json,
    key_field: &str,
    tol: &Tolerances,
) {
    let Json::Obj(pairs) = base_row else { return };
    for (metric, base_value) in pairs {
        if metric == key_field {
            continue;
        }
        let b = base_value.as_f64();
        let f = fresh_row.get(metric).and_then(Json::as_f64);
        match (b, f) {
            (Some(b), Some(f)) => {
                let drift = rel_drift(b, f);
                if drift > tol.metric_rel {
                    report.regressions.push(format!(
                        "{kind} {key}: {metric} drifted {:+.1}% (baseline {b}, fresh {f}, \
                         tolerance ±{:.0}%)",
                        100.0 * (f - b) / b.abs().max(1e-12),
                        100.0 * tol.metric_rel,
                    ));
                }
            }
            // A metric that was null in both documents (e.g. a NaN mean
            // serialized as null) is consistently absent, not a drift.
            (None, None) => {}
            _ => report.regressions.push(format!(
                "{kind} {key}: {metric} not comparable (baseline {b:?}, fresh {f:?})"
            )),
        }
    }
    // The symmetric half: metrics only the fresh row records are ungated
    // coverage — surface them like fresh-only rows.
    if let Json::Obj(fresh_pairs) = fresh_row {
        for (metric, _) in fresh_pairs {
            if metric != key_field && base_row.get(metric).is_none() {
                report.notes.push(format!(
                    "{kind} {key}: metric {metric} is new (not in baseline — refresh \
                     to gate it)"
                ));
            }
        }
    }
}

/// Diffs one keyed section (`cases` by `case`, `scalars` by `scalar`):
/// baseline rows missing fresh are regressions, metric drifts gate with
/// relative tolerance, fresh-only rows are notes.
fn diff_section(
    report: &mut DiffReport,
    baseline: &Json,
    fresh: &Json,
    section: &str,
    key_field: &str,
    kind: &str,
    tol: &Tolerances,
) {
    let fresh_rows: std::collections::HashMap<&str, &Json> =
        rows_by_key(fresh, section, key_field).into_iter().collect();
    let mut baseline_keys = std::collections::HashSet::new();
    for (key, base_row) in rows_by_key(baseline, section, key_field) {
        baseline_keys.insert(key);
        let Some(fresh_row) = fresh_rows.get(key) else {
            report
                .regressions
                .push(format!("{kind} {key}: present in baseline, missing fresh"));
            continue;
        };
        diff_row_metrics(report, kind, key, base_row, fresh_row, key_field, tol);
    }
    for (key, _) in rows_by_key(fresh, section, key_field) {
        if !baseline_keys.contains(key) {
            report.notes.push(format!(
                "{kind} {key}: new (not in baseline — refresh to gate it)"
            ));
        }
    }
}

/// Diffs a fresh baseline document against the checked-in one.
///
/// Means and scalars gate on relative drift; fitted exponents gate on
/// **bootstrap-CI overlap** (the `exponent_abs` band is only the fallback
/// when either side lacks a CI), and growth-class flips gate outright
/// only when the two exponent CIs exclude each other — a flip whose CIs
/// overlap is seed noise around a classification boundary and is
/// reported as a note instead.
pub fn diff(baseline: &Json, fresh: &Json, tol: &Tolerances) -> DiffReport {
    let mut report = DiffReport::default();
    for field in ["experiment", "config"] {
        let (b, f) = (baseline.get(field), fresh.get(field));
        if b != f {
            report.regressions.push(format!(
                "{field} mismatch: baseline {b:?} vs fresh {f:?} — \
                 compare like with like (same --quick/--seeds), or refresh \
                 with --update-baselines"
            ));
        }
    }

    diff_section(
        &mut report,
        baseline,
        fresh,
        "scalars",
        "scalar",
        "scalar",
        tol,
    );
    diff_section(&mut report, baseline, fresh, "cases", "case", "case", tol);

    let fit_key = |row: &Json| -> Option<String> {
        Some(format!(
            "{} [{}]",
            row.get("cell")?.as_str()?,
            row.get("metric")?.as_str()?
        ))
    };
    let fresh_fits: std::collections::HashMap<String, &Json> = fresh
        .get("fits")
        .and_then(Json::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|r| fit_key(r).map(|k| (k, r)))
                .collect()
        })
        .unwrap_or_default();
    for row in baseline.get("fits").and_then(Json::as_arr).unwrap_or(&[]) {
        let Some(key) = fit_key(row) else { continue };
        let Some(fresh_row) = fresh_fits.get(&key) else {
            report
                .regressions
                .push(format!("fit {key}: present in baseline, missing fresh"));
            continue;
        };
        let b_ci = ci_from_json(row.get("exponent_ci"));
        let f_ci = ci_from_json(fresh_row.get("exponent_ci"));
        let cis_exclude = match (b_ci, f_ci) {
            (Some(b), Some(f)) => Some(cis_disjoint(b, f)),
            _ => None,
        };
        let b_class = row.get("class").and_then(Json::as_str);
        let f_class = fresh_row.get("class").and_then(Json::as_str);
        if b_class != f_class {
            // A flip is a regression only between two *class-confident*
            // fits whose exponent CIs exclude each other (no CIs at all
            // on a confident pair also gates — overlap cannot be shown).
            // Anything softer — a non-confident side, or overlapping
            // CIs — is seed noise around a classification boundary.
            let confident = |doc: &Json| doc.get("class_confident") == Some(&Json::Bool(true));
            let both_confident = confident(row) && confident(fresh_row);
            if both_confident && cis_exclude.unwrap_or(true) {
                report.regressions.push(format!(
                    "fit {key}: growth class changed {} → {} (both class-confident{})",
                    b_class.unwrap_or("?"),
                    f_class.unwrap_or("?"),
                    match cis_exclude {
                        Some(true) => ", exponent CIs exclude each other",
                        _ => ", no CI to show overlap",
                    }
                ));
            } else {
                report.notes.push(format!(
                    "fit {key}: growth class flipped {} → {}, but {} — within seed \
                     noise, not gated",
                    b_class.unwrap_or("?"),
                    f_class.unwrap_or("?"),
                    if both_confident {
                        "the exponent CIs overlap"
                    } else {
                        "the classification is not seed-stable on both sides"
                    },
                ));
            }
        }
        let b_points = row.get("points").and_then(Json::as_f64);
        let f_points = fresh_row.get("points").and_then(Json::as_f64);
        if b_points != f_points {
            report.regressions.push(format!(
                "fit {key}: n-point coverage changed {b_points:?} → {f_points:?}"
            ));
        }
        match (
            row.get("exponent").and_then(Json::as_f64),
            fresh_row.get("exponent").and_then(Json::as_f64),
        ) {
            (Some(b), Some(f)) => match (b_ci, f_ci) {
                // The statistically sound gate: drift fails only when the
                // two bootstrap CIs exclude each other.
                (Some(bc), Some(fc)) => {
                    if cis_disjoint(bc, fc) {
                        report.regressions.push(format!(
                            "fit {key}: exponent drifted {b:.3} → {f:.3} and the bootstrap \
                             CIs exclude each other ([{:.3}, {:.3}] vs [{:.3}, {:.3}])",
                            bc.0, bc.1, fc.0, fc.1
                        ));
                    }
                }
                // Fallback band for rows without CIs.
                _ => {
                    if (f - b).abs() > tol.exponent_abs {
                        report.regressions.push(format!(
                            "fit {key}: exponent drifted {b:.3} → {f:.3} \
                             (tolerance ±{:.2}, no CI)",
                            tol.exponent_abs
                        ));
                    }
                }
            },
            (None, None) => {}
            (b, f) => report.regressions.push(format!(
                "fit {key}: exponent not comparable (baseline {b:?}, fresh {f:?})"
            )),
        }
    }
    // The symmetric half: fit rows only the fresh run has are ungated
    // exponent coverage — surface them like new cases.
    let baseline_fit_keys: std::collections::HashSet<String> = baseline
        .get("fits")
        .and_then(Json::as_arr)
        .map(|rows| rows.iter().filter_map(&fit_key).collect())
        .unwrap_or_default();
    for key in fresh_fits.keys() {
        if !baseline_fit_keys.contains(key) {
            report.notes.push(format!(
                "fit {key}: new (not in baseline — refresh to gate it)"
            ));
        }
    }
    report
}

/// Writes `result`'s baseline document under `dir`. Returns the path.
pub fn write_baseline(dir: &Path, result: &ExperimentResult) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = baseline_path(dir, result.spec.name);
    std::fs::write(&path, baseline_doc(result).to_string_pretty())?;
    Ok(path)
}

/// Diffs `result` against the baseline checked in under `dir`.
pub fn check_against(
    dir: &Path,
    result: &ExperimentResult,
    tol: &Tolerances,
) -> Result<DiffReport, String> {
    let path = baseline_path(dir, result.spec.name);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let baseline =
        Json::parse(&text).map_err(|e| format!("cannot parse baseline {}: {e}", path.display()))?;
    Ok(diff(&baseline, &baseline_doc(result), tol))
}

/// What the gate found for one experiment: its diff report, or the error
/// that kept the comparison from happening (missing/corrupt baseline —
/// also a gate failure).
pub struct GateOutcome {
    /// The experiment name.
    pub experiment: &'static str,
    /// The comparison result.
    pub report: Result<DiffReport, String>,
    /// Cell-cache accounting of this experiment's fresh run — `Some` iff
    /// the gate ran with a cache configured.
    pub cache: Option<CacheStats>,
}

impl GateOutcome {
    /// Whether this experiment's gate passed.
    pub fn passed(&self) -> bool {
        matches!(&self.report, Ok(r) if r.passed())
    }
}

/// The machine-readable per-experiment gate report
/// (`BENCH_gate_report.json`) — what CI uploads as an artifact when the
/// gate fails.
pub fn gate_report_doc(dir: &Path, outcomes: &[GateOutcome]) -> Json {
    let rows = outcomes
        .iter()
        .map(|o| {
            let mut row = Json::obj()
                .field("experiment", o.experiment)
                .field("passed", o.passed());
            match &o.report {
                Ok(r) => {
                    row = row
                        .field(
                            "regressions",
                            Json::Arr(r.regressions.iter().map(|s| s.as_str().into()).collect()),
                        )
                        .field(
                            "notes",
                            Json::Arr(r.notes.iter().map(|s| s.as_str().into()).collect()),
                        );
                }
                Err(e) => {
                    row = row.field("error", e.as_str());
                }
            }
            if let Some(cache) = o.cache {
                row = row.field("cache", cache.to_json());
            }
            row
        })
        .collect();
    let mut doc = Json::obj()
        .field("schema_version", crate::experiments::SCHEMA_VERSION)
        .field("baseline_dir", dir.display().to_string())
        .field("passed", outcomes.iter().all(GateOutcome::passed));
    if let Some(total) = total_cache(outcomes) {
        doc = doc.field("cache", total.to_json());
    }
    doc.field("experiments", Json::Arr(rows))
}

/// The aggregate cache tally over `outcomes` — `Some` iff any experiment
/// ran with a cache configured.
fn total_cache(outcomes: &[GateOutcome]) -> Option<CacheStats> {
    let mut total = CacheStats::default();
    let mut any = false;
    for o in outcomes {
        if let Some(stats) = o.cache {
            total.add(stats);
            any = true;
        }
    }
    any.then_some(total)
}

/// The human-readable gate summary (`BENCH_gate_summary.md`) — the
/// markdown CI appends to `$GITHUB_STEP_SUMMARY` so a bench-gate verdict
/// is readable without downloading the JSON artifact: one verdict row per
/// experiment with its cache counts, then the worst diffs of every
/// failing experiment.
pub fn gate_summary_markdown(dir: &Path, outcomes: &[GateOutcome]) -> String {
    let passed = outcomes.iter().all(GateOutcome::passed);
    let mut out = format!(
        "## Bench gate: {}\n\nBaselines: `{}`\n\n",
        if passed { "✅ pass" } else { "❌ fail" },
        dir.display()
    );
    out.push_str("| experiment | verdict | regressions | notes | cache hit/miss/invalidated |\n");
    out.push_str("|---|---|---:|---:|---|\n");
    for o in outcomes {
        let (verdict, regressions, notes) = match &o.report {
            Ok(r) if r.passed() => ("✅ pass".to_string(), r.regressions.len(), r.notes.len()),
            Ok(r) => ("❌ fail".to_string(), r.regressions.len(), r.notes.len()),
            Err(_) => ("❌ error".to_string(), 0, 0),
        };
        let cache = o.cache.map_or("—".to_string(), |c| {
            format!("{}/{}/{}", c.hits, c.misses, c.invalidated)
        });
        out.push_str(&format!(
            "| {} | {verdict} | {regressions} | {notes} | {cache} |\n",
            o.experiment
        ));
    }
    if let Some(total) = total_cache(outcomes) {
        out.push_str(&format!(
            "\nCache totals: **{} hits**, **{} misses**, **{} invalidated** \
             ({} cells executed).\n",
            total.hits,
            total.misses,
            total.invalidated,
            total.executed()
        ));
    }
    // The worst diffs: the first few regressions (or the error) of each
    // failing experiment, so the common failures read without artifacts.
    const WORST_PER_EXPERIMENT: usize = 5;
    for o in outcomes.iter().filter(|o| !o.passed()) {
        out.push_str(&format!("\n### {} — worst diffs\n\n", o.experiment));
        match &o.report {
            Ok(r) => {
                for regression in r.regressions.iter().take(WORST_PER_EXPERIMENT) {
                    out.push_str(&format!("- {regression}\n"));
                }
                if r.regressions.len() > WORST_PER_EXPERIMENT {
                    out.push_str(&format!(
                        "- … and {} more (see `BENCH_gate_report.json`)\n",
                        r.regressions.len() - WORST_PER_EXPERIMENT
                    ));
                }
            }
            Err(e) => out.push_str(&format!("- gate error: {e}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{find_experiment, run_experiment};
    use crate::measure::{RunConfig, UNLIMITED_BUDGET_MS};

    fn gate_config() -> RunConfig {
        RunConfig {
            seeds: Some(1),
            quick: true,
            budget_ms: Some(UNLIMITED_BUDGET_MS),
            family: Some("cycle".into()),
            model: Some("local".into()),
            ..RunConfig::default()
        }
    }

    /// The shared gate-config matrix run: deterministic by design, so
    /// the six tests here share one sweep instead of re-simulating it.
    fn matrix_result() -> &'static ExperimentResult {
        static RESULT: std::sync::OnceLock<ExperimentResult> = std::sync::OnceLock::new();
        RESULT.get_or_init(|| {
            run_experiment(find_experiment("scenario_matrix").unwrap(), &gate_config())
        })
    }

    #[test]
    fn identical_runs_pass_the_gate() {
        let result = matrix_result();
        let doc = baseline_doc(result);
        // Byte-stable: document ↔ parse round trip.
        assert_eq!(Json::parse(&doc.to_string_pretty()).unwrap(), doc);
        let report = diff(&doc, &baseline_doc(result), &Tolerances::default());
        assert!(report.passed(), "regressions: {:?}", report.regressions);
        assert!(report.notes.is_empty(), "notes: {:?}", report.notes);
    }

    #[test]
    fn planted_energy_regression_fails_the_gate() {
        let result = matrix_result();
        let baseline = baseline_doc(result);
        // Plant: halve the baseline's recorded energy means (as if the
        // fresh run's energy doubled).
        let planted = plant(&baseline, |row| {
            if let Json::Obj(pairs) = row {
                for (k, v) in pairs.iter_mut() {
                    if k == "energy_mean" {
                        if let Some(x) = v.as_f64() {
                            *v = Json::Num(x / 2.0);
                        }
                    }
                }
            }
        });
        let report = diff(&planted, &baseline_doc(result), &Tolerances::default());
        assert!(!report.passed());
        assert!(
            report.regressions.iter().any(|r| r.contains("energy_mean")),
            "{:?}",
            report.regressions
        );
    }

    /// Shifts a fit row's exponent *and* its CI by `delta` — a genuine
    /// asymptotic drift, as opposed to seed noise around a stable CI.
    fn shift_exponent(row: &mut Json, delta: f64) {
        if let Json::Obj(pairs) = row {
            for (k, v) in pairs.iter_mut() {
                if k == "exponent" {
                    if let Some(x) = v.as_f64() {
                        *v = Json::Num(x + delta);
                    }
                } else if k == "exponent_ci" {
                    if let Json::Arr(bounds) = v {
                        for b in bounds.iter_mut() {
                            if let Some(x) = b.as_f64() {
                                *b = Json::Num(x + delta);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn planted_exponent_regression_fails_the_gate() {
        let result = matrix_result();
        let baseline = baseline_doc(result);
        let planted = plant_fits(&baseline, |row| shift_exponent(row, 1.0));
        let report = diff(&planted, &baseline_doc(result), &Tolerances::default());
        assert!(!report.passed());
        assert!(
            report
                .regressions
                .iter()
                .any(|r| r.contains("exponent") && r.contains("exclude each other")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn exponent_drift_inside_overlapping_cis_passes() {
        // The CI-overlap semantics: a point-estimate wobble whose CI still
        // overlaps the baseline's is seed noise, not a regression — even
        // past the old ±0.25 band. Only the point estimate moves here; the
        // planted CI is widened to keep the intervals overlapping.
        let result = matrix_result();
        let baseline = baseline_doc(result);
        let planted = plant_fits(&baseline, |row| {
            if let Json::Obj(pairs) = row {
                for (k, v) in pairs.iter_mut() {
                    if k == "exponent" {
                        if let Some(x) = v.as_f64() {
                            *v = Json::Num(x + 0.4);
                        }
                    } else if k == "exponent_ci" {
                        if let Json::Arr(bounds) = v {
                            if let Some(x) = bounds[1].as_f64() {
                                bounds[1] = Json::Num(x + 0.5);
                            }
                        }
                    }
                }
            }
        });
        let report = diff(&planted, &baseline_doc(result), &Tolerances::default());
        let exponent_regressions: Vec<&String> = report
            .regressions
            .iter()
            .filter(|r| r.contains("exponent"))
            .collect();
        assert!(
            exponent_regressions.is_empty(),
            "overlapping CIs must not gate: {exponent_regressions:?}"
        );
    }

    #[test]
    fn class_flip_with_overlapping_cis_is_a_note_not_a_regression() {
        let result = matrix_result();
        let baseline = baseline_doc(result);
        // Flip every class label while leaving exponents and CIs alone:
        // the CIs trivially overlap (they are identical), so the flip is
        // seed noise by the gate's definition.
        let planted = plant_fits(&baseline, |row| {
            if let Json::Obj(pairs) = row {
                for (k, v) in pairs.iter_mut() {
                    if k == "class" {
                        *v = Json::Str("polylog-flipped".into());
                    }
                }
            }
        });
        let report = diff(&planted, &baseline_doc(result), &Tolerances::default());
        assert!(
            !report
                .regressions
                .iter()
                .any(|r| r.contains("growth class")),
            "{:?}",
            report.regressions
        );
        assert!(
            report.notes.iter().any(|n| n.contains("growth class")),
            "{:?}",
            report.notes
        );
        // But a flip whose CIs exclude each other gates outright.
        let planted = plant_fits(&baseline, |row| {
            shift_exponent(row, 1.0);
            if let Json::Obj(pairs) = row {
                for (k, v) in pairs.iter_mut() {
                    if k == "class" {
                        *v = Json::Str("polynomial-flipped".into());
                    }
                }
            }
        });
        let report = diff(&planted, &baseline_doc(result), &Tolerances::default());
        assert!(
            report
                .regressions
                .iter()
                .any(|r| r.contains("growth class") && r.contains("exclude each other")),
            "{:?}",
            report.regressions
        );
        // And the same disjoint-CI flip with a non-seed-stable
        // classification on the baseline side downgrades to a note: the
        // class label was never trustworthy enough to gate on.
        let planted = plant_fits(&baseline, |row| {
            shift_exponent(row, 1.0);
            if let Json::Obj(pairs) = row {
                for (k, v) in pairs.iter_mut() {
                    if k == "class" {
                        *v = Json::Str("polynomial-flipped".into());
                    } else if k == "class_confident" {
                        *v = Json::Bool(false);
                    }
                }
            }
        });
        let report = diff(&planted, &baseline_doc(result), &Tolerances::default());
        assert!(
            !report
                .regressions
                .iter()
                .any(|r| r.contains("growth class")),
            "{:?}",
            report.regressions
        );
        assert!(
            report.notes.iter().any(|n| n.contains("not seed-stable")),
            "{:?}",
            report.notes
        );
    }

    #[test]
    fn missing_and_new_cases_are_detected() {
        let result = matrix_result();
        let baseline = baseline_doc(result);
        // Drop one fresh case → "missing fresh" regression; drop one
        // baseline case → "new" note.
        let drop_first = |doc: &Json| -> Json {
            let mut doc = doc.clone();
            if let Json::Obj(pairs) = &mut doc {
                for (k, v) in pairs.iter_mut() {
                    if k == "cases" {
                        if let Json::Arr(rows) = v {
                            rows.remove(0);
                        }
                    }
                }
            }
            doc
        };
        let report = diff(&baseline, &drop_first(&baseline), &Tolerances::default());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("missing fresh")));
        let report = diff(&drop_first(&baseline), &baseline, &Tolerances::default());
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(report.notes.iter().any(|n| n.contains("new")));
    }

    #[test]
    fn config_mismatch_is_a_regression() {
        let result = matrix_result();
        let baseline = baseline_doc(result);
        let mut other = gate_config();
        other.seeds = Some(2);
        let fresh = baseline_doc(&run_experiment(
            find_experiment("scenario_matrix").unwrap(),
            &other,
        ));
        let report = diff(&baseline, &fresh, &Tolerances::default());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("config mismatch")));
    }

    #[test]
    fn write_and_check_round_trip_through_disk() {
        let dir = std::env::temp_dir().join("ebc_bench_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let result = matrix_result();
        let path = write_baseline(&dir, result).unwrap();
        assert!(path.ends_with("scenario_matrix.json"));
        let report = check_against(&dir, result, &Tolerances::default()).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
        std::fs::remove_file(&path).ok();
        assert!(check_against(&dir, result, &Tolerances::default()).is_err());
    }

    /// Runs one non-matrix experiment under the shared gate config shape.
    fn experiment_result(name: &str) -> ExperimentResult {
        let config = RunConfig {
            seeds: Some(1),
            quick: true,
            budget_ms: Some(UNLIMITED_BUDGET_MS),
            ..RunConfig::default()
        };
        run_experiment(find_experiment(name).unwrap(), &config)
    }

    #[test]
    fn fig1_path_gates_scalars_and_planted_regression_fails() {
        let result = experiment_result("fig1_path");
        let baseline = baseline_doc(&result);
        // The within_2n rate is a gate scalar (Theorem 21's 2n deadline).
        let scalars = baseline.get("scalars").unwrap().as_arr().unwrap();
        assert!(
            scalars
                .iter()
                .any(|s| s.get("scalar").and_then(Json::as_str) == Some("within_2n_rate")),
            "{scalars:?}"
        );
        // Identical rerun passes.
        let report = diff(&baseline, &baseline_doc(&result), &Tolerances::default());
        assert!(report.passed(), "{:?}", report.regressions);
        // Planted: the recorded delivery rate drops → the gate fails (the
        // CLI maps this to a nonzero exit).
        let planted = plant_section(&baseline, "scalars", |row| {
            if let Json::Obj(pairs) = row {
                for (k, v) in pairs.iter_mut() {
                    if k == "value" {
                        if let Some(x) = v.as_f64() {
                            *v = Json::Num(x / 2.0);
                        }
                    }
                }
            }
        });
        let report = diff(&planted, &baseline_doc(&result), &Tolerances::default());
        assert!(!report.passed());
        assert!(
            report
                .regressions
                .iter()
                .any(|r| r.contains("within_2n_rate")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn table1_lower_gates_slot_counts_and_planted_regression_fails() {
        let result = experiment_result("table1_lower");
        let baseline = baseline_doc(&result);
        let scalars = baseline.get("scalars").unwrap().as_arr().unwrap();
        for name in ["le_slots_mean_decay", "le_slots_mean_uniform"] {
            assert!(
                scalars
                    .iter()
                    .any(|s| s.get("scalar").and_then(Json::as_str) == Some(name)),
                "missing {name}: {scalars:?}"
            );
        }
        let report = diff(&baseline, &baseline_doc(&result), &Tolerances::default());
        assert!(report.passed(), "{:?}", report.regressions);
        // Planted: halve the recorded per-case le_slots means (as if the
        // fresh elections took twice the slots).
        let planted = plant(&baseline, |row| {
            if let Json::Obj(pairs) = row {
                for (k, v) in pairs.iter_mut() {
                    if k == "le_slots" {
                        if let Some(x) = v.as_f64() {
                            *v = Json::Num(x / 2.0);
                        }
                    }
                }
            }
        });
        let report = diff(&planted, &baseline_doc(&result), &Tolerances::default());
        assert!(!report.passed());
        assert!(
            report.regressions.iter().any(|r| r.contains("le_slots")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn precomputed_and_recomputed_fit_rows_are_identical() {
        // The matrix's baseline doc lifts fit rows from the already-
        // emitted `fits` section instead of re-running the bootstrap; the
        // two construction paths must agree field for field.
        let result = matrix_result();
        let from_json = baseline_doc(result);
        let stripped = ExperimentResult {
            spec: result.spec,
            config: result.config.clone(),
            cases: result.cases.clone(),
            extra: Vec::new(),
            cache: None,
            profile: Default::default(),
        };
        let from_cells = baseline_doc(&stripped);
        assert_eq!(from_json.get("fits"), from_cells.get("fits"));
    }

    #[test]
    fn fresh_only_metrics_on_existing_cases_are_noted() {
        let result = matrix_result();
        let baseline = baseline_doc(result);
        // Drop one metric from every baseline case row: the fresh run
        // "adds" it back, which must surface as ungated coverage.
        let planted = plant(&baseline, |row| {
            if let Json::Obj(pairs) = row {
                pairs.retain(|(k, _)| k != "energy_p95");
            }
        });
        let report = diff(&planted, &baseline_doc(result), &Tolerances::default());
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("metric energy_p95 is new")),
            "{:?}",
            report.notes
        );
    }

    #[test]
    fn gate_report_doc_records_per_experiment_outcomes() {
        let dir = std::path::Path::new("bench-baselines");
        let outcomes = vec![
            GateOutcome {
                experiment: "scenario_matrix",
                report: Ok(DiffReport::default()),
                cache: Some(CacheStats {
                    hits: 40,
                    misses: 2,
                    invalidated: 1,
                }),
            },
            GateOutcome {
                experiment: "fig1_path",
                report: Ok(DiffReport {
                    regressions: vec!["scalar within_2n_rate: drifted".into()],
                    notes: vec![],
                }),
                cache: Some(CacheStats {
                    hits: 2,
                    misses: 0,
                    invalidated: 0,
                }),
            },
            GateOutcome {
                experiment: "table1_lower",
                report: Err("cannot read baseline".into()),
                cache: None,
            },
        ];
        let doc = gate_report_doc(dir, &outcomes);
        assert_eq!(doc.get("passed"), Some(&Json::Bool(false)));
        let rows = doc.get("experiments").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get("passed"), Some(&Json::Bool(true)));
        assert_eq!(rows[1].get("passed"), Some(&Json::Bool(false)));
        assert!(rows[2].get("error").is_some());
        // Per-experiment and aggregate cache accounting land in the doc.
        let cache = rows[0].get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(40.0));
        let total = doc.get("cache").unwrap();
        assert_eq!(total.get("hits").and_then(Json::as_f64), Some(42.0));
        assert_eq!(total.get("misses").and_then(Json::as_f64), Some(2.0));
        assert_eq!(total.get("invalidated").and_then(Json::as_f64), Some(1.0));
        // Round-trips through the parser (it is written to disk by the
        // CLI and uploaded by CI).
        assert_eq!(Json::parse(&doc.to_string_pretty()).unwrap(), doc);
    }

    #[test]
    fn gate_summary_markdown_renders_verdicts_cache_and_worst_diffs() {
        let dir = std::path::Path::new("bench-baselines");
        let outcomes = vec![
            GateOutcome {
                experiment: "scenario_matrix",
                report: Ok(DiffReport::default()),
                cache: Some(CacheStats {
                    hits: 40,
                    misses: 0,
                    invalidated: 0,
                }),
            },
            GateOutcome {
                experiment: "fig1_path",
                report: Ok(DiffReport {
                    regressions: (0..7).map(|i| format!("scalar s{i}: drifted")).collect(),
                    notes: vec!["note".into()],
                }),
                cache: Some(CacheStats {
                    hits: 1,
                    misses: 3,
                    invalidated: 0,
                }),
            },
            GateOutcome {
                experiment: "table1_lower",
                report: Err("cannot read baseline".into()),
                cache: None,
            },
        ];
        let md = gate_summary_markdown(dir, &outcomes);
        assert!(md.contains("## Bench gate: ❌ fail"), "{md}");
        assert!(
            md.contains("| scenario_matrix | ✅ pass | 0 | 0 | 40/0/0 |"),
            "{md}"
        );
        assert!(
            md.contains("| fig1_path | ❌ fail | 7 | 1 | 1/3/0 |"),
            "{md}"
        );
        assert!(
            md.contains("| table1_lower | ❌ error | 0 | 0 | — |"),
            "{md}"
        );
        assert!(md.contains("**41 hits**"), "{md}");
        // Worst diffs truncate at five with a pointer to the artifact.
        assert!(md.contains("scalar s4: drifted"), "{md}");
        assert!(!md.contains("scalar s5: drifted"), "{md}");
        assert!(md.contains("and 2 more"), "{md}");
        assert!(md.contains("gate error: cannot read baseline"), "{md}");
        // An all-pass gate renders the pass header and no diff sections.
        let md = gate_summary_markdown(
            dir,
            &[GateOutcome {
                experiment: "scenario_matrix",
                report: Ok(DiffReport::default()),
                cache: None,
            }],
        );
        assert!(md.contains("## Bench gate: ✅ pass"), "{md}");
        assert!(!md.contains("worst diffs"), "{md}");
    }

    fn plant(doc: &Json, mutate: impl Fn(&mut Json)) -> Json {
        plant_section(doc, "cases", mutate)
    }

    fn plant_fits(doc: &Json, mutate: impl Fn(&mut Json)) -> Json {
        plant_section(doc, "fits", mutate)
    }

    fn plant_section(doc: &Json, section: &str, mutate: impl Fn(&mut Json)) -> Json {
        let mut doc = doc.clone();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == section {
                    if let Json::Arr(rows) = v {
                        for row in rows.iter_mut() {
                            mutate(row);
                        }
                    }
                }
            }
        }
        doc
    }
}
