//! `--serve`: a unix-socket query loop over the warm cell cache.
//!
//! The sweep service's read side: rather than re-running `ebc-bench` to
//! inspect what the cache holds, a client connects to the socket and
//! issues one command per line; the server answers each with a
//! pretty-printed JSON document followed by a line containing only `---`
//! (the frame terminator — pretty JSON spans lines, so clients read to
//! the sentinel rather than to a newline).
//!
//! Commands:
//!
//! * `ping` — liveness: `{"ok": true}`.
//! * `fingerprint` — the combined code-version fingerprint and every
//!   per-crate source digest.
//! * `stats` — a full store scan: entry count and how many entries are
//!   fresh under the current sources.
//! * `cell <key>` — the raw cache entry under a cell-config key (see
//!   [`crate::cache::case_key`]), with a `fresh` verdict.
//! * `profile` — the `BENCH_profile.json` the last run wrote to the data
//!   directory: per-experiment wall-clock breakdowns plus run totals.
//! * `telemetry [path]` — a summary of a Chrome trace file written by
//!   `--trace-out` (default `<data-dir>/BENCH_trace.json`): event counts
//!   by phase, the span names, and the trace's slot extent.
//! * `quit` — close this connection and stop the server.
//!
//! Connections are served one at a time — the server is a debugging and
//! orchestration endpoint, not a throughput path. The cache itself stays
//! read-only here; sweeps keep writing through their own handles.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;

use crate::cache::CellCache;
use crate::json::Json;

/// The frame terminator closing every response.
pub const FRAME_END: &str = "---";

/// Serves cache queries on a unix socket at `socket` from the store at
/// `cache_dir` until a client sends `quit`; `profile`/`telemetry` read
/// the documents a prior run wrote to `data_dir`. A stale socket file
/// from a previous run is replaced.
pub fn serve(socket: &Path, cache_dir: &Path, data_dir: &Path) -> Result<(), String> {
    let cache = CellCache::open(cache_dir)?;
    // Binding fails on an existing path, and a crashed server leaves one.
    std::fs::remove_file(socket).ok();
    let listener =
        UnixListener::bind(socket).map_err(|e| format!("cannot bind {}: {e}", socket.display()))?;
    eprintln!(
        "serving cell cache {} (data dir {}) on {}",
        cache_dir.display(),
        data_dir.display(),
        socket.display()
    );
    for stream in listener.incoming() {
        let stream = stream.map_err(|e| format!("accept failed: {e}"))?;
        if handle(stream, &cache, data_dir).map_err(|e| format!("connection failed: {e}"))? {
            break;
        }
    }
    std::fs::remove_file(socket).ok();
    Ok(())
}

/// Serves one connection; returns whether the client asked to stop the
/// whole server.
fn handle(mut stream: UnixStream, cache: &CellCache, data_dir: &Path) -> std::io::Result<bool> {
    let reader = BufReader::new(stream.try_clone()?);
    for line in reader.lines() {
        let line = line?;
        let command = line.trim();
        if command.is_empty() {
            continue;
        }
        let response = respond(cache, data_dir, command);
        stream.write_all(response.to_string_pretty().as_bytes())?;
        stream.write_all(format!("\n{FRAME_END}\n").as_bytes())?;
        if command == "quit" {
            return Ok(true);
        }
    }
    Ok(false)
}

/// The JSON answer to one command line.
fn respond(cache: &CellCache, data_dir: &Path, command: &str) -> Json {
    let (verb, rest) = match command.split_once(' ') {
        Some((v, r)) => (v, r.trim()),
        None => (command, ""),
    };
    match verb {
        "ping" | "quit" => Json::obj().field("ok", true),
        "fingerprint" => Json::obj()
            .field("fingerprint", cache.digests().combined())
            .field("crates", cache.digests().to_json()),
        "stats" => {
            let (entries, fresh) = cache.scan();
            Json::obj()
                .field("entries", entries)
                .field("fresh", fresh)
                .field("stale", entries - fresh)
        }
        "cell" if !rest.is_empty() => match cache.read_entry(rest) {
            Some((entry, fresh)) => Json::obj()
                .field("found", true)
                .field("fresh", fresh)
                .field("entry", entry),
            None => Json::obj().field("found", false),
        },
        "profile" => match read_doc(&data_dir.join("BENCH_profile.json")) {
            Ok(doc) => Json::obj().field("found", true).field("profile", doc),
            Err(e) => Json::obj().field("found", false).field("error", e),
        },
        "telemetry" => {
            let path = if rest.is_empty() {
                data_dir.join("BENCH_trace.json")
            } else {
                std::path::PathBuf::from(rest)
            };
            match read_doc(&path).and_then(|doc| trace_summary(&doc)) {
                Ok(summary) => Json::obj()
                    .field("found", true)
                    .field("path", path.display().to_string())
                    .field("summary", summary),
                Err(e) => Json::obj().field("found", false).field("error", e),
            }
        }
        _ => Json::obj()
            .field("error", format!("unknown command {command:?}"))
            .field(
                "commands",
                "ping | fingerprint | stats | cell <key> | profile | telemetry [path] | quit",
            ),
    }
}

/// Reads and parses one JSON document from disk.
fn read_doc(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// Summarizes a Chrome trace-event document (what `--trace-out` writes):
/// event counts per phase (`X` spans, `C` counter samples, `i` fault
/// instants), the distinct span names, and the last slot touched.
fn trace_summary(doc: &Json) -> Result<Json, String> {
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err("no traceEvents array (not a Chrome trace?)".into());
    };
    let (mut spans, mut counters, mut instants) = (0u64, 0u64, 0u64);
    let mut names: Vec<String> = Vec::new();
    let mut last_slot = 0f64;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        if let Some(ts) = ev.get("ts").and_then(Json::as_f64) {
            let dur = ev.get("dur").and_then(Json::as_f64).unwrap_or(0.0);
            last_slot = last_slot.max(ts + dur);
        }
        match ph {
            "X" => {
                spans += 1;
                if let Some(name) = ev.get("name").and_then(Json::as_str) {
                    if !names.iter().any(|n| n == name) {
                        names.push(name.to_string());
                    }
                }
            }
            "C" => counters += 1,
            "i" => instants += 1,
            _ => {}
        }
    }
    Ok(Json::obj()
        .field("events", events.len() as u64)
        .field("spans", spans)
        .field("counter_samples", counters)
        .field("fault_instants", instants)
        .field(
            "span_names",
            Json::Arr(names.into_iter().map(Json::Str).collect()),
        )
        .field("last_slot", last_slot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{case_key, SourceDigests, FULL_DEPS};
    use crate::measure::{sweep_seeds, Case};

    /// Reads one `---`-terminated frame and parses it.
    fn read_frame(reader: &mut impl BufRead) -> Json {
        let mut body = String::new();
        loop {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "stream closed");
            if line.trim_end() == FRAME_END {
                break;
            }
            body.push_str(&line);
        }
        Json::parse(&body).unwrap()
    }

    #[test]
    fn serve_answers_fingerprint_stats_and_cell_queries() {
        let root = std::env::temp_dir().join("ebc_serve_tree");
        std::fs::remove_dir_all(&root).ok();
        for krate in crate::cache::DEP_CRATES {
            let src = root.join("crates").join(krate).join("src");
            std::fs::create_dir_all(&src).unwrap();
            for f in ["lib.rs", "experiments.rs", "scenario.rs", "measure.rs"] {
                std::fs::write(src.join(f), format!("// {krate}/{f}\n")).unwrap();
            }
        }
        let cache_dir = std::env::temp_dir().join("ebc_serve_store");
        std::fs::remove_dir_all(&cache_dir).ok();
        let digests = SourceDigests::compute_at(&root).unwrap();
        let fingerprint = digests.combined();
        let cache = CellCache::open_with(&cache_dir, digests).unwrap();
        let case = Case::new(
            vec![("n", 16usize.into())],
            sweep_seeds(2, |seed| vec![("time", seed as f64)]),
        );
        let key = case_key("m", &case.params, 2);
        cache.store(&key, FULL_DEPS, &case).unwrap();

        // The server in this test reads the *real* workspace digests via
        // CellCache::open, which would mismatch the planted tree — so
        // serve it through the same planted store by driving handle()
        // directly over a socketpair-style connection.
        // Plant a data dir with a profile doc and a tiny Chrome trace so
        // the read-side verbs have something to answer from.
        let data_dir = std::env::temp_dir().join("ebc_serve_data");
        std::fs::remove_dir_all(&data_dir).ok();
        std::fs::create_dir_all(&data_dir).unwrap();
        std::fs::write(
            data_dir.join("BENCH_profile.json"),
            Json::obj()
                .field("profile_schema", 1u64)
                .field("experiments", Json::Arr(vec![]))
                .to_string_pretty(),
        )
        .unwrap();
        std::fs::write(
            data_dir.join("BENCH_trace.json"),
            r#"{"traceEvents":[
                {"name":"flood","ph":"X","ts":0,"dur":12,"pid":0,"tid":0},
                {"name":"slot","ph":"C","ts":3,"pid":0,"args":{"tx":2}},
                {"name":"lost","ph":"i","ts":5,"pid":0,"tid":1,"s":"t"}
            ]}"#,
        )
        .unwrap();

        let socket = std::env::temp_dir().join("ebc_serve.sock");
        std::fs::remove_file(&socket).ok();
        let listener = UnixListener::bind(&socket).unwrap();
        let server_data_dir = data_dir.clone();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            handle(stream, &cache, &server_data_dir).unwrap()
        });

        let client = UnixStream::connect(&socket).unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut send = |cmd: &str| {
            (&client).write_all(format!("{cmd}\n").as_bytes()).unwrap();
            read_frame(&mut reader)
        };
        assert_eq!(send("ping").get("ok"), Some(&Json::Bool(true)));
        let fp = send("fingerprint");
        assert_eq!(
            fp.get("fingerprint").and_then(Json::as_str),
            Some(fingerprint.as_str())
        );
        let stats = send("stats");
        assert_eq!(stats.get("entries").and_then(Json::as_f64), Some(1.0));
        assert_eq!(stats.get("fresh").and_then(Json::as_f64), Some(1.0));
        let cell = send(&format!("cell {key}"));
        assert_eq!(cell.get("found"), Some(&Json::Bool(true)));
        assert_eq!(cell.get("fresh"), Some(&Json::Bool(true)));
        assert_eq!(
            cell.get("entry")
                .and_then(|e| e.get("key"))
                .and_then(Json::as_str),
            Some(key.as_str())
        );
        let missing = send("cell nonexistent|seeds=1|");
        assert_eq!(missing.get("found"), Some(&Json::Bool(false)));
        let profile = send("profile");
        assert_eq!(profile.get("found"), Some(&Json::Bool(true)));
        assert_eq!(
            profile
                .get("profile")
                .and_then(|p| p.get("profile_schema"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        let tel = send("telemetry");
        assert_eq!(tel.get("found"), Some(&Json::Bool(true)));
        let summary = tel.get("summary").unwrap();
        assert_eq!(summary.get("events").and_then(Json::as_f64), Some(3.0));
        assert_eq!(summary.get("spans").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            summary.get("counter_samples").and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            summary.get("fault_instants").and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(summary.get("last_slot").and_then(Json::as_f64), Some(12.0));
        let missing_trace = send("telemetry /nonexistent/trace.json");
        assert_eq!(missing_trace.get("found"), Some(&Json::Bool(false)));
        let err = send("bogus");
        assert!(err.get("error").is_some());
        assert_eq!(send("quit").get("ok"), Some(&Json::Bool(true)));
        assert!(server.join().unwrap(), "quit must stop the server");
        std::fs::remove_file(&socket).ok();
        std::fs::remove_dir_all(&data_dir).ok();
    }
}
