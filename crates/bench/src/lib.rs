//! The experiment harness: every row of the paper's Table 1 and every
//! figure, as a structured, parallel, JSON-emitting experiment subsystem.
//!
//! The layers:
//!
//! * [`measure`] — [`measure::Measurement`] / [`measure::Summary`] and the
//!   rayon-parallel seed sweeps ([`measure::sweep_seeds`],
//!   [`measure::sweep_broadcast`]).
//! * [`experiments`] — the registry: one [`experiments::ExperimentSpec`]
//!   per experiment, run via [`experiments::run_experiment`], producing an
//!   [`experiments::ExperimentResult`].
//! * [`scenario`] — the scenario matrix: the full `Family × Model ×
//!   algorithm × n` cross-product over [`ebc_core::suite`], with skipped
//!   incompatible pairs counted in the emitted JSON.
//! * [`json`] — the dependency-free JSON document model the results
//!   serialize through (schema-stable field order).
//! * [`report`] — aligned human-readable tables of the same results.
//!
//! The CLI (`cargo run -p ebc-bench -- --list`) and the `cargo bench`
//! targets under `benches/` are thin wrappers over [`run_to_files`].
//! Absolute constants are not expected to match the paper's asymptotic
//! formulas; the *shape* is what each experiment demonstrates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod json;
pub mod measure;
pub mod report;
pub mod scenario;

pub use experiments::{
    find_experiment, run_experiment, ExperimentOutput, ExperimentResult, ExperimentSpec,
    EXPERIMENTS, SCHEMA_VERSION,
};
pub use measure::{Case, Measurement, RunConfig, Stats, Summary};

use std::path::{Path, PathBuf};

/// Runs `spec`, prints its table, and writes `BENCH_<name>.json` under
/// `out_dir`. Returns the written path.
pub fn run_to_files(
    spec: &'static ExperimentSpec,
    config: &RunConfig,
    out_dir: &Path,
) -> std::io::Result<PathBuf> {
    let started = std::time::Instant::now();
    let result = run_experiment(spec, config);
    let elapsed = started.elapsed();
    print!("{}", report::render(&result));
    println!(
        "[{} cases in {:.2}s across {} threads]",
        result.cases.len(),
        elapsed.as_secs_f64(),
        rayon::current_num_threads()
    );
    let path = out_dir.join(format!("BENCH_{}.json", spec.name));
    std::fs::write(&path, result.to_json().to_string_pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_to_files_writes_named_json() {
        let dir = std::env::temp_dir().join("ebc_bench_test_out");
        std::fs::create_dir_all(&dir).unwrap();
        let config = RunConfig {
            seeds: Some(1),
            quick: true,
            ..RunConfig::default()
        };
        let path = run_to_files(find_experiment("table1_det").unwrap(), &config, &dir).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "BENCH_table1_det.json"
        );
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"experiment\": \"table1_det\""), "{body}");
        std::fs::remove_file(&path).ok();
    }
}
