//! The benchmark harness: one runner per row of the paper's Table 1 and
//! per figure, each printing a `paper bound` vs `measured` table.
//!
//! Absolute constants are not expected to match the asymptotic formulas;
//! the *shape* is what each runner demonstrates — who wins, how costs grow
//! with `n`, `Δ` and `D`, and where tradeoff knobs move the balance. The
//! targets under `benches/` are thin wrappers so `cargo bench --workspace`
//! regenerates every experiment; `src/main.rs` runs them by name.

#![forbid(unsafe_code)]

use ebc_core::baseline::bgi_decay_broadcast;
use ebc_core::cdfast::{broadcast_theorem20, Theorem20Config};
use ebc_core::cluster::{broadcast_theorem16, partition_beta, Theorem16Config};
use ebc_core::det::{broadcast_det_cd, broadcast_det_local, DetCdConfig, DetLocalConfig};
use ebc_core::path::{path_broadcast, PathConfig};
use ebc_core::randomized::{
    broadcast_corollary13, broadcast_theorem11, broadcast_theorem12, Theorem11Config,
    Theorem12Config,
};
use ebc_core::reduction::{run_reduction, theorem2_lower_bound, DecayMiddle, UniformCdMiddle};
use ebc_core::srcomm::Sr;
use ebc_core::util::NodeRngs;
use ebc_graphs::deterministic::{cycle, grid, k2k};
use ebc_radio::{Model, Sim};

fn logn(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

fn banner(title: &str, paper: &str) {
    println!("\n=== {title} ===");
    println!("paper: {paper}");
}

/// Averages `(time, max energy, mean energy)` over seeds; asserts success.
fn measure(
    graph: &ebc_radio::Graph,
    model: Model,
    seeds: u64,
    mut f: impl FnMut(&mut Sim) -> bool,
) -> (f64, f64, f64) {
    let (mut t, mut emax, mut emean) = (0.0, 0.0, 0.0);
    for seed in 0..seeds {
        let mut sim = Sim::new(graph.clone(), model, 1000 + seed);
        assert!(f(&mut sim), "run failed (seed {seed})");
        let r = sim.meter().report();
        t += r.time as f64;
        emax += r.max as f64;
        emean += r.mean;
    }
    let k = seeds as f64;
    (t / k, emax / k, emean / k)
}

/// E1 + E5 + E7: Table 1 randomized rows — Theorem 11 in LOCAL / CD /
/// No-CD and Theorem 12 in CD, swept over `n` on rings.
pub fn e1_table1_randomized() {
    banner(
        "E1/E5/E7 — Table 1 randomized rows (Theorem 11, Theorem 12)",
        "LOCAL: O(n log n) time, O(log n) energy | No-CD: O(n logΔ log²n), O(logΔ log²n) | CD: O(log²n/(ε loglog n)) energy",
    );
    println!(
        "{:>6} {:>7} | {:>11} {:>7} | {:>11} {:>7} | {:>11} {:>7} | {:>12} {:>7}",
        "n",
        "log²n",
        "LOCAL time",
        "E max",
        "CD time",
        "E max",
        "No-CD time",
        "E max",
        "T12-CD time",
        "E max"
    );
    for n in [64usize, 128, 256, 512] {
        let g = cycle(n);
        let t11 = Theorem11Config::default();
        let (tl, el, _) = measure(&g, Model::Local, 3, |s| {
            broadcast_theorem11(s, 0, &t11).all_informed()
        });
        let (tc, ec, _) = measure(&g, Model::Cd, 3, |s| {
            broadcast_theorem11(s, 0, &t11).all_informed()
        });
        let (tn, en, _) = measure(&g, Model::NoCd, 3, |s| {
            broadcast_theorem11(s, 0, &t11).all_informed()
        });
        let (t12, e12, _) = measure(&g, Model::Cd, 2, |s| {
            broadcast_theorem12(s, 0, &Theorem12Config::default()).all_informed()
        });
        println!(
            "{:>6} {:>7.0} | {:>11.0} {:>7.0} | {:>11.0} {:>7.0} | {:>11.0} {:>7.0} | {:>12.0} {:>7.0}",
            n,
            logn(n) * logn(n),
            tl,
            el,
            tc,
            ec,
            tn,
            en,
            t12,
            e12
        );
    }
    println!("shape: times grow ~linearly in n; energies grow polylog (compare the log²n column).");
}

/// E2: the `O(D^{1+ε})`-time algorithm (Theorem 16) on grids (`D = 2√n`),
/// against the `O(n · polylog)`-time Theorem 11.
pub fn e2_table1_dtime() {
    banner(
        "E2 — Table 1 No-CD row 2 (Theorem 16, D^{1+ε} time)",
        "O(D^{1+ε} log^{O(1/ε)} n) time vs Theorem 11's O(n logΔ log²n); on grids D = 2√n ≪ n",
    );
    println!(
        "{:>10} {:>6} {:>5} | {:>12} {:>8} | {:>12} {:>8}",
        "graph", "n", "D", "T16 time", "E max", "T11 time", "E max"
    );
    for side in [8usize, 12, 16, 22] {
        let g = grid(side, side);
        let d = 2 * (side - 1);
        let cfg = Theorem16Config {
            beta_override: Some(0.25),
            ..Theorem16Config::default()
        };
        let (t16, e16, _) = measure(&g, Model::NoCd, 2, |s| {
            broadcast_theorem16(s, 0, &cfg).all_informed()
        });
        let (t11, e11, _) = measure(&g, Model::NoCd, 2, |s| {
            broadcast_theorem11(s, 0, &Theorem11Config::default()).all_informed()
        });
        println!(
            "{:>10} {:>6} {:>5} | {:>12.0} {:>8.0} | {:>12.0} {:>8.0}",
            format!("grid {side}x{side}"),
            side * side,
            d,
            t16,
            e16,
            t11,
            e11
        );
    }
    println!("shape: Theorem 11's time scales with n (the vertex count); Theorem 16's with D · polylog — the gap widens as the grid grows, the D^{{1+ε}} claim.");
}

/// E3: Corollary 13 — bounded degree No-CD via LOCAL simulation.
pub fn e3_table1_bounded() {
    banner(
        "E3 — Table 1 No-CD row 3 (Corollary 13, Δ = O(1))",
        "O(n log n) time, O(log n) energy on bounded-degree graphs",
    );
    println!(
        "{:>6} {:>7} | {:>12} {:>8} | {:>12} {:>8}",
        "n", "log n", "Cor13 time", "E max", "plain time", "E max"
    );
    for n in [64usize, 128, 256, 512] {
        let g = cycle(n);
        let (tc, ec, _) = measure(&g, Model::NoCd, 2, |s| {
            broadcast_corollary13(s, 0).all_informed()
        });
        let (tp, ep, _) = measure(&g, Model::NoCd, 2, |s| {
            broadcast_theorem11(s, 0, &Theorem11Config::default()).all_informed()
        });
        println!(
            "{:>6} {:>7.1} | {:>12.0} {:>8.0} | {:>12.0} {:>8.0}",
            n,
            logn(n),
            tc,
            ec,
            tp,
            ep
        );
    }
    println!("shape: Corollary 13's energy grows like log n and undercuts the generic No-CD pipeline.");
}

/// E4: the Theorem 2 lower-bound gadget — reduction-derived leader
/// election on `K_{2,k}`, CD vs No-CD.
pub fn e4_table1_lower() {
    banner(
        "E4 — Table 1 lower-bound rows (Theorem 2 reduction on K_{2,k})",
        "energy ≥ T_LE(Δ, f)/2: Ω(log n) in CD, Ω(logΔ log n) in No-CD",
    );
    println!(
        "{:>6} | {:>14} {:>14} | {:>14} {:>14} | {:>10}",
        "k", "No-CD slots", "bound(f=1%)", "CD slots", "bound(f=1%)", "bcast E"
    );
    for k in [8usize, 32, 128, 512] {
        let runs = 10;
        let mut nocd = 0.0;
        let mut cd = 0.0;
        for seed in 0..runs {
            let (r, _) = run_reduction(k, Model::NoCd, |_| DecayMiddle::new(k), seed, 100_000);
            nocd += r.slots as f64;
            let (r, _) = run_reduction(k, Model::Cd, |_| UniformCdMiddle::new(k), seed, 100_000);
            cd += r.slots as f64;
        }
        // Broadcast energy on the gadget itself (Theorem 11, CD).
        let g = k2k(k);
        let (_, emax, _) = measure(&g, Model::Cd, 2, |s| {
            broadcast_theorem11(s, 0, &Theorem11Config::default()).all_informed()
        });
        println!(
            "{:>6} | {:>14.1} {:>14.1} | {:>14.1} {:>14.1} | {:>10.0}",
            k,
            nocd / runs as f64,
            theorem2_lower_bound(Model::NoCd, k, 0.01),
            cd / runs as f64,
            theorem2_lower_bound(Model::Cd, k, 0.01),
            emax
        );
    }
    println!("shape: No-CD election time grows with log k; CD stays near-flat (loglog k) — the separation behind the Table 1 lower bounds. Broadcast energy always dominates the bound.");
}

/// E6: the improved CD algorithm (Theorem 20).
pub fn e6_table1_cdfast() {
    banner(
        "E6 — Table 1 CD row 2 (Theorem 20)",
        "O(log n (loglogΔ + 1/ξ)/logloglogΔ) energy at O(Δ n^{1+ξ}) time",
    );
    println!(
        "{:>6} | {:>14} {:>8} | {:>12} {:>8}",
        "n", "T20 time", "E max", "T11-CD time", "E max"
    );
    for n in [32usize, 64, 128] {
        let g = cycle(n);
        let (t20, e20, _) = measure(&g, Model::Cd, 2, |s| {
            broadcast_theorem20(s, 0, &Theorem20Config::default()).all_informed()
        });
        let (t11, e11, _) = measure(&g, Model::Cd, 2, |s| {
            broadcast_theorem11(s, 0, &Theorem11Config::default()).all_informed()
        });
        println!(
            "{:>6} | {:>14.0} {:>8.0} | {:>12.0} {:>8.0}",
            n, t20, e20, t11, e11
        );
    }
    println!("shape: Theorem 20 buys lower energy with (much) more time, per the paper's tradeoff.");
}

/// E8 + E9: deterministic rows (Theorems 25 and 27).
pub fn e8_table1_det() {
    banner(
        "E8/E9 — Table 1 deterministic rows (Theorems 25, 27)",
        "LOCAL: O(n log n log N) time, O(log n log N) energy | CD: O(nN² log n log N) time, O(log³N log n) energy",
    );
    println!(
        "{:>6} {:>9} | {:>12} {:>8} | {:>16} {:>8}",
        "n", "log n·logN", "T25 time", "E max", "T27 time", "E max"
    );
    for n in [16usize, 32, 64] {
        let g = cycle(n);
        let mut sim = Sim::new(g.clone(), Model::Local, 0);
        assert!(broadcast_det_local(&mut sim, 0, &DetLocalConfig::default()).all_informed());
        let r25 = sim.meter().report();
        let mut sim = Sim::new(g, Model::Cd, 0);
        assert!(broadcast_det_cd(&mut sim, 0, &DetCdConfig::default()).all_informed());
        let r27 = sim.meter().report();
        println!(
            "{:>6} {:>9.0} | {:>12} {:>8} | {:>16} {:>8}",
            n,
            logn(n) * logn(n),
            r25.time,
            r25.max,
            r27.time,
            r27.max
        );
    }
    println!("shape: both deterministic energies grow polylog; Theorem 27's clock is polynomial (N² factor) exactly as the paper charges for determinism in CD.");
}

/// E10 + E11: the path algorithm (Figure 1 + Theorem 21).
pub fn e10_fig1_path() {
    banner(
        "E10/E11 — Figure 1 & Theorem 21 (the path algorithm)",
        "worst-case time 2n, expected per-vertex energy O(log n)",
    );
    println!(
        "{:>7} {:>7} | {:>10} {:>6} | {:>9} {:>9}",
        "n", "log n", "time", "≤ 2n?", "E mean", "E max"
    );
    for exp in [8u32, 10, 12, 14] {
        let n = 1usize << exp;
        let runs = 5;
        let (mut t, mut emean, mut emax) = (0.0f64, 0.0f64, 0.0f64);
        let mut ok = true;
        for seed in 0..runs {
            let cfg = PathConfig {
                oriented: true,
                cap_blocking: true,
            };
            let (stats, engine) = path_broadcast(n, 0, &cfg, seed);
            assert!(stats.all_informed);
            ok &= stats.delivery_time <= 2 * n as u64;
            t += stats.delivery_time as f64;
            let r = engine.meter().report();
            emean += r.mean;
            emax += r.max as f64;
        }
        let k = runs as f64;
        println!(
            "{:>7} {:>7.0} | {:>10.0} {:>6} | {:>9.2} {:>9.1}",
            n,
            exp,
            t / k,
            ok,
            emean / k,
            emax / k
        );
    }
    println!("shape: time stays under 2n at every size; mean energy tracks log n (compare columns).");
}

/// E12: ablations — SR primitive energies and Partition(β) statistics.
pub fn e12_ablation() {
    banner(
        "E12 — ablations (Lemmas 7/8, Lemma 14/15, §5 parameters)",
        "decay: O(logΔ log 1/f) receiver energy vs CD transform: O(loglogΔ + log 1/f); Partition(β): edge-cut ≤ 2β, diameter ×3β",
    );
    // SR primitives on stars of growing degree.
    println!(
        "{:>6} | {:>18} | {:>18}",
        "Δ", "decay recv E", "CD-transform recv E"
    );
    for delta in [8usize, 64, 512] {
        let g = ebc_graphs::deterministic::star(delta);
        let senders: Vec<(usize, u32)> = (1..=delta).map(|v| (v, v as u32)).collect();
        let runs = 10;
        let (mut decay_e, mut cd_e) = (0.0f64, 0.0f64);
        for seed in 0..runs {
            let mut sim = Sim::new(g.clone(), Model::NoCd, seed);
            let sr = Sr::Decay { delta, sweeps: 20 };
            let got = sr.run(&mut sim, &senders, &[0], &mut NodeRngs::new(seed, delta + 1, 1));
            assert!(got[0].is_some());
            decay_e += sim.meter().energy(0) as f64;
            let mut sim = Sim::new(g.clone(), Model::Cd, seed);
            let sr = Sr::CdTransform {
                delta,
                epochs: 30,
                relevance_check: false,
            };
            let got = sr.run(&mut sim, &senders, &[0], &mut NodeRngs::new(seed, delta + 1, 2));
            assert!(got[0].is_some());
            cd_e += sim.meter().energy(0) as f64;
        }
        println!(
            "{:>6} | {:>18.1} | {:>18.1}",
            delta,
            decay_e / runs as f64,
            cd_e / runs as f64
        );
    }
    // Partition(β) statistics (Lemma 14/15).
    println!(
        "\n{:>6} | {:>10} {:>10} | {:>8} {:>10}",
        "β", "cut frac", "2β bound", "D(G_L)", "3βD bound"
    );
    let n = 512;
    let g = cycle(n);
    for beta in [0.1f64, 0.2, 0.3] {
        let runs = 5;
        let mut cut = 0.0;
        let mut cd = 0.0;
        for seed in 0..runs {
            let mut sim = Sim::new(g.clone(), Model::Local, seed);
            let mut rngs = NodeRngs::new(seed, n, 9);
            let st = partition_beta(&mut sim, beta, &Sr::Local, &mut rngs);
            cut += st.edge_cut_fraction(&g);
            let (cg, _) = st.cluster_graph(&g);
            cd += f64::from(cg.diameter_exact().unwrap_or(0));
        }
        println!(
            "{:>6.1} | {:>10.3} {:>10.3} | {:>8.1} {:>10.1}",
            beta,
            cut / runs as f64,
            2.0 * beta,
            cd / runs as f64,
            3.0 * beta * (n / 2) as f64
        );
    }
    println!("shape: measured cut fractions sit under 2β; cluster-graph diameters under 3βD — Lemmas 14 and 15.");
}

/// E13: the baseline energy gap (growth comparison).
pub fn e13_baseline_gap() {
    banner(
        "E13 — baseline gap (BGI decay vs Theorem 11)",
        "BGI energy grows Θ(D); Theorem 11's grows polylog",
    );
    println!(
        "{:>6} | {:>10} {:>8} | {:>10} {:>8}",
        "n", "T11 E max", "growth", "BGI E max", "growth"
    );
    let mut prev: Option<(f64, f64)> = None;
    for n in [128usize, 256, 512, 1024] {
        let g = cycle(n);
        let (_, e11, _) = measure(&g, Model::NoCd, 2, |s| {
            broadcast_theorem11(s, 0, &Theorem11Config::default()).all_informed()
        });
        let (_, ebgi, _) = measure(&g, Model::NoCd, 2, |s| {
            bgi_decay_broadcast(s, 0, None).all_informed()
        });
        let (g11, gbgi) = prev.map_or((f64::NAN, f64::NAN), |(p1, p2)| (e11 / p1, ebgi / p2));
        println!(
            "{:>6} | {:>10.0} {:>8.2} | {:>10.0} {:>8.2}",
            n, e11, g11, ebgi, gbgi
        );
        prev = Some((e11, ebgi));
    }
    println!("shape: doubling n doubles BGI's energy; Theorem 11's is nearly flat. The crossover point lies beyond these sizes because the clustering constants are large — the asymptotic claim, honestly reported.");
}

/// Every experiment, in order.
pub const ALL: &[(&str, fn())] = &[
    ("e1_table1_randomized", e1_table1_randomized),
    ("e2_table1_dtime", e2_table1_dtime),
    ("e3_table1_bounded", e3_table1_bounded),
    ("e4_table1_lower", e4_table1_lower),
    ("e6_table1_cdfast", e6_table1_cdfast),
    ("e8_table1_det", e8_table1_det),
    ("e10_fig1_path", e10_fig1_path),
    ("e12_ablation", e12_ablation),
    ("e13_baseline_gap", e13_baseline_gap),
];
