//! The experiment harness: every row of the paper's Table 1 and every
//! figure, as a structured, parallel, JSON-emitting experiment subsystem.
//!
//! The layers:
//!
//! * [`measure`] — [`measure::Measurement`] / [`measure::Summary`] and the
//!   rayon-parallel seed sweeps ([`measure::sweep_seeds`],
//!   [`measure::sweep_broadcast`]), plus the [`measure::CaseRunner`]
//!   executor routing every cell through the cache and splitting each
//!   cell's wall-clock into build / sim / analysis / cache time
//!   ([`measure::RunnerProfile`], emitted as `BENCH_profile.json`).
//! * [`cache`] — the content-addressed cell cache: on-disk results keyed
//!   on `(cell-config hash, per-crate source digests)`, making
//!   `--check-against` / `--update-baselines` incremental (warm cells
//!   skip execution; a graphs-only edit invalidates only graph-sensitive
//!   cells).
//! * [`experiments`] — the registry: one [`experiments::ExperimentSpec`]
//!   per experiment, run via [`experiments::run_experiment`], producing an
//!   [`experiments::ExperimentResult`].
//! * [`scenario`] — the scenario matrix: the full `Family × Model ×
//!   algorithm × n` cross-product over [`ebc_core::suite`], with skipped
//!   incompatible pairs counted in the emitted JSON and per-cell
//!   wall-clock budgets truncating runaway n-sweeps.
//! * [`analysis`] — log-log scaling fits across the matrix's n axis:
//!   exponent, R², bootstrap exponent CIs, and a polylog-vs-polynomial
//!   growth classification per `(algorithm, family, model)` cell, emitted
//!   as `BENCH_scaling_fits.json`.
//! * [`stats`] — the statistics layer under the fits: a deterministic
//!   splitmix-seeded resampler, percentile confidence intervals, and the
//!   seed-level bootstrap driver.
//! * [`baseline`] — checked-in baselines under `bench-baselines/` (one
//!   per registered experiment) and the `--check-against` regression gate
//!   diffing summaries, gate scalars, *and* exponent CIs.
//! * [`json`] — the dependency-free JSON document model the results
//!   serialize through (schema-stable field order), with a parser for
//!   reading baselines back.
//! * [`report`] — aligned human-readable tables of the same results.
//! * [`serve`] (unix) — the `--serve` loop answering fingerprint,
//!   warm-cell, profile, and telemetry-trace queries over a unix socket.
//!
//! The CLI (`cargo run -p ebc-bench -- --list`) and the `cargo bench`
//! targets under `benches/` are thin wrappers over [`run_to_files`].
//! Absolute constants are not expected to match the paper's asymptotic
//! formulas; the *shape* is what each experiment demonstrates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baseline;
pub mod cache;
pub mod experiments;
pub mod json;
pub mod measure;
pub mod report;
pub mod scenario;
#[cfg(unix)]
pub mod serve;
pub mod stats;

pub use experiments::{
    find_experiment, run_experiment, ExperimentOutput, ExperimentResult, ExperimentSpec,
    EXPERIMENTS, SCHEMA_VERSION,
};
pub use measure::{Case, Measurement, RunConfig, Stats, Summary};

use std::path::{Path, PathBuf};

use json::Json;

/// Writes `result`'s JSON documents under `out_dir`: `BENCH_<name>.json`
/// always, plus `BENCH_scaling_fits.json` when the result carries a
/// top-level `fits` section (the scenario matrix). Returns the written
/// paths, main document first.
pub fn write_result_files(
    result: &ExperimentResult,
    out_dir: &Path,
) -> std::io::Result<Vec<PathBuf>> {
    let mut paths = Vec::new();
    let path = out_dir.join(format!("BENCH_{}.json", result.spec.name));
    std::fs::write(&path, result.to_json().to_string_pretty())?;
    paths.push(path);
    if let Some((_, fits)) = result.extra.iter().find(|(k, _)| *k == "fits") {
        let doc = Json::obj()
            .field("schema_version", SCHEMA_VERSION)
            .field("experiment", "scaling_fits")
            .field("source", result.spec.name)
            .field(
                "config",
                Json::obj()
                    .field("seeds", result.config.seeds.map_or(Json::Null, Json::from))
                    .field("quick", result.config.quick),
            )
            .field("fits", fits.clone());
        let path = out_dir.join("BENCH_scaling_fits.json");
        std::fs::write(&path, doc.to_string_pretty())?;
        paths.push(path);
    }
    Ok(paths)
}

/// Prints `result`'s table (with the run's wall-clock) and writes its
/// JSON documents under `out_dir` (see [`write_result_files`]). The
/// shared back half of [`run_to_files`] and the CLI, which needs the
/// [`ExperimentResult`] itself for the baseline gate.
pub fn report_and_write(
    result: &ExperimentResult,
    elapsed: std::time::Duration,
    out_dir: &Path,
) -> std::io::Result<Vec<PathBuf>> {
    print!("{}", report::render(result));
    print!("{}", report::render_profile(result));
    println!(
        "[{} cases in {:.2}s across {} threads]",
        result.cases.len(),
        elapsed.as_secs_f64(),
        rayon::current_num_threads()
    );
    write_result_files(result, out_dir)
}

/// Runs `spec`, prints its table, and writes its JSON documents under
/// `out_dir` (see [`write_result_files`]). Returns the main written path.
pub fn run_to_files(
    spec: &'static ExperimentSpec,
    config: &RunConfig,
    out_dir: &Path,
) -> std::io::Result<PathBuf> {
    let started = std::time::Instant::now();
    let result = run_experiment(spec, config);
    let paths = report_and_write(&result, started.elapsed(), out_dir)?;
    Ok(paths.into_iter().next().expect("main path"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_to_files_writes_named_json() {
        let dir = std::env::temp_dir().join("ebc_bench_test_out");
        std::fs::create_dir_all(&dir).unwrap();
        let config = RunConfig {
            seeds: Some(1),
            quick: true,
            ..RunConfig::default()
        };
        let path = run_to_files(find_experiment("table1_det").unwrap(), &config, &dir).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "BENCH_table1_det.json"
        );
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"experiment\": \"table1_det\""), "{body}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scenario_matrix_also_writes_the_fits_document() {
        let dir = std::env::temp_dir().join("ebc_bench_test_fits_out");
        std::fs::create_dir_all(&dir).unwrap();
        let config = RunConfig {
            seeds: Some(1),
            quick: true,
            budget_ms: Some(0),
            family: Some("cycle".into()),
            model: Some("cd".into()),
            ..RunConfig::default()
        };
        let result = run_experiment(find_experiment("scenario_matrix").unwrap(), &config);
        let paths = write_result_files(&result, &dir).unwrap();
        assert_eq!(paths.len(), 2, "{paths:?}");
        assert!(paths[1].ends_with("BENCH_scaling_fits.json"));
        let body = std::fs::read_to_string(&paths[1]).unwrap();
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("source").unwrap().as_str(), Some("scenario_matrix"));
        assert!(!doc.get("fits").unwrap().as_arr().unwrap().is_empty());
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }
}
