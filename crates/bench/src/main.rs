//! The experiment CLI.
//!
//! ```text
//! cargo run --release -p ebc-bench -- --list
//! cargo run --release -p ebc-bench -- --experiment table1_randomized --quick
//! cargo run --release -p ebc-bench -- --seeds 10 --out-dir results/
//! cargo run --release -p ebc-bench -- --update-baselines
//! cargo run --release -p ebc-bench -- --quick --check-against bench-baselines
//! ```
//!
//! With no `--experiment` every registered experiment runs. Each run
//! prints an aligned table and writes a schema-stable
//! `BENCH_<experiment>.json` to the output directory (the scenario matrix
//! additionally writes `BENCH_scaling_fits.json`).
//!
//! `--check-against <dir>` turns the run into a regression gate over
//! **every selected experiment** (all of them by default): each is
//! re-run and its summary means, gate scalars, and fitted scaling
//! exponents (by bootstrap-CI overlap) are diffed against the checked-in
//! `<dir>/<experiment>.json`, exiting nonzero on any out-of-tolerance
//! drift and writing a per-experiment `BENCH_gate_report.json` (plus a
//! markdown `BENCH_gate_summary.md` for CI step summaries) to the
//! output directory. `--update-baselines` refreshes the whole
//! `bench-baselines/` directory in one step. Both force an unlimited
//! per-cell budget so the gated case set never depends on machine speed.
//!
//! Every run drains through the on-disk cell cache (`--cache-dir`,
//! default `.ebc-cache`): a cell whose config and dependency sources are
//! unchanged loads from disk instead of re-executing, so a warm
//! `--check-against` run re-executes zero cells. `--no-cache` opts out,
//! `--print-fingerprint` emits the code-version hash CI keys its cache
//! restore on, and hit/miss/invalidation counts land in
//! `BENCH_cache_stats.json`.

use std::path::PathBuf;
use std::process::ExitCode;

use ebc_bench::baseline::{self, GateOutcome, Tolerances};
use ebc_bench::cache::{CacheStats, SourceDigests};
use ebc_bench::json::Json;
use ebc_bench::measure::{RunnerProfile, UNLIMITED_BUDGET_MS};
use ebc_bench::{
    find_experiment, report_and_write, run_experiment, ExperimentSpec, RunConfig, EXPERIMENTS,
};

/// Where `--update-baselines` writes (and CI reads) the checked-in gate.
const BASELINE_DIR: &str = "bench-baselines";

/// Default on-disk cell cache (CI persists this across runs).
const CACHE_DIR: &str = ".ebc-cache";

struct Args {
    list: bool,
    experiments: Vec<String>,
    config: RunConfig,
    out_dir: PathBuf,
    check_against: Option<PathBuf>,
    update_baselines: bool,
    cache_dir: PathBuf,
    no_cache: bool,
    print_fingerprint: bool,
    serve: Option<PathBuf>,
}

const USAGE: &str = "\
Usage: ebc-bench [OPTIONS]

Options:
  --list                 List registered experiments and exit
  --experiment <NAME>    Run only this experiment (exact name or unique
                         substring; repeatable). Default: run all.
  --seeds <N>            Override the per-case seed count
  --quick                Smaller sweeps and fewer seeds (CI smoke mode)
  --family <NAME>        Scenario matrix: only this graph family
                         (e.g. cycle, grid, hypercube, unit-disk)
  --model <NAME>         Scenario matrix: only this collision model
                         (local, cd, cd-star, no-cd)
  --algo <NAME>          Scenario matrix: only this algorithm
                         (e.g. theorem11, bgi_decay, path_theorem21)
  --fault <NAME>         Scenario matrix: only this fault plan
                         (none, slot-loss, crash, jammer)
  --resamples <N>        Bootstrap resamples per fitted statistic and
                         report CI (default 200)
  --budget-ms <N>        Scenario matrix: wall-clock budget per (algorithm,
                         family, model) cell before its n-sweep truncates
                         (0 = first size only; default 250 quick / 2000 full)
  --trace-out <PATH>     Scenario matrix: re-run the first compatible cell
                         with telemetry on and write its Chrome trace-event
                         JSON to PATH (plus a .jsonl sibling); load it at
                         https://ui.perfetto.dev or chrome://tracing
  --check-against <DIR>  Regression gate: run every selected experiment
                         (default: all) and diff summary means, gate
                         scalars, and scaling-exponent CIs against
                         <DIR>/<experiment>.json; writes
                         BENCH_gate_report.json and exits nonzero on drift
  --update-baselines     Rewrite bench-baselines/ (one file per registered
                         experiment) from fresh quick runs, then exit
  --cache-dir <DIR>      On-disk cell cache: warm cells (same cell config
                         and unchanged dependency sources) are loaded
                         instead of re-executed (default .ebc-cache)
  --no-cache             Disable the cell cache (every cell re-executes)
  --print-fingerprint    Print the combined code-version fingerprint (the
                         hash CI keys the cache restore on) and exit
  --serve <SOCKET>       Serve cache queries (ping/fingerprint/stats/cell/
                         profile/telemetry) on a unix socket until a
                         client sends quit; profile and telemetry read the
                         documents under --out-dir
  --out-dir <DIR>        Directory for BENCH_<name>.json files (default .)
  --dataset-dir <DIR>    Where the ds-* families load their dataset files
                         from (default: the vendored datasets/ directory);
                         cells are keyed on the files' content digests
  --threads <N>          Worker threads for seed sweeps (default: all cores)
  -h, --help             Show this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        list: false,
        experiments: Vec::new(),
        config: RunConfig::default(),
        out_dir: PathBuf::from("."),
        check_against: None,
        update_baselines: false,
        cache_dir: PathBuf::from(CACHE_DIR),
        no_cache: false,
        print_fingerprint: false,
        serve: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value\n\n{USAGE}"))
        };
        match arg.as_str() {
            "--list" => args.list = true,
            "--experiment" => args.experiments.push(value("--experiment")?),
            "--seeds" => {
                let v = value("--seeds")?;
                args.config.seeds = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("invalid --seeds {v:?}"))?,
                );
            }
            "--quick" => args.config.quick = true,
            "--family" => args.config.family = Some(value("--family")?),
            "--model" => args.config.model = Some(value("--model")?),
            "--algo" => args.config.algo = Some(value("--algo")?),
            "--fault" => args.config.fault = Some(value("--fault")?),
            "--resamples" => {
                let v = value("--resamples")?;
                args.config.resamples = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid --resamples {v:?}"))?,
                );
            }
            "--budget-ms" => {
                let v = value("--budget-ms")?;
                args.config.budget_ms = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("invalid --budget-ms {v:?}"))?,
                );
            }
            "--trace-out" => args.config.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--check-against" => {
                args.check_against = Some(PathBuf::from(value("--check-against")?))
            }
            "--update-baselines" => args.update_baselines = true,
            "--cache-dir" => args.cache_dir = PathBuf::from(value("--cache-dir")?),
            "--no-cache" => args.no_cache = true,
            "--print-fingerprint" => args.print_fingerprint = true,
            "--serve" => args.serve = Some(PathBuf::from(value("--serve")?)),
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")?),
            "--dataset-dir" => {
                // The graphs crate and the cache digests both resolve
                // dataset files through this env var, so one flag moves
                // the loaders and the staleness keys together.
                std::env::set_var("EBC_DATASET_DIR", value("--dataset-dir")?);
            }
            "--threads" => {
                let v = value("--threads")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --threads {v:?}"))?;
                // The vendored rayon shim reads this per sweep.
                std::env::set_var("EBC_NUM_THREADS", n.to_string());
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Runs `spec` with an unlimited cell budget (gate runs and baseline
/// refreshes must not depend on machine speed; only the scenario matrix
/// reads the budget, so this is a no-op for the other experiments).
fn gated_run(spec: &'static ExperimentSpec, config: &RunConfig) -> ebc_bench::ExperimentResult {
    let mut config = config.clone();
    config.budget_ms = Some(UNLIMITED_BUDGET_MS);
    run_experiment(spec, &config)
}

/// Writes `BENCH_cache_stats.json`: the combined fingerprint, every
/// per-crate digest, and hit/miss/invalidation counts per experiment
/// plus in total. CI parses this to assert a warm gate re-executes
/// nothing and uploads it as an artifact.
fn write_cache_stats(
    out_dir: &std::path::Path,
    per_experiment: &[(&'static str, CacheStats)],
) -> std::io::Result<PathBuf> {
    let mut total = CacheStats::default();
    let mut rows = Vec::new();
    for (name, stats) in per_experiment {
        total.add(*stats);
        rows.push(
            Json::obj()
                .field("experiment", *name)
                .field("cache", stats.to_json()),
        );
    }
    let mut doc = Json::obj().field("cache_stats_schema", 1u64);
    match SourceDigests::compute() {
        Ok(digests) => {
            doc = doc
                .field("fingerprint", digests.combined())
                .field("crates", digests.to_json());
        }
        Err(e) => doc = doc.field("fingerprint_error", e),
    }
    let doc = doc
        .field("experiments", Json::Arr(rows))
        .field("total", total.to_json());
    let path = out_dir.join("BENCH_cache_stats.json");
    std::fs::write(&path, doc.to_string_pretty())?;
    Ok(path)
}

/// Writes `BENCH_profile.json`: every experiment's per-cell wall-clock
/// breakdown (graph build / sim / cache) plus analysis time, with grand
/// totals across the run. Kept separate from the `BENCH_<name>.json`
/// result documents so wall-clock noise never churns the baselines; the
/// per-experiment totals match the `profile:` line in the report tables.
fn write_profile(
    out_dir: &std::path::Path,
    per_experiment: &[(&'static str, RunnerProfile)],
) -> std::io::Result<PathBuf> {
    use std::time::Duration;
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let mut rows = Vec::new();
    let (mut build, mut sim, mut analysis, mut cache) = (
        Duration::ZERO,
        Duration::ZERO,
        Duration::ZERO,
        Duration::ZERO,
    );
    for (name, profile) in per_experiment {
        let (b, s, c) = profile.totals();
        build += b;
        sim += s;
        cache += c;
        analysis += profile.analysis;
        rows.push(
            Json::obj()
                .field("experiment", *name)
                .field("profile", profile.to_json()),
        );
    }
    let grand = build + sim + analysis + cache;
    let doc = Json::obj()
        .field("profile_schema", 1u64)
        .field("experiments", Json::Arr(rows))
        .field(
            "totals",
            Json::obj()
                .field("build_ms", ms(build))
                .field("sim_ms", ms(sim))
                .field("analysis_ms", ms(analysis))
                .field("cache_ms", ms(cache))
                .field("total_ms", ms(grand)),
        );
    let path = out_dir.join("BENCH_profile.json");
    std::fs::write(&path, doc.to_string_pretty())?;
    Ok(path)
}

fn main() -> ExitCode {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.print_fingerprint {
        return match SourceDigests::compute() {
            Ok(digests) => {
                println!("{}", digests.combined());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(socket) = &args.serve {
        #[cfg(unix)]
        return match ebc_bench::serve::serve(socket, &args.cache_dir, &args.out_dir) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
        #[cfg(not(unix))]
        {
            let _ = socket;
            eprintln!("error: --serve needs unix sockets");
            return ExitCode::FAILURE;
        }
    }

    if !args.no_cache {
        args.config.cache_dir = Some(args.cache_dir.clone());
    }

    if args.list {
        println!("{:<20} TITLE", "NAME");
        for spec in EXPERIMENTS {
            println!("{:<20} {}", spec.name, spec.title);
        }
        return ExitCode::SUCCESS;
    }

    if args.update_baselines {
        // A filtered refresh would overwrite the full baseline with a
        // slice, silently un-gating every other cell — refuse instead.
        if args.config.family.is_some()
            || args.config.model.is_some()
            || args.config.algo.is_some()
            || args.config.fault.is_some()
        {
            eprintln!(
                "error: --update-baselines refreshes the full gate; \
                 drop --family/--model/--algo/--fault"
            );
            return ExitCode::FAILURE;
        }
        // Baselines gate the CI quick runs, so the refresh pins quick
        // mode regardless of the other flags.
        let mut config = args.config.clone();
        config.quick = true;
        for spec in EXPERIMENTS {
            let result = gated_run(spec, &config);
            match baseline::write_baseline(std::path::Path::new(BASELINE_DIR), &result) {
                Ok(path) => {
                    println!("wrote {} ({} cases)", path.display(), result.cases.len());
                }
                Err(e) => {
                    eprintln!("error: writing baselines for {}: {e}", spec.name);
                    return ExitCode::FAILURE;
                }
            }
        }
        println!(
            "refreshed {BASELINE_DIR}/ for {} experiments — commit to update the gate",
            EXPERIMENTS.len()
        );
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&'static ExperimentSpec> = if args.experiments.is_empty() {
        EXPERIMENTS.iter().collect()
    } else {
        let mut specs = Vec::new();
        for name in &args.experiments {
            match find_experiment(name) {
                Some(spec) => specs.push(spec),
                None => {
                    eprintln!("error: no unique experiment matches {name:?} (try --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        specs
    };

    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        eprintln!("error: cannot create {}: {e}", args.out_dir.display());
        return ExitCode::FAILURE;
    }

    // With `--check-against` every selected run doubles as its own gate
    // run (budget pinned so the case set is machine-independent).
    let mut outcomes: Vec<GateOutcome> = Vec::new();
    let mut cache_rows: Vec<(&'static str, CacheStats)> = Vec::new();
    let mut profile_rows: Vec<(&'static str, RunnerProfile)> = Vec::new();
    for spec in selected {
        let started = std::time::Instant::now();
        let result = if args.check_against.is_some() {
            gated_run(spec, &args.config)
        } else {
            run_experiment(spec, &args.config)
        };
        match report_and_write(&result, started.elapsed(), &args.out_dir) {
            Ok(paths) => {
                for path in paths {
                    println!("wrote {}", path.display());
                }
            }
            Err(e) => {
                eprintln!("error: writing results for {}: {e}", spec.name);
                return ExitCode::FAILURE;
            }
        }
        if let Some(stats) = result.cache {
            cache_rows.push((spec.name, stats));
        }
        profile_rows.push((spec.name, result.profile.clone()));
        if let Some(dir) = &args.check_against {
            outcomes.push(GateOutcome {
                experiment: spec.name,
                report: baseline::check_against(dir, &result, &Tolerances::default()),
                cache: result.cache,
            });
        }
    }

    if !cache_rows.is_empty() {
        match write_cache_stats(&args.out_dir, &cache_rows) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: writing cache stats: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if !profile_rows.is_empty() {
        match write_profile(&args.out_dir, &profile_rows) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: writing profile: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(dir) = &args.check_against {
        let report_path = args.out_dir.join("BENCH_gate_report.json");
        if let Err(e) = std::fs::write(
            &report_path,
            baseline::gate_report_doc(dir, &outcomes).to_string_pretty(),
        ) {
            eprintln!("error: writing {}: {e}", report_path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", report_path.display());
        let summary_path = args.out_dir.join("BENCH_gate_summary.md");
        if let Err(e) = std::fs::write(
            &summary_path,
            baseline::gate_summary_markdown(dir, &outcomes),
        ) {
            eprintln!("error: writing {}: {e}", summary_path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", summary_path.display());
        let mut failed = 0usize;
        for outcome in &outcomes {
            match &outcome.report {
                Ok(report) => {
                    for note in &report.notes {
                        println!("note: {}: {note}", outcome.experiment);
                    }
                    if report.passed() {
                        println!("gate PASSED: {}", outcome.experiment);
                    } else {
                        eprintln!("gate FAILED: {}", outcome.experiment);
                        for r in &report.regressions {
                            eprintln!("  regression: {r}");
                        }
                        failed += 1;
                    }
                }
                Err(e) => {
                    eprintln!("gate FAILED: {}: {e}", outcome.experiment);
                    failed += 1;
                }
            }
        }
        if failed > 0 {
            eprintln!(
                "baseline gate FAILED against {} ({failed}/{} experiments; if \
                 intentional, refresh with `cargo run -p ebc-bench -- \
                 --update-baselines` and commit)",
                dir.display(),
                outcomes.len()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "baseline gate PASSED against {} ({} experiments checked)",
            dir.display(),
            outcomes.len()
        );
    }
    ExitCode::SUCCESS
}
