//! Runs the benchmark experiments by name (or all of them).
//!
//! `cargo run --release -p ebc-bench` runs everything;
//! `cargo run --release -p ebc-bench -- e4` runs experiments whose name
//! contains "e4". The same runners back the `cargo bench` targets.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for (name, f) in ebc_bench::ALL {
        if args.is_empty() || args.iter().any(|a| name.contains(a.as_str())) {
            f();
        }
    }
}
