//! The experiment CLI.
//!
//! ```text
//! cargo run --release -p ebc-bench -- --list
//! cargo run --release -p ebc-bench -- --experiment table1_randomized --quick
//! cargo run --release -p ebc-bench -- --seeds 10 --out-dir results/
//! cargo run --release -p ebc-bench -- --update-baselines
//! cargo run --release -p ebc-bench -- --quick --check-against bench-baselines
//! ```
//!
//! With no `--experiment` every registered experiment runs. Each run
//! prints an aligned table and writes a schema-stable
//! `BENCH_<experiment>.json` to the output directory (the scenario matrix
//! additionally writes `BENCH_scaling_fits.json`).
//!
//! `--check-against <dir>` turns the run into a regression gate: the
//! scenario matrix is re-run and its summary means and fitted scaling
//! exponents are diffed against the checked-in baselines under `<dir>`,
//! exiting nonzero on any out-of-tolerance drift. `--update-baselines`
//! refreshes `bench-baselines/` in one step. Both force an unlimited
//! per-cell budget so the gated case set never depends on machine speed.

use std::path::PathBuf;
use std::process::ExitCode;

use ebc_bench::baseline::{self, Tolerances};
use ebc_bench::measure::UNLIMITED_BUDGET_MS;
use ebc_bench::{
    find_experiment, report_and_write, run_experiment, ExperimentSpec, RunConfig, EXPERIMENTS,
};

/// Where `--update-baselines` writes (and CI reads) the checked-in gate.
const BASELINE_DIR: &str = "bench-baselines";

struct Args {
    list: bool,
    experiments: Vec<String>,
    config: RunConfig,
    out_dir: PathBuf,
    check_against: Option<PathBuf>,
    update_baselines: bool,
}

const USAGE: &str = "\
Usage: ebc-bench [OPTIONS]

Options:
  --list                 List registered experiments and exit
  --experiment <NAME>    Run only this experiment (exact name or unique
                         substring; repeatable). Default: run all.
  --seeds <N>            Override the per-case seed count
  --quick                Smaller sweeps and fewer seeds (CI smoke mode)
  --family <NAME>        Scenario matrix: only this graph family
                         (e.g. cycle, grid, hypercube, unit-disk)
  --model <NAME>         Scenario matrix: only this collision model
                         (local, cd, cd-star, no-cd)
  --algo <NAME>          Scenario matrix: only this algorithm
                         (e.g. theorem11, bgi_decay, path_theorem21)
  --budget-ms <N>        Scenario matrix: wall-clock budget per (algorithm,
                         family, model) cell before its n-sweep truncates
                         (0 = first size only; default 250 quick / 2000 full)
  --check-against <DIR>  Regression gate: run the scenario matrix and diff
                         summary means + scaling exponents against the
                         baselines in <DIR>; exit nonzero on drift
  --update-baselines     Rewrite bench-baselines/ from a fresh quick
                         scenario-matrix run, then exit
  --out-dir <DIR>        Directory for BENCH_<name>.json files (default .)
  --threads <N>          Worker threads for seed sweeps (default: all cores)
  -h, --help             Show this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        list: false,
        experiments: Vec::new(),
        config: RunConfig::default(),
        out_dir: PathBuf::from("."),
        check_against: None,
        update_baselines: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value\n\n{USAGE}"))
        };
        match arg.as_str() {
            "--list" => args.list = true,
            "--experiment" => args.experiments.push(value("--experiment")?),
            "--seeds" => {
                let v = value("--seeds")?;
                args.config.seeds = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("invalid --seeds {v:?}"))?,
                );
            }
            "--quick" => args.config.quick = true,
            "--family" => args.config.family = Some(value("--family")?),
            "--model" => args.config.model = Some(value("--model")?),
            "--algo" => args.config.algo = Some(value("--algo")?),
            "--budget-ms" => {
                let v = value("--budget-ms")?;
                args.config.budget_ms = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("invalid --budget-ms {v:?}"))?,
                );
            }
            "--check-against" => {
                args.check_against = Some(PathBuf::from(value("--check-against")?))
            }
            "--update-baselines" => args.update_baselines = true,
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")?),
            "--threads" => {
                let v = value("--threads")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --threads {v:?}"))?;
                // The vendored rayon shim reads this per sweep.
                std::env::set_var("EBC_NUM_THREADS", n.to_string());
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Runs the scenario matrix with an unlimited budget (gate runs must not
/// depend on machine speed) and returns the result.
fn gated_matrix_run(config: &RunConfig) -> ebc_bench::ExperimentResult {
    let mut config = config.clone();
    config.budget_ms = Some(UNLIMITED_BUDGET_MS);
    let spec = find_experiment("scenario_matrix").expect("registered");
    run_experiment(spec, &config)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        println!("{:<20} TITLE", "NAME");
        for spec in EXPERIMENTS {
            println!("{:<20} {}", spec.name, spec.title);
        }
        return ExitCode::SUCCESS;
    }

    if args.update_baselines {
        // A filtered refresh would overwrite the full baseline with a
        // slice, silently un-gating every other cell — refuse instead.
        if args.config.family.is_some() || args.config.model.is_some() || args.config.algo.is_some()
        {
            eprintln!(
                "error: --update-baselines refreshes the full gate; \
                 drop --family/--model/--algo"
            );
            return ExitCode::FAILURE;
        }
        // Baselines gate the CI quick matrix, so the refresh pins quick
        // mode regardless of the other flags.
        let mut config = args.config.clone();
        config.quick = true;
        let result = gated_matrix_run(&config);
        return match baseline::write_baseline(std::path::Path::new(BASELINE_DIR), &result) {
            Ok(path) => {
                println!(
                    "wrote {} ({} cases) — commit it to refresh the gate",
                    path.display(),
                    result.cases.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: writing baselines: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let selected: Vec<&'static ExperimentSpec> = if args.experiments.is_empty() {
        EXPERIMENTS.iter().collect()
    } else {
        let mut specs = Vec::new();
        for name in &args.experiments {
            match find_experiment(name) {
                Some(spec) => specs.push(spec),
                None => {
                    eprintln!("error: no unique experiment matches {name:?} (try --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        specs
    };

    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        eprintln!("error: cannot create {}: {e}", args.out_dir.display());
        return ExitCode::FAILURE;
    }

    // The gate re-runs the matrix itself (with the budget pinned), so a
    // bare `--check-against` needs no --experiment selection.
    let mut gate_result = None;
    for spec in selected {
        let run_for_gate = args.check_against.is_some() && spec.name == "scenario_matrix";
        let started = std::time::Instant::now();
        let result = if run_for_gate {
            gated_matrix_run(&args.config)
        } else {
            run_experiment(spec, &args.config)
        };
        match report_and_write(&result, started.elapsed(), &args.out_dir) {
            Ok(paths) => {
                for path in paths {
                    println!("wrote {}", path.display());
                }
            }
            Err(e) => {
                eprintln!("error: writing results for {}: {e}", spec.name);
                return ExitCode::FAILURE;
            }
        }
        if run_for_gate {
            gate_result = Some(result);
        }
    }

    if let Some(dir) = &args.check_against {
        let result = match gate_result {
            Some(r) => r,
            None => gated_matrix_run(&args.config),
        };
        let report = match baseline::check_against(dir, &result, &Tolerances::default()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        for note in &report.notes {
            println!("note: {note}");
        }
        if report.passed() {
            println!(
                "baseline gate PASSED against {} ({} cases checked)",
                dir.display(),
                result.cases.len()
            );
        } else {
            eprintln!("baseline gate FAILED against {}:", dir.display());
            for r in &report.regressions {
                eprintln!("  regression: {r}");
            }
            eprintln!(
                "  ({} regressions; if intentional, refresh with \
                 `cargo run -p ebc-bench -- --update-baselines` and commit)",
                report.regressions.len()
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
