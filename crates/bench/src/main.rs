//! The experiment CLI.
//!
//! ```text
//! cargo run --release -p ebc-bench -- --list
//! cargo run --release -p ebc-bench -- --experiment table1_randomized --quick
//! cargo run --release -p ebc-bench -- --seeds 10 --out-dir results/
//! ```
//!
//! With no `--experiment` every registered experiment runs. Each run
//! prints an aligned table and writes a schema-stable
//! `BENCH_<experiment>.json` to the output directory.

use std::path::PathBuf;
use std::process::ExitCode;

use ebc_bench::{find_experiment, ExperimentSpec, RunConfig, EXPERIMENTS};

struct Args {
    list: bool,
    experiments: Vec<String>,
    config: RunConfig,
    out_dir: PathBuf,
}

const USAGE: &str = "\
Usage: ebc-bench [OPTIONS]

Options:
  --list                 List registered experiments and exit
  --experiment <NAME>    Run only this experiment (exact name or unique
                         substring; repeatable). Default: run all.
  --seeds <N>            Override the per-case seed count
  --quick                Smaller sweeps and fewer seeds (CI smoke mode)
  --family <NAME>        Scenario matrix: only this graph family
                         (e.g. cycle, grid, hypercube, unit-disk)
  --model <NAME>         Scenario matrix: only this collision model
                         (local, cd, cd-star, no-cd)
  --algo <NAME>          Scenario matrix: only this algorithm
                         (e.g. theorem11, bgi_decay, path_theorem21)
  --out-dir <DIR>        Directory for BENCH_<name>.json files (default .)
  --threads <N>          Worker threads for seed sweeps (default: all cores)
  -h, --help             Show this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        list: false,
        experiments: Vec::new(),
        config: RunConfig::default(),
        out_dir: PathBuf::from("."),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value\n\n{USAGE}"))
        };
        match arg.as_str() {
            "--list" => args.list = true,
            "--experiment" => args.experiments.push(value("--experiment")?),
            "--seeds" => {
                let v = value("--seeds")?;
                args.config.seeds = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("invalid --seeds {v:?}"))?,
                );
            }
            "--quick" => args.config.quick = true,
            "--family" => args.config.family = Some(value("--family")?),
            "--model" => args.config.model = Some(value("--model")?),
            "--algo" => args.config.algo = Some(value("--algo")?),
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")?),
            "--threads" => {
                let v = value("--threads")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --threads {v:?}"))?;
                // The vendored rayon shim reads this per sweep.
                std::env::set_var("EBC_NUM_THREADS", n.to_string());
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        println!("{:<20} TITLE", "NAME");
        for spec in EXPERIMENTS {
            println!("{:<20} {}", spec.name, spec.title);
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&'static ExperimentSpec> = if args.experiments.is_empty() {
        EXPERIMENTS.iter().collect()
    } else {
        let mut specs = Vec::new();
        for name in &args.experiments {
            match find_experiment(name) {
                Some(spec) => specs.push(spec),
                None => {
                    eprintln!("error: no unique experiment matches {name:?} (try --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        specs
    };

    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        eprintln!("error: cannot create {}: {e}", args.out_dir.display());
        return ExitCode::FAILURE;
    }

    for spec in selected {
        match ebc_bench::run_to_files(spec, &args.config, &args.out_dir) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: writing results for {}: {e}", spec.name);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
