//! The scenario matrix: every registered algorithm crossed with every
//! graph family, collision model, and size.
//!
//! The paper's Table 1 spans four messaging models and eight-plus
//! algorithms; the per-row experiments in [`crate::experiments`] each pin
//! one algorithm to one or two topologies. This runner sweeps the full
//! `Family × Model × algorithm × n` cross-product through the
//! [`ebc_core::suite`] registry, filtering — and *counting* — the
//! incompatible pairs (a CD-only algorithm under No-CD, the §8 path
//! algorithm off the path) instead of dropping them silently.
//!
//! Each `(algorithm, family, model)` *cell* sweeps the n axis under a
//! wall-clock budget ([`RunConfig::cell_budget`]): the first size always
//! runs, and once a cell's sweeps have spent the budget its remaining
//! sizes are dropped — tallied under `skip_counts.skipped_budget`, with
//! every case of the cut-short cell carrying a `truncated: true` param so
//! downstream fits know the axis is incomplete. Scaling fits across each
//! cell's n axis ([`crate::analysis`]) — including the seed-level
//! bootstrap `exponent_ci` / `class_confident` fields the CI-overlap
//! gate diffs ([`crate::stats`]) — are emitted as a top-level `fits`
//! section; quick mode keeps at least two seeds per point
//! ([`RunConfig::seeds_for_size`]) so those CIs never degenerate.
//!
//! The emitted `BENCH_scenario_matrix.json` carries the skip accounting as
//! top-level fields (`skip_counts`, `skipped_pairs`) next to the usual
//! per-case sweeps, and the `--family`/`--model`/`--algo` CLI flags narrow
//! the axes.
//!
//! Three *headline* cells — flooding and the Theorem 11/12 algorithms on
//! the binary tree ([`is_headline`]) — extend their n axis past the shared
//! sizes to `n = 10^6` under a dedicated budget
//! ([`RunConfig::headline_cell_budget`]), so the scaling fits for the
//! paper's flagship bounds rest on three decades of n.
//!
//! A *fault axis* ([`MATRIX_FAULTS`], filtered by `--fault`) crosses
//! every cell with the [`ebc_radio::FaultPlan`]s of [`matrix_fault_plan`]:
//! lossy slots, early crash faults, and a budgeted periodic jammer.
//! Faulted cells run at the two smallest sizes only — the axis measures
//! *degradation*, not scaling, so the clean cells keep the full n sweep
//! (and the headline extension, and the scaling fits) to themselves. Each
//! faulted seed also runs its clean twin, yielding `success_rate` (every
//! surviving device informed), `energy_overhead_vs_clean` (total-energy
//! ratio against the twin), and `lost_sends` columns; adapters that
//! opt out via [`ebc_core::suite::BroadcastAlgorithm::fault_tolerant`]
//! are tallied under `skipped_fault_intolerant`.
//!
//! The matrix runs as a *work queue*: a plan phase enumerates the
//! surviving `(family, fault, model, algorithm)` cells into a pending
//! queue, and a drain phase executes them in plan order — each cell's
//! seed sweep through the rayon pool, each completed case written back
//! to the content-addressed cell cache ([`crate::cache`]) through the
//! [`CaseRunner`]. Warm cells come back from the store without
//! executing; their wall-clock cost is zero, so a warm budgeted run can
//! only *deepen* a cell's n axis relative to its cold run, never shrink
//! it (gate runs pin an unlimited budget and are unaffected). The
//! `truncated` flag is applied after execution and never stored, so a
//! cached cell re-derives it under whatever budget the current run uses.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ebc_core::suite::{BroadcastAlgorithm, ALGORITHMS, MESSAGING_MODELS};
use ebc_graphs::families::Family;
use ebc_radio::{FaultModel, FaultPlan, Graph, JammerStrategy, Model, Sim};

use crate::analysis;
use crate::experiments::{model_name, ExperimentOutput};
use crate::json::Json;
use crate::measure::{standard_metrics, Case, CaseRunner, RunConfig};

/// The matrix sizes: four n-points in quick (CI smoke) mode — the minimum
/// for a meaningful scaling fit — five in full mode. Cells whose per-size
/// cost outgrows the wall-clock budget truncate instead of pinning the
/// whole sweep, so the top sizes no longer need to fit every algorithm.
fn matrix_sizes(config: &RunConfig) -> &'static [usize] {
    if config.quick {
        &[16, 32, 64, 128]
    } else {
        &[16, 32, 64, 128, 256]
    }
}

/// Extra n-points appended to the headline cells' axes, up to the paper's
/// million-node scale. 1048575 = 2^20 − 1 is the complete-binary-tree
/// generator's exact vertex count — asking for 2^20 would overshoot to
/// the next depth (2^21 − 1).
const HEADLINE_EXTRA_SIZES: &[usize] = &[4096, 65536, 1048575];

/// The fault axis, in presentation order: the clean baseline plus one
/// representative of each implemented fault mode that degrades whole
/// transmissions (edge loss and churn are exercised by the radio crate's
/// own suites; the matrix keeps the axis small enough to cross with the
/// full registry).
pub const MATRIX_FAULTS: &[&str] = &["none", "slot-loss", "crash", "jammer"];

/// The [`FaultPlan`] one fault-axis value denotes at size `n`.
///
/// The strengths are fixed, deliberately sub-lethal constants: heavy
/// enough that `success_rate` visibly degrades somewhere in the registry,
/// light enough that flooding still usually completes — a fault axis
/// where every run fails says as little as one where every run succeeds.
pub fn matrix_fault_plan(kind: &str, n: usize) -> FaultPlan {
    match kind {
        "none" => FaultPlan::None,
        // A quarter of all slots lose their deliveries (senders still pay).
        "slot-loss" => FaultPlan::SlotLoss { p: 0.25 },
        // An eighth of the devices (never source 0) crash in the first few
        // hundred slots, staggered so the down set grows gradually.
        "crash" => FaultPlan::Crash {
            schedule: (1..n)
                .step_by(8)
                .enumerate()
                .map(|(i, v)| (32 * (i as u64 + 1), v))
                .collect(),
        },
        // A periodic jammer whose energy budget scales with the instance:
        // every eighth observed slot is jammed until 16n jams are spent.
        "jammer" => FaultPlan::Jammer {
            budget: 16 * n as u64,
            strategy: JammerStrategy::Periodic { period: 8 },
        },
        other => unreachable!("unknown fault axis value {other:?}"),
    }
}

/// Whether a cell is one of the three flagship combinations whose n axis
/// extends to `n = 10^6`: flooding and the Theorem 11/12 broadcast
/// algorithms on the bounded-degree binary tree, each under its natural
/// model. Only these earn the big sizes — the full cross-product at 10^6
/// would take hours — and they run under
/// [`RunConfig::headline_cell_budget`] so the extension is not truncated
/// in a default quick run.
fn is_headline(alg: &str, family: Family, model: Model) -> bool {
    family == Family::BinaryTree
        && matches!(
            (alg, model),
            ("naive_flood", Model::Local) | ("theorem11", Model::Local) | ("theorem12", Model::Cd)
        )
}

/// One skipped `(algorithm, model)`, `(algorithm, family)`, or budget-cut
/// combination and how often the cross-product hit it.
struct Skip {
    kind: &'static str,
    algorithm: &'static str,
    axis: String,
    count: usize,
}

/// One pending cell of the work queue: a `(family, fault, model,
/// algorithm)` combination whose n axis the drain phase will sweep.
struct CellJob {
    family: Family,
    fault: &'static str,
    model: Model,
    alg: &'static dyn BroadcastAlgorithm,
}

/// Runs the scenario matrix under `config`, executing every cell through
/// `runner` (warm cells return from the cell cache without running).
///
/// Every *compatible* combination is swept over the configured seeds from
/// source 0; incompatible combinations are tallied into the output's
/// `extra` fields. Axis filters narrow the cross-product *before* any
/// counting — the `axes` field records what survived them, and a filter
/// that matches nothing yields an empty matrix (`total_combinations: 0`),
/// not an error.
pub fn run_scenario_matrix(config: &RunConfig, runner: &mut CaseRunner) -> ExperimentOutput {
    let families: Vec<Family> = Family::ALL
        .into_iter()
        .filter(|f| matches(&config.family, f.name()))
        .collect();
    let models: Vec<Model> = MESSAGING_MODELS
        .into_iter()
        .filter(|m| matches(&config.model, model_name(*m)))
        .collect();
    let algorithms: Vec<&'static dyn BroadcastAlgorithm> = ALGORITHMS
        .iter()
        .copied()
        .filter(|a| matches(&config.algo, a.name()))
        .collect();
    let faults: Vec<&'static str> = MATRIX_FAULTS
        .iter()
        .copied()
        .filter(|f| matches(&config.fault, f))
        .collect();
    let sizes = matrix_sizes(config);
    let budget = config.cell_budget();

    // Plan phase: enumerate the filtered cross-product into the pending
    // queue, family-major so the drain phase can share one graph map per
    // family (the case order — and with it every emitted document — is
    // exactly the old nested-loop order).
    let mut queue: Vec<CellJob> = Vec::new();
    for &family in &families {
        for &fault in &faults {
            for &model in &models {
                for &alg in &algorithms {
                    queue.push(CellJob {
                        family,
                        fault,
                        model,
                        alg,
                    });
                }
            }
        }
    }

    // Drain phase: execute (or cache-serve) each pending cell. One graph
    // per (family, n), built on first use and dropped when the queue
    // moves past its family; every fault, model, algorithm, and seed
    // shares the same CSR allocation.
    let mut cases = Vec::new();
    let mut skips: Vec<Skip> = Vec::new();
    let mut combinations = 0usize;
    let mut truncated_cells = 0usize;
    let mut graphs: BTreeMap<usize, Arc<Graph>> = BTreeMap::new();
    let mut current_family: Option<Family> = None;
    for job in &queue {
        if current_family != Some(job.family) {
            graphs.clear();
            current_family = Some(job.family);
        }
        let truncated = run_cell(
            config,
            runner,
            job,
            sizes,
            budget,
            &mut graphs,
            &mut cases,
            &mut skips,
            &mut combinations,
        );
        truncated_cells += usize::from(truncated);
    }

    // The --trace-out diagnostic: re-run the first compatible cell with
    // telemetry enabled, outside the runner and cache, and dump its trace.
    if config.trace_out.is_some() {
        trace_first_cell(config, &queue, sizes);
    }

    // Scaling fits read only the clean cells — `scaling_fits` drops
    // faulted cases itself, so the fits section is invariant under the
    // fault axis (and under `--fault` filters that exclude "none").
    let t_fit = Instant::now();
    let fits = analysis::scaling_fits(&cases, config.resamples());
    runner.note_analysis(t_fit.elapsed());
    let count = |kind: &str| -> usize {
        skips
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.count)
            .sum()
    };
    let skipped_incompatible = count("model") + count("graph") + count("fault");
    let extra = vec![
        (
            "axes",
            Json::obj()
                .field(
                    "families",
                    Json::Arr(families.iter().map(|f| f.name().into()).collect()),
                )
                .field(
                    "models",
                    Json::Arr(models.iter().map(|&m| model_name(m).into()).collect()),
                )
                .field(
                    "algorithms",
                    Json::Arr(algorithms.iter().map(|a| a.name().into()).collect()),
                )
                .field(
                    "faults",
                    Json::Arr(faults.iter().map(|&f| f.into()).collect()),
                )
                .field(
                    "sizes",
                    Json::Arr(sizes.iter().map(|&n| n.into()).collect()),
                )
                .field(
                    "headline_extra_sizes",
                    Json::Arr(HEADLINE_EXTRA_SIZES.iter().map(|&n| n.into()).collect()),
                ),
        ),
        (
            "skip_counts",
            Json::obj()
                .field("total_combinations", combinations)
                .field("run", cases.len())
                .field("skipped_incompatible", skipped_incompatible)
                .field("skipped_incompatible_model", count("model"))
                .field("skipped_incompatible_graph", count("graph"))
                .field("skipped_fault_intolerant", count("fault"))
                .field("skipped_budget", count("budget"))
                .field("truncated_cells", truncated_cells)
                .field("budget_ms_per_cell", budget.as_millis() as u64),
        ),
        (
            "skipped_pairs",
            Json::Arr(
                skips
                    .iter()
                    .map(|s| {
                        Json::obj()
                            .field("kind", s.kind)
                            .field("algorithm", s.algorithm)
                            .field(
                                match s.kind {
                                    "model" => "model",
                                    "graph" => "family",
                                    "fault" => "fault",
                                    _ => "cell",
                                },
                                s.axis.as_str(),
                            )
                            .field("count", s.count)
                    })
                    .collect(),
            ),
        ),
        ("fits", analysis::fits_to_json(&fits)),
    ];
    ExperimentOutput { cases, extra }
}

/// Sweeps one pending cell's n axis under the wall-clock budget,
/// executing each size through `runner` (cache hits cost zero budget).
/// Returns whether the cell was truncated.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    config: &RunConfig,
    runner: &mut CaseRunner,
    job: &CellJob,
    sizes: &[usize],
    budget: Duration,
    graphs: &mut BTreeMap<usize, Arc<Graph>>,
    cases: &mut Vec<Case>,
    skips: &mut Vec<Skip>,
    combinations: &mut usize,
) -> bool {
    let CellJob {
        family,
        fault,
        model,
        alg,
    } = *job;
    let clean = fault == "none";
    // Headline cells sweep on past the shared sizes to the million-node
    // tier, under their own (much larger) budget; faulted cells measure
    // degradation, not scaling, and stop after the two smallest sizes.
    let headline = clean && is_headline(alg.name(), family, model);
    let cell_sizes: Vec<usize> = if headline {
        sizes.iter().chain(HEADLINE_EXTRA_SIZES).copied().collect()
    } else if clean {
        sizes.to_vec()
    } else {
        sizes[..sizes.len().min(2)].to_vec()
    };
    let budget = if headline {
        config.headline_cell_budget()
    } else {
        budget
    };
    let cell_axis = format!("{}/{}/{fault}", family.name(), model_name(model));
    let mut spent = Duration::ZERO;
    let mut truncated = false;
    let mut cell_cases: Vec<Case> = Vec::new();
    for &n in &cell_sizes {
        *combinations += 1;
        if !alg.supports_model(model) {
            tally(skips, "model", alg.name(), model_name(model));
            continue;
        }
        if !clean && !alg.fault_tolerant() {
            tally(skips, "fault", alg.name(), fault);
            continue;
        }
        // Budget-cut before the graph is even built: a truncated headline
        // size would otherwise still pay for a million-vertex instance.
        if truncated {
            tally(skips, "budget", alg.name(), cell_axis.clone());
            continue;
        }
        let graph = match graphs.entry(n) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(e) => {
                // Graph construction is profiled separately from the sweep;
                // the shared build lands on the first consuming cell.
                let t_build = Instant::now();
                let g = Arc::new(family.instance(n, 0xebc0 + n as u64).graph);
                runner.note_build(t_build.elapsed());
                e.insert(g)
            }
        };
        if !alg.supports_graph(graph) {
            tally(skips, "graph", alg.name(), family.name());
            continue;
        }
        let graph = Arc::clone(graph);
        let seeds = config.seeds_for_size(2, n, sizes[0]);
        let params = vec![
            ("family", family.name().into()),
            ("n", graph.n().into()),
            ("m", graph.m().into()),
            ("delta", graph.max_degree().into()),
            ("fault", fault.into()),
            ("model", model_name(model).into()),
            ("algorithm", alg.name().into()),
        ];
        let started = Instant::now();
        let hits_before = runner.stats.hits;
        let case = if clean {
            runner.run_case(params, seeds, |seed| {
                let mut sim = Sim::new(Arc::clone(&graph), model, seed);
                let out = alg.run(&mut sim, 0);
                let mut metrics = vec![
                    ("all_informed", f64::from(u8::from(out.all_informed()))),
                    ("informed_frac", out.count() as f64 / sim.graph().n() as f64),
                ];
                metrics.extend(standard_metrics(&sim.meter().report()));
                metrics
            })
        } else {
            let plan = matrix_fault_plan(fault, graph.n());
            runner.run_case(params, seeds, |seed| {
                // The clean twin: same graph, model, and seed — the
                // denominator of the energy-overhead ratio.
                let mut twin = Sim::new(Arc::clone(&graph), model, seed);
                alg.run(&mut twin, 0);
                let clean_total = twin.meter().total_energy().max(1);
                let mut sim = Sim::with_faults(Arc::clone(&graph), model, seed, plan.clone());
                let out = alg.run(&mut sim, 0);
                // Success = every device that survived to the end is
                // informed; crashed devices are casualties, not failures.
                let success = out.informed.iter().enumerate().all(|(v, &informed)| {
                    informed || sim.fault_state().is_some_and(|f| f.is_down(v))
                });
                let report = sim.meter().report();
                let mut metrics = vec![
                    ("success_rate", f64::from(u8::from(success))),
                    ("informed_frac", out.count() as f64 / sim.graph().n() as f64),
                    (
                        "energy_overhead_vs_clean",
                        report.total as f64 / clean_total as f64,
                    ),
                    ("lost_sends", report.lost_sends as f64),
                ];
                metrics.extend(standard_metrics(&report));
                metrics
            })
        };
        // Only executed sizes spend budget: a warm cell is free, so a
        // cached run can deepen an axis relative to its cold run but
        // never shrink it.
        if runner.stats.hits == hits_before {
            spent += started.elapsed();
        }
        cell_cases.push(case);
        // The first size always runs; once the budget is spent, the rest
        // of the n axis truncates (tallied above on later iterations).
        if spent >= budget {
            truncated = true;
        }
    }
    // A cell only counts as truncated if budget exhaustion actually cut
    // sizes (not when the budget ran out exactly on the last size).
    let cut = truncated
        && skips
            .iter()
            .any(|s| s.kind == "budget" && s.algorithm == alg.name() && s.axis == cell_axis);
    if cut {
        for case in &mut cell_cases {
            case.params.push(("truncated", Json::Bool(true)));
        }
    }
    cases.append(&mut cell_cases);
    cut
}

/// The `--trace-out` diagnostic: runs the first cell of `queue` that is
/// compatible at the smallest matrix size, with full telemetry attached,
/// and writes its Chrome trace-event JSON to [`RunConfig::trace_out`]
/// plus a compact JSONL sibling (same path, `.jsonl` extension).
///
/// The run happens outside the [`CaseRunner`] and the cell cache: it is a
/// diagnostic twin of the cell's first seed, not a measurement — the
/// matrix's cases, budget accounting, and cache stats are unaffected. On
/// the faulted axes the cell's fault plan is applied, so the trace shows
/// lost/jammed/crashed slot events next to the phase spans.
fn trace_first_cell(config: &RunConfig, queue: &[CellJob], sizes: &[usize]) {
    let Some(out_path) = &config.trace_out else {
        return;
    };
    let n = sizes[0];
    for job in queue {
        let CellJob {
            family,
            fault,
            model,
            alg,
        } = *job;
        if !alg.supports_model(model) {
            continue;
        }
        if fault != "none" && !alg.fault_tolerant() {
            continue;
        }
        let graph = family.instance(n, 0xebc0 + n as u64).graph;
        if !alg.supports_graph(&graph) {
            continue;
        }
        let seed = crate::measure::master_seed(0);
        let plan = matrix_fault_plan(fault, graph.n());
        let mut sim = Sim::with_faults(graph, model, seed, plan);
        sim.enable_telemetry();
        alg.run(&mut sim, 0);
        let tel = sim.take_telemetry().expect("telemetry enabled");
        println!(
            "traced cell: {} on {} under {} (fault {fault}, n {}, seed {seed}) — \
             {} events, {} spans, {} counter rows",
            alg.name(),
            family.name(),
            model_name(model),
            sim.graph().n(),
            tel.event_count(),
            tel.spans().len(),
            tel.counters().count(),
        );
        if let Err(e) = std::fs::write(out_path, tel.chrome_trace()) {
            eprintln!("warning: writing {}: {e}", out_path.display());
            return;
        }
        println!("wrote {}", out_path.display());
        let jsonl = out_path.with_extension("jsonl");
        if let Err(e) = std::fs::write(&jsonl, tel.to_jsonl()) {
            eprintln!("warning: writing {}: {e}", jsonl.display());
            return;
        }
        println!("wrote {}", jsonl.display());
        return;
    }
    eprintln!("warning: --trace-out matched no compatible cell (check the axis filters)");
}

/// Axis filter: `None` admits everything; `Some` is a case-insensitive
/// exact name match.
fn matches(filter: &Option<String>, name: &str) -> bool {
    filter
        .as_deref()
        .map_or(true, |f| f.eq_ignore_ascii_case(name))
}

fn tally(
    skips: &mut Vec<Skip>,
    kind: &'static str,
    algorithm: &'static str,
    axis: impl Into<String>,
) {
    let axis = axis.into();
    match skips
        .iter_mut()
        .find(|s| s.kind == kind && s.algorithm == algorithm && s.axis == axis)
    {
        Some(s) => s.count += 1,
        None => skips.push(Skip {
            kind,
            algorithm,
            axis,
            count: 1,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::UNLIMITED_BUDGET_MS;

    /// The matrix with caching disabled — what every structural test
    /// wants (cache behavior has its own tests in [`crate::cache`] and
    /// the `cache_incremental` integration suite).
    fn run_matrix(config: &RunConfig) -> ExperimentOutput {
        run_scenario_matrix(config, &mut CaseRunner::disabled("scenario_matrix"))
    }

    /// Quick config with a zero budget, pinned to the clean fault axis:
    /// every cell runs exactly its first size — deterministic
    /// (wall-clock-independent) and fast, which is what most structural
    /// tests want. Fault-axis tests drop the pin explicitly.
    fn quick_config() -> RunConfig {
        RunConfig {
            seeds: Some(1),
            quick: true,
            budget_ms: Some(0),
            fault: Some("none".into()),
            ..RunConfig::default()
        }
    }

    fn extra_field<'a>(output: &'a ExperimentOutput, key: &str) -> &'a Json {
        output
            .extra
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing extra field {key}"))
    }

    fn int_field(obj: &Json, key: &str) -> i64 {
        match obj.get(key) {
            Some(Json::Int(i)) => *i,
            other => panic!("field {key} not an int: {other:?}"),
        }
    }

    #[test]
    fn quick_matrix_covers_the_claimed_cross_product() {
        let out = run_matrix(&quick_config());
        let mut algorithms = std::collections::BTreeSet::new();
        let mut families = std::collections::BTreeSet::new();
        let mut models = std::collections::BTreeSet::new();
        for case in &out.cases {
            let get = |key: &str| {
                case.params
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, v)| format!("{v:?}"))
                    .unwrap()
            };
            algorithms.insert(get("algorithm"));
            families.insert(get("family"));
            models.insert(get("model"));
        }
        assert!(algorithms.len() >= 6, "algorithms: {algorithms:?}");
        assert!(families.len() >= 6, "families: {families:?}");
        assert_eq!(models.len(), 4, "models: {models:?}");
        // Every compatible case informed every vertex on every seed.
        for case in &out.cases {
            let s = case.summary.metric("all_informed").unwrap();
            assert_eq!(
                (s.min, s.max),
                (1.0, 1.0),
                "not all informed in {:?}",
                case.params
            );
        }
    }

    #[test]
    fn skip_accounting_balances_the_cross_product() {
        let out = run_matrix(&quick_config());
        let counts = extra_field(&out, "skip_counts");
        let total = int_field(counts, "total_combinations");
        let run = int_field(counts, "run");
        let incompatible = int_field(counts, "skipped_incompatible");
        let budget = int_field(counts, "skipped_budget");
        assert_eq!(
            run + incompatible + budget,
            total,
            "skips must account for every combo"
        );
        assert_eq!(run, out.cases.len() as i64);
        assert!(
            incompatible > 0,
            "the matrix must contain incompatible pairs"
        );
        // CD-only algorithms under LOCAL are among the counted skips.
        let model_skips = int_field(counts, "skipped_incompatible_model");
        assert!(model_skips > 0);
        // The §8 path algorithm is scoped to the path family.
        let graph_skips = int_field(counts, "skipped_incompatible_graph");
        assert!(graph_skips > 0);
        assert_eq!(
            incompatible,
            int_field(counts, "skipped_incompatible_model")
                + int_field(counts, "skipped_incompatible_graph")
        );
    }

    #[test]
    fn zero_budget_truncates_every_multi_size_cell() {
        let out = run_matrix(&quick_config());
        let counts = extra_field(&out, "skip_counts");
        assert!(int_field(counts, "skipped_budget") > 0);
        assert!(int_field(counts, "truncated_cells") > 0);
        assert_eq!(int_field(counts, "budget_ms_per_cell"), 0);
        // Every case ran at the smallest size only (family generators may
        // overshoot the requested 16 slightly, e.g. complete binary trees).
        let mut flagged = 0usize;
        for case in &out.cases {
            let n = case
                .params
                .iter()
                .find(|(k, _)| *k == "n")
                .and_then(|(_, v)| v.as_f64())
                .unwrap();
            assert!(n <= 32.0, "budget-cut cell still ran n={n}");
            if matches!(
                case.params.iter().find(|(k, _)| *k == "truncated"),
                Some((_, Json::Bool(true)))
            ) {
                flagged += 1;
            }
        }
        // Cells whose later sizes were graph-incompatible anyway are not
        // budget-cut, but the bulk of the matrix must carry the flag.
        assert!(flagged * 2 > out.cases.len(), "{flagged} flagged");
        // The budget-cut skips appear in skipped_pairs with a cell axis.
        let pairs = extra_field(&out, "skipped_pairs").as_arr().unwrap();
        assert!(pairs
            .iter()
            .any(|p| p.get("kind").and_then(Json::as_str) == Some("budget")
                && p.get("cell").is_some()));
    }

    #[test]
    fn headline_cells_extend_the_n_axis() {
        // A headline cell counts the three extra sizes toward the
        // cross-product (zero budget keeps the test fast: only the first
        // size actually runs, the extension truncates and is tallied).
        let out = run_matrix(&RunConfig {
            seeds: Some(1),
            quick: true,
            budget_ms: Some(0),
            family: Some("binary-tree".into()),
            model: Some("local".into()),
            algo: Some("naive_flood".into()),
            fault: Some("none".into()),
            ..RunConfig::default()
        });
        let counts = extra_field(&out, "skip_counts");
        assert_eq!(int_field(counts, "total_combinations"), 7);
        assert_eq!(int_field(counts, "run"), 1);
        assert_eq!(int_field(counts, "skipped_budget"), 6);
        let axes = extra_field(&out, "axes");
        let extras = axes.get("headline_extra_sizes").unwrap().as_arr().unwrap();
        assert_eq!(extras.len(), 3);
        // The same algorithm outside its headline model keeps the plain
        // four-size quick axis.
        let out = run_matrix(&RunConfig {
            seeds: Some(1),
            quick: true,
            budget_ms: Some(0),
            family: Some("binary-tree".into()),
            model: Some("cd".into()),
            algo: Some("naive_flood".into()),
            fault: Some("none".into()),
            ..RunConfig::default()
        });
        let counts = extra_field(&out, "skip_counts");
        assert_eq!(int_field(counts, "total_combinations"), 4);
    }

    #[test]
    fn truncated_flag_survives_a_json_round_trip() {
        let out = run_matrix(&RunConfig {
            seeds: Some(1),
            quick: true,
            budget_ms: Some(0),
            family: Some("cycle".into()),
            model: Some("local".into()),
            algo: Some("naive_flood".into()),
            fault: Some("none".into()),
            ..RunConfig::default()
        });
        assert_eq!(out.cases.len(), 1, "one case at the smallest size");
        let doc = out.cases[0].to_json();
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(
            parsed.get("params").unwrap().get("truncated"),
            Some(&Json::Bool(true)),
            "truncated flag lost in round trip: {parsed:?}"
        );
        // And the cell's fits carry it too.
        let fits = extra_field(&out, "fits");
        let reparsed = Json::parse(&fits.to_string_pretty()).unwrap();
        let cell = &reparsed.as_arr().unwrap()[0];
        assert_eq!(cell.get("truncated"), Some(&Json::Bool(true)));
    }

    #[test]
    fn unbudgeted_cell_fits_all_quick_sizes_with_finite_exponents() {
        // One cheap cell, unlimited budget: all four quick sizes run, the
        // fit uses all of them, and naive flooding's energy grows
        // polynomially (Θ(D) on the cycle).
        let out = run_matrix(&RunConfig {
            seeds: Some(1),
            quick: true,
            budget_ms: Some(UNLIMITED_BUDGET_MS),
            family: Some("cycle".into()),
            model: Some("local".into()),
            algo: Some("naive_flood".into()),
            fault: Some("none".into()),
            ..RunConfig::default()
        });
        assert_eq!(out.cases.len(), 4);
        for case in &out.cases {
            assert!(
                !case.params.iter().any(|(k, _)| *k == "truncated"),
                "unbudgeted cell must not truncate"
            );
        }
        let fits = extra_field(&out, "fits").as_arr().unwrap();
        assert_eq!(fits.len(), 1);
        let cell = &fits[0];
        assert_eq!(cell.get("truncated"), Some(&Json::Bool(false)));
        assert_eq!(cell.get("sizes").unwrap().as_arr().unwrap().len(), 4);
        let emax = cell.get("metrics").unwrap().get("energy_max").unwrap();
        assert_eq!(emax.get("points").unwrap().as_f64(), Some(4.0));
        let exponent = emax.get("exponent").unwrap().as_f64().unwrap();
        assert!(exponent.is_finite());
        assert!(
            emax.get("class").unwrap().as_str() != Some("insufficient-points"),
            "4 n-points must produce a classified fit"
        );
        // The emitted fit carries its bootstrap CI, bracketing the point
        // estimate — what the CI-overlap gate diffs.
        let ci = crate::analysis::ci_from_json(emax.get("exponent_ci"))
            .expect("fitted cell without exponent_ci");
        assert!(ci.0 <= exponent && exponent <= ci.1, "{ci:?} vs {exponent}");
        assert!(matches!(emax.get("class_confident"), Some(Json::Bool(_))));
    }

    #[test]
    fn quick_matrix_sweeps_at_least_two_seeds_per_case() {
        // The bootstrap's precondition: no --seeds pin in quick mode must
        // still leave ≥ 2 measurements per case, or every CI degenerates.
        let out = run_matrix(&RunConfig {
            quick: true,
            budget_ms: Some(0),
            family: Some("cycle".into()),
            model: Some("local".into()),
            algo: Some("theorem11".into()),
            ..RunConfig::default()
        });
        assert!(!out.cases.is_empty());
        for case in &out.cases {
            assert!(
                case.measurements.len() >= 2,
                "only {} seeds in {:?}",
                case.measurements.len(),
                case.params
            );
        }
    }

    #[test]
    fn axis_filters_narrow_the_matrix() {
        let config = RunConfig {
            seeds: Some(1),
            quick: true,
            budget_ms: Some(0),
            family: Some("cycle".into()),
            model: Some("cd".into()),
            algo: Some("theorem11".into()),
            fault: Some("none".into()),
            ..RunConfig::default()
        };
        let out = run_matrix(&config);
        assert_eq!(out.cases.len(), 1);
        let params = &out.cases[0].params;
        for (key, want) in [
            ("family", "cycle"),
            ("model", "cd"),
            ("algorithm", "theorem11"),
        ] {
            let got = params.iter().find(|(k, _)| *k == key).unwrap();
            assert_eq!(got.1, Json::Str(want.into()));
        }
    }

    fn param<'a>(case: &'a Case, key: &str) -> Option<&'a Json> {
        case.params.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    #[test]
    fn fault_cells_emit_success_and_overhead_columns() {
        let out = run_matrix(&RunConfig {
            seeds: Some(2),
            quick: true,
            budget_ms: Some(0),
            family: Some("cycle".into()),
            model: Some("local".into()),
            algo: Some("naive_flood".into()),
            fault: Some("slot-loss".into()),
            ..RunConfig::default()
        });
        assert_eq!(out.cases.len(), 1);
        let case = &out.cases[0];
        assert_eq!(param(case, "fault"), Some(&Json::Str("slot-loss".into())));
        for metric in [
            "success_rate",
            "informed_frac",
            "energy_overhead_vs_clean",
            "lost_sends",
            "energy_max",
            "time",
        ] {
            let s = case.summary.metric(metric).unwrap_or_else(|| {
                panic!("fault cell missing metric {metric}: {:?}", case.summary)
            });
            assert!(s.mean.is_finite(), "{metric} not finite");
        }
        let s = case.summary.metric("success_rate").unwrap();
        assert!((0.0..=1.0).contains(&s.mean));
        // Flooding runs a fixed ecc+1-slot schedule (no retries), so the
        // overhead ratio can land on either side of 1.0 — but it must
        // stay a positive finite ratio, and with a quarter of the slots
        // lost across two seeds the meter must tally some lost sends.
        let overhead = case.summary.metric("energy_overhead_vs_clean").unwrap();
        assert!(overhead.min > 0.0, "overhead ratio collapsed: {overhead:?}");
        assert!(
            case.summary.metric("lost_sends").unwrap().max > 0.0,
            "slot loss at p=0.25 never cost flooding a send"
        );
        // Clean-only columns stay out of faulted cells.
        assert!(case.summary.metric("all_informed").is_none());
    }

    #[test]
    fn fault_axis_crosses_the_matrix_and_balances_skip_accounting() {
        // No fault pin: the full axis runs. The §8 path adapter opts out
        // of fault injection, so its active-fault combinations land in
        // `skipped_fault_intolerant` and the balance still closes.
        let out = run_matrix(&RunConfig {
            seeds: Some(1),
            quick: true,
            budget_ms: Some(0),
            family: Some("path".into()),
            ..RunConfig::default()
        });
        let mut faults = std::collections::BTreeSet::new();
        for case in &out.cases {
            faults.insert(format!("{:?}", param(case, "fault").unwrap()));
        }
        assert!(faults.len() >= 4, "fault axis missing: {faults:?}");
        let counts = extra_field(&out, "skip_counts");
        assert!(int_field(counts, "skipped_fault_intolerant") > 0);
        assert_eq!(
            int_field(counts, "run")
                + int_field(counts, "skipped_incompatible")
                + int_field(counts, "skipped_budget"),
            int_field(counts, "total_combinations"),
        );
        let pairs = extra_field(&out, "skipped_pairs").as_arr().unwrap();
        assert!(pairs.iter().any(|p| {
            p.get("kind").and_then(Json::as_str) == Some("fault")
                && p.get("algorithm").and_then(Json::as_str) == Some("path_theorem21")
        }));
        let axes = extra_field(&out, "axes");
        assert_eq!(axes.get("faults").unwrap().as_arr().unwrap().len(), 4);
    }

    #[test]
    fn scaling_fits_ignore_the_fault_axis() {
        // One cheap combination across the whole fault axis, unlimited
        // budget: the clean cell sweeps all four quick sizes, faulted
        // cells stop at two — and the fits see only the clean series.
        let out = run_matrix(&RunConfig {
            seeds: Some(1),
            quick: true,
            budget_ms: Some(UNLIMITED_BUDGET_MS),
            family: Some("cycle".into()),
            model: Some("local".into()),
            algo: Some("naive_flood".into()),
            ..RunConfig::default()
        });
        assert_eq!(out.cases.len(), 4 + 3 * 2, "clean 4 sizes + 3 faults × 2");
        let fits = extra_field(&out, "fits").as_arr().unwrap();
        assert_eq!(fits.len(), 1, "faulted cases must not form fit cells");
        assert_eq!(fits[0].get("sizes").unwrap().as_arr().unwrap().len(), 4);
    }

    #[test]
    fn crash_cells_report_partial_outcomes_in_range() {
        // Under the crash plan success excuses the casualties (a crashed
        // device is counted out, not against), so both rate columns must
        // stay inside [0, 1] and the run must still inform someone — the
        // cycle keeps a second route around each crashed relay.
        let out = run_matrix(&RunConfig {
            seeds: Some(2),
            quick: true,
            budget_ms: Some(0),
            family: Some("cycle".into()),
            model: Some("no-cd".into()),
            algo: Some("bgi_decay".into()),
            fault: Some("crash".into()),
            ..RunConfig::default()
        });
        assert_eq!(out.cases.len(), 1);
        let s = out.cases[0].summary.metric("success_rate").unwrap();
        assert!((0.0..=1.0).contains(&s.mean), "{s:?}");
        let frac = out.cases[0].summary.metric("informed_frac").unwrap();
        assert!(frac.min > 0.0, "crash plan wiped out the whole run");
        assert!(frac.max <= 1.0);
    }

    #[test]
    fn unknown_filter_yields_an_empty_matrix_not_a_crash() {
        let config = RunConfig {
            seeds: Some(1),
            quick: true,
            budget_ms: Some(0),
            algo: Some("nonexistent".into()),
            ..RunConfig::default()
        };
        let out = run_matrix(&config);
        assert!(out.cases.is_empty());
        assert!(extra_field(&out, "fits").as_arr().unwrap().is_empty());
    }
}
