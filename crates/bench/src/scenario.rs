//! The scenario matrix: every registered algorithm crossed with every
//! graph family, collision model, and size.
//!
//! The paper's Table 1 spans four messaging models and eight-plus
//! algorithms; the per-row experiments in [`crate::experiments`] each pin
//! one algorithm to one or two topologies. This runner sweeps the full
//! `Family × Model × algorithm × n` cross-product through the
//! [`ebc_core::suite`] registry, filtering — and *counting* — the
//! incompatible pairs (a CD-only algorithm under No-CD, the §8 path
//! algorithm off the path) instead of dropping them silently.
//!
//! The emitted `BENCH_scenario_matrix.json` carries the skip accounting as
//! top-level fields (`skip_counts`, `skipped_pairs`) next to the usual
//! per-case sweeps, and the `--family`/`--model`/`--algo` CLI flags narrow
//! the axes.

use std::sync::Arc;

use ebc_core::suite::{BroadcastAlgorithm, ALGORITHMS, MESSAGING_MODELS};
use ebc_graphs::families::Family;
use ebc_radio::{Model, Sim};

use crate::experiments::{model_name, ExperimentOutput};
use crate::json::Json;
use crate::measure::{standard_metrics, sweep_seeds, Case, RunConfig};

/// The matrix sizes: one small point in quick (CI smoke) mode, two in full
/// mode. Algorithms whose time is super-linear in `n` (Theorem 20, the
/// deterministic CD row) keep the full matrix tractable at these sizes.
fn matrix_sizes(config: &RunConfig) -> &'static [usize] {
    if config.quick {
        &[16]
    } else {
        &[32, 64]
    }
}

/// One skipped `(algorithm, model)` or `(algorithm, family)` pair and how
/// often the cross-product hit it.
struct Skip {
    kind: &'static str,
    algorithm: &'static str,
    axis: String,
    count: usize,
}

/// Runs the scenario matrix under `config`.
///
/// Every *compatible* combination is swept over the configured seeds from
/// source 0; incompatible combinations are tallied into the output's
/// `extra` fields. Axis filters narrow the cross-product *before* any
/// counting — the `axes` field records what survived them, and a filter
/// that matches nothing yields an empty matrix (`total_combinations: 0`),
/// not an error.
pub fn run_scenario_matrix(config: &RunConfig) -> ExperimentOutput {
    let families: Vec<Family> = Family::ALL
        .into_iter()
        .filter(|f| matches(&config.family, f.name()))
        .collect();
    let models: Vec<Model> = MESSAGING_MODELS
        .into_iter()
        .filter(|m| matches(&config.model, model_name(*m)))
        .collect();
    let algorithms: Vec<&'static dyn BroadcastAlgorithm> = ALGORITHMS
        .iter()
        .copied()
        .filter(|a| matches(&config.algo, a.name()))
        .collect();

    let mut cases = Vec::new();
    let mut skips: Vec<Skip> = Vec::new();
    let mut combinations = 0usize;
    for &family in &families {
        for &n in matrix_sizes(config) {
            // One graph per (family, n); every model, algorithm, and seed
            // shares the same CSR allocation.
            let inst = family.instance(n, 0xebc0 + n as u64);
            let graph = Arc::new(inst.graph);
            for &model in &models {
                for &alg in &algorithms {
                    combinations += 1;
                    if !alg.supports_model(model) {
                        tally(&mut skips, "model", alg.name(), model_name(model));
                        continue;
                    }
                    if !alg.supports_graph(&graph) {
                        tally(&mut skips, "graph", alg.name(), family.name());
                        continue;
                    }
                    let seeds = config.seeds_for(2);
                    let measurements = sweep_seeds(seeds, |seed| {
                        let mut sim = Sim::new(Arc::clone(&graph), model, seed);
                        let out = alg.run(&mut sim, 0);
                        let mut metrics = vec![
                            ("all_informed", f64::from(u8::from(out.all_informed()))),
                            ("informed_frac", out.count() as f64 / sim.graph().n() as f64),
                        ];
                        metrics.extend(standard_metrics(&sim.meter().report()));
                        metrics
                    });
                    cases.push(Case::new(
                        vec![
                            ("family", family.name().into()),
                            ("n", graph.n().into()),
                            ("m", graph.m().into()),
                            ("delta", graph.max_degree().into()),
                            ("model", model_name(model).into()),
                            ("algorithm", alg.name().into()),
                        ],
                        measurements,
                    ));
                }
            }
        }
    }

    let skipped: usize = skips.iter().map(|s| s.count).sum();
    let extra = vec![
        (
            "axes",
            Json::obj()
                .field(
                    "families",
                    Json::Arr(families.iter().map(|f| f.name().into()).collect()),
                )
                .field(
                    "models",
                    Json::Arr(models.iter().map(|&m| model_name(m).into()).collect()),
                )
                .field(
                    "algorithms",
                    Json::Arr(algorithms.iter().map(|a| a.name().into()).collect()),
                )
                .field(
                    "sizes",
                    Json::Arr(matrix_sizes(config).iter().map(|&n| n.into()).collect()),
                ),
        ),
        (
            "skip_counts",
            Json::obj()
                .field("total_combinations", combinations)
                .field("run", cases.len())
                .field("skipped_incompatible", skipped)
                .field(
                    "skipped_incompatible_model",
                    skips
                        .iter()
                        .filter(|s| s.kind == "model")
                        .map(|s| s.count)
                        .sum::<usize>(),
                )
                .field(
                    "skipped_incompatible_graph",
                    skips
                        .iter()
                        .filter(|s| s.kind == "graph")
                        .map(|s| s.count)
                        .sum::<usize>(),
                ),
        ),
        (
            "skipped_pairs",
            Json::Arr(
                skips
                    .iter()
                    .map(|s| {
                        Json::obj()
                            .field("kind", s.kind)
                            .field("algorithm", s.algorithm)
                            .field(
                                if s.kind == "model" { "model" } else { "family" },
                                s.axis.as_str(),
                            )
                            .field("count", s.count)
                    })
                    .collect(),
            ),
        ),
    ];
    ExperimentOutput { cases, extra }
}

/// Axis filter: `None` admits everything; `Some` is a case-insensitive
/// exact name match.
fn matches(filter: &Option<String>, name: &str) -> bool {
    filter
        .as_deref()
        .map_or(true, |f| f.eq_ignore_ascii_case(name))
}

fn tally(skips: &mut Vec<Skip>, kind: &'static str, algorithm: &'static str, axis: &str) {
    match skips
        .iter_mut()
        .find(|s| s.kind == kind && s.algorithm == algorithm && s.axis == axis)
    {
        Some(s) => s.count += 1,
        None => skips.push(Skip {
            kind,
            algorithm,
            axis: axis.to_string(),
            count: 1,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> RunConfig {
        RunConfig {
            seeds: Some(1),
            quick: true,
            ..RunConfig::default()
        }
    }

    fn extra_field<'a>(output: &'a ExperimentOutput, key: &str) -> &'a Json {
        output
            .extra
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing extra field {key}"))
    }

    fn int_field(obj: &Json, key: &str) -> i64 {
        match obj {
            Json::Obj(pairs) => match pairs.iter().find(|(k, _)| k == key) {
                Some((_, Json::Int(i))) => *i,
                other => panic!("field {key} not an int: {other:?}"),
            },
            other => panic!("not an object: {other:?}"),
        }
    }

    #[test]
    fn quick_matrix_covers_the_claimed_cross_product() {
        let out = run_scenario_matrix(&quick_config());
        let mut algorithms = std::collections::BTreeSet::new();
        let mut families = std::collections::BTreeSet::new();
        let mut models = std::collections::BTreeSet::new();
        for case in &out.cases {
            let get = |key: &str| {
                case.params
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, v)| format!("{v:?}"))
                    .unwrap()
            };
            algorithms.insert(get("algorithm"));
            families.insert(get("family"));
            models.insert(get("model"));
        }
        assert!(algorithms.len() >= 6, "algorithms: {algorithms:?}");
        assert!(families.len() >= 6, "families: {families:?}");
        assert_eq!(models.len(), 4, "models: {models:?}");
        // Every compatible case informed every vertex on every seed.
        for case in &out.cases {
            let s = case.summary.metric("all_informed").unwrap();
            assert_eq!(
                (s.min, s.max),
                (1.0, 1.0),
                "not all informed in {:?}",
                case.params
            );
        }
    }

    #[test]
    fn skip_accounting_balances_the_cross_product() {
        let out = run_scenario_matrix(&quick_config());
        let counts = extra_field(&out, "skip_counts");
        let total = int_field(counts, "total_combinations");
        let run = int_field(counts, "run");
        let skipped = int_field(counts, "skipped_incompatible");
        assert_eq!(run + skipped, total, "skips must account for every combo");
        assert_eq!(run, out.cases.len() as i64);
        assert!(skipped > 0, "the matrix must contain incompatible pairs");
        // CD-only algorithms under LOCAL are among the counted skips.
        let model_skips = int_field(counts, "skipped_incompatible_model");
        assert!(model_skips > 0);
        // The §8 path algorithm is scoped to the path family.
        let graph_skips = int_field(counts, "skipped_incompatible_graph");
        assert!(graph_skips > 0);
    }

    #[test]
    fn axis_filters_narrow_the_matrix() {
        let config = RunConfig {
            seeds: Some(1),
            quick: true,
            family: Some("cycle".into()),
            model: Some("cd".into()),
            algo: Some("theorem11".into()),
        };
        let out = run_scenario_matrix(&config);
        assert_eq!(out.cases.len(), 1);
        let params = &out.cases[0].params;
        for (key, want) in [
            ("family", "cycle"),
            ("model", "cd"),
            ("algorithm", "theorem11"),
        ] {
            let got = params.iter().find(|(k, _)| *k == key).unwrap();
            assert_eq!(got.1, Json::Str(want.into()));
        }
    }

    #[test]
    fn unknown_filter_yields_an_empty_matrix_not_a_crash() {
        let config = RunConfig {
            seeds: Some(1),
            quick: true,
            algo: Some("nonexistent".into()),
            ..RunConfig::default()
        };
        let out = run_scenario_matrix(&config);
        assert!(out.cases.is_empty());
    }
}
