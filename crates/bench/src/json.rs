//! A minimal, dependency-free JSON document model and serializer.
//!
//! The experiment harness emits machine-readable `BENCH_*.json` files; with
//! no network access to crates.io the workspace cannot pull in
//! `serde`/`serde_json`, so this module provides the tiny slice actually
//! needed: building documents and serializing them with **stable field
//! order** (objects preserve insertion order, so the emitted schema is
//! byte-stable across runs given equal data).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order for schema stability.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite values serialize as `null`, as
    /// `serde_json` does for lossy float modes).
    Num(f64),
    /// An integer, kept separate so counts serialize without a decimal
    /// point.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key → value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts `key` into an object, builder style. Panics on non-objects.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Shortest round-trip via Rust's float formatting; force
                    // a decimal point so the field is typed as float.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Json {
        i64::try_from(i).map_or(Json::Num(i as f64), Json::Int)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        (i as u64).into()
    }
}

impl From<u32> for Json {
    fn from(i: u32) -> Json {
        Json::Int(i64::from(i))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_order_is_stable() {
        let doc = Json::obj()
            .field("zeta", 1u64)
            .field("alpha", 2u64)
            .field("mid", Json::obj().field("x", 0.5));
        let s = doc.to_string_pretty();
        let zeta = s.find("zeta").unwrap();
        let alpha = s.find("alpha").unwrap();
        assert!(zeta < alpha, "insertion order must be preserved:\n{s}");
    }

    #[test]
    fn escaping_and_scalars() {
        let doc = Json::obj()
            .field("s", "a\"b\\c\nd")
            .field("t", true)
            .field("n", Json::Null)
            .field("i", -3i64)
            .field("f", 2.0);
        let s = doc.to_string_pretty();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""), "{s}");
        assert!(s.contains("\"f\": 2.0"), "{s}");
        assert!(s.contains("\"i\": -3"), "{s}");
    }

    #[test]
    fn nonfinite_floats_are_null() {
        let s = Json::obj().field("x", f64::NAN).to_string_pretty();
        assert!(s.contains("\"x\": null"), "{s}");
    }

    #[test]
    fn empty_containers() {
        let s = Json::obj()
            .field("a", Json::Arr(vec![]))
            .field("o", Json::obj())
            .to_string_pretty();
        assert!(s.contains("\"a\": []"));
        assert!(s.contains("\"o\": {}"));
    }
}
