//! A minimal, dependency-free JSON document model, serializer, and parser.
//!
//! The experiment harness emits machine-readable `BENCH_*.json` files; with
//! no network access to crates.io the workspace cannot pull in
//! `serde`/`serde_json`, so this module provides the tiny slice actually
//! needed: building documents and serializing them with **stable field
//! order** (objects preserve insertion order, so the emitted schema is
//! byte-stable across runs given equal data), plus [`Json::parse`] so the
//! baseline regression gate can read checked-in documents back.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order for schema stability.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite values serialize as `null`, as
    /// `serde_json` does for lossy float modes).
    Num(f64),
    /// An integer, kept separate so counts serialize without a decimal
    /// point.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key → value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts `key` into an object, builder style. Panics on non-objects.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// Parses a JSON document.
    ///
    /// Accepts exactly the dialect [`to_string_pretty`] emits (standard
    /// JSON; numbers with a `.` or exponent parse as [`Json::Num`], bare
    /// integers in `i64` range as [`Json::Int`]). Trailing garbage after
    /// the document is an error.
    ///
    /// [`to_string_pretty`]: Json::to_string_pretty
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of this node ([`Json::Num`] or [`Json::Int`]).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string value of this node.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of this node, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Shortest round-trip via Rust's float formatting; force
                    // a decimal point so the field is typed as float.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Recursive-descent parser over the serializer's dialect.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err(format!("unterminated string from byte {start}")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Json {
        i64::try_from(i).map_or(Json::Num(i as f64), Json::Int)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        (i as u64).into()
    }
}

impl From<u32> for Json {
    fn from(i: u32) -> Json {
        Json::Int(i64::from(i))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_order_is_stable() {
        let doc = Json::obj()
            .field("zeta", 1u64)
            .field("alpha", 2u64)
            .field("mid", Json::obj().field("x", 0.5));
        let s = doc.to_string_pretty();
        let zeta = s.find("zeta").unwrap();
        let alpha = s.find("alpha").unwrap();
        assert!(zeta < alpha, "insertion order must be preserved:\n{s}");
    }

    #[test]
    fn escaping_and_scalars() {
        let doc = Json::obj()
            .field("s", "a\"b\\c\nd")
            .field("t", true)
            .field("n", Json::Null)
            .field("i", -3i64)
            .field("f", 2.0);
        let s = doc.to_string_pretty();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""), "{s}");
        assert!(s.contains("\"f\": 2.0"), "{s}");
        assert!(s.contains("\"i\": -3"), "{s}");
    }

    #[test]
    fn nonfinite_floats_are_null() {
        let s = Json::obj().field("x", f64::NAN).to_string_pretty();
        assert!(s.contains("\"x\": null"), "{s}");
    }

    #[test]
    fn empty_containers() {
        let s = Json::obj()
            .field("a", Json::Arr(vec![]))
            .field("o", Json::obj())
            .to_string_pretty();
        assert!(s.contains("\"a\": []"));
        assert!(s.contains("\"o\": {}"));
    }

    #[test]
    fn parse_round_trips_serializer_output() {
        let doc = Json::obj()
            .field("schema_version", 1u64)
            .field("truncated", true)
            .field("name", "scenario \"matrix\"\n")
            .field("exponent", 1.5)
            .field("negative", -0.25)
            .field("count", -7i64)
            .field("none", Json::Null)
            .field(
                "cases",
                Json::Arr(vec![
                    Json::obj().field("n", 16u64).field("energy_mean", 2.0),
                    Json::Arr(vec![]),
                    Json::obj(),
                ]),
            );
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        // Ints stay ints, floats stay floats.
        assert_eq!(parsed.get("count"), Some(&Json::Int(-7)));
        assert_eq!(parsed.get("exponent"), Some(&Json::Num(1.5)));
        // And the re-serialization is byte-identical.
        assert_eq!(parsed.to_string_pretty(), text);
    }

    #[test]
    fn parse_scientific_notation_and_unicode() {
        let parsed = Json::parse(r#"{"x": 1e3, "y": 2.5e-2, "s": "aAü"}"#).unwrap();
        assert_eq!(parsed.get("x"), Some(&Json::Num(1000.0)));
        assert_eq!(parsed.get("y"), Some(&Json::Num(0.025)));
        assert_eq!(parsed.get("s").unwrap().as_str(), Some("aAü"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
            "{\"a\": 01x}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = Json::parse(r#"{"a": {"b": [1, 2.5, "x"]}}"#).unwrap();
        let arr = doc.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
        assert!(doc.get("a").unwrap().as_f64().is_none());
    }
}
