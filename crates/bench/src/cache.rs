//! The content-addressed cell cache: the on-disk result store that makes
//! sweeps incremental.
//!
//! Every experiment case — one `(params, seed set)` cell of a sweep — is
//! keyed by two components:
//!
//! * the **cell-config key** ([`case_key`]): the experiment name, every
//!   case param (`family`, `model`, `algorithm`, `n`, `fault`, …) in
//!   *sorted* order, and the seed count. Sorting makes the key stable
//!   under param reordering; the seed list itself is derived
//!   deterministically from the count ([`crate::measure::master_seed`]),
//!   so the count pins the exact seed set. Wall-clock budget knobs are
//!   deliberately **not** part of the key: the budget decides which cells
//!   run, never what a cell measures, so a budgeted smoke run and an
//!   unlimited gate run share entries for the cells they have in common.
//! * the **code-version fingerprint**: one source digest per workspace
//!   crate feeding the cell ([`SourceDigests`]), stored alongside the
//!   result. A lookup revalidates each dependency digest against the
//!   current sources, so a `crates/graphs` edit invalidates every cell
//!   that builds a graph while a `crates/singlehop` edit only invalidates
//!   the cells whose algorithms reach single-hop code
//!   ([`deps_for`]). The `bench` digest covers only the measurement
//!   recipes (`experiments.rs`, `scenario.rs`, `measure.rs`) — report or
//!   gate-layer changes never invalidate measured cells. Cells whose
//!   `family` is dataset-derived additionally carry one `dataset:<file>`
//!   pseudo-dependency per backing file, digesting the dataset's
//!   *content* — editing the dataset on disk invalidates exactly the
//!   dataset-backed cells, the same way a source edit invalidates its
//!   dependents.
//!
//! Entries live under `<cache-dir>/<hh>/<hash16>.json` (two-hex-char
//! shards of the FNV-1a key hash). Each entry stores the full key (hash
//! collisions degrade to misses, never to wrong results), the dependency
//! digests it was built under, and the case's serialized measurements.
//! Writes go through a temp file + atomic rename, so concurrent sweeps
//! and a crashed run can never leave a torn entry behind.
//!
//! Non-finite metrics serialize as JSON `null` and would not survive a
//! round trip bit-identically, so cases containing any non-finite
//! measurement are never stored — they simply re-run every time.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use crate::json::Json;
use crate::measure::{Case, Measurement};

/// Cache entry schema version; entries with another version are misses.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// The workspace crates that can feed a cell, in digest order.
pub const DEP_CRATES: [&str; 5] = ["radio", "graphs", "singlehop", "core", "bench"];

/// Dependency set of cells that execute single-hop (leader-election /
/// SR-transform) code — at module granularity, everything that reaches
/// `ebc_core::srcomm` or `ebc_core::reduction`.
pub const FULL_DEPS: &[&str] = &DEP_CRATES;

/// Dependency set of cells that provably never reach `ebc-singlehop`:
/// flooding, BGI decay, and the §8 path algorithm live in modules that
/// import only the engine, the graph layer, and core utilities.
pub const NO_SINGLEHOP_DEPS: &[&str] = &["radio", "graphs", "core", "bench"];

/// Algorithms whose cells take [`NO_SINGLEHOP_DEPS`]; everything else is
/// conservatively given the full set (an over-approximation is always
/// sound — it can only cause extra re-runs, never a stale hit).
const NO_SINGLEHOP_ALGOS: [&str; 3] = ["naive_flood", "bgi_decay", "path_theorem21"];

/// The bench-crate sources that shape measurements (the `bench` digest).
const BENCH_RECIPE_FILES: [&str; 3] = ["experiments.rs", "scenario.rs", "measure.rs"];

/// Streaming FNV-1a 64-bit hash — stable across platforms and runs, which
/// is all a cache key needs (this is not a cryptographic boundary).
#[derive(Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv {
    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// FNV-1a of one byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv::default();
    h.update(bytes);
    h.finish()
}

fn hex16(h: u64) -> String {
    format!("{h:016x}")
}

/// The dependency set of one cell, from its experiment and params: the
/// crate set plus — for cells whose `family` param names a
/// dataset-derived family — one `dataset:<file>` pseudo-dependency per
/// backing file, so editing the dataset on disk invalidates exactly the
/// cells whose graphs were built from it. (Before this, dataset-backed
/// cells were keyed only on crate sources and would serve stale results
/// after a dataset edit.)
///
/// The `algorithm` param (the registry name) drives the crate split; the
/// `fig1_path` experiment is the path algorithm by construction and gets
/// the same treatment despite carrying no `algorithm` param. Unknown
/// algorithms — and experiments whose cells mix primitives (`ablation`,
/// `table1_lower`) — take the full set.
pub fn deps_for(experiment: &str, params: &[(&'static str, Json)]) -> Vec<&'static str> {
    let algorithm = params
        .iter()
        .find(|(k, _)| *k == "algorithm")
        .and_then(|(_, v)| v.as_str());
    let crates: &[&str] = if experiment == "fig1_path" {
        NO_SINGLEHOP_DEPS
    } else {
        match algorithm {
            Some(a) if NO_SINGLEHOP_ALGOS.contains(&a) => NO_SINGLEHOP_DEPS,
            _ => FULL_DEPS,
        }
    };
    let mut deps: Vec<&'static str> = crates.to_vec();
    if let Some(family) = params
        .iter()
        .find(|(k, _)| *k == "family")
        .and_then(|(_, v)| v.as_str())
    {
        for file in ebc_graphs::datasets::family_files(family) {
            deps.push(dataset_dep(file));
        }
    }
    deps
}

/// The pseudo-dependency key of one dataset file (`dataset:<file>`),
/// interned so deserialized and live cells share one `&'static str`.
pub fn dataset_dep(file: &str) -> &'static str {
    intern(&format!("dataset:{file}"))
}

fn canon_param(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        Json::Int(i) => i.to_string(),
        Json::Num(x) => format!("{x}"),
        Json::Bool(b) => b.to_string(),
        // Params are scalars today; containers get the (stable) serializer.
        other => other.to_string_pretty(),
    }
}

/// The cell-config key of one case: experiment, seed count, and every
/// param as `key=value` in **sorted** order — reordering the params of a
/// case never changes its key.
pub fn case_key(experiment: &str, params: &[(&'static str, Json)], seeds: u64) -> String {
    let mut parts: Vec<String> = params
        .iter()
        .map(|(k, v)| format!("{k}={}", canon_param(v)))
        .collect();
    parts.sort();
    format!("{experiment}|seeds={seeds}|{}", parts.join("|"))
}

/// Per-crate source digests — the code-version half of every cache key.
#[derive(Debug, Clone)]
pub struct SourceDigests {
    digests: BTreeMap<&'static str, String>,
}

impl SourceDigests {
    /// Computes digests from the default source root: `$EBC_SRC_ROOT` if
    /// set, else the workspace root this binary was built from.
    pub fn compute() -> Result<SourceDigests, String> {
        Self::compute_at(&default_root())
    }

    /// Computes digests for the workspace rooted at `root` (tests point
    /// this at planted source trees).
    ///
    /// Besides the per-crate digests, every vendored dataset file gets a
    /// `dataset:<file>` digest — the content key dataset-backed cells
    /// validate against. Dataset files resolve through
    /// `$EBC_DATASET_DIR` when set (the `--dataset-dir` flag), else
    /// `<root>/datasets`; a missing file digests as `"absent"`, so
    /// adding the file later reads as a content change.
    pub fn compute_at(root: &Path) -> Result<SourceDigests, String> {
        let mut digests = BTreeMap::new();
        for krate in DEP_CRATES {
            digests.insert(krate, crate_digest(root, krate)?);
        }
        let dataset_root = match std::env::var_os("EBC_DATASET_DIR") {
            Some(dir) => PathBuf::from(dir),
            None => root.join("datasets"),
        };
        for file in ebc_graphs::datasets::SAMPLE_FILES {
            let digest = match std::fs::read(dataset_root.join(file)) {
                Ok(bytes) => hex16(fnv1a64(&bytes)),
                Err(_) => "absent".to_string(),
            };
            digests.insert(dataset_dep(file), digest);
        }
        Ok(SourceDigests { digests })
    }

    /// The digest under `key` (a crate name or `dataset:<file>`), if
    /// this fingerprint knows it.
    pub fn try_digest(&self, key: &str) -> Option<&str> {
        self.digests.get(key).map(String::as_str)
    }

    /// The digest of one crate (panics on names outside [`DEP_CRATES`]).
    pub fn digest(&self, krate: &str) -> &str {
        self.digests
            .get(krate)
            .unwrap_or_else(|| panic!("unknown dep crate {krate:?}"))
    }

    /// One combined fingerprint over `deps`' digests — order-independent
    /// in the input (the set is sorted first).
    pub fn fingerprint(&self, deps: &[&str]) -> String {
        let mut sorted: Vec<&str> = deps.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut h = Fnv::default();
        for krate in sorted {
            h.update(krate.as_bytes());
            h.update(b"=");
            h.update(self.digest(krate).as_bytes());
            h.update(b"\n");
        }
        hex16(h.finish())
    }

    /// The combined fingerprint over every dependency this store knows —
    /// all crates *and* all dataset files — what CI keys its cross-run
    /// cache restore on. A dataset edit moves it just like a source edit.
    pub fn combined(&self) -> String {
        let keys: Vec<&str> = self.digests.keys().copied().collect();
        self.fingerprint(&keys)
    }

    /// All per-crate digests as a JSON object (stats / serve payloads).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (krate, digest) in &self.digests {
            obj = obj.field(krate, digest.as_str());
        }
        obj
    }
}

/// The workspace root the digests read sources from.
fn default_root() -> PathBuf {
    match std::env::var_os("EBC_SRC_ROOT") {
        Some(root) => PathBuf::from(root),
        // crates/bench → crates → workspace root.
        None => Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf(),
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Digest of one crate's sources: every `.rs` under `crates/<name>/src`
/// (for `bench`, only the measurement-recipe files), hashed as sorted
/// `(relative path, contents)` pairs.
fn crate_digest(root: &Path, krate: &str) -> Result<String, String> {
    let src = root.join("crates").join(krate).join("src");
    let mut files = Vec::new();
    if krate == "bench" {
        for name in BENCH_RECIPE_FILES {
            files.push(src.join(name));
        }
    } else {
        walk_rs(&src, &mut files)?;
    }
    files.sort();
    let mut h = Fnv::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let body =
            std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        h.update(rel.as_bytes());
        h.update(b"\0");
        h.update(&body);
        h.update(b"\0");
    }
    Ok(hex16(h.finish()))
}

/// Hit/miss/invalidation counters for one run (or one experiment).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells served from the store without re-executing.
    pub hits: usize,
    /// Cells absent from the store (first sight of this config).
    pub misses: usize,
    /// Cells present but built under different source digests.
    pub invalidated: usize,
}

impl CacheStats {
    /// Cells that actually executed (everything that was not a hit).
    pub fn executed(&self) -> usize {
        self.misses + self.invalidated
    }

    /// Folds `other` into this tally.
    pub fn add(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidated += other.invalidated;
    }

    /// The stats as a JSON object (the shape embedded in result docs,
    /// the gate report, and `BENCH_cache_stats.json`).
    pub fn to_json(self) -> Json {
        Json::obj()
            .field("hits", self.hits)
            .field("misses", self.misses)
            .field("invalidated", self.invalidated)
    }
}

/// What one lookup found.
pub enum Lookup {
    /// The cell is warm: a stored case built under the current sources.
    Hit(Case),
    /// No entry under this key.
    Miss,
    /// An entry exists, but at least one dependency digest moved (or the
    /// dependency set itself changed) — the cell must re-run.
    Invalidated,
}

/// The on-disk store. One instance per run; all methods take `&self`
/// (writes are atomic renames, safe under rayon).
pub struct CellCache {
    dir: PathBuf,
    digests: SourceDigests,
}

impl CellCache {
    /// Opens (creating if needed) the store at `dir`, fingerprinting the
    /// default source root.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CellCache, String> {
        let digests = SourceDigests::compute()?;
        Self::open_with(dir, digests)
    }

    /// Opens the store at `dir` under pre-computed digests (tests plant
    /// their own source trees).
    pub fn open_with(dir: impl Into<PathBuf>, digests: SourceDigests) -> Result<CellCache, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?;
        Ok(CellCache { dir, digests })
    }

    /// The source digests this store validates entries against.
    pub fn digests(&self) -> &SourceDigests {
        &self.digests
    }

    /// Where this store lives.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        let hash = hex16(fnv1a64(key.as_bytes()));
        self.dir.join(&hash[..2]).join(format!("{hash}.json"))
    }

    /// Looks `key` up, revalidating the entry's per-crate digests against
    /// the current sources for exactly the crates in `deps`.
    pub fn lookup(&self, key: &str, deps: &[&str]) -> Lookup {
        let Some((entry, fresh)) = self.read_entry(key) else {
            return Lookup::Miss;
        };
        let stored: BTreeSet<&str> = entry
            .get("deps")
            .and_then(|d| match d {
                Json::Obj(pairs) => Some(pairs.iter().map(|(k, _)| k.as_str()).collect()),
                _ => None,
            })
            .unwrap_or_default();
        let wanted: BTreeSet<&str> = deps.iter().copied().collect();
        if stored != wanted || !fresh {
            return Lookup::Invalidated;
        }
        match entry.get("case").and_then(case_from_json) {
            Some(case) => Lookup::Hit(case),
            // A torn or hand-edited entry: treat as absent.
            None => Lookup::Miss,
        }
    }

    /// Reads the raw entry under `key`, if any, plus whether every stored
    /// dependency digest still matches the current sources. Key mismatches
    /// (hash collisions) read as absent.
    pub fn read_entry(&self, key: &str) -> Option<(Json, bool)> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let entry = Json::parse(&text).ok()?;
        if entry.get("cache_schema").and_then(Json::as_f64) != Some(f64::from(CACHE_SCHEMA_VERSION))
            || entry.get("key").and_then(Json::as_str) != Some(key)
        {
            return None;
        }
        let fresh = match entry.get("deps") {
            Some(Json::Obj(pairs)) => pairs.iter().all(|(dep, digest)| {
                // Unknown dependency names — a crate this build doesn't
                // know, a dataset file no longer vendored — read as not
                // fresh, never as a panic.
                self.digests
                    .try_digest(dep)
                    .is_some_and(|current| digest.as_str() == Some(current))
            }),
            _ => false,
        };
        Some((entry, fresh))
    }

    /// Stores `case` under `key`, tagged with the current digests of
    /// `deps`. Atomic (temp file + rename); cases with any non-finite
    /// metric are skipped (they cannot round-trip bit-identically).
    pub fn store(&self, key: &str, deps: &[&str], case: &Case) -> Result<(), String> {
        let finite = case
            .measurements
            .iter()
            .all(|m| m.metrics.iter().all(|(_, v)| v.is_finite()));
        if !finite {
            return Ok(());
        }
        let mut dep_obj = Json::obj();
        let mut sorted: Vec<&str> = deps.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for krate in sorted {
            dep_obj = dep_obj.field(krate, self.digests.digest(krate));
        }
        let entry = Json::obj()
            .field("cache_schema", CACHE_SCHEMA_VERSION)
            .field("key", key)
            .field("deps", dep_obj)
            .field("case", case.to_json());
        let path = self.entry_path(key);
        let shard = path.parent().expect("sharded path");
        std::fs::create_dir_all(shard)
            .map_err(|e| format!("cannot create {}: {e}", shard.display()))?;
        let tmp = shard.join(format!(
            ".{}.tmp{}",
            path.file_stem().expect("stem").to_string_lossy(),
            std::process::id()
        ));
        std::fs::write(&tmp, entry.to_string_pretty())
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("cannot rename into {}: {e}", path.display()))
    }

    /// Scans the whole store: `(entries, fresh)` counts, where fresh
    /// means every stored dependency digest matches the current sources.
    pub fn scan(&self) -> (usize, usize) {
        let (mut entries, mut fresh) = (0usize, 0usize);
        let Ok(shards) = std::fs::read_dir(&self.dir) else {
            return (0, 0);
        };
        for shard in shards.flatten() {
            let Ok(files) = std::fs::read_dir(shard.path()) else {
                continue;
            };
            for file in files.flatten() {
                if file.path().extension() != Some(std::ffi::OsStr::new("json")) {
                    continue;
                }
                let Ok(text) = std::fs::read_to_string(file.path()) else {
                    continue;
                };
                let Ok(entry) = Json::parse(&text) else {
                    continue;
                };
                let Some(key) = entry.get("key").and_then(Json::as_str) else {
                    continue;
                };
                entries += 1;
                if let Some((_, is_fresh)) = self.read_entry(key) {
                    fresh += usize::from(is_fresh);
                }
            }
        }
        (entries, fresh)
    }
}

/// Interns a string so deserialized cases can share the `&'static str`
/// keys live cases use. The pool is bounded by the set of distinct metric
/// and param names, so the leak is a few hundred bytes total.
fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut pool = POOL
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .expect("intern pool");
    if let Some(&existing) = pool.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(leaked);
    leaked
}

/// Rebuilds a [`Case`] from its [`Case::to_json`] serialization. The
/// summary is recomputed from the measurements (same fold, same order →
/// bit-identical statistics). Returns `None` on any shape mismatch.
pub fn case_from_json(doc: &Json) -> Option<Case> {
    let Json::Obj(param_pairs) = doc.get("params")? else {
        return None;
    };
    let params: Vec<(&'static str, Json)> = param_pairs
        .iter()
        .map(|(k, v)| (intern(k), v.clone()))
        .collect();
    let mut measurements = Vec::new();
    for m in doc.get("measurements")?.as_arr()? {
        let Json::Obj(pairs) = m else { return None };
        let seed = m.get("seed").and_then(Json::as_f64)? as u64;
        let mut metrics = Vec::new();
        for (k, v) in pairs {
            if k == "seed" {
                continue;
            }
            metrics.push((intern(k), v.as_f64()?));
        }
        measurements.push(Measurement { seed, metrics });
    }
    Some(Case::new(params, measurements))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::sweep_seeds;

    fn sample_case() -> Case {
        let measurements = sweep_seeds(3, |seed| {
            vec![
                ("time", seed as f64 * 1.25),
                ("energy_max", (seed % 7) as f64 + 0.1),
            ]
        });
        Case::new(
            vec![
                ("family", "cycle".into()),
                ("n", 64usize.into()),
                ("model", "local".into()),
                ("algorithm", "naive_flood".into()),
            ],
            measurements,
        )
    }

    /// A planted two-crate source tree under a temp root; returns the
    /// root. Each crate gets one `src/lib.rs` with distinct contents.
    fn plant_tree(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("ebc_cache_tree_{tag}_{}", line!()));
        std::fs::remove_dir_all(&root).ok();
        for krate in DEP_CRATES {
            let src = root.join("crates").join(krate).join("src");
            std::fs::create_dir_all(&src).unwrap();
            if krate == "bench" {
                for f in BENCH_RECIPE_FILES {
                    std::fs::write(src.join(f), format!("// {krate}/{f} v1\n")).unwrap();
                }
            } else {
                std::fs::write(src.join("lib.rs"), format!("// {krate} v1\n")).unwrap();
            }
        }
        root
    }

    fn temp_cache(tag: &str, root: &Path) -> CellCache {
        let dir = std::env::temp_dir().join(format!("ebc_cache_store_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        CellCache::open_with(dir, SourceDigests::compute_at(root).unwrap()).unwrap()
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned: the on-disk shard layout depends on these exact values.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let root = plant_tree("roundtrip");
        let cache = temp_cache("roundtrip", &root);
        let case = sample_case();
        let key = case_key("scenario_matrix", &case.params, 3);
        cache.store(&key, NO_SINGLEHOP_DEPS, &case).unwrap();
        match cache.lookup(&key, NO_SINGLEHOP_DEPS) {
            Lookup::Hit(loaded) => {
                // Bit-identical: the serialized documents (params, summary
                // statistics, raw measurements) match byte for byte.
                assert_eq!(
                    loaded.to_json().to_string_pretty(),
                    case.to_json().to_string_pretty()
                );
            }
            _ => panic!("stored case did not hit"),
        }
    }

    #[test]
    fn key_is_stable_under_param_reordering() {
        let a = vec![
            ("family", Json::from("cycle")),
            ("n", Json::from(64usize)),
            ("model", Json::from("cd")),
        ];
        let b = vec![
            ("model", Json::from("cd")),
            ("family", Json::from("cycle")),
            ("n", Json::from(64usize)),
        ];
        assert_eq!(case_key("m", &a, 2), case_key("m", &b, 2));
        // …but any config change — a param value or the seed set — is a
        // different cell.
        let mut c = a.clone();
        c[1].1 = Json::from(128usize);
        assert_ne!(case_key("m", &a, 2), case_key("m", &c, 2));
        assert_ne!(case_key("m", &a, 2), case_key("m", &a, 3));
        assert_ne!(case_key("m", &a, 2), case_key("other", &a, 2));
    }

    #[test]
    fn config_change_is_a_miss_not_a_stale_hit() {
        let root = plant_tree("config");
        let cache = temp_cache("config", &root);
        let case = sample_case();
        let key = case_key("scenario_matrix", &case.params, 3);
        cache.store(&key, FULL_DEPS, &case).unwrap();
        // More seeds → different key → miss.
        let other = case_key("scenario_matrix", &case.params, 4);
        assert!(matches!(cache.lookup(&other, FULL_DEPS), Lookup::Miss));
    }

    #[test]
    fn source_change_invalidates_only_dependent_cells() {
        // The planted-staleness contract: two cells, one depending on
        // singlehop and one not. Changing crates/singlehop re-runs only
        // the dependent cell; the other still hits.
        let root = plant_tree("staleness");
        let store_dir = std::env::temp_dir().join("ebc_cache_store_staleness");
        std::fs::remove_dir_all(&store_dir).ok();
        let cache =
            CellCache::open_with(&store_dir, SourceDigests::compute_at(&root).unwrap()).unwrap();
        let case = sample_case();
        let flood_key = case_key("scenario_matrix", &case.params, 3);
        let mut t11_params = case.params.clone();
        t11_params[3].1 = Json::from("theorem11");
        let t11_key = case_key("scenario_matrix", &t11_params, 3);
        cache.store(&flood_key, NO_SINGLEHOP_DEPS, &case).unwrap();
        cache
            .store(
                &t11_key,
                FULL_DEPS,
                &Case::new(t11_params, case.measurements.clone()),
            )
            .unwrap();

        // Plant: a single-crate source change in singlehop.
        std::fs::write(
            root.join("crates/singlehop/src/lib.rs"),
            "// singlehop v2\n",
        )
        .unwrap();
        let cache =
            CellCache::open_with(&store_dir, SourceDigests::compute_at(&root).unwrap()).unwrap();
        assert!(
            matches!(cache.lookup(&flood_key, NO_SINGLEHOP_DEPS), Lookup::Hit(_)),
            "flood cell does not depend on singlehop — must stay warm"
        );
        assert!(
            matches!(cache.lookup(&t11_key, FULL_DEPS), Lookup::Invalidated),
            "theorem11 cell depends on singlehop — must invalidate"
        );

        // Plant: a graphs change invalidates both (every cell builds a
        // graph).
        std::fs::write(root.join("crates/graphs/src/lib.rs"), "// graphs v2\n").unwrap();
        let cache =
            CellCache::open_with(&store_dir, SourceDigests::compute_at(&root).unwrap()).unwrap();
        assert!(matches!(
            cache.lookup(&flood_key, NO_SINGLEHOP_DEPS),
            Lookup::Invalidated
        ));
        assert!(matches!(
            cache.lookup(&t11_key, FULL_DEPS),
            Lookup::Invalidated
        ));
    }

    #[test]
    fn dep_set_change_invalidates() {
        let root = plant_tree("depset");
        let cache = temp_cache("depset", &root);
        let case = sample_case();
        let key = case_key("m", &case.params, 3);
        cache.store(&key, NO_SINGLEHOP_DEPS, &case).unwrap();
        assert!(matches!(cache.lookup(&key, FULL_DEPS), Lookup::Invalidated));
    }

    #[test]
    fn nonfinite_metrics_are_never_stored() {
        let root = plant_tree("nonfinite");
        let cache = temp_cache("nonfinite", &root);
        let case = Case::new(
            vec![("n", 4usize.into())],
            vec![Measurement {
                seed: 1000,
                metrics: vec![("time", f64::NAN)],
            }],
        );
        let key = case_key("m", &case.params, 1);
        cache.store(&key, FULL_DEPS, &case).unwrap();
        assert!(matches!(cache.lookup(&key, FULL_DEPS), Lookup::Miss));
    }

    #[test]
    fn fingerprint_is_order_independent_and_source_sensitive() {
        let root = plant_tree("fp");
        let d = SourceDigests::compute_at(&root).unwrap();
        assert_eq!(
            d.fingerprint(&["radio", "core"]),
            d.fingerprint(&["core", "radio"])
        );
        assert_ne!(d.fingerprint(&["radio"]), d.fingerprint(&["core"]));
        let combined = d.combined();
        std::fs::write(root.join("crates/radio/src/lib.rs"), "// radio v2\n").unwrap();
        let d2 = SourceDigests::compute_at(&root).unwrap();
        assert_ne!(
            combined,
            d2.combined(),
            "source change must move the fingerprint"
        );
        assert_eq!(
            d.digest("core"),
            d2.digest("core"),
            "untouched crates keep their digest"
        );
    }

    #[test]
    fn deps_for_splits_on_algorithm_reach() {
        let flood = vec![("algorithm", Json::from("naive_flood"))];
        assert_eq!(deps_for("scenario_matrix", &flood), NO_SINGLEHOP_DEPS);
        let t11 = vec![("algorithm", Json::from("theorem11"))];
        assert_eq!(deps_for("scenario_matrix", &t11), FULL_DEPS);
        // No algorithm param → conservative full set…
        assert_eq!(deps_for("table1_lower", &[]), FULL_DEPS);
        // …except fig1_path, which is the path algorithm by construction.
        assert_eq!(deps_for("fig1_path", &[]), NO_SINGLEHOP_DEPS);
    }

    #[test]
    fn deps_for_adds_dataset_files_for_dataset_families() {
        // Synthetic families carry crate deps only.
        let cycle = vec![
            ("algorithm", Json::from("naive_flood")),
            ("family", Json::from("cycle")),
        ];
        assert_eq!(deps_for("scenario_matrix", &cycle), NO_SINGLEHOP_DEPS);
        // Dataset families append one dataset:<file> pseudo-dep per
        // backing file, on top of the same crate split.
        let ds = vec![
            ("algorithm", Json::from("naive_flood")),
            ("family", Json::from("ds-social")),
        ];
        let deps = deps_for("scenario_matrix", &ds);
        assert_eq!(&deps[..NO_SINGLEHOP_DEPS.len()], NO_SINGLEHOP_DEPS);
        assert_eq!(
            &deps[NO_SINGLEHOP_DEPS.len()..],
            ["dataset:sample-social.txt"]
        );
        let ds_t11 = vec![
            ("algorithm", Json::from("theorem11")),
            ("family", Json::from("ds-unit-disk")),
        ];
        let deps = deps_for("scenario_matrix", &ds_t11);
        assert_eq!(&deps[..FULL_DEPS.len()], FULL_DEPS);
        assert_eq!(&deps[FULL_DEPS.len()..], ["dataset:sample-roadnet.co"]);
    }

    #[test]
    fn dataset_edit_invalidates_only_dataset_backed_cells() {
        // The planted-edit contract, mirroring
        // source_change_invalidates_only_dependent_cells: two cells, one
        // built from a synthetic family and one from an on-disk dataset.
        // Editing the dataset file re-runs only the dataset-backed cell.
        let root = plant_tree("dataset_edit");
        let ds_dir = root.join("datasets");
        std::fs::create_dir_all(&ds_dir).unwrap();
        std::fs::write(ds_dir.join("sample-social.txt"), "0 1\n1 2\n").unwrap();
        let store_dir = std::env::temp_dir().join("ebc_cache_store_dataset_edit");
        std::fs::remove_dir_all(&store_dir).ok();
        let cache =
            CellCache::open_with(&store_dir, SourceDigests::compute_at(&root).unwrap()).unwrap();
        let combined_before = cache.digests().combined();

        let cycle_case = sample_case();
        let cycle_deps = deps_for("scenario_matrix", &cycle_case.params);
        let cycle_key = case_key("scenario_matrix", &cycle_case.params, 3);
        let mut ds_params = cycle_case.params.clone();
        ds_params[0].1 = Json::from("ds-social");
        let ds_deps = deps_for("scenario_matrix", &ds_params);
        let ds_key = case_key("scenario_matrix", &ds_params, 3);
        cache.store(&cycle_key, &cycle_deps, &cycle_case).unwrap();
        cache
            .store(
                &ds_key,
                &ds_deps,
                &Case::new(ds_params, cycle_case.measurements.clone()),
            )
            .unwrap();
        assert!(matches!(cache.lookup(&ds_key, &ds_deps), Lookup::Hit(_)));

        // Plant the edit: one more edge in the dataset file.
        std::fs::write(ds_dir.join("sample-social.txt"), "0 1\n1 2\n2 3\n").unwrap();
        let cache =
            CellCache::open_with(&store_dir, SourceDigests::compute_at(&root).unwrap()).unwrap();
        assert!(
            matches!(cache.lookup(&cycle_key, &cycle_deps), Lookup::Hit(_)),
            "synthetic cell does not read the dataset — must stay warm"
        );
        assert!(
            matches!(cache.lookup(&ds_key, &ds_deps), Lookup::Invalidated),
            "dataset-backed cell must invalidate on a dataset edit"
        );
        assert_ne!(
            combined_before,
            cache.digests().combined(),
            "the combined fingerprint must move on a dataset edit"
        );
    }

    #[test]
    fn scan_counts_entries_and_freshness() {
        let root = plant_tree("scan");
        let store_dir = std::env::temp_dir().join("ebc_cache_store_scan");
        std::fs::remove_dir_all(&store_dir).ok();
        let cache =
            CellCache::open_with(&store_dir, SourceDigests::compute_at(&root).unwrap()).unwrap();
        let case = sample_case();
        cache
            .store(&case_key("m", &case.params, 3), FULL_DEPS, &case)
            .unwrap();
        assert_eq!(cache.scan(), (1, 1));
        std::fs::write(root.join("crates/core/src/lib.rs"), "// core v2\n").unwrap();
        let cache =
            CellCache::open_with(&store_dir, SourceDigests::compute_at(&root).unwrap()).unwrap();
        assert_eq!(cache.scan(), (1, 0), "stale entry must scan as not fresh");
    }

    #[test]
    fn real_workspace_digests_compute() {
        // The production path: the digests of this very workspace.
        let d = SourceDigests::compute().expect("workspace sources readable");
        assert_eq!(d.combined().len(), 16);
        for krate in DEP_CRATES {
            assert_eq!(d.digest(krate).len(), 16);
        }
    }
}
