//! The experiment registry: every row of the paper's Table 1 and every
//! figure, as a structured, parallel, JSON-serializable experiment.
//!
//! Each experiment is a pure function `RunConfig -> Vec<Case>`; the
//! [`ExperimentSpec`] wraps it with its name, human context, and the
//! paper's asymptotic claim. Absolute constants are not expected to match
//! the asymptotic formulas; the *shape* is what each experiment
//! demonstrates — who wins, how costs grow with `n`, `Δ` and `D`, and
//! where tradeoff knobs move the balance.

use ebc_core::baseline::bgi_decay_broadcast;
use ebc_core::cdfast::{broadcast_theorem20, Theorem20Config};
use ebc_core::cluster::{broadcast_theorem16, partition_beta, Theorem16Config};
use ebc_core::det::{broadcast_det_cd, broadcast_det_local, DetCdConfig, DetLocalConfig};
use ebc_core::path::{path_broadcast, PathConfig};
use ebc_core::randomized::{
    broadcast_corollary13, broadcast_theorem11, broadcast_theorem12, Theorem11Config,
    Theorem12Config,
};
use std::sync::Arc;

use ebc_core::reduction::{run_reduction, theorem2_lower_bound, DecayMiddle, UniformCdMiddle};
use ebc_core::srcomm::Sr;
use ebc_core::util::NodeRngs;
use ebc_graphs::deterministic::{cycle, grid, k2k, star};
use ebc_radio::{Model, Sim};

use crate::cache::CacheStats;
use crate::json::Json;
use crate::measure::{Case, CaseRunner, RunConfig, RunnerProfile};

/// A named experiment: metadata plus its runner.
pub struct ExperimentSpec {
    /// Stable machine name (also the `BENCH_<name>.json` file stem).
    pub name: &'static str,
    /// One-line human title.
    pub title: &'static str,
    /// The paper's asymptotic claim this experiment reproduces.
    pub paper: &'static str,
    /// What shape to expect in the numbers, in one sentence.
    pub note: &'static str,
    /// Runs the experiment under `config`, executing every cell through
    /// `runner` (which serves warm cells from the content-addressed cache
    /// when one is configured).
    pub run: fn(&RunConfig, &mut CaseRunner) -> ExperimentOutput,
    /// Experiment-specific scalars for the baseline regression gate
    /// (e.g. `fig1_path`'s `within_2n` rate, Theorem 2's slot counts) —
    /// folded into [`Gateable::gate_scalars`] next to the generic
    /// per-experiment energy means. `None` for experiments whose per-case
    /// summaries already say everything gateable.
    pub gate: Option<fn(&ExperimentResult) -> Vec<GateScalar>>,
}

/// One named scalar an experiment exposes to the baseline regression
/// gate, beyond its per-case summary means.
#[derive(Debug, Clone, PartialEq)]
pub struct GateScalar {
    /// Stable scalar name (the baseline document key).
    pub name: String,
    /// The measured value.
    pub value: f64,
}

impl GateScalar {
    fn new(name: impl Into<String>, value: f64) -> GateScalar {
        GateScalar {
            name: name.into(),
            value,
        }
    }
}

/// Experiments that declare scalar outputs for the regression gate.
///
/// Every [`ExperimentResult`] is gateable: the default scalars are the
/// grand means of the standard energy metrics over all cases, and specs
/// with a [`gate`] hook contribute their experiment-specific scalars
/// (delivery-deadline rates, lower-bound slot counts, …) on top. The
/// baseline gate records these under a `scalars` section and diffs them
/// with the same relative tolerance as per-case means.
///
/// [`gate`]: ExperimentSpec::gate
pub trait Gateable {
    /// The scalars the gate records and diffs, in stable order.
    fn gate_scalars(&self) -> Vec<GateScalar>;
}

impl Gateable for ExperimentResult {
    fn gate_scalars(&self) -> Vec<GateScalar> {
        let mut scalars = Vec::new();
        // Per-experiment energy means: the grand mean over cases of each
        // energy metric's per-case mean (skipped where a metric is absent
        // or non-finite, so experiments without the standard metric set
        // still gate on their own scalars).
        for metric in ["energy_mean", "energy_max"] {
            let means: Vec<f64> = self
                .cases
                .iter()
                .filter_map(|c| c.summary.metric(metric).map(|s| s.mean))
                .filter(|v| v.is_finite())
                .collect();
            if !means.is_empty() {
                scalars.push(GateScalar::new(
                    format!("{metric}_over_cases"),
                    means.iter().sum::<f64>() / means.len() as f64,
                ));
            }
        }
        if let Some(gate) = self.spec.gate {
            scalars.extend(gate(self));
        }
        scalars
    }
}

/// The grand mean of `metric` over every measurement of every case
/// (`None` when no measurement recorded it).
fn measurement_mean(result: &ExperimentResult, metric: &str) -> Option<f64> {
    let values: Vec<f64> = result
        .cases
        .iter()
        .flat_map(|c| c.metric_values(metric))
        .collect();
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// `fig1_path`'s gate scalars: the fraction of all runs delivering within
/// the paper's worst-case `2n` deadline (Theorem 21 — must stay 1.0).
fn gate_fig1_path(result: &ExperimentResult) -> Vec<GateScalar> {
    measurement_mean(result, "within_2n")
        .map(|rate| GateScalar::new("within_2n_rate", rate))
        .into_iter()
        .collect()
}

/// `table1_lower`'s gate scalars: Theorem 2's leader-election slot counts
/// and election success rate per protocol — the measured side of the
/// energy lower bound `E ≥ T_LE / 2`.
fn gate_table1_lower(result: &ExperimentResult) -> Vec<GateScalar> {
    let mut scalars = Vec::new();
    for protocol in ["decay", "uniform"] {
        let cases: Vec<&Case> = result
            .cases
            .iter()
            .filter(|c| {
                c.params
                    .iter()
                    .any(|(k, v)| *k == "protocol" && *v == Json::Str(protocol.into()))
            })
            .collect();
        for metric in ["le_slots", "elected"] {
            let values: Vec<f64> = cases.iter().flat_map(|c| c.metric_values(metric)).collect();
            if !values.is_empty() {
                scalars.push(GateScalar::new(
                    format!("{metric}_mean_{protocol}"),
                    values.iter().sum::<f64>() / values.len() as f64,
                ));
            }
        }
    }
    scalars
}

/// `scenario_matrix`'s gate scalars: per fault-axis value, the grand
/// `success_rate` (fraction of faulted runs where every surviving device
/// ended informed) and mean `energy_overhead_vs_clean` over all faulted
/// runs of that kind — the headline columns of the fault axis, gated so
/// a fault-layer regression (faults silently not reaching the pipeline
/// would push every success rate to 1.0 and every overhead to exactly
/// 1.0) trips the baseline diff.
fn gate_scenario_matrix(result: &ExperimentResult) -> Vec<GateScalar> {
    let mut scalars = Vec::new();
    for fault in ["slot-loss", "crash", "jammer"] {
        let cases: Vec<&Case> = result
            .cases
            .iter()
            .filter(|c| {
                c.params
                    .iter()
                    .any(|(k, v)| *k == "fault" && *v == Json::Str(fault.into()))
            })
            .collect();
        for metric in ["success_rate", "energy_overhead_vs_clean"] {
            let values: Vec<f64> = cases.iter().flat_map(|c| c.metric_values(metric)).collect();
            if !values.is_empty() {
                scalars.push(GateScalar::new(
                    format!("{metric}_{fault}"),
                    values.iter().sum::<f64>() / values.len() as f64,
                ));
            }
        }
    }
    scalars
}

/// What one experiment run produced: the parameter-point cases plus any
/// experiment-specific top-level JSON fields (e.g. the scenario matrix's
/// skip accounting). Plain case lists convert via `.into()`.
pub struct ExperimentOutput {
    /// One entry per parameter point.
    pub cases: Vec<Case>,
    /// Extra `(key, value)` pairs serialized at the document's top level,
    /// before `"cases"`.
    pub extra: Vec<(&'static str, Json)>,
}

impl From<Vec<Case>> for ExperimentOutput {
    fn from(cases: Vec<Case>) -> ExperimentOutput {
        ExperimentOutput {
            cases,
            extra: Vec::new(),
        }
    }
}

/// A completed experiment: the spec it ran, how, and the cases produced.
pub struct ExperimentResult {
    /// The spec that ran.
    pub spec: &'static ExperimentSpec,
    /// The configuration it ran under.
    pub config: RunConfig,
    /// One entry per parameter point.
    pub cases: Vec<Case>,
    /// Experiment-specific top-level JSON fields.
    pub extra: Vec<(&'static str, Json)>,
    /// Cell-cache accounting for this run — `Some` iff a cache was
    /// configured ([`RunConfig::cache_dir`]).
    pub cache: Option<CacheStats>,
    /// Wall-clock breakdown per cell (build / sim / cache, plus analysis),
    /// aggregated across experiments into `BENCH_profile.json`. Kept out
    /// of the main result document: wall-clock is machine noise, and the
    /// baselines diff that document.
    pub profile: RunnerProfile,
}

/// The JSON schema version stamped into every emitted file. Bump on any
/// backwards-incompatible change to the document layout. (v2: baseline
/// documents gained `scalars` and all-param case keys; scaling fits
/// gained `exponent_ci` / `class_agreement` / `class_confident`.)
pub const SCHEMA_VERSION: u32 = 2;

impl ExperimentResult {
    /// Serializes the full result document (`BENCH_<name>.json` payload).
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj()
            .field("schema_version", SCHEMA_VERSION)
            .field("experiment", self.spec.name)
            .field("title", self.spec.title)
            .field("paper_bound", self.spec.paper)
            .field("note", self.spec.note)
            .field(
                "config",
                Json::obj()
                    .field("seeds", self.config.seeds.map_or(Json::Null, Json::from))
                    .field("quick", self.config.quick)
                    .field("threads", rayon::current_num_threads()),
            );
        if let Some(cache) = self.cache {
            doc = doc.field("cache", cache.to_json());
        }
        for (k, v) in &self.extra {
            doc = doc.field(k, v.clone());
        }
        doc.field(
            "cases",
            Json::Arr(self.cases.iter().map(Case::to_json).collect()),
        )
    }
}

/// Runs `spec` under `config`, routing every cell through the cell cache
/// when `config.cache_dir` is set.
pub fn run_experiment(spec: &'static ExperimentSpec, config: &RunConfig) -> ExperimentResult {
    let mut runner = CaseRunner::new(spec.name, config);
    let output = (spec.run)(config, &mut runner);
    ExperimentResult {
        spec,
        config: config.clone(),
        cases: output.cases,
        extra: output.extra,
        cache: runner.finish(),
        profile: runner.profile,
    }
}

/// Looks up an experiment by exact name, then by unique substring.
pub fn find_experiment(name: &str) -> Option<&'static ExperimentSpec> {
    if let Some(spec) = EXPERIMENTS.iter().find(|s| s.name == name) {
        return Some(spec);
    }
    let matches: Vec<&'static ExperimentSpec> = EXPERIMENTS
        .iter()
        .filter(|s| s.name.contains(name))
        .collect();
    match matches.as_slice() {
        [one] => Some(one),
        _ => None,
    }
}

fn sizes<'a>(config: &RunConfig, full: &'a [usize], quick: &'a [usize]) -> &'a [usize] {
    if config.quick {
        quick
    } else {
        full
    }
}

/// E1/E5/E7 — Table 1 randomized rows: Theorem 11 under LOCAL / CD /
/// No-CD and Theorem 12 under CD, swept over `n` on rings.
fn run_table1_randomized(config: &RunConfig, runner: &mut CaseRunner) -> ExperimentOutput {
    let t11 = Theorem11Config::default();
    let t12 = Theorem12Config::default();
    let mut cases = Vec::new();
    for &n in sizes(config, &[64, 128, 256, 512], &[64, 128]) {
        let g = Arc::new(cycle(n));
        let variants: &[(&'static str, Model, u64)] = &[
            ("theorem11", Model::Local, 3),
            ("theorem11", Model::Cd, 3),
            ("theorem11", Model::NoCd, 3),
            ("theorem12", Model::Cd, 2),
        ];
        for &(algorithm, model, full_seeds) in variants {
            let seeds = config.seeds_for_size(full_seeds, n, 64);
            cases.push(runner.run_broadcast_case(
                vec![
                    ("graph", "cycle".into()),
                    ("n", n.into()),
                    ("algorithm", algorithm.into()),
                    ("model", model_name(model).into()),
                ],
                &g,
                model,
                seeds,
                |s| match algorithm {
                    "theorem11" => broadcast_theorem11(s, 0, &t11).all_informed(),
                    _ => broadcast_theorem12(s, 0, &t12).all_informed(),
                },
            ));
        }
    }
    cases.into()
}

/// E2 — Theorem 16's `O(D^{1+ε})` time on grids vs Theorem 11.
fn run_table1_dtime(config: &RunConfig, runner: &mut CaseRunner) -> ExperimentOutput {
    let t16 = Theorem16Config {
        beta_override: Some(0.25),
        ..Theorem16Config::default()
    };
    let t11 = Theorem11Config::default();
    let mut cases = Vec::new();
    for &side in sizes(config, &[8, 12, 16, 22], &[8, 12]) {
        let g = Arc::new(grid(side, side));
        let seeds = config.seeds_for_size(2, side * side, 64);
        for (algorithm, m16) in [("theorem16", true), ("theorem11", false)] {
            cases.push(runner.run_broadcast_case(
                vec![
                    ("graph", format!("grid {side}x{side}").into()),
                    ("n", (side * side).into()),
                    ("diameter", (2 * (side - 1)).into()),
                    ("algorithm", algorithm.into()),
                    ("model", model_name(Model::NoCd).into()),
                ],
                &g,
                Model::NoCd,
                seeds,
                |s| {
                    if m16 {
                        broadcast_theorem16(s, 0, &t16).all_informed()
                    } else {
                        broadcast_theorem11(s, 0, &t11).all_informed()
                    }
                },
            ));
        }
    }
    cases.into()
}

/// E3 — Corollary 13: bounded-degree No-CD via LOCAL simulation.
fn run_table1_bounded(config: &RunConfig, runner: &mut CaseRunner) -> ExperimentOutput {
    let t11 = Theorem11Config::default();
    let mut cases = Vec::new();
    for &n in sizes(config, &[64, 128, 256, 512], &[64, 128]) {
        let g = Arc::new(cycle(n));
        let seeds = config.seeds_for_size(2, n, 64);
        for (algorithm, cor13) in [("corollary13", true), ("theorem11", false)] {
            cases.push(runner.run_broadcast_case(
                vec![
                    ("graph", "cycle".into()),
                    ("n", n.into()),
                    ("algorithm", algorithm.into()),
                    ("model", model_name(Model::NoCd).into()),
                ],
                &g,
                Model::NoCd,
                seeds,
                |s| {
                    if cor13 {
                        broadcast_corollary13(s, 0).all_informed()
                    } else {
                        broadcast_theorem11(s, 0, &t11).all_informed()
                    }
                },
            ));
        }
    }
    cases.into()
}

/// E4 — the Theorem 2 reduction on `K_{2,k}`: leader-election slot counts
/// against the analytic lower bounds, plus broadcast energy on the gadget.
fn run_table1_lower(config: &RunConfig, runner: &mut CaseRunner) -> ExperimentOutput {
    let mut cases = Vec::new();
    for &k in sizes(config, &[8, 32, 128, 512], &[8, 32]) {
        let le_seeds = config.seeds_for_size(10, k, 8);
        for (protocol, model) in [("decay", Model::NoCd), ("uniform", Model::Cd)] {
            cases.push(runner.run_case(
                vec![
                    ("gadget", "k2k".into()),
                    ("k", k.into()),
                    ("protocol", protocol.into()),
                    ("model", model_name(model).into()),
                    ("bound_f1pct", theorem2_lower_bound(model, k, 0.01).into()),
                ],
                le_seeds,
                |seed| {
                    let (r, _) = match protocol {
                        "decay" => run_reduction(k, model, |_| DecayMiddle::new(k), seed, 100_000),
                        _ => run_reduction(k, model, |_| UniformCdMiddle::new(k), seed, 100_000),
                    };
                    vec![
                        ("le_slots", r.slots as f64),
                        ("elected", f64::from(u8::from(r.leader.is_some()))),
                    ]
                },
            ));
        }
        // Broadcast energy on the gadget itself (Theorem 11, CD): always
        // far above the reduction-derived bound.
        let g = Arc::new(k2k(k));
        cases.push(runner.run_broadcast_case(
            vec![
                ("gadget", "k2k".into()),
                ("k", k.into()),
                ("protocol", "broadcast_theorem11".into()),
                ("model", model_name(Model::Cd).into()),
                (
                    "bound_f1pct",
                    theorem2_lower_bound(Model::Cd, k, 0.01).into(),
                ),
            ],
            &g,
            Model::Cd,
            config.seeds_for_size(2, k, 8),
            |s| broadcast_theorem11(s, 0, &Theorem11Config::default()).all_informed(),
        ));
    }
    cases.into()
}

/// E6 — Theorem 20: lower CD energy bought with much more time.
fn run_table1_cdfast(config: &RunConfig, runner: &mut CaseRunner) -> ExperimentOutput {
    let t20 = Theorem20Config::default();
    let t11 = Theorem11Config::default();
    let mut cases = Vec::new();
    for &n in sizes(config, &[32, 64, 128], &[32, 64]) {
        let g = Arc::new(cycle(n));
        let seeds = config.seeds_for_size(2, n, 32);
        for (algorithm, is20) in [("theorem20", true), ("theorem11", false)] {
            cases.push(runner.run_broadcast_case(
                vec![
                    ("graph", "cycle".into()),
                    ("n", n.into()),
                    ("algorithm", algorithm.into()),
                    ("model", model_name(Model::Cd).into()),
                ],
                &g,
                Model::Cd,
                seeds,
                |s| {
                    if is20 {
                        broadcast_theorem20(s, 0, &t20).all_informed()
                    } else {
                        broadcast_theorem11(s, 0, &t11).all_informed()
                    }
                },
            ));
        }
    }
    cases.into()
}

/// E8/E9 — deterministic rows (Theorems 25 and 27); a single seed, the
/// algorithms are deterministic.
fn run_table1_det(config: &RunConfig, runner: &mut CaseRunner) -> ExperimentOutput {
    let mut cases = Vec::new();
    for &n in sizes(config, &[16, 32, 64], &[16, 32]) {
        let g = Arc::new(cycle(n));
        for (algorithm, model) in [("theorem25", Model::Local), ("theorem27", Model::Cd)] {
            cases.push(runner.run_broadcast_case(
                vec![
                    ("graph", "cycle".into()),
                    ("n", n.into()),
                    ("algorithm", algorithm.into()),
                    ("model", model_name(model).into()),
                ],
                &g,
                model,
                1,
                |s| {
                    if model == Model::Local {
                        broadcast_det_local(s, 0, &DetLocalConfig::default()).all_informed()
                    } else {
                        broadcast_det_cd(s, 0, &DetCdConfig::default()).all_informed()
                    }
                },
            ));
        }
    }
    cases.into()
}

/// E10/E11 — the §8 path algorithm: ≤ 2n delivery time at `O(log n)`
/// expected per-vertex energy.
fn run_fig1_path(config: &RunConfig, runner: &mut CaseRunner) -> ExperimentOutput {
    let mut cases = Vec::new();
    for &exp in sizes(config, &[8, 10, 12, 14], &[8, 10]) {
        let n = 1usize << exp;
        let seeds = config.seeds_for_size(5, n, 1 << 8);
        let cfg = PathConfig {
            oriented: true,
            cap_blocking: true,
        };
        cases.push(runner.run_case(
            vec![("graph", "path".into()), ("n", n.into())],
            seeds,
            |seed| {
                let (stats, engine) = path_broadcast(n, 0, &cfg, seed);
                assert!(stats.all_informed, "path broadcast failed (seed {seed})");
                let r = engine.meter().report();
                vec![
                    ("time", stats.delivery_time as f64),
                    (
                        "within_2n",
                        f64::from(u8::from(stats.delivery_time <= 2 * n as u64)),
                    ),
                    ("energy_max", r.max as f64),
                    ("energy_mean", r.mean),
                ]
            },
        ));
    }
    cases.into()
}

/// E12 — ablations: SR-primitive receiver energies (Lemmas 7/8 vs the CD
/// transform) and `Partition(β)` statistics (Lemmas 14/15).
fn run_ablation(config: &RunConfig, runner: &mut CaseRunner) -> ExperimentOutput {
    let mut cases = Vec::new();
    // Receiver energy of the two SR primitives on stars of growing degree.
    for &delta in sizes(config, &[8, 64, 512], &[8, 64]) {
        let g = Arc::new(star(delta));
        let senders: Vec<(usize, u32)> = (1..=delta).map(|v| (v, v as u32)).collect();
        let seeds = config.seeds_for_size(10, delta, 8);
        for primitive in ["decay", "cd_transform"] {
            cases.push(runner.run_case(
                vec![
                    ("graph", "star".into()),
                    ("delta", delta.into()),
                    ("primitive", primitive.into()),
                ],
                seeds,
                |seed| {
                    let (model, sr, stream) = if primitive == "decay" {
                        (Model::NoCd, Sr::Decay { delta, sweeps: 20 }, 1)
                    } else {
                        (
                            Model::Cd,
                            Sr::CdTransform {
                                delta,
                                epochs: 30,
                                relevance_check: false,
                            },
                            2,
                        )
                    };
                    let mut sim = Sim::new(Arc::clone(&g), model, seed);
                    let got = sr.run(
                        &mut sim,
                        &senders,
                        &[0],
                        &mut NodeRngs::new(seed, delta + 1, stream),
                    );
                    assert!(got[0].is_some(), "SR delivered nothing (seed {seed})");
                    vec![("receiver_energy", sim.meter().energy(0) as f64)]
                },
            ));
        }
    }
    // Partition(β): measured edge-cut fraction vs the 2β bound and
    // cluster-graph diameter vs the 3βD bound, on a cycle.
    let n = 512;
    let g = Arc::new(cycle(n));
    for beta in [0.1f64, 0.2, 0.3] {
        let seeds = config.seeds_for(5);
        cases.push(runner.run_case(
            vec![
                ("graph", "cycle".into()),
                ("n", n.into()),
                ("beta", beta.into()),
                ("bound_cut_fraction", (2.0 * beta).into()),
                (
                    "bound_cluster_diameter",
                    (3.0 * beta * (n / 2) as f64).into(),
                ),
            ],
            seeds,
            |seed| {
                let mut sim = Sim::new(Arc::clone(&g), Model::Local, seed);
                let mut rngs = NodeRngs::new(seed, n, 9);
                let st = partition_beta(&mut sim, beta, &Sr::Local, &mut rngs);
                let (cg, _) = st.cluster_graph(&g);
                vec![
                    ("cut_fraction", st.edge_cut_fraction(&g)),
                    (
                        "cluster_diameter",
                        f64::from(cg.diameter_exact().unwrap_or(0)),
                    ),
                ]
            },
        ));
    }
    cases.into()
}

/// E13 — the baseline gap: BGI decay's `Θ(D)` energy vs Theorem 11's
/// polylog, on growing rings.
fn run_baseline_gap(config: &RunConfig, runner: &mut CaseRunner) -> ExperimentOutput {
    let t11 = Theorem11Config::default();
    let mut cases = Vec::new();
    for &n in sizes(config, &[128, 256, 512, 1024], &[128, 256]) {
        let g = Arc::new(cycle(n));
        let seeds = config.seeds_for_size(2, n, 128);
        for (algorithm, is11) in [("theorem11", true), ("bgi_decay", false)] {
            cases.push(runner.run_broadcast_case(
                vec![
                    ("graph", "cycle".into()),
                    ("n", n.into()),
                    ("algorithm", algorithm.into()),
                    ("model", model_name(Model::NoCd).into()),
                ],
                &g,
                Model::NoCd,
                seeds,
                |s| {
                    if is11 {
                        broadcast_theorem11(s, 0, &t11).all_informed()
                    } else {
                        bgi_decay_broadcast(s, 0, None).all_informed()
                    }
                },
            ));
        }
    }
    cases.into()
}

pub(crate) fn model_name(model: Model) -> &'static str {
    match model {
        Model::NoCd => "no-cd",
        Model::Cd => "cd",
        Model::CdStar => "cd-star",
        Model::Local => "local",
        Model::Beep => "beep",
    }
}

/// Every experiment, in presentation order.
pub const EXPERIMENTS: &[ExperimentSpec] = &[
    ExperimentSpec {
        name: "table1_randomized",
        title: "Table 1 randomized rows (Theorems 11, 12)",
        paper: "LOCAL: O(n log n) time, O(log n) energy | No-CD: O(n logΔ log²n), O(logΔ log²n) | CD: O(log²n/(ε loglog n)) energy",
        note: "times grow ~linearly in n; energies grow polylog (compare log²n)",
        run: run_table1_randomized,
        gate: None,
    },
    ExperimentSpec {
        name: "table1_dtime",
        title: "Table 1 No-CD row 2 (Theorem 16, D^{1+ε} time)",
        paper: "O(D^{1+ε} log^{O(1/ε)} n) time vs Theorem 11's O(n logΔ log²n); on grids D = 2√n ≪ n",
        note: "Theorem 11's time scales with n, Theorem 16's with D·polylog — the gap widens as the grid grows",
        run: run_table1_dtime,
        gate: None,
    },
    ExperimentSpec {
        name: "table1_bounded",
        title: "Table 1 No-CD row 3 (Corollary 13, Δ = O(1))",
        paper: "O(n log n) time, O(log n) energy on bounded-degree graphs",
        note: "Corollary 13's energy grows like log n and undercuts the generic No-CD pipeline",
        run: run_table1_bounded,
        gate: None,
    },
    ExperimentSpec {
        name: "table1_lower",
        title: "Table 1 lower-bound rows (Theorem 2 reduction on K_{2,k})",
        paper: "energy ≥ T_LE(Δ, f)/2: Ω(log n) in CD, Ω(logΔ log n) in No-CD",
        note: "No-CD election time grows with log k; CD stays near-flat (loglog k); broadcast energy dominates the bound",
        run: run_table1_lower,
        gate: Some(gate_table1_lower),
    },
    ExperimentSpec {
        name: "table1_cdfast",
        title: "Table 1 CD row 2 (Theorem 20)",
        paper: "O(log n (loglogΔ + 1/ξ)/logloglogΔ) energy at O(Δ n^{1+ξ}) time",
        note: "Theorem 20 buys lower energy with (much) more time, per the paper's tradeoff",
        run: run_table1_cdfast,
        gate: None,
    },
    ExperimentSpec {
        name: "table1_det",
        title: "Table 1 deterministic rows (Theorems 25, 27)",
        paper: "LOCAL: O(n log n log N) time, O(log n log N) energy | CD: O(nN² log n log N) time, O(log³N log n) energy",
        note: "both deterministic energies grow polylog; Theorem 27's clock is polynomial (N² factor)",
        run: run_table1_det,
        gate: None,
    },
    ExperimentSpec {
        name: "fig1_path",
        title: "Figure 1 & Theorem 21 (the path algorithm)",
        paper: "worst-case time 2n, expected per-vertex energy O(log n)",
        note: "time stays under 2n at every size; mean energy tracks log n",
        run: run_fig1_path,
        gate: Some(gate_fig1_path),
    },
    ExperimentSpec {
        name: "ablation",
        title: "Ablations (Lemmas 7/8, 14/15, §5 parameters)",
        paper: "decay: O(logΔ log 1/f) receiver energy vs CD transform: O(loglogΔ + log 1/f); Partition(β): edge-cut ≤ 2β, diameter ×3β",
        note: "measured cut fractions sit under 2β; cluster-graph diameters under 3βD",
        run: run_ablation,
        gate: None,
    },
    ExperimentSpec {
        name: "baseline_gap",
        title: "Baseline gap (BGI decay vs Theorem 11)",
        paper: "BGI energy grows Θ(D); Theorem 11's grows polylog",
        note: "doubling n doubles BGI's energy; Theorem 11's is nearly flat (asymptotic claim, large constants)",
        run: run_baseline_gap,
        gate: None,
    },
    ExperimentSpec {
        name: "scenario_matrix",
        title: "Scenario matrix (every algorithm × family × fault × model × n)",
        paper: "Table 1 as a whole: each algorithm's time/energy row holds in exactly its models; incompatible pairs are skipped and counted",
        note: "all_informed is 1.0 on every clean cell; under the fault axis success_rate degrades and energy_overhead_vs_clean exceeds 1 where retries are charged",
        run: crate::scenario::run_scenario_matrix,
        gate: Some(gate_scenario_matrix),
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_names_are_unique_and_kebab_stable() {
        let mut names: Vec<&str> = EXPERIMENTS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names, deduped, "duplicate experiment names");
        for n in names {
            assert!(
                n.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "name {n:?} is not a stable file stem"
            );
        }
    }

    #[test]
    fn find_experiment_exact_and_substring() {
        assert_eq!(
            find_experiment("table1_randomized").unwrap().name,
            "table1_randomized"
        );
        assert_eq!(find_experiment("path").unwrap().name, "fig1_path");
        // Ambiguous substring resolves to nothing.
        assert!(find_experiment("table1").is_none());
        assert!(find_experiment("nonexistent").is_none());
    }

    #[test]
    fn quick_run_emits_schema_stable_json() {
        let config = RunConfig {
            seeds: Some(1),
            quick: true,
            ..RunConfig::default()
        };
        let spec = find_experiment("table1_det").unwrap();
        let result = run_experiment(spec, &config);
        assert!(!result.cases.is_empty());
        let doc = result.to_json().to_string_pretty();
        for key in [
            "\"schema_version\"",
            "\"experiment\"",
            "\"paper_bound\"",
            "\"config\"",
            "\"cases\"",
            "\"params\"",
            "\"summary\"",
            "\"measurements\"",
            "\"energy_max\"",
        ] {
            assert!(doc.contains(key), "missing {key} in:\n{doc}");
        }
    }

    #[test]
    fn deterministic_experiment_reruns_identically() {
        let config = RunConfig {
            seeds: Some(1),
            quick: true,
            ..RunConfig::default()
        };
        let spec = find_experiment("table1_det").unwrap();
        let a = run_experiment(spec, &config).to_json().to_string_pretty();
        let b = run_experiment(spec, &config).to_json().to_string_pretty();
        assert_eq!(a, b);
    }
}
