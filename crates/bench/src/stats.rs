//! Seed-level bootstrap statistics: a deterministic resampler, percentile
//! confidence intervals, and the grouped refit driver the scaling-fit CIs
//! run on.
//!
//! Quick-mode scaling fits regress over ~4 n-points whose per-point means
//! aggregate only a couple of seeds — noisy enough that a fitted exponent
//! (and with it the growth class the regression gate diffs) can drift on
//! an incidental seed change. Instead of hand-tuned tolerance bands,
//! [`crate::analysis`] bootstraps every fit: resample each n-point's
//! per-seed measurements with replacement, recompute the point means,
//! refit the curve, and take percentile CIs over the refitted exponents.
//! The gate then compares *intervals*, not point estimates — a drift only
//! fails when the baseline and fresh CIs exclude each other.
//!
//! Everything here is deterministic: the resampler is a splitmix64 stream
//! seeded from the statistic's identity ([`seed_from_parts`]), so a CI
//! run reproduces bit-for-bit on every machine and every rerun.

use ebc_radio::rng::splitmix64;

/// Bootstrap resamples drawn per fitted statistic.
pub const DEFAULT_RESAMPLES: usize = 200;

/// Two-sided confidence level of [`percentile_ci`] (percentile bounds at
/// `(1 ± CI_LEVEL) / 2`).
pub const CI_LEVEL: f64 = 0.95;

/// Minimum fraction of bootstrap refits that must reproduce the point
/// classification for a fit to be `class_confident`.
pub const CLASS_CONFIDENCE_THRESHOLD: f64 = 0.90;

/// A deterministic splitmix64-driven resampler.
///
/// The stream is a pure function of the constructor seed, so identical
/// inputs produce identical resamples across machines, runs, and thread
/// counts — the property that keeps bootstrap CIs diffable by the
/// baseline gate.
#[derive(Debug, Clone)]
pub struct Resampler {
    state: u64,
}

impl Resampler {
    /// A resampler whose stream is determined entirely by `seed`.
    pub fn new(seed: u64) -> Resampler {
        Resampler { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// A uniform index into `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty sample");
        (self.next_u64() % len as u64) as usize
    }

    /// The mean of a with-replacement resample of `values` (same length
    /// as the input). Empty input yields NaN, mirroring an empty mean.
    pub fn resample_mean(&mut self, values: &[f64]) -> f64 {
        if values.is_empty() {
            return f64::NAN;
        }
        let mut sum = 0.0;
        for _ in 0..values.len() {
            sum += values[self.index(values.len())];
        }
        sum / values.len() as f64
    }
}

/// Folds string parts into a stable 64-bit seed (order- and
/// boundary-sensitive: `["ab", "c"]` and `["a", "bc"]` differ).
///
/// Cell identities — `(algorithm, family, model, metric)` — seed their
/// bootstrap streams through this, so every fitted statistic gets an
/// independent but fully reproducible resampling sequence.
pub fn seed_from_parts(parts: &[&str]) -> u64 {
    let mut h = 0xebc5_7a75_b007_57a9u64;
    for part in parts {
        for &b in part.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        // Per-part separator so part boundaries matter.
        h = splitmix64(h ^ 0x1f);
    }
    h
}

/// The `q`-quantile (`0 ≤ q ≤ 1`) of an ascending-sorted slice, with
/// linear interpolation between adjacent order statistics.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
}

/// The central [`CI_LEVEL`] percentile interval of `samples` (sorted in
/// place). `None` if the sample is empty or contains a non-finite value.
pub fn percentile_ci(samples: &mut [f64]) -> Option<(f64, f64)> {
    if samples.is_empty() || samples.iter().any(|v| !v.is_finite()) {
        return None;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let tail = (1.0 - CI_LEVEL) / 2.0;
    Some((percentile(samples, tail), percentile(samples, 1.0 - tail)))
}

/// Bootstrap percentile CI of `stat` over with-replacement resamples of
/// one flat sample. `None` if `values` is empty or every resample's
/// statistic is non-finite.
pub fn bootstrap_ci(
    values: &[f64],
    resamples: usize,
    seed: u64,
    stat: impl Fn(&[f64]) -> f64,
) -> Option<(f64, f64)> {
    if values.is_empty() {
        return None;
    }
    let mut r = Resampler::new(seed);
    let mut scratch = vec![0.0; values.len()];
    let mut stats: Vec<f64> = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        for slot in scratch.iter_mut() {
            *slot = values[r.index(values.len())];
        }
        let s = stat(&scratch);
        if s.is_finite() {
            stats.push(s);
        }
    }
    percentile_ci(&mut stats)
}

/// The seed-level bootstrap driver: runs `resamples` iterations over
/// `groups` (one per-seed value vector per n-point), handing each
/// iteration's resampled group means to `refit` and collecting its
/// successful outputs.
///
/// Iterations where `refit` returns `None` (a degenerate refit — e.g.
/// every resampled mean non-positive) are dropped; callers should treat a
/// mostly-empty return as "no CI". Groups are resampled independently —
/// this is the *seed-level* bootstrap, which preserves the n axis exactly
/// and only perturbs each point's seed draw.
pub fn bootstrap_refit<T>(
    groups: &[&[f64]],
    resamples: usize,
    seed: u64,
    mut refit: impl FnMut(&[f64]) -> Option<T>,
) -> Vec<T> {
    let mut r = Resampler::new(seed);
    let mut means = vec![0.0; groups.len()];
    let mut out = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        for (slot, group) in means.iter_mut().zip(groups) {
            *slot = r.resample_mean(group);
        }
        if let Some(t) = refit(&means) {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resampler_is_deterministic_and_seed_sensitive() {
        let draw = |seed: u64| -> Vec<u64> {
            let mut r = Resampler::new(seed);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
        // Indices stay in range over many draws.
        let mut r = Resampler::new(42);
        for _ in 0..1000 {
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn seed_from_parts_is_stable_and_boundary_sensitive() {
        let a = seed_from_parts(&["theorem11", "cycle", "cd", "energy_max"]);
        assert_eq!(
            a,
            seed_from_parts(&["theorem11", "cycle", "cd", "energy_max"]),
            "same identity, same stream"
        );
        assert_ne!(a, seed_from_parts(&["theorem11", "cycle", "cd", "time"]));
        assert_ne!(seed_from_parts(&["ab", "c"]), seed_from_parts(&["a", "bc"]));
        assert_ne!(seed_from_parts(&["ab"]), seed_from_parts(&["ab", ""]));
    }

    #[test]
    fn percentile_interpolates_order_statistics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(percentile(&xs, 0.5), 2.5);
        assert!((percentile(&xs, 0.25) - 1.75).abs() < 1e-12);
        // Out-of-range quantiles clamp instead of indexing out of bounds.
        assert_eq!(percentile(&xs, -1.0), 1.0);
        assert_eq!(percentile(&xs, 2.0), 4.0);
        assert_eq!(percentile(&[5.0], 0.5), 5.0);
    }

    #[test]
    fn percentile_ci_sorts_and_rejects_nonfinite() {
        let mut samples = vec![3.0, 1.0, 2.0];
        let (lo, hi) = percentile_ci(&mut samples).unwrap();
        assert!(lo <= hi);
        assert!(lo >= 1.0 && hi <= 3.0);
        assert!(percentile_ci(&mut []).is_none());
        assert!(percentile_ci(&mut [1.0, f64::NAN]).is_none());
    }

    #[test]
    fn bootstrap_ci_of_constant_data_is_zero_width() {
        let (lo, hi) = bootstrap_ci(&[5.0; 6], 100, 1, |xs| {
            xs.iter().sum::<f64>() / xs.len() as f64
        })
        .unwrap();
        assert_eq!((lo, hi), (5.0, 5.0));
        assert!(bootstrap_ci(&[], 100, 1, |_| 0.0).is_none());
    }

    #[test]
    fn bootstrap_ci_of_the_mean_brackets_the_sample_mean() {
        let values: Vec<f64> = (0..40).map(|i| f64::from(i % 7)).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let (lo, hi) = bootstrap_ci(&values, 500, 9, |xs| {
            xs.iter().sum::<f64>() / xs.len() as f64
        })
        .unwrap();
        assert!(lo < mean && mean < hi, "[{lo}, {hi}] vs {mean}");
        assert!(hi - lo < 2.0, "CI implausibly wide: [{lo}, {hi}]");
        // Reproducible: the same seed yields the same interval.
        let again = bootstrap_ci(&values, 500, 9, |xs| {
            xs.iter().sum::<f64>() / xs.len() as f64
        })
        .unwrap();
        assert_eq!((lo, hi), again);
    }

    #[test]
    fn bootstrap_refit_feeds_group_means_and_drops_failures() {
        let g1 = [1.0, 1.0];
        let g2 = [2.0, 4.0];
        let groups: Vec<&[f64]> = vec![&g1, &g2];
        // Refit = difference of the two resampled means; always finite.
        let diffs = bootstrap_refit(&groups, 100, 3, |means| Some(means[1] - means[0]));
        assert_eq!(diffs.len(), 100);
        // Group 1 is constant, so every diff is mean2 − 1 with mean2 in
        // {2, 3, 4}.
        for d in &diffs {
            assert!((1.0..=3.0).contains(d), "{d}");
        }
        // A refit that always fails yields an empty collection.
        let none: Vec<f64> = bootstrap_refit(&groups, 50, 3, |_| None::<f64>);
        assert!(none.is_empty());
        // Empty groups resample to NaN means (caller-visible, not a panic).
        let empty: [&[f64]; 1] = [&[]];
        let nans = bootstrap_refit(&empty, 3, 3, |means| Some(means[0]));
        assert!(nans.iter().all(|v| v.is_nan()));
    }
}
