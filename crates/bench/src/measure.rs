//! The measurement layer: parallel seed sweeps producing typed
//! [`Measurement`]s, aggregated into [`Summary`] statistics.
//!
//! Every experiment case boils down to "run this simulation under `seeds`
//! master seeds and aggregate the metrics". [`sweep_seeds`] runs the seeds
//! in parallel (rayon-style `into_par_iter`, one chunk per core) — the
//! sweeps are embarrassingly parallel because each seed builds its own
//! [`Sim`] over one shared `Arc<Graph>`: the CSR arrays are allocated once
//! per case and never deep-cloned per seed.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ebc_radio::{Graph, Model, Sim};
use rayon::prelude::*;

use crate::cache::{self, CacheStats, CellCache, Lookup};
use crate::json::Json;

/// How an experiment run is configured (from the CLI).
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Master seeds per case; `None` uses each case's default.
    pub seeds: Option<u64>,
    /// Quick mode: smaller sweeps and fewer seeds, for CI smoke runs.
    pub quick: bool,
    /// Scenario-matrix axis filter: only this graph family (display name).
    pub family: Option<String>,
    /// Scenario-matrix axis filter: only this collision model (JSON key,
    /// e.g. `"no-cd"`).
    pub model: Option<String>,
    /// Scenario-matrix axis filter: only this algorithm (registry name).
    pub algo: Option<String>,
    /// Scenario-matrix axis filter: only this fault plan (JSON key, e.g.
    /// `"slot-loss"`; `"none"` selects the clean cells).
    pub fault: Option<String>,
    /// Per-cell wall-clock budget in milliseconds for the scenario
    /// matrix's n-sweeps; `None` uses the mode's default
    /// ([`RunConfig::cell_budget`]). `Some(0)` truncates every cell after
    /// its first size — the deterministic floor.
    pub budget_ms: Option<u64>,
    /// Bootstrap resamples per fitted statistic and report CI; `None`
    /// uses [`crate::stats::DEFAULT_RESAMPLES`].
    pub resamples: Option<usize>,
    /// Where the content-addressed cell cache lives; `None` disables
    /// caching entirely (every cell recomputes). The CLI defaults this to
    /// `.ebc-cache` unless `--no-cache` is given; library callers and
    /// tests default to disabled.
    pub cache_dir: Option<PathBuf>,
    /// Where to write one cell's full telemetry (`--trace-out`): a Chrome
    /// trace-event JSON at this path plus a compact JSONL sibling. The
    /// traced cell is the first scenario-matrix cell passing the axis
    /// filters; `None` disables the diagnostic run.
    pub trace_out: Option<PathBuf>,
}

impl RunConfig {
    /// The floor quick-mode seed scaling never goes below: two seeds when
    /// the experiment has at least two to give, else whatever it has.
    ///
    /// A single seed makes every seed-level bootstrap CI degenerate
    /// (zero-width at the point estimate), which would let the CI-overlap
    /// gate wave through genuinely noisy drifts — so quick mode keeps two
    /// seeds alive wherever full mode has them.
    fn quick_seed_floor(full: u64) -> u64 {
        full.clamp(1, 2)
    }

    /// The seed count to use when a case defaults to `full` seeds (quick
    /// mode halves it, to the [two-seed floor]).
    ///
    /// [two-seed floor]: RunConfig::quick_seed_floor
    pub fn seeds_for(&self, full: u64) -> u64 {
        let base = self.seeds.unwrap_or(full);
        if self.quick && self.seeds.is_none() {
            (base / 2).max(Self::quick_seed_floor(base))
        } else {
            base.max(1)
        }
    }

    /// The seed count for the size-`n` point of a sweep whose smallest
    /// size is `n_base` and whose full-mode default is `full` seeds.
    ///
    /// In quick mode (with no explicit `--seeds` override) the count
    /// halves for every doubling of `n` past `n_base`, down to the
    /// [two-seed floor] — without the halving the largest sizes dominate a
    /// quick sweep's wall-clock (per-run cost itself grows with `n`);
    /// without the floor the bootstrap CIs collapse. Monotone
    /// non-increasing in `n`. Full mode and pinned seed counts are
    /// unaffected.
    ///
    /// [two-seed floor]: RunConfig::quick_seed_floor
    pub fn seeds_for_size(&self, full: u64, n: usize, n_base: usize) -> u64 {
        let mut seeds = self.seeds_for(full);
        if !self.quick || self.seeds.is_some() {
            return seeds;
        }
        let floor = Self::quick_seed_floor(full);
        let mut scale = n_base.max(1);
        // saturating: at the largest sizes `scale` would otherwise
        // overflow `usize` before the seed floor stops the loop.
        while scale.saturating_mul(2) <= n && seeds > floor {
            seeds /= 2;
            scale = scale.saturating_mul(2);
        }
        seeds.max(floor)
    }

    /// The wall-clock budget one scenario-matrix cell (one `(algorithm,
    /// family, model)` combination's whole n-sweep) may spend before its
    /// remaining sizes are truncated. The first size always runs.
    pub fn cell_budget(&self) -> std::time::Duration {
        let ms = self.budget_ms.unwrap_or(if self.quick {
            DEFAULT_QUICK_BUDGET_MS
        } else {
            DEFAULT_FULL_BUDGET_MS
        });
        std::time::Duration::from_millis(ms)
    }

    /// The bootstrap resample count every CI in this run draws
    /// ([`crate::stats::DEFAULT_RESAMPLES`] unless `--resamples` pinned
    /// it). More resamples narrow the Monte-Carlo error of the interval
    /// endpoints at proportional cost; fewer speed up smoke runs.
    pub fn resamples(&self) -> usize {
        self.resamples.unwrap_or(crate::stats::DEFAULT_RESAMPLES)
    }

    /// The per-cell budget for the *headline* cells — the flagship
    /// `(algorithm, family, model)` combinations whose n axis extends to
    /// the paper's million-node scale. Large enough that the default
    /// quick run reaches `n = 10^6` without truncating; an explicit
    /// `--budget-ms` still overrides it like any other cell.
    pub fn headline_cell_budget(&self) -> std::time::Duration {
        let ms = self.budget_ms.unwrap_or(if self.quick {
            DEFAULT_QUICK_HEADLINE_BUDGET_MS
        } else {
            DEFAULT_FULL_HEADLINE_BUDGET_MS
        });
        std::time::Duration::from_millis(ms)
    }
}

/// Default per-cell budget in quick (CI smoke) mode.
pub const DEFAULT_QUICK_BUDGET_MS: u64 = 250;
/// Default per-cell budget in full mode.
pub const DEFAULT_FULL_BUDGET_MS: u64 = 2_000;
/// Default headline-cell budget in quick mode. Sizing rule: a cell runs
/// its next size whenever the budget is not yet exhausted, so this must
/// exceed the headline cells' cumulative cost *below* the top size (the
/// `n = 10^6` point itself may overshoot without being cut).
pub const DEFAULT_QUICK_HEADLINE_BUDGET_MS: u64 = 300_000;
/// Default headline-cell budget in full mode.
pub const DEFAULT_FULL_HEADLINE_BUDGET_MS: u64 = 600_000;
/// A budget large enough to never truncate — used by the baseline gate,
/// where wall-clock-dependent truncation would make the case set
/// machine-dependent.
pub const UNLIMITED_BUDGET_MS: u64 = u64::MAX / 1_000_000;

/// One simulated run: a master seed and the metrics it produced.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The master seed of this run.
    pub seed: u64,
    /// Named metric values, in a fixed per-experiment order.
    pub metrics: Vec<(&'static str, f64)>,
}

impl Measurement {
    /// The value of metric `name`, if recorded.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
    }

    fn to_json(&self) -> Json {
        let mut obj = Json::obj().field("seed", self.seed);
        for (k, v) in &self.metrics {
            obj = obj.field(k, *v);
        }
        obj
    }
}

/// Aggregate statistics of one metric over a case's seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Stats {
    /// Aggregates `values` (empty input yields all-NaN stats).
    ///
    /// A NaN anywhere in the input poisons *every* statistic — `min`/`max`
    /// included. (A plain `f64::min`/`f64::max` fold silently ignores NaN,
    /// so a case with one corrupted measurement used to report a clean
    /// range around a NaN mean.)
    pub fn from_values(values: &[f64]) -> Stats {
        if values.is_empty() || values.iter().any(|v| v.is_nan()) {
            return Stats {
                mean: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                std_dev: f64::NAN,
            };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Stats {
            mean,
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            std_dev: var.sqrt(),
        }
    }

    fn to_json(self) -> Json {
        Json::obj()
            .field("mean", self.mean)
            .field("min", self.min)
            .field("max", self.max)
            .field("std_dev", self.std_dev)
    }
}

/// Per-metric [`Stats`] over all of a case's measurements.
#[derive(Debug, Clone)]
pub struct Summary {
    /// `(metric name, stats)` in the experiment's metric order.
    pub metrics: Vec<(&'static str, Stats)>,
}

impl Summary {
    /// Aggregates a batch of measurements metric-by-metric.
    pub fn from_measurements(measurements: &[Measurement]) -> Summary {
        let mut metrics: Vec<(&'static str, Vec<f64>)> = Vec::new();
        for m in measurements {
            for (k, v) in &m.metrics {
                match metrics.iter_mut().find(|(name, _)| name == k) {
                    Some((_, vals)) => vals.push(*v),
                    None => metrics.push((k, vec![*v])),
                }
            }
        }
        Summary {
            metrics: metrics
                .into_iter()
                .map(|(k, vals)| (k, Stats::from_values(&vals)))
                .collect(),
        }
    }

    /// The stats of metric `name`, if present.
    pub fn metric(&self, name: &str) -> Option<Stats> {
        self.metrics
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, s)| *s)
    }

    fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (k, s) in &self.metrics {
            obj = obj.field(k, s.to_json());
        }
        obj
    }
}

/// One experiment case: a parameter point and its sweep results.
#[derive(Debug, Clone)]
pub struct Case {
    /// The parameter assignment (e.g. `n`, `model`, `algorithm`).
    pub params: Vec<(&'static str, Json)>,
    /// Per-seed measurements, in seed order.
    pub measurements: Vec<Measurement>,
    /// Aggregates over the measurements.
    pub summary: Summary,
}

impl Case {
    /// Builds a case from its parameter point and measurements.
    pub fn new(params: Vec<(&'static str, Json)>, measurements: Vec<Measurement>) -> Case {
        let summary = Summary::from_measurements(&measurements);
        Case {
            params,
            measurements,
            summary,
        }
    }

    /// The per-seed values of metric `name`, in seed order (seeds that
    /// did not record the metric are skipped). The raw sample the
    /// seed-level bootstrap resamples.
    pub fn metric_values(&self, name: &str) -> Vec<f64> {
        self.measurements
            .iter()
            .filter_map(|m| m.metric(name))
            .collect()
    }

    /// Serializes the case (params, summary, then raw measurements).
    pub fn to_json(&self) -> Json {
        let mut params = Json::obj();
        for (k, v) in &self.params {
            params = params.field(k, v.clone());
        }
        Json::obj()
            .field("params", params)
            .field("summary", self.summary.to_json())
            .field(
                "measurements",
                Json::Arr(self.measurements.iter().map(Measurement::to_json).collect()),
            )
    }
}

/// The master seed of sweep index `i` (0-based).
///
/// Seeds start at 1000 rather than 0 so master seeds never collide with
/// the raw indices some algorithms use for internal streams.
pub fn master_seed(i: u64) -> u64 {
    1000 + i
}

/// Runs `f` once per master seed (`master_seed(0..seeds)`), in parallel,
/// collecting in sweep order. Each [`Measurement`] records the master
/// seed it actually ran with, so a run can be reproduced from the JSON.
pub fn sweep_seeds<F>(seeds: u64, f: F) -> Vec<Measurement>
where
    F: Fn(u64) -> Vec<(&'static str, f64)> + Sync,
{
    (0..seeds)
        .into_par_iter()
        .map(|i| {
            let seed = master_seed(i);
            Measurement {
                seed,
                metrics: f(seed),
            }
        })
        .collect()
}

/// The standard broadcast sweep: one [`Sim`] per seed over one shared
/// `Arc<Graph>` (an `Arc::clone` per seed — the CSR arrays are never
/// deep-copied), asserting the run succeeds, reporting the standard metric
/// set (`time`, `energy_max`, `energy_mean`, `energy_p95`, `energy_total`).
pub fn sweep_broadcast<F>(graph: &Arc<Graph>, model: Model, seeds: u64, f: F) -> Vec<Measurement>
where
    F: Fn(&mut Sim) -> bool + Sync,
{
    sweep_seeds(seeds, |seed| {
        let mut sim = Sim::new(Arc::clone(graph), model, seed);
        assert!(f(&mut sim), "broadcast run failed (seed {seed})");
        let r = sim.meter().report();
        standard_metrics(&r)
    })
}

/// The standard broadcast metric set from one run's [`EnergyReport`].
pub fn standard_metrics(r: &ebc_radio::EnergyReport) -> Vec<(&'static str, f64)> {
    vec![
        ("time", r.time as f64),
        ("energy_max", r.max as f64),
        ("energy_mean", r.mean),
        ("energy_p95", r.p95 as f64),
        ("energy_total", r.total as f64),
    ]
}

/// Wall-clock breakdown of one cell the runner served.
#[derive(Debug, Clone)]
pub struct CellProfile {
    /// The cell's parameter point rendered as `k=v` pairs.
    pub label: String,
    /// Graph (or other input) construction attributed to this cell via
    /// [`CaseRunner::note_build`]. Shared builds land on the first cell
    /// that consumes them.
    pub build: Duration,
    /// Sweep execution — zero when the cell was served from the cache.
    pub sim: Duration,
    /// Cache lookup plus store.
    pub cache: Duration,
    /// Whether the cell was a cache hit.
    pub cached: bool,
}

/// Aggregate wall-clock profile of one runner (one experiment run).
#[derive(Debug, Clone, Default)]
pub struct RunnerProfile {
    /// Per-cell breakdowns, in execution order.
    pub cells: Vec<CellProfile>,
    /// Post-sweep analysis time (scaling fits, verdicts) attributed via
    /// [`CaseRunner::note_analysis`].
    pub analysis: Duration,
    /// Build time recorded but not yet consumed by a cell.
    pending_build: Duration,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn label_of(params: &[(&'static str, Json)]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for (k, v) in params {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(k);
        s.push('=');
        match v {
            Json::Str(x) => s.push_str(x),
            Json::Int(i) => {
                let _ = write!(s, "{i}");
            }
            Json::Num(x) => {
                let _ = write!(s, "{x}");
            }
            Json::Bool(b) => {
                let _ = write!(s, "{b}");
            }
            _ => s.push('?'),
        }
    }
    s
}

impl RunnerProfile {
    /// Totals over the per-cell breakdowns, as `(build, sim, cache)`.
    pub fn totals(&self) -> (Duration, Duration, Duration) {
        let mut b = Duration::ZERO;
        let mut s = Duration::ZERO;
        let mut c = Duration::ZERO;
        for cell in &self.cells {
            b += cell.build;
            s += cell.sim;
            c += cell.cache;
        }
        (b, s, c)
    }

    /// Serializes the profile: totals (in milliseconds) plus the per-cell
    /// table, the shape `BENCH_profile.json` aggregates per experiment.
    pub fn to_json(&self) -> Json {
        let (b, s, c) = self.totals();
        let totals = Json::obj()
            .field("build_ms", ms(b))
            .field("sim_ms", ms(s))
            .field("analysis_ms", ms(self.analysis))
            .field("cache_ms", ms(c))
            .field("total_ms", ms(b + s + c + self.analysis));
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|cell| {
                Json::obj()
                    .field("cell", cell.label.as_str())
                    .field("build_ms", ms(cell.build))
                    .field("sim_ms", ms(cell.sim))
                    .field("cache_ms", ms(cell.cache))
                    .field("cached", cell.cached)
            })
            .collect();
        Json::obj()
            .field("totals", totals)
            .field("cells", Json::Arr(cells))
    }
}

/// Executes experiment cells through the content-addressed cache.
///
/// One runner per experiment run. Every case an experiment produces goes
/// through [`CaseRunner::run_case`] (or the broadcast-shaped
/// [`CaseRunner::run_broadcast_case`]): warm cells return the stored
/// result without executing; cold and invalidated cells run their sweep
/// through the rayon pool exactly as before and are written back to the
/// store atomically. With no cache configured the runner degrades to a
/// plain pass-through around [`sweep_seeds`]/[`sweep_broadcast`].
///
/// The runner also keeps a [`RunnerProfile`]: every cell's wall-clock is
/// split into graph build (attributed via [`CaseRunner::note_build`]),
/// sweep execution, and cache lookup/store, with post-sweep analysis time
/// recorded via [`CaseRunner::note_analysis`].
pub struct CaseRunner {
    experiment: &'static str,
    cache: Option<CellCache>,
    /// Hit/miss/invalidation tally over this runner's cells.
    pub stats: CacheStats,
    /// Wall-clock breakdown over this runner's cells.
    pub profile: RunnerProfile,
}

impl CaseRunner {
    /// A runner for `experiment` under `config` — caching iff
    /// `config.cache_dir` is set. An unopenable cache dir degrades to
    /// uncached execution with a warning rather than failing the run.
    pub fn new(experiment: &'static str, config: &RunConfig) -> CaseRunner {
        let cache = config
            .cache_dir
            .as_ref()
            .and_then(|dir| match CellCache::open(dir) {
                Ok(cache) => Some(cache),
                Err(err) => {
                    eprintln!("warning: cell cache disabled: {err}");
                    None
                }
            });
        CaseRunner {
            experiment,
            cache,
            stats: CacheStats::default(),
            profile: RunnerProfile::default(),
        }
    }

    /// A pass-through runner (no cache) — what library callers and tests
    /// use when caching is irrelevant.
    pub fn disabled(experiment: &'static str) -> CaseRunner {
        CaseRunner {
            experiment,
            cache: None,
            stats: CacheStats::default(),
            profile: RunnerProfile::default(),
        }
    }

    /// A runner over a pre-opened store (tests plant their own digests).
    pub fn with_cache(experiment: &'static str, cache: CellCache) -> CaseRunner {
        CaseRunner {
            experiment,
            cache: Some(cache),
            stats: CacheStats::default(),
            profile: RunnerProfile::default(),
        }
    }

    /// Whether a store is attached.
    pub fn caching(&self) -> bool {
        self.cache.is_some()
    }

    /// Records input-construction time (graph builds, dataset loads) to be
    /// attributed to the next cell this runner serves. Shared builds land
    /// on the first consuming cell rather than being double-counted.
    pub fn note_build(&mut self, spent: Duration) {
        self.profile.pending_build += spent;
    }

    /// Records post-sweep analysis time (scaling fits, gate verdicts).
    pub fn note_analysis(&mut self, spent: Duration) {
        self.profile.analysis += spent;
    }

    /// The stats to publish: `Some` iff a store was attached (a
    /// pass-through runner's counters are meaningless downstream).
    pub fn finish(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|_| self.stats)
    }

    /// Runs one cell: returns the cached case if the store holds a fresh
    /// entry for `(params, seeds)` under the current sources, else sweeps
    /// `f` over the seeds and stores the result.
    pub fn run_case<F>(&mut self, params: Vec<(&'static str, Json)>, seeds: u64, f: F) -> Case
    where
        F: Fn(u64) -> Vec<(&'static str, f64)> + Sync,
    {
        self.run_with(params, seeds, |s| sweep_seeds(s, &f))
    }

    /// [`CaseRunner::run_case`] in the shape of [`sweep_broadcast`]: one
    /// `Sim` per seed over a shared graph, standard metrics.
    pub fn run_broadcast_case<F>(
        &mut self,
        params: Vec<(&'static str, Json)>,
        graph: &Arc<Graph>,
        model: Model,
        seeds: u64,
        f: F,
    ) -> Case
    where
        F: Fn(&mut Sim) -> bool + Sync,
    {
        self.run_with(params, seeds, |s| sweep_broadcast(graph, model, s, &f))
    }

    fn run_with<E>(&mut self, params: Vec<(&'static str, Json)>, seeds: u64, execute: E) -> Case
    where
        E: FnOnce(u64) -> Vec<Measurement>,
    {
        let label = label_of(&params);
        let build = std::mem::take(&mut self.profile.pending_build);
        let Some(cache) = &self.cache else {
            self.stats.misses += 1;
            let t_exec = Instant::now();
            let case = Case::new(params, execute(seeds));
            self.profile.cells.push(CellProfile {
                label,
                build,
                sim: t_exec.elapsed(),
                cache: Duration::ZERO,
                cached: false,
            });
            return case;
        };
        let key = cache::case_key(self.experiment, &params, seeds);
        let deps = cache::deps_for(self.experiment, &params);
        let t_cache = Instant::now();
        let looked_up = cache.lookup(&key, &deps);
        let mut cache_spent = t_cache.elapsed();
        match looked_up {
            Lookup::Hit(case) => {
                self.stats.hits += 1;
                self.profile.cells.push(CellProfile {
                    label,
                    build,
                    sim: Duration::ZERO,
                    cache: cache_spent,
                    cached: true,
                });
                return case;
            }
            Lookup::Miss => self.stats.misses += 1,
            Lookup::Invalidated => self.stats.invalidated += 1,
        }
        let t_exec = Instant::now();
        let case = Case::new(params, execute(seeds));
        let sim_spent = t_exec.elapsed();
        let t_store = Instant::now();
        if let Err(err) = cache.store(&key, &deps, &case) {
            eprintln!("warning: cell cache store failed: {err}");
        }
        cache_spent += t_store.elapsed();
        self.profile.cells.push(CellProfile {
            label,
            build,
            sim: sim_spent,
            cache: cache_spent,
            cached: false,
        });
        case
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_attributes_build_sim_and_analysis_per_cell() {
        let mut runner = CaseRunner::disabled("profile_test");
        // Build time recorded before a cell lands on that cell; the next
        // cell, with no build of its own, shows zero.
        runner.note_build(Duration::from_millis(7));
        runner.run_case(vec![("n", 16usize.into())], 1, |seed| {
            vec![("x", seed as f64)]
        });
        runner.run_case(vec![("n", 32usize.into())], 1, |seed| {
            vec![("x", seed as f64)]
        });
        runner.note_analysis(Duration::from_millis(3));

        let cells = &runner.profile.cells;
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].label, "n=16");
        assert_eq!(cells[0].build, Duration::from_millis(7));
        assert_eq!(cells[1].build, Duration::ZERO);
        assert!(!cells[0].cached && !cells[1].cached);
        // No cache attached: lookup/store time is structurally zero.
        assert_eq!(cells[0].cache, Duration::ZERO);
        assert_eq!(runner.profile.analysis, Duration::from_millis(3));

        let (build, _sim, cache) = runner.profile.totals();
        assert_eq!(build, Duration::from_millis(7));
        assert_eq!(cache, Duration::ZERO);

        // The serialized totals carry all four components plus the sum.
        let json = runner.profile.to_json();
        let totals = json.get("totals").unwrap();
        assert_eq!(
            totals.get("build_ms").and_then(Json::as_f64),
            Some(7.0),
            "{json:?}"
        );
        assert_eq!(totals.get("analysis_ms").and_then(Json::as_f64), Some(3.0));
        assert!(totals.get("total_ms").and_then(Json::as_f64).unwrap() >= 10.0);
        assert_eq!(json.get("cells").and_then(Json::as_arr).unwrap().len(), 2);
    }

    #[test]
    fn stats_aggregate_correctly() {
        let s = Stats::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - 1.118).abs() < 1e-3);
    }

    #[test]
    fn stats_of_empty_are_nan() {
        let s = Stats::from_values(&[]);
        assert!(s.mean.is_nan() && s.min.is_nan() && s.max.is_nan());
    }

    #[test]
    fn nan_input_poisons_every_statistic() {
        // One corrupted measurement must not yield a clean-looking range:
        // min/max propagate NaN exactly like mean does.
        let s = Stats::from_values(&[1.0, f64::NAN, 3.0]);
        assert!(s.mean.is_nan());
        assert!(s.min.is_nan(), "min ignored the NaN");
        assert!(s.max.is_nan(), "max ignored the NaN");
        assert!(s.std_dev.is_nan());
        // NaN-free inputs are unaffected.
        let s = Stats::from_values(&[1.0, 3.0]);
        assert_eq!((s.min, s.max), (1.0, 3.0));
    }

    #[test]
    fn sweeps_share_one_graph_allocation_across_seeds() {
        // The Arc<Graph> refactor's contract: every seed's Sim points at
        // the same CSR allocation (sweep_broadcast asserts the closure
        // holds for every seed, so a deep clone would panic here).
        let g = Arc::new(Graph::from_edges(2, &[(0, 1)]).unwrap());
        let shared = Arc::clone(&g);
        let ms = sweep_broadcast(&g, Model::Local, 8, move |sim| {
            Arc::ptr_eq(sim.graph_arc(), &shared)
        });
        assert_eq!(ms.len(), 8);
        // The case-local Arc is the only remaining strong handle afterward.
        assert_eq!(Arc::strong_count(&g), 1);
    }

    #[test]
    fn sweep_seeds_is_deterministic_and_ordered() {
        let f = |seed: u64| vec![("x", seed as f64)];
        let a = sweep_seeds(8, f);
        let b = sweep_seeds(8, f);
        assert_eq!(a.len(), 8);
        for (i, (ma, mb)) in a.iter().zip(&b).enumerate() {
            // The recorded seed IS the master seed the run used.
            assert_eq!(ma.seed, master_seed(i as u64));
            assert_eq!(ma.metric("x"), mb.metric("x"));
            assert_eq!(ma.metric("x"), Some(ma.seed as f64));
        }
    }

    #[test]
    fn summary_groups_metrics_across_seeds() {
        let ms = sweep_seeds(4, |seed| vec![("t", seed as f64), ("e", 2.0)]);
        let summary = Summary::from_measurements(&ms);
        assert_eq!(summary.metrics.len(), 2);
        assert_eq!(summary.metric("e").unwrap().mean, 2.0);
        assert_eq!(summary.metric("t").unwrap().min, 1000.0);
        assert_eq!(summary.metric("t").unwrap().max, 1003.0);
        assert!(summary.metric("missing").is_none());
    }

    #[test]
    fn quick_seeds_scale_down_with_n() {
        let quick = RunConfig {
            quick: true,
            ..RunConfig::default()
        };
        // Base 8 seeds at the smallest size (quick halves 16 → 8), then a
        // halving per doubling of n, down to the two-seed floor.
        assert_eq!(quick.seeds_for_size(16, 64, 64), 8);
        assert_eq!(quick.seeds_for_size(16, 128, 64), 4);
        assert_eq!(quick.seeds_for_size(16, 256, 64), 2);
        assert_eq!(quick.seeds_for_size(16, 512, 64), 2, "floor of two");
        assert_eq!(quick.seeds_for_size(16, 4096, 64), 2, "floor of two");
        // Full mode never scales.
        let full = RunConfig::default();
        assert_eq!(full.seeds_for_size(16, 4096, 64), 16);
        // An explicit --seeds pin is respected exactly at every size.
        let pinned = RunConfig {
            seeds: Some(6),
            quick: true,
            ..RunConfig::default()
        };
        assert_eq!(pinned.seeds_for_size(16, 512, 64), 6);
    }

    #[test]
    fn seeds_for_size_is_monotone_with_a_minimum_floor() {
        // The satellite contract: non-increasing in n, never below the
        // floor (2 where full mode has ≥ 2 seeds, else full's own count),
        // and total-function over degenerate inputs — including the
        // largest representable n, where the doubling scale used to
        // overflow `usize` in debug builds.
        let quick = RunConfig {
            quick: true,
            ..RunConfig::default()
        };
        for full in [0u64, 1, 2, 3, 5, 16] {
            let floor = full.clamp(1, 2);
            let mut prev = u64::MAX;
            for n in [16usize, 32, 64, 128, 256, 1 << 20, usize::MAX] {
                let s = quick.seeds_for_size(full, n, 16);
                assert!(s <= prev, "full={full}: not monotone at n={n}");
                assert!(s >= floor, "full={full}: below floor at n={n}");
                prev = s;
            }
            // The largest full-mode n must agree with the floor once the
            // halving has bottomed out.
            assert_eq!(quick.seeds_for_size(full, usize::MAX, 16), floor);
        }
        // n below n_base, and n_base = 0, never scale or panic.
        assert_eq!(quick.seeds_for_size(16, 8, 16), 8);
        assert_eq!(quick.seeds_for_size(16, 0, 0), 8);
        // A single-seed experiment stays single-seed — the floor never
        // invents seeds full mode doesn't have.
        assert_eq!(quick.seeds_for_size(1, 1 << 20, 16), 1);
    }

    #[test]
    fn metric_values_extract_the_raw_seed_sample() {
        let ms = sweep_seeds(4, |seed| vec![("t", seed as f64)]);
        let case = Case::new(vec![("n", 16usize.into())], ms);
        assert_eq!(
            case.metric_values("t"),
            vec![1000.0, 1001.0, 1002.0, 1003.0]
        );
        assert!(case.metric_values("missing").is_empty());
    }

    #[test]
    fn cell_budgets_default_per_mode_and_honor_overrides() {
        let quick = RunConfig {
            quick: true,
            ..RunConfig::default()
        };
        assert_eq!(
            quick.cell_budget(),
            std::time::Duration::from_millis(DEFAULT_QUICK_BUDGET_MS)
        );
        assert_eq!(
            RunConfig::default().cell_budget(),
            std::time::Duration::from_millis(DEFAULT_FULL_BUDGET_MS)
        );
        let pinned = RunConfig {
            budget_ms: Some(0),
            ..RunConfig::default()
        };
        assert_eq!(pinned.cell_budget(), std::time::Duration::ZERO);
        // Headline cells get their own (larger) defaults, but an explicit
        // --budget-ms override pins them just like any other cell.
        assert_eq!(
            quick.headline_cell_budget(),
            std::time::Duration::from_millis(DEFAULT_QUICK_HEADLINE_BUDGET_MS)
        );
        assert_eq!(
            RunConfig::default().headline_cell_budget(),
            std::time::Duration::from_millis(DEFAULT_FULL_HEADLINE_BUDGET_MS)
        );
        assert_eq!(pinned.headline_cell_budget(), std::time::Duration::ZERO);
    }

    #[test]
    fn quick_mode_halves_default_seeds_only() {
        let quick = RunConfig {
            seeds: None,
            quick: true,
            ..RunConfig::default()
        };
        assert_eq!(quick.seeds_for(10), 5);
        assert_eq!(quick.seeds_for(1), 1);
        // Halving stops at two seeds so bootstrap CIs stay non-degenerate.
        assert_eq!(quick.seeds_for(2), 2);
        assert_eq!(quick.seeds_for(3), 2);
        let pinned = RunConfig {
            seeds: Some(7),
            quick: true,
            ..RunConfig::default()
        };
        assert_eq!(pinned.seeds_for(10), 7);
    }
}
