//! Scaling-law analysis over the scenario matrix's n axis.
//!
//! The paper's headline claims are asymptotic — Θ(log n·log log n /
//! log log log n) energy for randomized CD broadcast, the polylog
//! deterministic bounds of Theorems 25/27, the Θ(D) baseline gap — so raw
//! per-n numbers demonstrate nothing by themselves. This module fits
//! growth curves across the n axis of every `(algorithm, family, model)`
//! cell:
//!
//! * a **power-law** fit `y = C·nᵇ` (least squares on `ln y` vs `ln n`;
//!   the slope `b` is the scaling exponent),
//! * a **polylog** fit `y = C·(ln n)ᵏ` (least squares on `ln y` vs
//!   `ln ln n`),
//!
//! each with its R², plus a classification: whichever model explains the
//! series better names the growth class (`flat` / `polylog` /
//! `polynomial`). Fitted exponents are what the CI baseline gate diffs —
//! a reproduction whose theorem-25 energy exponent drifts from polylog
//! toward polynomial has regressed *asymptotically* even if every
//! absolute number still looks plausible.

use crate::json::Json;
use crate::measure::Case;
use crate::stats;

/// Metrics fitted across the n axis, in presentation order.
pub const FIT_METRICS: [&str; 3] = ["energy_max", "energy_mean", "time"];

/// Minimum finite points for a fit to be attempted at all.
pub const MIN_FIT_POINTS: usize = 3;

/// One fitted line `y ≈ intercept + slope·x` in a transformed space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitLine {
    /// The least-squares slope (the scaling exponent).
    pub slope: f64,
    /// The least-squares intercept (`ln C`).
    pub intercept: f64,
    /// Coefficient of determination in the transformed space; a constant
    /// series fits perfectly (R² = 1) with slope 0.
    pub r2: f64,
}

/// Ordinary least squares of `ys` on `xs`. `None` if fewer than two
/// points, any non-finite coordinate, or a degenerate (constant-x) design.
pub fn least_squares(xs: &[f64], ys: &[f64]) -> Option<FitLine> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    if xs.iter().chain(ys).any(|v| !v.is_finite()) {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    if sxx <= 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (intercept + slope * x);
            e * e
        })
        .sum();
    let r2 = if ss_tot <= 0.0 {
        1.0 // constant y: the horizontal line explains it exactly
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(FitLine {
        slope,
        intercept,
        r2,
    })
}

/// Keeps only points a log-log fit can use: finite coordinates with
/// `x > min_x` and `y > 0`.
fn usable(points: &[(f64, f64)], min_x: f64) -> Vec<(f64, f64)> {
    points
        .iter()
        .copied()
        .filter(|&(x, y)| x.is_finite() && y.is_finite() && x > min_x && y > 0.0)
        .collect()
}

/// Fits `y = C·nᵇ` over `(n, y)` points: least squares of `ln y` on
/// `ln n`. Points with `y ≤ 0` or NaN anywhere are dropped (their log is
/// undefined); `None` if fewer than two usable points remain.
pub fn fit_power_law(points: &[(f64, f64)]) -> Option<FitLine> {
    let pts = usable(points, 0.0);
    let xs: Vec<f64> = pts.iter().map(|(x, _)| x.ln()).collect();
    let ys: Vec<f64> = pts.iter().map(|(_, y)| y.ln()).collect();
    least_squares(&xs, &ys)
}

/// Fits `y = C·(ln n)ᵏ`: least squares of `ln y` on `ln ln n`. Points
/// with `n ≤ 1` additionally drop (their `ln ln` is undefined).
pub fn fit_polylog(points: &[(f64, f64)]) -> Option<FitLine> {
    let pts = usable(points, 1.0);
    let xs: Vec<f64> = pts.iter().map(|(x, _)| x.ln().ln()).collect();
    let ys: Vec<f64> = pts.iter().map(|(_, y)| y.ln()).collect();
    least_squares(&xs, &ys)
}

/// The growth class a fitted series falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrowthClass {
    /// Too few usable points to call ([`MIN_FIT_POINTS`]).
    Insufficient,
    /// Essentially size-independent (|power-law exponent| < 0.15).
    Flat,
    /// The polylog model explains the series at least as well as the
    /// power law — the shape every paper upper bound predicts for energy.
    Polylog,
    /// The power law wins — expected for times (and for the Θ(D)-energy
    /// baselines the paper improves on).
    Polynomial,
}

impl GrowthClass {
    /// The stable JSON name.
    pub fn as_str(self) -> &'static str {
        match self {
            GrowthClass::Insufficient => "insufficient-points",
            GrowthClass::Flat => "flat",
            GrowthClass::Polylog => "polylog",
            GrowthClass::Polynomial => "polynomial",
        }
    }
}

/// Classifies a series from its two fits and usable point count.
pub fn classify(power: Option<&FitLine>, polylog: Option<&FitLine>, points: usize) -> GrowthClass {
    if points < MIN_FIT_POINTS {
        return GrowthClass::Insufficient;
    }
    let Some(pow) = power else {
        return GrowthClass::Insufficient;
    };
    if pow.slope.abs() < 0.15 {
        return GrowthClass::Flat;
    }
    match polylog {
        // The log-log space is exact for power laws and concave for
        // polylogs, so comparing R² separates the two shapes.
        Some(pl) if pl.r2 >= pow.r2 - 1e-9 => GrowthClass::Polylog,
        _ => GrowthClass::Polynomial,
    }
}

/// One metric's fits within a cell.
#[derive(Debug, Clone)]
pub struct MetricFit {
    /// Metric name (`energy_max`, `energy_mean`, `time`).
    pub metric: &'static str,
    /// Usable `(n, mean)` points after dropping non-positive/NaN values.
    pub points: usize,
    /// The power-law fit, if computable.
    pub power: Option<FitLine>,
    /// The polylog fit, if computable.
    pub polylog: Option<FitLine>,
    /// The growth class.
    pub class: GrowthClass,
    /// Seed-level bootstrap percentile CI on the power-law exponent
    /// ([`stats::CI_LEVEL`] two-sided, over the run's resample count —
    /// [`stats::DEFAULT_RESAMPLES`] unless `--resamples` overrode it;
    /// `None` when the point fit itself is unavailable).
    pub exponent_ci: Option<(f64, f64)>,
    /// Fraction of bootstrap refits whose growth class matched [`class`]
    /// (`None` when no resample refit successfully).
    ///
    /// [`class`]: MetricFit::class
    pub class_agreement: Option<f64>,
    /// Whether the classification is stable under seed resampling: enough
    /// usable points *and* class agreement of at least
    /// [`stats::CLASS_CONFIDENCE_THRESHOLD`]. The baseline gate treats a
    /// class flip between two confident fits with disjoint exponent CIs
    /// as a regression; anything softer is only a note.
    pub class_confident: bool,
}

/// Seed-level bootstrap of one metric series: refits the power-law
/// exponent and growth class on each resample of the per-point seed
/// values. Returns the exponent CI and the class-agreement fraction
/// (both `None` when no resample produced a fit).
fn bootstrap_fit(
    ns: &[f64],
    groups: &[&[f64]],
    point_class: GrowthClass,
    seed: u64,
    resamples: usize,
) -> (Option<(f64, f64)>, Option<f64>) {
    let refits = stats::bootstrap_refit(groups, resamples, seed, |means| {
        let series: Vec<(f64, f64)> = ns.iter().copied().zip(means.iter().copied()).collect();
        let points = usable(&series, 1.0).len();
        let power = fit_power_law(&series)?;
        let polylog = fit_polylog(&series);
        let class = classify(Some(&power), polylog.as_ref(), points);
        Some((power.slope, class))
    });
    // A mostly-degenerate bootstrap (most resamples unfittable, e.g. a
    // seed whose metric is ~0 dragging resampled means non-positive) says
    // nothing trustworthy: a CI over the few survivors would be
    // artificially narrow and the agreement denominator tiny. Report no
    // CI instead — the gate then falls back to the tolerance band and the
    // fit is never class-confident.
    if refits.len() * 2 < resamples {
        return (None, None);
    }
    let mut slopes: Vec<f64> = refits.iter().map(|(s, _)| *s).collect();
    let ci = stats::percentile_ci(&mut slopes);
    let agreement =
        refits.iter().filter(|(_, c)| *c == point_class).count() as f64 / refits.len() as f64;
    (ci, Some(agreement))
}

/// Scaling fits of one `(algorithm, family, model)` cell across its n axis.
#[derive(Debug, Clone)]
pub struct CellFit {
    /// Algorithm registry name.
    pub algorithm: String,
    /// Graph family display name.
    pub family: String,
    /// Collision model JSON key.
    pub model: String,
    /// The n values the cell ran at, ascending.
    pub sizes: Vec<f64>,
    /// Whether the cell's n-sweep was cut short by the wall-clock budget
    /// (fewer sizes than the matrix planned).
    pub truncated: bool,
    /// Per-metric fits, in [`FIT_METRICS`] order.
    pub metrics: Vec<MetricFit>,
}

fn param_str(case: &Case, key: &str) -> Option<String> {
    case.params
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Json::Str(s) => Some(s.clone()),
            _ => None,
        })
}

fn param_f64(case: &Case, key: &str) -> Option<f64> {
    case.params
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| v.as_f64())
}

fn param_bool(case: &Case, key: &str) -> bool {
    matches!(
        case.params.iter().find(|(k, _)| *k == key),
        Some((_, Json::Bool(true)))
    )
}

/// Groups scenario-matrix cases into `(algorithm, family, model)` cells
/// and fits every [`FIT_METRICS`] series across each cell's n axis,
/// bootstrapping a CI on every fitted exponent (`resamples` draws) from
/// the per-seed measurements ([`stats`]).
///
/// Cases missing any of the three identity params are skipped, and so
/// are fault-injected cases (a `fault` param other than `"none"`): the
/// scaling fits describe the paper's clean-channel bounds, and a faulted
/// rerun of the same `(algorithm, family, model, n)` point would
/// otherwise corrupt the clean series. Cells keep first-appearance
/// order, sizes sort ascending within a cell. A cell is `truncated` if
/// any of its cases carries the `truncated: true` param.
pub fn scaling_fits(cases: &[Case], resamples: usize) -> Vec<CellFit> {
    struct Row {
        n: f64,
        // Per-metric mean and per-metric per-seed values.
        means: Vec<f64>,
        values: Vec<Vec<f64>>,
    }
    struct CellAcc {
        algorithm: String,
        family: String,
        model: String,
        truncated: bool,
        // One row per n, later sorted by n.
        rows: Vec<Row>,
    }
    let mut cells: Vec<CellAcc> = Vec::new();
    for case in cases {
        let (Some(algorithm), Some(family), Some(model), Some(n)) = (
            param_str(case, "algorithm"),
            param_str(case, "family"),
            param_str(case, "model"),
            param_f64(case, "n"),
        ) else {
            continue;
        };
        if param_str(case, "fault").is_some_and(|f| f != "none") {
            continue;
        }
        let means: Vec<f64> = FIT_METRICS
            .iter()
            .map(|m| case.summary.metric(m).map_or(f64::NAN, |s| s.mean))
            .collect();
        let values: Vec<Vec<f64>> = FIT_METRICS.iter().map(|m| case.metric_values(m)).collect();
        let truncated = param_bool(case, "truncated");
        let row = Row { n, means, values };
        match cells
            .iter_mut()
            .find(|c| c.algorithm == algorithm && c.family == family && c.model == model)
        {
            Some(cell) => {
                cell.rows.push(row);
                cell.truncated |= truncated;
            }
            None => cells.push(CellAcc {
                algorithm,
                family,
                model,
                truncated,
                rows: vec![row],
            }),
        }
    }
    cells
        .into_iter()
        .map(|mut cell| {
            cell.rows
                .sort_by(|a, b| a.n.partial_cmp(&b.n).expect("finite n"));
            let ns: Vec<f64> = cell.rows.iter().map(|r| r.n).collect();
            let metrics = FIT_METRICS
                .iter()
                .enumerate()
                .map(|(mi, &metric)| {
                    let series: Vec<(f64, f64)> =
                        cell.rows.iter().map(|r| (r.n, r.means[mi])).collect();
                    let points = usable(&series, 1.0).len();
                    let power = fit_power_law(&series);
                    let polylog = fit_polylog(&series);
                    let class = classify(power.as_ref(), polylog.as_ref(), points);
                    // Bootstrap only where a point fit exists; the stream
                    // is seeded from the cell identity so CI runs
                    // reproduce bit-for-bit.
                    let (exponent_ci, class_agreement) = if power.is_some() {
                        let groups: Vec<&[f64]> =
                            cell.rows.iter().map(|r| r.values[mi].as_slice()).collect();
                        let seed = stats::seed_from_parts(&[
                            &cell.algorithm,
                            &cell.family,
                            &cell.model,
                            metric,
                        ]);
                        bootstrap_fit(&ns, &groups, class, seed, resamples)
                    } else {
                        (None, None)
                    };
                    let class_confident = points >= MIN_FIT_POINTS
                        && class_agreement.is_some_and(|a| a >= stats::CLASS_CONFIDENCE_THRESHOLD);
                    MetricFit {
                        metric,
                        points,
                        power,
                        polylog,
                        class,
                        exponent_ci,
                        class_agreement,
                        class_confident,
                    }
                })
                .collect();
            CellFit {
                algorithm: cell.algorithm,
                family: cell.family,
                model: cell.model,
                sizes: ns,
                truncated: cell.truncated,
                metrics,
            }
        })
        .collect()
}

/// Serializes a CI as a two-element `[lo, hi]` array (or `null`).
pub fn ci_json(ci: Option<(f64, f64)>) -> Json {
    match ci {
        Some((lo, hi)) => Json::Arr(vec![Json::Num(lo), Json::Num(hi)]),
        None => Json::Null,
    }
}

/// Parses a `[lo, hi]` CI array back (inverse of [`ci_json`]).
pub fn ci_from_json(v: Option<&Json>) -> Option<(f64, f64)> {
    match v?.as_arr()? {
        [lo, hi] => Some((lo.as_f64()?, hi.as_f64()?)),
        _ => None,
    }
}

fn fit_json(fit: Option<&FitLine>, prefix: &str) -> Vec<(String, Json)> {
    match fit {
        Some(f) => vec![
            (format!("{prefix}exponent"), Json::Num(f.slope)),
            (format!("{prefix}r2"), Json::Num(f.r2)),
        ],
        None => vec![
            (format!("{prefix}exponent"), Json::Null),
            (format!("{prefix}r2"), Json::Null),
        ],
    }
}

impl CellFit {
    /// Serializes the cell fit (stable field order; the baseline gate
    /// parses this back).
    pub fn to_json(&self) -> Json {
        let mut metrics = Json::obj();
        for m in &self.metrics {
            let mut obj = Json::obj()
                .field("points", m.points)
                .field("class", m.class.as_str());
            for (k, v) in fit_json(m.power.as_ref(), "") {
                obj = obj.field(&k, v);
            }
            obj = obj
                .field("exponent_ci", ci_json(m.exponent_ci))
                .field(
                    "class_agreement",
                    m.class_agreement.map_or(Json::Null, Json::Num),
                )
                .field("class_confident", m.class_confident);
            for (k, v) in fit_json(m.polylog.as_ref(), "polylog_") {
                obj = obj.field(&k, v);
            }
            metrics = metrics.field(m.metric, obj);
        }
        Json::obj()
            .field("algorithm", self.algorithm.as_str())
            .field("family", self.family.as_str())
            .field("model", self.model.as_str())
            .field(
                "sizes",
                Json::Arr(self.sizes.iter().map(|&n| Json::Num(n)).collect()),
            )
            .field("truncated", self.truncated)
            .field("metrics", metrics)
    }
}

/// Serializes a batch of cell fits as the `fits` array.
pub fn fits_to_json(fits: &[CellFit]) -> Json {
    Json::Arr(fits.iter().map(CellFit::to_json).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Measurement;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn power_law_recovers_exactly() {
        // y = 3·n^1.5 — the log-log fit must be exact.
        let pts: Vec<(f64, f64)> = [16.0f64, 32.0, 64.0, 128.0, 256.0]
            .iter()
            .map(|&n| (n, 3.0 * n.powf(1.5)))
            .collect();
        let fit = fit_power_law(&pts).unwrap();
        close(fit.slope, 1.5);
        close(fit.intercept, 3.0f64.ln());
        close(fit.r2, 1.0);
        let class = classify(Some(&fit), fit_polylog(&pts).as_ref(), pts.len());
        assert_eq!(class, GrowthClass::Polynomial);
    }

    #[test]
    fn polylog_recovers_exactly_and_classifies_polylog() {
        // y = (ln n)^2.
        let pts: Vec<(f64, f64)> = [16.0f64, 32.0, 64.0, 128.0, 256.0]
            .iter()
            .map(|&n| (n, n.ln().powi(2)))
            .collect();
        let pl = fit_polylog(&pts).unwrap();
        close(pl.slope, 2.0);
        close(pl.r2, 1.0);
        let pow = fit_power_law(&pts).unwrap();
        assert!(pow.r2 < 1.0, "log-log of a polylog is concave");
        assert_eq!(
            classify(Some(&pow), Some(&pl), pts.len()),
            GrowthClass::Polylog
        );
    }

    #[test]
    fn constant_series_is_flat() {
        let pts: Vec<(f64, f64)> = vec![(16.0, 5.0), (32.0, 5.0), (64.0, 5.0)];
        let pow = fit_power_law(&pts).unwrap();
        close(pow.slope, 0.0);
        close(pow.r2, 1.0);
        assert_eq!(
            classify(Some(&pow), fit_polylog(&pts).as_ref(), 3),
            GrowthClass::Flat
        );
    }

    #[test]
    fn nan_and_zero_points_are_dropped_not_poisonous() {
        let pts = vec![
            (16.0, 2.0),
            (32.0, f64::NAN),
            (64.0, 0.0),
            (128.0, 16.0),
            (256.0, 32.0),
        ];
        // Three usable points survive; the fit uses exactly those.
        let clean = vec![(16.0, 2.0), (128.0, 16.0), (256.0, 32.0)];
        assert_eq!(fit_power_law(&pts), fit_power_law(&clean));
        assert_eq!(usable(&pts, 1.0).len(), 3);
        // All-unusable series fit nothing and classify insufficient.
        let dead = vec![(16.0, 0.0), (32.0, f64::NAN)];
        assert!(fit_power_law(&dead).is_none());
        assert_eq!(classify(None, None, 0), GrowthClass::Insufficient);
    }

    #[test]
    fn too_few_points_are_insufficient() {
        let pts = vec![(16.0, 2.0), (32.0, 4.0)];
        let pow = fit_power_law(&pts);
        assert!(pow.is_some(), "two points still define a line");
        assert_eq!(
            classify(pow.as_ref(), fit_polylog(&pts).as_ref(), 2),
            GrowthClass::Insufficient
        );
    }

    fn case(algorithm: &str, family: &str, model: &str, n: usize, energy: f64) -> Case {
        Case::new(
            vec![
                ("family", family.into()),
                ("n", n.into()),
                ("model", model.into()),
                ("algorithm", algorithm.into()),
            ],
            vec![Measurement {
                seed: 1000,
                metrics: vec![
                    ("energy_max", energy),
                    ("energy_mean", energy / 2.0),
                    ("time", n as f64 * 10.0),
                ],
            }],
        )
    }

    #[test]
    fn scaling_fits_group_cells_and_sort_sizes() {
        let mut cases = Vec::new();
        for &n in &[64usize, 16, 32, 128] {
            cases.push(case("alg_a", "cycle", "cd", n, (n as f64).powf(2.0)));
        }
        cases.push(case("alg_b", "cycle", "cd", 16, 1.0));
        let fits = scaling_fits(&cases, stats::DEFAULT_RESAMPLES);
        assert_eq!(fits.len(), 2);
        let a = &fits[0];
        assert_eq!(
            (a.algorithm.as_str(), a.family.as_str(), a.model.as_str()),
            ("alg_a", "cycle", "cd")
        );
        assert_eq!(a.sizes, vec![16.0, 32.0, 64.0, 128.0], "sizes sorted");
        assert!(!a.truncated);
        let emax = &a.metrics[0];
        assert_eq!(emax.metric, "energy_max");
        assert_eq!(emax.points, 4);
        close(emax.power.unwrap().slope, 2.0);
        assert_eq!(emax.class, GrowthClass::Polynomial);
        let time = a.metrics.iter().find(|m| m.metric == "time").unwrap();
        close(time.power.unwrap().slope, 1.0);
        // The single-point cell is insufficient everywhere.
        let b = &fits[1];
        assert!(b
            .metrics
            .iter()
            .all(|m| m.class == GrowthClass::Insufficient));
    }

    #[test]
    fn truncated_param_marks_the_whole_cell() {
        let mut c1 = case("alg_a", "path", "local", 16, 4.0);
        c1.params.push(("truncated", Json::Bool(true)));
        let c2 = case("alg_a", "path", "local", 32, 8.0);
        let fits = scaling_fits(&[c1, c2], stats::DEFAULT_RESAMPLES);
        assert_eq!(fits.len(), 1);
        assert!(fits[0].truncated);
    }

    #[test]
    fn cell_fit_json_round_trips() {
        let cases: Vec<Case> = [16usize, 32, 64, 128]
            .iter()
            .map(|&n| case("alg_a", "cycle", "cd", n, (n as f64).ln().powi(2)))
            .collect();
        let fits = scaling_fits(&cases, stats::DEFAULT_RESAMPLES);
        let doc = fits_to_json(&fits);
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(parsed, doc);
        let cell = &parsed.as_arr().unwrap()[0];
        assert_eq!(cell.get("truncated"), Some(&Json::Bool(false)));
        let emax = cell.get("metrics").unwrap().get("energy_max").unwrap();
        assert_eq!(emax.get("class").unwrap().as_str(), Some("polylog"));
        assert!(emax.get("exponent").unwrap().as_f64().is_some());
        // Every fitted metric carries its bootstrap fields.
        for metric in FIT_METRICS {
            let m = cell.get("metrics").unwrap().get(metric).unwrap();
            assert!(
                ci_from_json(m.get("exponent_ci")).is_some(),
                "{metric} missing exponent_ci: {m:?}"
            );
            assert!(matches!(m.get("class_confident"), Some(Json::Bool(_))));
            assert!(m.get("class_agreement").unwrap().as_f64().is_some());
        }
    }

    #[test]
    fn ci_json_round_trips_and_rejects_malformed() {
        assert_eq!(
            ci_from_json(Some(&ci_json(Some((0.5, 1.5))))),
            Some((0.5, 1.5))
        );
        assert_eq!(ci_json(None), Json::Null);
        assert!(ci_from_json(Some(&Json::Null)).is_none());
        assert!(ci_from_json(None).is_none());
        assert!(ci_from_json(Some(&Json::Arr(vec![Json::Num(1.0)]))).is_none());
    }

    /// A cell whose per-point values carry seed noise around `y = n^b`.
    fn noisy_cases(b: f64, seeds: usize) -> Vec<Case> {
        [16usize, 32, 64, 128, 256]
            .iter()
            .map(|&n| {
                let measurements = (0..seeds)
                    .map(|s| {
                        // Deterministic ±10% multiplicative "seed noise".
                        let noise = 1.0 + 0.1 * f64::from((s as i32 % 3) - 1);
                        Measurement {
                            seed: 1000 + s as u64,
                            metrics: vec![
                                ("energy_max", (n as f64).powf(b) * noise),
                                ("energy_mean", (n as f64).powf(b) * noise / 2.0),
                                ("time", n as f64 * 10.0 * noise),
                            ],
                        }
                    })
                    .collect();
                Case::new(
                    vec![
                        ("family", "cycle".into()),
                        ("n", n.into()),
                        ("model", "cd".into()),
                        ("algorithm", "alg_a".into()),
                    ],
                    measurements,
                )
            })
            .collect()
    }

    #[test]
    fn bootstrap_ci_brackets_the_true_exponent_and_is_reproducible() {
        let fits = scaling_fits(&noisy_cases(1.5, 6), stats::DEFAULT_RESAMPLES);
        let emax = &fits[0].metrics[0];
        let (lo, hi) = emax.exponent_ci.expect("CI for a fitted series");
        assert!(lo <= hi);
        assert!(
            lo < 1.5 && 1.5 < hi,
            "CI [{lo}, {hi}] should bracket the true exponent 1.5"
        );
        assert!(hi - lo < 0.5, "CI implausibly wide for ±10% noise");
        // Polynomial growth at b = 1.5 is stable under seed resampling.
        assert_eq!(emax.class, GrowthClass::Polynomial);
        assert!(emax.class_confident, "agreement {:?}", emax.class_agreement);
        // Same inputs, same CI — the resampler is identity-seeded.
        let again = scaling_fits(&noisy_cases(1.5, 6), stats::DEFAULT_RESAMPLES);
        assert_eq!(again[0].metrics[0].exponent_ci, Some((lo, hi)));
    }

    #[test]
    fn single_seed_cells_get_degenerate_but_present_cis() {
        // One seed per point: every resample is identical, so the CI is
        // zero-width at the point estimate and the class trivially agrees.
        let cases: Vec<Case> = [16usize, 32, 64, 128]
            .iter()
            .map(|&n| case("alg_a", "cycle", "cd", n, (n as f64).powf(2.0)))
            .collect();
        let fits = scaling_fits(&cases, stats::DEFAULT_RESAMPLES);
        let emax = &fits[0].metrics[0];
        let (lo, hi) = emax.exponent_ci.unwrap();
        assert!((lo - hi).abs() < 1e-12, "[{lo}, {hi}]");
        assert!((lo - emax.power.unwrap().slope).abs() < 1e-9);
        assert_eq!(emax.class_agreement, Some(1.0));
    }

    #[test]
    fn mostly_degenerate_bootstrap_reports_no_ci() {
        // One point never usable (all values non-positive), one always,
        // one usable only ~25% of the time: ~75% of refits end with a
        // single usable point and fail. The survivors are too few to
        // trust — the guard must suppress the CI instead of reporting an
        // artificially narrow interval over a handful of refits.
        let g1: &[f64] = &[-1.0, -1.0];
        let g2: &[f64] = &[2.0, 2.0];
        let g3: &[f64] = &[1.0, -2.0];
        let (ci, agreement) = bootstrap_fit(
            &[16.0, 32.0, 64.0],
            &[g1, g2, g3],
            GrowthClass::Insufficient,
            7,
            stats::DEFAULT_RESAMPLES,
        );
        assert_eq!(ci, None, "mostly-failed bootstrap must not yield a CI");
        assert_eq!(agreement, None);
        // A healthy series keeps its CI.
        let h1: &[f64] = &[2.0, 2.0];
        let h2: &[f64] = &[4.0, 4.0];
        let h3: &[f64] = &[8.0, 8.0];
        let (ci, agreement) = bootstrap_fit(
            &[16.0, 32.0, 64.0],
            &[h1, h2, h3],
            GrowthClass::Polynomial,
            7,
            stats::DEFAULT_RESAMPLES,
        );
        assert!(ci.is_some());
        assert!(agreement.is_some());
    }

    #[test]
    fn unfittable_series_have_no_ci_and_no_confidence() {
        // A single-point cell fits nothing: no CI, not confident.
        let fits = scaling_fits(
            &[case("alg_b", "cycle", "cd", 16, 1.0)],
            stats::DEFAULT_RESAMPLES,
        );
        let emax = &fits[0].metrics[0];
        assert!(emax.power.is_none());
        assert!(emax.exponent_ci.is_none());
        assert!(emax.class_agreement.is_none());
        assert!(!emax.class_confident);
    }
}
