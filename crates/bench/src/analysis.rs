//! Scaling-law analysis over the scenario matrix's n axis.
//!
//! The paper's headline claims are asymptotic — Θ(log n·log log n /
//! log log log n) energy for randomized CD broadcast, the polylog
//! deterministic bounds of Theorems 25/27, the Θ(D) baseline gap — so raw
//! per-n numbers demonstrate nothing by themselves. This module fits
//! growth curves across the n axis of every `(algorithm, family, model)`
//! cell:
//!
//! * a **power-law** fit `y = C·nᵇ` (least squares on `ln y` vs `ln n`;
//!   the slope `b` is the scaling exponent),
//! * a **polylog** fit `y = C·(ln n)ᵏ` (least squares on `ln y` vs
//!   `ln ln n`),
//!
//! each with its R², plus a classification: whichever model explains the
//! series better names the growth class (`flat` / `polylog` /
//! `polynomial`). Fitted exponents are what the CI baseline gate diffs —
//! a reproduction whose theorem-25 energy exponent drifts from polylog
//! toward polynomial has regressed *asymptotically* even if every
//! absolute number still looks plausible.

use crate::json::Json;
use crate::measure::Case;

/// Metrics fitted across the n axis, in presentation order.
pub const FIT_METRICS: [&str; 3] = ["energy_max", "energy_mean", "time"];

/// Minimum finite points for a fit to be attempted at all.
pub const MIN_FIT_POINTS: usize = 3;

/// One fitted line `y ≈ intercept + slope·x` in a transformed space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitLine {
    /// The least-squares slope (the scaling exponent).
    pub slope: f64,
    /// The least-squares intercept (`ln C`).
    pub intercept: f64,
    /// Coefficient of determination in the transformed space; a constant
    /// series fits perfectly (R² = 1) with slope 0.
    pub r2: f64,
}

/// Ordinary least squares of `ys` on `xs`. `None` if fewer than two
/// points, any non-finite coordinate, or a degenerate (constant-x) design.
pub fn least_squares(xs: &[f64], ys: &[f64]) -> Option<FitLine> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    if xs.iter().chain(ys).any(|v| !v.is_finite()) {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    if sxx <= 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (intercept + slope * x);
            e * e
        })
        .sum();
    let r2 = if ss_tot <= 0.0 {
        1.0 // constant y: the horizontal line explains it exactly
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(FitLine {
        slope,
        intercept,
        r2,
    })
}

/// Keeps only points a log-log fit can use: finite coordinates with
/// `x > min_x` and `y > 0`.
fn usable(points: &[(f64, f64)], min_x: f64) -> Vec<(f64, f64)> {
    points
        .iter()
        .copied()
        .filter(|&(x, y)| x.is_finite() && y.is_finite() && x > min_x && y > 0.0)
        .collect()
}

/// Fits `y = C·nᵇ` over `(n, y)` points: least squares of `ln y` on
/// `ln n`. Points with `y ≤ 0` or NaN anywhere are dropped (their log is
/// undefined); `None` if fewer than two usable points remain.
pub fn fit_power_law(points: &[(f64, f64)]) -> Option<FitLine> {
    let pts = usable(points, 0.0);
    let xs: Vec<f64> = pts.iter().map(|(x, _)| x.ln()).collect();
    let ys: Vec<f64> = pts.iter().map(|(_, y)| y.ln()).collect();
    least_squares(&xs, &ys)
}

/// Fits `y = C·(ln n)ᵏ`: least squares of `ln y` on `ln ln n`. Points
/// with `n ≤ 1` additionally drop (their `ln ln` is undefined).
pub fn fit_polylog(points: &[(f64, f64)]) -> Option<FitLine> {
    let pts = usable(points, 1.0);
    let xs: Vec<f64> = pts.iter().map(|(x, _)| x.ln().ln()).collect();
    let ys: Vec<f64> = pts.iter().map(|(_, y)| y.ln()).collect();
    least_squares(&xs, &ys)
}

/// The growth class a fitted series falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrowthClass {
    /// Too few usable points to call ([`MIN_FIT_POINTS`]).
    Insufficient,
    /// Essentially size-independent (|power-law exponent| < 0.15).
    Flat,
    /// The polylog model explains the series at least as well as the
    /// power law — the shape every paper upper bound predicts for energy.
    Polylog,
    /// The power law wins — expected for times (and for the Θ(D)-energy
    /// baselines the paper improves on).
    Polynomial,
}

impl GrowthClass {
    /// The stable JSON name.
    pub fn as_str(self) -> &'static str {
        match self {
            GrowthClass::Insufficient => "insufficient-points",
            GrowthClass::Flat => "flat",
            GrowthClass::Polylog => "polylog",
            GrowthClass::Polynomial => "polynomial",
        }
    }
}

/// Classifies a series from its two fits and usable point count.
pub fn classify(power: Option<&FitLine>, polylog: Option<&FitLine>, points: usize) -> GrowthClass {
    if points < MIN_FIT_POINTS {
        return GrowthClass::Insufficient;
    }
    let Some(pow) = power else {
        return GrowthClass::Insufficient;
    };
    if pow.slope.abs() < 0.15 {
        return GrowthClass::Flat;
    }
    match polylog {
        // The log-log space is exact for power laws and concave for
        // polylogs, so comparing R² separates the two shapes.
        Some(pl) if pl.r2 >= pow.r2 - 1e-9 => GrowthClass::Polylog,
        _ => GrowthClass::Polynomial,
    }
}

/// One metric's fits within a cell.
#[derive(Debug, Clone)]
pub struct MetricFit {
    /// Metric name (`energy_max`, `energy_mean`, `time`).
    pub metric: &'static str,
    /// Usable `(n, mean)` points after dropping non-positive/NaN values.
    pub points: usize,
    /// The power-law fit, if computable.
    pub power: Option<FitLine>,
    /// The polylog fit, if computable.
    pub polylog: Option<FitLine>,
    /// The growth class.
    pub class: GrowthClass,
}

/// Scaling fits of one `(algorithm, family, model)` cell across its n axis.
#[derive(Debug, Clone)]
pub struct CellFit {
    /// Algorithm registry name.
    pub algorithm: String,
    /// Graph family display name.
    pub family: String,
    /// Collision model JSON key.
    pub model: String,
    /// The n values the cell ran at, ascending.
    pub sizes: Vec<f64>,
    /// Whether the cell's n-sweep was cut short by the wall-clock budget
    /// (fewer sizes than the matrix planned).
    pub truncated: bool,
    /// Per-metric fits, in [`FIT_METRICS`] order.
    pub metrics: Vec<MetricFit>,
}

fn param_str(case: &Case, key: &str) -> Option<String> {
    case.params
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Json::Str(s) => Some(s.clone()),
            _ => None,
        })
}

fn param_f64(case: &Case, key: &str) -> Option<f64> {
    case.params
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| v.as_f64())
}

fn param_bool(case: &Case, key: &str) -> bool {
    matches!(
        case.params.iter().find(|(k, _)| *k == key),
        Some((_, Json::Bool(true)))
    )
}

/// Groups scenario-matrix cases into `(algorithm, family, model)` cells
/// and fits every [`FIT_METRICS`] series across each cell's n axis.
///
/// Cases missing any of the three identity params are skipped; cells keep
/// first-appearance order, sizes sort ascending within a cell. A cell is
/// `truncated` if any of its cases carries the `truncated: true` param.
pub fn scaling_fits(cases: &[Case]) -> Vec<CellFit> {
    struct CellAcc {
        algorithm: String,
        family: String,
        model: String,
        truncated: bool,
        // (n, per-metric mean) rows, later sorted by n.
        rows: Vec<(f64, Vec<f64>)>,
    }
    let mut cells: Vec<CellAcc> = Vec::new();
    for case in cases {
        let (Some(algorithm), Some(family), Some(model), Some(n)) = (
            param_str(case, "algorithm"),
            param_str(case, "family"),
            param_str(case, "model"),
            param_f64(case, "n"),
        ) else {
            continue;
        };
        let means: Vec<f64> = FIT_METRICS
            .iter()
            .map(|m| case.summary.metric(m).map_or(f64::NAN, |s| s.mean))
            .collect();
        let truncated = param_bool(case, "truncated");
        match cells
            .iter_mut()
            .find(|c| c.algorithm == algorithm && c.family == family && c.model == model)
        {
            Some(cell) => {
                cell.rows.push((n, means));
                cell.truncated |= truncated;
            }
            None => cells.push(CellAcc {
                algorithm,
                family,
                model,
                truncated,
                rows: vec![(n, means)],
            }),
        }
    }
    cells
        .into_iter()
        .map(|mut cell| {
            cell.rows
                .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite n"));
            let metrics = FIT_METRICS
                .iter()
                .enumerate()
                .map(|(mi, &metric)| {
                    let series: Vec<(f64, f64)> =
                        cell.rows.iter().map(|(n, ms)| (*n, ms[mi])).collect();
                    let points = usable(&series, 1.0).len();
                    let power = fit_power_law(&series);
                    let polylog = fit_polylog(&series);
                    let class = classify(power.as_ref(), polylog.as_ref(), points);
                    MetricFit {
                        metric,
                        points,
                        power,
                        polylog,
                        class,
                    }
                })
                .collect();
            CellFit {
                algorithm: cell.algorithm,
                family: cell.family,
                model: cell.model,
                sizes: cell.rows.iter().map(|(n, _)| *n).collect(),
                truncated: cell.truncated,
                metrics,
            }
        })
        .collect()
}

fn fit_json(fit: Option<&FitLine>, prefix: &str) -> Vec<(String, Json)> {
    match fit {
        Some(f) => vec![
            (format!("{prefix}exponent"), Json::Num(f.slope)),
            (format!("{prefix}r2"), Json::Num(f.r2)),
        ],
        None => vec![
            (format!("{prefix}exponent"), Json::Null),
            (format!("{prefix}r2"), Json::Null),
        ],
    }
}

impl CellFit {
    /// Serializes the cell fit (stable field order; the baseline gate
    /// parses this back).
    pub fn to_json(&self) -> Json {
        let mut metrics = Json::obj();
        for m in &self.metrics {
            let mut obj = Json::obj()
                .field("points", m.points)
                .field("class", m.class.as_str());
            for (k, v) in fit_json(m.power.as_ref(), "") {
                obj = obj.field(&k, v);
            }
            for (k, v) in fit_json(m.polylog.as_ref(), "polylog_") {
                obj = obj.field(&k, v);
            }
            metrics = metrics.field(m.metric, obj);
        }
        Json::obj()
            .field("algorithm", self.algorithm.as_str())
            .field("family", self.family.as_str())
            .field("model", self.model.as_str())
            .field(
                "sizes",
                Json::Arr(self.sizes.iter().map(|&n| Json::Num(n)).collect()),
            )
            .field("truncated", self.truncated)
            .field("metrics", metrics)
    }
}

/// Serializes a batch of cell fits as the `fits` array.
pub fn fits_to_json(fits: &[CellFit]) -> Json {
    Json::Arr(fits.iter().map(CellFit::to_json).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Measurement;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn power_law_recovers_exactly() {
        // y = 3·n^1.5 — the log-log fit must be exact.
        let pts: Vec<(f64, f64)> = [16.0f64, 32.0, 64.0, 128.0, 256.0]
            .iter()
            .map(|&n| (n, 3.0 * n.powf(1.5)))
            .collect();
        let fit = fit_power_law(&pts).unwrap();
        close(fit.slope, 1.5);
        close(fit.intercept, 3.0f64.ln());
        close(fit.r2, 1.0);
        let class = classify(Some(&fit), fit_polylog(&pts).as_ref(), pts.len());
        assert_eq!(class, GrowthClass::Polynomial);
    }

    #[test]
    fn polylog_recovers_exactly_and_classifies_polylog() {
        // y = (ln n)^2.
        let pts: Vec<(f64, f64)> = [16.0f64, 32.0, 64.0, 128.0, 256.0]
            .iter()
            .map(|&n| (n, n.ln().powi(2)))
            .collect();
        let pl = fit_polylog(&pts).unwrap();
        close(pl.slope, 2.0);
        close(pl.r2, 1.0);
        let pow = fit_power_law(&pts).unwrap();
        assert!(pow.r2 < 1.0, "log-log of a polylog is concave");
        assert_eq!(
            classify(Some(&pow), Some(&pl), pts.len()),
            GrowthClass::Polylog
        );
    }

    #[test]
    fn constant_series_is_flat() {
        let pts: Vec<(f64, f64)> = vec![(16.0, 5.0), (32.0, 5.0), (64.0, 5.0)];
        let pow = fit_power_law(&pts).unwrap();
        close(pow.slope, 0.0);
        close(pow.r2, 1.0);
        assert_eq!(
            classify(Some(&pow), fit_polylog(&pts).as_ref(), 3),
            GrowthClass::Flat
        );
    }

    #[test]
    fn nan_and_zero_points_are_dropped_not_poisonous() {
        let pts = vec![
            (16.0, 2.0),
            (32.0, f64::NAN),
            (64.0, 0.0),
            (128.0, 16.0),
            (256.0, 32.0),
        ];
        // Three usable points survive; the fit uses exactly those.
        let clean = vec![(16.0, 2.0), (128.0, 16.0), (256.0, 32.0)];
        assert_eq!(fit_power_law(&pts), fit_power_law(&clean));
        assert_eq!(usable(&pts, 1.0).len(), 3);
        // All-unusable series fit nothing and classify insufficient.
        let dead = vec![(16.0, 0.0), (32.0, f64::NAN)];
        assert!(fit_power_law(&dead).is_none());
        assert_eq!(classify(None, None, 0), GrowthClass::Insufficient);
    }

    #[test]
    fn too_few_points_are_insufficient() {
        let pts = vec![(16.0, 2.0), (32.0, 4.0)];
        let pow = fit_power_law(&pts);
        assert!(pow.is_some(), "two points still define a line");
        assert_eq!(
            classify(pow.as_ref(), fit_polylog(&pts).as_ref(), 2),
            GrowthClass::Insufficient
        );
    }

    fn case(algorithm: &str, family: &str, model: &str, n: usize, energy: f64) -> Case {
        Case::new(
            vec![
                ("family", family.into()),
                ("n", n.into()),
                ("model", model.into()),
                ("algorithm", algorithm.into()),
            ],
            vec![Measurement {
                seed: 1000,
                metrics: vec![
                    ("energy_max", energy),
                    ("energy_mean", energy / 2.0),
                    ("time", n as f64 * 10.0),
                ],
            }],
        )
    }

    #[test]
    fn scaling_fits_group_cells_and_sort_sizes() {
        let mut cases = Vec::new();
        for &n in &[64usize, 16, 32, 128] {
            cases.push(case("alg_a", "cycle", "cd", n, (n as f64).powf(2.0)));
        }
        cases.push(case("alg_b", "cycle", "cd", 16, 1.0));
        let fits = scaling_fits(&cases);
        assert_eq!(fits.len(), 2);
        let a = &fits[0];
        assert_eq!(
            (a.algorithm.as_str(), a.family.as_str(), a.model.as_str()),
            ("alg_a", "cycle", "cd")
        );
        assert_eq!(a.sizes, vec![16.0, 32.0, 64.0, 128.0], "sizes sorted");
        assert!(!a.truncated);
        let emax = &a.metrics[0];
        assert_eq!(emax.metric, "energy_max");
        assert_eq!(emax.points, 4);
        close(emax.power.unwrap().slope, 2.0);
        assert_eq!(emax.class, GrowthClass::Polynomial);
        let time = a.metrics.iter().find(|m| m.metric == "time").unwrap();
        close(time.power.unwrap().slope, 1.0);
        // The single-point cell is insufficient everywhere.
        let b = &fits[1];
        assert!(b
            .metrics
            .iter()
            .all(|m| m.class == GrowthClass::Insufficient));
    }

    #[test]
    fn truncated_param_marks_the_whole_cell() {
        let mut c1 = case("alg_a", "path", "local", 16, 4.0);
        c1.params.push(("truncated", Json::Bool(true)));
        let c2 = case("alg_a", "path", "local", 32, 8.0);
        let fits = scaling_fits(&[c1, c2]);
        assert_eq!(fits.len(), 1);
        assert!(fits[0].truncated);
    }

    #[test]
    fn cell_fit_json_round_trips() {
        let cases: Vec<Case> = [16usize, 32, 64, 128]
            .iter()
            .map(|&n| case("alg_a", "cycle", "cd", n, (n as f64).ln().powi(2)))
            .collect();
        let fits = scaling_fits(&cases);
        let doc = fits_to_json(&fits);
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(parsed, doc);
        let cell = &parsed.as_arr().unwrap()[0];
        assert_eq!(cell.get("truncated"), Some(&Json::Bool(false)));
        let emax = cell.get("metrics").unwrap().get("energy_max").unwrap();
        assert_eq!(emax.get("class").unwrap().as_str(), Some("polylog"));
        assert!(emax.get("exponent").unwrap().as_f64().is_some());
    }
}
