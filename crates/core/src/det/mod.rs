//! Deterministic broadcast algorithms (paper Appendix A).
//!
//! In the deterministic setting every vertex carries a distinct ID in
//! `{1, …, N}`. Both algorithms follow the iterative-clustering skeleton:
//! compute a *ruling set* of the current cluster graph, merge every other
//! cluster into a nearby ruling cluster (halving the cluster count), and
//! after `O(log n)` iterations run Lemma 10's broadcast on the final
//! labeling.
//!
//! * [`local`] — Theorem 25: LOCAL model, `(3, 2 log N)`-ruling sets via
//!   the parallel prefix recursion of Awerbuch–Goldberg–Luby–Plotkin;
//!   `O(n log n log N)` time, `O(log n log N)` energy.
//! * [`cd`] — Theorem 27: CD model, `(2, log N)`-ruling sets via the
//!   sequential Lemma 26 recursion, deterministic SR-communication
//!   (Lemma 24) and the ID-interval cluster structure of A.3;
//!   `O(n N² log n log N)` time, `O(log³ N log n)` energy.

pub mod cd;
pub mod local;

pub use cd::{broadcast_det_cd, DetCdConfig};
pub use local::{broadcast_det_local, gl_ruling_set, DetLocalConfig};

use ebc_radio::NodeId;

/// Verifies the `(α, β)`-ruling set properties of `set` on `g`:
/// pairwise distance `≥ α` within the set, and every vertex within `β` of
/// the set. An analysis/test helper.
pub fn is_ruling_set(g: &ebc_radio::Graph, set: &[NodeId], alpha: u32, beta: u32) -> bool {
    if set.is_empty() {
        return g.n() == 0;
    }
    for &u in set {
        let dist = g.bfs(u);
        for &v in set {
            if v != u && dist[v] < alpha {
                return false;
            }
        }
    }
    // Multi-source BFS for domination.
    let mut dist = vec![u32::MAX; g.n()];
    let mut queue = std::collections::VecDeque::new();
    for &u in set {
        dist[u] = 0;
        queue.push_back(u);
    }
    while let Some(u) = queue.pop_front() {
        for w in g.neighbors(u) {
            if dist[w] == u32::MAX {
                dist[w] = dist[u] + 1;
                queue.push_back(w);
            }
        }
    }
    dist.iter().all(|&d| d <= beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_graphs::deterministic::{cycle, path};

    #[test]
    fn ruling_set_checker_accepts_valid() {
        let g = path(8);
        // {0, 3, 6}: pairwise distance 3, every vertex within 1... vertex 7
        // is within 1 of 6.
        assert!(is_ruling_set(&g, &[0, 3, 6], 3, 1));
    }

    #[test]
    fn ruling_set_checker_rejects_close_pairs() {
        let g = path(8);
        assert!(!is_ruling_set(&g, &[0, 1], 3, 8));
    }

    #[test]
    fn ruling_set_checker_rejects_poor_domination() {
        let g = cycle(12);
        assert!(!is_ruling_set(&g, &[0], 2, 3));
        assert!(is_ruling_set(&g, &[0], 2, 6));
    }
}
