//! Theorem 27: deterministic broadcast in the CD model.
//!
//! Iterative clustering where each iteration computes a `(2, log N)`-ruling
//! set of the cluster graph by the *sequential* prefix recursion of
//! Lemma 26 (CD allows only one prefix class to talk at a time), then
//! merges every cluster into a nearby ruling cluster, re-rooting trees per
//! §6.4. All communication uses Lemma 24's deterministic SR-communication
//! and the Appendix A.3 cluster structure: each within-cluster sweep
//! reserves one time interval per vertex ID, so a child only ever listens
//! in its own parent's interval — no two clusters interfere, ever.
//!
//! Costs match the paper's Theorem 27 shape: the slot clock grows
//! polynomially large (the paper's time bound is `O(n N² log n log N)`),
//! while per-vertex energy stays polylogarithmic (`O(log³ N log n)`).

use ebc_radio::{Model, NodeId, Schedule, Sim, SparseSchedule};

use crate::labeling::Labeling;
use crate::srcomm::det_sr;
use crate::util::ceil_log2;
use crate::BroadcastOutcome;

/// The Appendix A.3 deterministic cluster structure.
#[derive(Debug, Clone)]
pub struct DetClusterState {
    /// Cluster id per vertex (= the root's ID).
    pub cid: Vec<u64>,
    /// Within-cluster layers (root = 0).
    pub labeling: Labeling,
    /// Designated parent (a same-cluster neighbor one layer down).
    pub parent: Vec<Option<NodeId>>,
}

impl DetClusterState {
    /// The initial state: every vertex its own singleton cluster.
    pub fn initial(ids: &[u64]) -> Self {
        DetClusterState {
            cid: ids.to_vec(),
            labeling: Labeling::all_zero(ids.len()),
            parent: vec![None; ids.len()],
        }
    }

    /// Number of distinct clusters.
    pub fn cluster_count(&self) -> usize {
        let mut c = self.cid.clone();
        c.sort_unstable();
        c.dedup();
        c.len()
    }

    /// Validity: each positive-layer vertex's parent is a same-cluster
    /// neighbor one layer down.
    pub fn is_valid(&self, g: &ebc_radio::Graph) -> bool {
        (0..g.n()).all(|v| match self.parent[v] {
            None => self.labeling.label(v) == 0,
            Some(p) => {
                g.has_edge(v, p)
                    && self.cid[p] == self.cid[v]
                    && self.labeling.label(p) + 1 == self.labeling.label(v)
            }
        })
    }

    fn children(&self) -> Vec<Vec<NodeId>> {
        let n = self.cid.len();
        let mut ch: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for v in 0..n {
            if let Some(p) = self.parent[v] {
                ch[p].push(v);
            }
        }
        ch
    }

    fn max_layer(&self) -> u32 {
        self.labeling.max_label()
    }
}

/// Packs fixed-width fields into `u64` Lemma 24 messages. Field 0 is the
/// most significant, so `det_sr`'s minimum orders by field 0 first.
#[derive(Debug, Clone)]
struct Packer {
    widths: Vec<u32>,
}

impl Packer {
    fn new(widths: &[u32]) -> Self {
        assert!(widths.iter().sum::<u32>() <= 62);
        Packer {
            widths: widths.to_vec(),
        }
    }
    fn pack(&self, vals: &[u64]) -> u64 {
        assert_eq!(vals.len(), self.widths.len());
        let mut m = 0u64;
        for (v, &w) in vals.iter().zip(&self.widths) {
            debug_assert!(*v < (1u64 << w), "field {v} exceeds {w} bits");
            m = (m << w) | v;
        }
        m
    }
    fn unpack(&self, mut m: u64) -> Vec<u64> {
        let mut out = vec![0u64; self.widths.len()];
        for (slot, &w) in out.iter_mut().zip(&self.widths).rev() {
            *slot = m & ((1u64 << w) - 1);
            m >>= w;
        }
        out
    }
    fn space(&self) -> u64 {
        1u64 << self.widths.iter().sum::<u32>()
    }
}

/// One downward sweep (A.3 `Downward transmission`): for each layer and
/// each ID interval, the parent with that ID transmits and exactly its
/// children listen — collision-free by construction, zero failure
/// probability. `fold(msgs, child, m)` runs as receptions happen, so a
/// message injected at the root reaches every leaf within one sweep.
fn down_sweep(
    sim: &mut Sim,
    st: &DetClusterState,
    ids: &[u64],
    id_space: u64,
    msgs: &mut Vec<Option<u64>>,
    mut fold: impl FnMut(&mut Vec<Option<u64>>, NodeId, u64),
) {
    let n = st.cid.len();
    let children = st.children();
    let max_layer = st.max_layer();
    for layer in 0..=max_layer {
        // One sparse schedule per layer: parent `v` owns the reserved slot
        // `ids[v] − 1` of the layer's N-slot block, its children listen
        // there, and the engine batch-skips the other N − |parents| slots.
        // Parents sit at `layer`, receivers at `layer + 1`, so receptions
        // within one layer never feed later transmissions of the same
        // layer and can fold after the block.
        let mut active: Vec<NodeId> = (0..n)
            .filter(|&v| st.labeling.label(v) == layer && !children[v].is_empty())
            .collect();
        active.sort_by_key(|&v| ids[v]);
        let mut schedule = SparseSchedule::new();
        let mut parent_at: std::collections::HashMap<u64, NodeId> = Default::default();
        for &v in &active {
            let slot = ids[v] - 1;
            parent_at.insert(slot, v);
            schedule.push(slot, std::iter::once(v).chain(children[v].iter().copied()));
        }
        let mut received: Vec<(NodeId, u64)> = Vec::new();
        let msgs_now: &Vec<Option<u64>> = msgs;
        let mut behavior = ebc_radio::from_fns(
            |u, t| {
                if parent_at.get(&t) == Some(&u) {
                    match msgs_now[u] {
                        Some(m) => ebc_radio::Action::Send(m),
                        None => ebc_radio::Action::Idle,
                    }
                } else {
                    ebc_radio::Action::Listen
                }
            },
            |u, _t, fb: ebc_radio::Feedback<u64>| {
                if let ebc_radio::Feedback::One(m) = fb {
                    received.push((u, m));
                }
            },
        );
        sim.drive(
            Schedule::Sparse {
                schedule: &schedule,
                slots: id_space,
            },
            &mut behavior,
        );
        drop(behavior);
        for (r, m) in received {
            fold(msgs, r, m);
        }
    }
}

/// One upward sweep (A.3 `Upward transmission`): for each layer (deepest
/// parents first... processed root-ward) and each ID interval, the children
/// of the interval's owner run Lemma 24 SR-communication toward it; the
/// parent learns the *minimum* message among its children. `fold` fires on
/// reception, so a leaf's message reaches the root within one sweep.
fn up_sweep(
    sim: &mut Sim,
    st: &DetClusterState,
    ids: &[u64],
    id_space: u64,
    msg_space: u64,
    msgs: &mut Vec<Option<u64>>,
    mut fold: impl FnMut(&mut Vec<Option<u64>>, NodeId, u64),
) {
    let n = st.cid.len();
    let children = st.children();
    let max_layer = st.max_layer();
    let sr_slots = det_sr_slots(msg_space);
    for layer in (0..=max_layer).rev() {
        let mut active: Vec<NodeId> = (0..n)
            .filter(|&v| st.labeling.label(v) == layer && !children[v].is_empty())
            .collect();
        active.sort_by_key(|&v| ids[v]);
        let mut consumed = 0u64;
        for &v in &active {
            sim.skip((ids[v] - 1 - consumed) * sr_slots);
            consumed = ids[v];
            let senders: Vec<(NodeId, u64)> = children[v]
                .iter()
                .filter_map(|&c| msgs[c].map(|m| (c, m)))
                .collect();
            let got = det_sr(sim, &senders, &[v], msg_space);
            if let Some(m) = got[0] {
                fold(msgs, v, m);
            }
        }
        sim.skip((id_space - consumed) * sr_slots);
    }
}

/// Slots one Lemma 24 invocation takes (for clock-accurate skipping).
fn det_sr_slots(msg_space: u64) -> u64 {
    let bits = if msg_space <= 1 {
        1
    } else {
        ceil_log2(msg_space as usize)
    };
    (2u64 << bits) - 2
}

/// The Lemma 26 `(2, log N)`-ruling set over the cluster graph, sequential
/// prefix recursion. Returns the ruling clusters' ids.
fn ruling_set_cd(
    sim: &mut Sim,
    st: &DetClusterState,
    ids: &[u64],
    id_space: u64,
) -> std::collections::HashSet<u64> {
    let n = st.cid.len();
    let bits = ceil_log2((id_space + 1) as usize).max(1);
    let mut roots: Vec<u64> = st.cid.clone();
    roots.sort_unstable();
    roots.dedup();
    let mut alive: std::collections::HashSet<u64> = roots.iter().copied().collect();
    for j in 0..bits {
        let mut prefixes: Vec<u64> = roots.iter().map(|c| c >> (j + 1)).collect();
        prefixes.sort_unstable();
        prefixes.dedup();
        for p in prefixes {
            let side = |c: u64| (c >> j) & 1;
            let in_class = |c: u64| c >> (j + 1) == p;
            let zero_side: std::collections::HashSet<u64> = alive
                .iter()
                .copied()
                .filter(|&c| in_class(c) && side(c) == 0)
                .collect();
            let one_side: std::collections::HashSet<u64> = alive
                .iter()
                .copied()
                .filter(|&c| in_class(c) && side(c) == 1)
                .collect();
            if zero_side.is_empty() || one_side.is_empty() {
                // Nothing to merge; the public schedule still passes.
                sim.skip(
                    det_sr_slots(2)
                        + (st.max_layer() as u64 + 1) * id_space * (det_sr_slots(2) + 1),
                );
                continue;
            }
            // Beep: 0-side members transmit, 1-side members listen.
            let senders: Vec<(NodeId, u64)> = (0..n)
                .filter(|&v| zero_side.contains(&st.cid[v]))
                .map(|v| (v, 1))
                .collect();
            let receivers: Vec<NodeId> =
                (0..n).filter(|&v| one_side.contains(&st.cid[v])).collect();
            let heard = det_sr(sim, &senders, &receivers, 2);
            // OR-convergecast within each 1-side cluster.
            let mut msgs: Vec<Option<u64>> = vec![None; n];
            for (i, &v) in receivers.iter().enumerate() {
                if heard[i].is_some() {
                    msgs[v] = Some(1);
                }
            }
            up_sweep(sim, st, ids, id_space, 2, &mut msgs, |msgs, v, _m| {
                msgs[v] = Some(1);
            });
            for (v, m) in msgs.iter().enumerate() {
                if st.labeling.label(v) == 0 && one_side.contains(&st.cid[v]) && *m == Some(1) {
                    alive.remove(&st.cid[v]);
                }
            }
            // Downward announce keeps members' aliveness in sync (content
            // tracked host-side; slots and energy charged faithfully).
            let mut announce: Vec<Option<u64>> = (0..n)
                .map(|v| {
                    (st.labeling.label(v) == 0 && in_class(st.cid[v]))
                        .then_some(u64::from(alive.contains(&st.cid[v])))
                })
                .collect();
            down_sweep(sim, st, ids, id_space, &mut announce, |msgs, v, m| {
                msgs[v] = Some(m);
            });
        }
    }
    alive
}

/// Parameters of the Theorem 27 driver.
#[derive(Debug, Clone, Default)]
pub struct DetCdConfig {
    /// Distinct IDs in `{1, …, id_space}`; `None` → `v + 1`.
    pub ids: Option<Vec<u64>>,
    /// The ID space bound `N`; `None` → `n`.
    pub id_space: Option<u64>,
}

/// Theorem 27: deterministic CD broadcast via iterated ruling-set
/// clustering. Zero failure probability.
///
/// # Panics
///
/// Panics if the model lacks collision detection or the IDs are invalid.
pub fn broadcast_det_cd(sim: &mut Sim, source: NodeId, cfg: &DetCdConfig) -> BroadcastOutcome {
    assert!(
        matches!(sim.model(), Model::Cd | Model::CdStar),
        "Theorem 27 is a CD algorithm"
    );
    let n = sim.graph().n();
    let ids: Vec<u64> = cfg
        .ids
        .clone()
        .unwrap_or_else(|| (0..n).map(|v| v as u64 + 1).collect());
    let id_space = cfg.id_space.unwrap_or(n as u64);
    {
        let mut seen = std::collections::HashSet::new();
        for &id in &ids {
            assert!(
                (1..=id_space).contains(&id),
                "ID {id} outside 1..={id_space}"
            );
            assert!(seen.insert(id), "duplicate ID {id}");
        }
    }
    let vertex_of_id: std::collections::HashMap<u64, NodeId> =
        ids.iter().enumerate().map(|(v, &id)| (id, v)).collect();
    let mut st = DetClusterState::initial(&ids);
    let iters = ceil_log2(n.max(2)) + 2;
    for _ in 0..iters {
        if st.cluster_count() == 1 {
            break;
        }
        sim.span_enter("ruling_set");
        let ruling = ruling_set_cd(sim, &st, &ids, id_space);
        sim.span_exit();
        sim.span_enter("merge");
        st = merge_into_ruling(sim, &st, &ids, id_space, &ruling, &vertex_of_id);
        sim.span_exit();
        if sim.telemetry_enabled() {
            sim.record_gauge("clusters", sim.now(), st.cluster_count() as f64);
        }
        // Validity is a clean-channel invariant; under an active fault
        // plan merges can misfire and leave a degraded (but bounded)
        // state.
        debug_assert!(
            sim.fault_plan().is_active() || st.is_valid(sim.graph()),
            "invalid state after merge"
        );
    }
    sim.span_enter("broadcast");
    let out = det_broadcast_final(sim, &st, &ids, id_space, source);
    sim.span_exit();
    out
}

/// The A.2 merging procedure: every non-ruling cluster is absorbed over
/// `2⌈log N⌉ + 2` offer/elect/re-root rounds (the ruling set dominates
/// within `log N` cluster hops); a final pass folds singleton ruling
/// clusters into a neighbor so the cluster count at least halves.
fn merge_into_ruling(
    sim: &mut Sim,
    st: &DetClusterState,
    ids: &[u64],
    id_space: u64,
    ruling: &std::collections::HashSet<u64>,
    vertex_of_id: &std::collections::HashMap<u64, NodeId>,
) -> DetClusterState {
    let n = st.cid.len();
    let bits_id = ceil_log2((id_space + 1) as usize).max(1);
    let bits_lab = ceil_log2(2 * n + 4) + 1;
    // Offer: [scid, layer, sender-id] (min = lowest scid; any offer works).
    let offer_p = Packer::new(&[bits_id, bits_lab, bits_id]);
    // Candidate/announce: [layer, v*-id, scid] (min = shallowest offer).
    let cand_p = Packer::new(&[bits_lab, bits_id, bits_id]);
    // Label: [label, sender-id].
    let lab_p = Packer::new(&[bits_lab, bits_id]);

    let mut scid: Vec<Option<u64>> = (0..n)
        .map(|v| ruling.contains(&st.cid[v]).then_some(st.cid[v]))
        .collect();
    let mut newlab: Vec<u32> = (0..n).map(|v| st.labeling.label(v)).collect();
    let mut newpar: Vec<Option<NodeId>> = st.parent.clone();
    let rounds = 2 * ceil_log2((id_space + 1) as usize) + 2;
    for _ in 0..rounds {
        let receivers: Vec<NodeId> = (0..n).filter(|&v| scid[v].is_none()).collect();
        if receivers.is_empty() {
            break;
        }
        run_merge_round(
            sim,
            st,
            ids,
            id_space,
            &offer_p,
            &cand_p,
            &lab_p,
            vertex_of_id,
            &mut scid,
            &mut newlab,
            &mut newpar,
            None,
        );
    }
    // Singleton pass: ruling clusters that absorbed nobody re-merge into a
    // non-singleton neighbor (A.2's size-1 fix; singletons are pairwise
    // non-adjacent because the ruling set is independent).
    let mut absorbed: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
        Default::default();
    for (v, sc) in scid.iter().enumerate() {
        if let Some(c) = *sc {
            absorbed.entry(c).or_default().insert(st.cid[v]);
        }
    }
    let singletons: std::collections::HashSet<u64> = absorbed
        .iter()
        .filter(|(_, olds)| olds.len() == 1)
        .map(|(&c, _)| c)
        .collect();
    if !singletons.is_empty() && absorbed.len() > singletons.len() {
        for sc in scid.iter_mut() {
            if sc.map(|c| singletons.contains(&c)) == Some(true) {
                *sc = None;
            }
        }
        run_merge_round(
            sim,
            st,
            ids,
            id_space,
            &offer_p,
            &cand_p,
            &lab_p,
            vertex_of_id,
            &mut scid,
            &mut newlab,
            &mut newpar,
            Some(&singletons),
        );
    }
    DetClusterState {
        cid: (0..n).map(|v| scid[v].unwrap_or(st.cid[v])).collect(),
        labeling: Labeling::from_labels(newlab),
        parent: newpar,
    }
}

/// One offer → elect → announce → re-root round over the old trees.
#[allow(clippy::too_many_arguments)]
fn run_merge_round(
    sim: &mut Sim,
    st: &DetClusterState,
    ids: &[u64],
    id_space: u64,
    offer_p: &Packer,
    cand_p: &Packer,
    lab_p: &Packer,
    vertex_of_id: &std::collections::HashMap<u64, NodeId>,
    scid: &mut [Option<u64>],
    newlab: &mut [u32],
    newpar: &mut [Option<NodeId>],
    exclude_senders: Option<&std::collections::HashSet<u64>>,
) {
    let n = st.cid.len();
    // Offers from absorbed vertices to unabsorbed ones.
    let senders: Vec<(NodeId, u64)> = (0..n)
        .filter_map(|v| {
            let c = scid[v]?;
            if let Some(excl) = exclude_senders {
                if excl.contains(&c) {
                    return None;
                }
            }
            Some((v, offer_p.pack(&[c, u64::from(newlab[v]), ids[v]])))
        })
        .collect();
    let receivers: Vec<NodeId> = (0..n).filter(|&v| scid[v].is_none()).collect();
    let got = det_sr(sim, &senders, &receivers, offer_p.space());
    let mut pending: Vec<Option<(u64, u32, NodeId)>> = vec![None; n];
    for (i, &v) in receivers.iter().enumerate() {
        if let Some(m) = got[i] {
            let f = offer_p.unpack(m);
            // Under fault injection a jammed slot reads as occupied, so
            // det_sr can assemble a value nobody sent; an offer whose
            // sender id does not resolve is dropped like a lost message.
            if let Some(&phi) = vertex_of_id.get(&f[2]) {
                pending[v] = Some((f[0], f[1] as u32 + 1, phi));
            }
        }
    }
    // Elect v* per cluster: convergecast the minimum candidate.
    let mut msgs: Vec<Option<u64>> = vec![None; n];
    for v in 0..n {
        if let Some((c, l, _)) = pending[v] {
            msgs[v] = Some(cand_p.pack(&[u64::from(l), ids[v], c]));
        }
    }
    up_sweep(
        sim,
        st,
        ids,
        id_space,
        cand_p.space(),
        &mut msgs,
        |msgs, v, m| {
            msgs[v] = Some(match msgs[v] {
                Some(old) => old.min(m),
                None => m,
            });
        },
    );
    // Roots announce the winner; one fold-down sweep reaches every member.
    let mut announced: Vec<Option<u64>> = (0..n)
        .map(|v| {
            if st.labeling.label(v) == 0 && scid[v].is_none() {
                msgs[v]
            } else {
                None
            }
        })
        .collect();
    down_sweep(sim, st, ids, id_space, &mut announced, |msgs, v, m| {
        msgs[v] = Some(m);
    });
    // Re-root: v* adopts its pending offer; labels climb to the old root
    // (re-parenting along the way), then descend to everyone else.
    let mut labmsg: Vec<Option<u64>> = vec![None; n];
    let mut labeled: Vec<bool> = vec![false; n];
    for v in 0..n {
        if let (Some(w), Some((c, l, phi))) = (announced[v], pending[v]) {
            let f = cand_p.unpack(w);
            if f[1] == ids[v] && f[2] == c {
                scid[v] = Some(c);
                newlab[v] = l;
                newpar[v] = Some(phi);
                labeled[v] = true;
                labmsg[v] = Some(lab_p.pack(&[u64::from(l), ids[v]]));
            }
        }
    }
    {
        let scid_ref: &mut [Option<u64>] = scid;
        let announced_ref = &announced;
        let labeled_ref = &mut labeled;
        up_sweep(
            sim,
            st,
            ids,
            id_space,
            lab_p.space(),
            &mut labmsg,
            |msgs, v, m| {
                if labeled_ref[v] || announced_ref[v].is_none() {
                    return;
                }
                let f = lab_p.unpack(m);
                // Drop labels whose sender id does not resolve (possible
                // only when fault injection corrupts a det_sr exchange).
                let Some(&parent) = vertex_of_id.get(&f[1]) else {
                    return;
                };
                let c = cand_p.unpack(announced_ref[v].expect("checked"))[2];
                scid_ref[v] = Some(c);
                newlab[v] = f[0] as u32 + 1;
                newpar[v] = Some(parent);
                labeled_ref[v] = true;
                msgs[v] = Some(lab_p.pack(&[u64::from(newlab[v]), ids[v]]));
            },
        );
        down_sweep(sim, st, ids, id_space, &mut labmsg, |msgs, v, m| {
            if labeled_ref[v] || announced_ref[v].is_none() {
                return;
            }
            let f = lab_p.unpack(m);
            let c = cand_p.unpack(announced_ref[v].expect("checked"))[2];
            scid_ref[v] = Some(c);
            newlab[v] = f[0] as u32 + 1;
            // The old parent is still a same-cluster neighbor one layer
            // down in the re-rooted tree.
            labeled_ref[v] = true;
            msgs[v] = Some(lab_p.pack(&[u64::from(newlab[v]), ids[v]]));
        });
    }
}

/// Lemma 10 with the deterministic primitives: Up-cast the payload to the
/// roots, Down-cast to every member, plus global All-cast rounds for
/// cross-cluster delivery while more than one cluster remains.
fn det_broadcast_final(
    sim: &mut Sim,
    st: &DetClusterState,
    ids: &[u64],
    id_space: u64,
    source: NodeId,
) -> BroadcastOutcome {
    let n = st.cid.len();
    let mut has: Vec<bool> = vec![false; n];
    has[source] = true;
    for _ in 0..2 {
        let mut msgs: Vec<Option<u64>> = has.iter().map(|&h| h.then_some(1)).collect();
        up_sweep(sim, st, ids, id_space, 2, &mut msgs, |msgs, v, _m| {
            msgs[v] = Some(1);
        });
        down_sweep(sim, st, ids, id_space, &mut msgs, |msgs, v, _m| {
            msgs[v] = Some(1);
        });
        for v in 0..n {
            if msgs[v].is_some() {
                has[v] = true;
            }
        }
        let senders: Vec<(NodeId, u64)> = (0..n).filter(|&v| has[v]).map(|v| (v, 1)).collect();
        let receivers: Vec<NodeId> = (0..n).filter(|&v| !has[v]).collect();
        let got = det_sr(sim, &senders, &receivers, 2);
        for (i, &v) in receivers.iter().enumerate() {
            if got[i].is_some() {
                has[v] = true;
            }
        }
        if has.iter().all(|&h| h) {
            break;
        }
    }
    BroadcastOutcome {
        informed: has,
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_graphs::deterministic::{cycle, grid, path, star};

    #[test]
    fn initial_state_is_valid() {
        let g = path(5);
        let ids: Vec<u64> = (0..5).map(|v| v as u64 + 1).collect();
        let st = DetClusterState::initial(&ids);
        assert!(st.is_valid(&g));
        assert_eq!(st.cluster_count(), 5);
    }

    #[test]
    fn packer_roundtrip() {
        let p = Packer::new(&[5, 7, 5]);
        let m = p.pack(&[17, 100, 3]);
        assert_eq!(p.unpack(m), vec![17, 100, 3]);
        assert!(m < p.space());
        // Ordering: field 0 dominates.
        assert!(p.pack(&[1, 127, 31]) < p.pack(&[2, 0, 0]));
    }

    #[test]
    fn det_cd_broadcast_on_path() {
        let g = path(12);
        let mut sim = Sim::new(g, Model::Cd, 0);
        let out = broadcast_det_cd(&mut sim, 0, &DetCdConfig::default());
        assert!(out.all_informed());
    }

    #[test]
    fn det_cd_broadcast_on_cycle_and_star() {
        let g = cycle(10);
        let mut sim = Sim::new(g, Model::Cd, 0);
        assert!(broadcast_det_cd(&mut sim, 3, &DetCdConfig::default()).all_informed());
        let g = star(9);
        let mut sim = Sim::new(g, Model::Cd, 0);
        assert!(broadcast_det_cd(&mut sim, 1, &DetCdConfig::default()).all_informed());
    }

    #[test]
    fn det_cd_broadcast_on_grid() {
        let g = grid(4, 4);
        let mut sim = Sim::new(g, Model::Cd, 0);
        let out = broadcast_det_cd(&mut sim, 5, &DetCdConfig::default());
        assert!(out.all_informed());
    }

    #[test]
    fn det_cd_is_deterministic_across_seeds() {
        let g = cycle(8);
        let run = |seed: u64| {
            let mut sim = Sim::new(g.clone(), Model::Cd, seed);
            let out = broadcast_det_cd(&mut sim, 0, &DetCdConfig::default());
            (out.all_informed(), sim.meter().max_energy())
        };
        assert_eq!(run(3), run(12345));
    }

    #[test]
    fn det_cd_energy_polylog() {
        let e = |n: usize| -> u64 {
            let g = cycle(n);
            let mut sim = Sim::new(g, Model::Cd, 0);
            broadcast_det_cd(&mut sim, 0, &DetCdConfig::default());
            sim.meter().max_energy()
        };
        let e16 = e(16);
        let e64 = e(64);
        // Polylog growth: far less than the 4× size increase.
        assert!(
            (e64 as f64) < 6.0 * e16 as f64,
            "energy jumped {e16} → {e64}"
        );
    }

    #[test]
    fn det_cd_respects_permuted_ids() {
        let n = 12;
        let g = cycle(n);
        let ids: Vec<u64> = (0..n).map(|v| ((v * 5) % n) as u64 + 1).collect();
        let mut sim = Sim::new(g, Model::Cd, 0);
        let cfg = DetCdConfig {
            ids: Some(ids),
            id_space: Some(n as u64),
        };
        assert!(broadcast_det_cd(&mut sim, 4, &cfg).all_informed());
    }

    #[test]
    #[should_panic(expected = "CD algorithm")]
    fn det_cd_rejects_local() {
        let g = path(4);
        let mut sim = Sim::new(g, Model::Local, 0);
        broadcast_det_cd(&mut sim, 0, &DetCdConfig::default());
    }
}
