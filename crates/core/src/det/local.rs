//! Theorem 25: deterministic broadcast in the LOCAL model.
//!
//! The iterative-clustering skeleton of §5 with deterministic ingredients:
//! the new layer-0 sets are `(3, 2 log N)`-ruling sets of the cluster graph
//! `G_L`, computed by the parallel prefix recursion of Awerbuch et al. \[3\].
//! One round of `G_L` is simulated by flooding token sets down the layers,
//! across one edge exchange, and back up (`O(1)` energy per vertex,
//! `O(layer bound)` slots) — LOCAL delivers every message, so the floods
//! are exact and the whole algorithm is deterministic.

use ebc_radio::{Model, NodeId, Sim};

use crate::cast::{broadcast_with_labeling, relabel_from_roots};
use crate::labeling::Labeling;
use crate::srcomm::{local_gather, Sr};
use crate::util::{ceil_log2, NodeRngs};
use crate::BroadcastOutcome;

/// One `G_L` flood round: every layer-0 vertex `r` starts with token set
/// `seed(r)`; afterwards each layer-0 vertex holds the union of the seeds
/// of its `G_L`-neighbors (and its own).
///
/// Down-flood along ascending-label paths, one boundary exchange, then an
/// up-flood — exactly the paths that define `L`-adjacency (§5).
pub fn gl_flood_round(
    sim: &mut Sim,
    labeling: &Labeling,
    layer_bound: u32,
    seed: &[Vec<u32>],
) -> Vec<Vec<u32>> {
    let n = labeling.n();
    let mut down: Vec<std::collections::BTreeSet<u32>> = (0..n)
        .map(|v| {
            if labeling.label(v) == 0 {
                seed[v].iter().copied().collect()
            } else {
                Default::default()
            }
        })
        .collect();
    let buckets = buckets_of(labeling, layer_bound);
    // Down-flood: layer i feeds layer i+1.
    for i in 0..buckets.len().saturating_sub(1) {
        let senders: Vec<(NodeId, Vec<u32>)> = buckets[i]
            .iter()
            .filter(|&&v| !down[v].is_empty())
            .map(|&v| (v, down[v].iter().copied().collect()))
            .collect();
        let receivers: Vec<NodeId> = buckets[i + 1].clone();
        let got = local_gather(sim, &senders, &receivers);
        for (v, msgs) in receivers.into_iter().zip(got) {
            for m in msgs {
                down[v].extend(m);
            }
        }
    }
    // Boundary exchange: everyone hears all neighbors' reach-sets.
    let senders: Vec<(NodeId, Vec<u32>)> = (0..n)
        .filter(|&v| !down[v].is_empty())
        .map(|v| (v, down[v].iter().copied().collect()))
        .collect();
    let receivers: Vec<NodeId> = (0..n).collect();
    let got = local_gather(sim, &senders, &receivers);
    let mut acc: Vec<std::collections::BTreeSet<u32>> = got
        .into_iter()
        .map(|msgs| msgs.into_iter().flatten().collect())
        .collect();
    // Up-flood: layer i feeds layer i−1.
    for i in (1..buckets.len()).rev() {
        let senders: Vec<(NodeId, Vec<u32>)> = buckets[i]
            .iter()
            .filter(|&&v| !acc[v].is_empty())
            .map(|&v| (v, acc[v].iter().copied().collect()))
            .collect();
        let receivers: Vec<NodeId> = buckets[i - 1].clone();
        let got = local_gather(sim, &senders, &receivers);
        for (v, msgs) in receivers.into_iter().zip(got) {
            for m in msgs {
                acc[v].extend(m);
            }
        }
    }
    (0..n)
        .map(|v| {
            if labeling.label(v) == 0 {
                acc[v].iter().copied().collect()
            } else {
                Vec::new()
            }
        })
        .collect()
}

fn buckets_of(labeling: &Labeling, layer_bound: u32) -> Vec<Vec<NodeId>> {
    let lb = layer_bound.max(1) as usize;
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); lb];
    for v in 0..labeling.n() {
        buckets[(labeling.label(v) as usize).min(lb - 1)].push(v);
    }
    buckets
}

/// Computes a `(3, 2⌈log₂ N⌉)`-ruling set of `G_L` by the parallel AGLP
/// prefix recursion: at each of the `⌈log₂ N⌉` levels, sibling ID-prefix
/// classes merge — the 1-side keeps only members at `G_L`-distance ≥ 3
/// from the 0-side, checked with two exact flood rounds.
///
/// `ids[v] ∈ {1, …, N}` must be distinct. Returns the surviving layer-0
/// vertices.
pub fn gl_ruling_set(
    sim: &mut Sim,
    labeling: &Labeling,
    ids: &[u64],
    id_space: u64,
    layer_bound: u32,
) -> Vec<NodeId> {
    let n = labeling.n();
    let bits = ceil_log2((id_space + 1) as usize).max(1);
    let mut alive: Vec<bool> = (0..n).map(|v| labeling.label(v) == 0).collect();
    // Merge prefix classes from the least significant bit up: after step j,
    // classes are ID prefixes of length bits − j − 1.
    for j in 0..bits {
        let prefix_of = |v: NodeId| -> u32 { (ids[v] >> (j + 1)) as u32 };
        let side_of = |v: NodeId| -> u64 { (ids[v] >> j) & 1 };
        // Flood 1: 0-side alive roots announce their (merged) class prefix.
        let seed1: Vec<Vec<u32>> = (0..n)
            .map(|v| {
                if alive[v] && side_of(v) == 0 {
                    vec![prefix_of(v)]
                } else {
                    Vec::new()
                }
            })
            .collect();
        let heard1 = gl_flood_round(sim, labeling, layer_bound, &seed1);
        // Flood 2: everything heard propagates one more G_L hop.
        let heard2 = gl_flood_round(sim, labeling, layer_bound, &heard1);
        for v in 0..n {
            if alive[v] && side_of(v) == 1 {
                let p = prefix_of(v);
                if heard1[v].contains(&p) || heard2[v].contains(&p) {
                    alive[v] = false;
                }
            }
        }
    }
    (0..n).filter(|&v| alive[v]).collect()
}

/// Parameters of the Theorem 25 driver.
#[derive(Debug, Clone, Default)]
pub struct DetLocalConfig {
    /// Distinct IDs per vertex in `{1, …, id_space}`; `None` → `v + 1`.
    pub ids: Option<Vec<u64>>,
    /// The ID space bound `N`.
    pub id_space: Option<u64>,
}

/// Theorem 25: deterministic LOCAL broadcast in `O(n log n log N)` time
/// with `O(log n log N)` energy.
///
/// # Panics
///
/// Panics if the model is not LOCAL or the IDs are invalid.
pub fn broadcast_det_local(
    sim: &mut Sim,
    source: NodeId,
    cfg: &DetLocalConfig,
) -> BroadcastOutcome {
    assert_eq!(sim.model(), Model::Local, "Theorem 25 is a LOCAL algorithm");
    let n = sim.graph().n();
    let ids: Vec<u64> = cfg
        .ids
        .clone()
        .unwrap_or_else(|| (0..n).map(|v| v as u64 + 1).collect());
    let id_space = cfg.id_space.unwrap_or(n as u64);
    {
        let mut seen = std::collections::HashSet::new();
        for &id in &ids {
            assert!(
                (1..=id_space).contains(&id),
                "ID {id} outside 1..={id_space}"
            );
            assert!(seen.insert(id), "duplicate ID {id}");
        }
    }
    let layer_bound = n as u32;
    // s = 2⌈log N⌉ + 2 relabeling sweeps cover the (3, 2 log N) domination
    // radius; the floods are exact, so no repetition for failure is needed.
    let s = 2 * ceil_log2((id_space + 1) as usize) + 2;
    // LOCAL SR never uses randomness; the NodeRngs are inert.
    let mut rngs = NodeRngs::new(sim.seed(), n, 0xde7);
    let mut labeling = Labeling::all_zero(n);
    let iters = ceil_log2(n.max(2)) + 1;
    for _ in 0..iters {
        sim.span_enter("ruling_set");
        let roots = gl_ruling_set(sim, &labeling, &ids, id_space, layer_bound);
        sim.span_exit();
        sim.span_enter("relabel");
        labeling = relabel_from_roots(
            sim,
            &labeling,
            &roots,
            s,
            layer_bound,
            &Sr::Local,
            &mut rngs,
        );
        sim.span_exit();
        if sim.telemetry_enabled() {
            sim.record_gauge("layer0", sim.now(), labeling.layer0_count() as f64);
        }
    }
    sim.span_enter("broadcast");
    let out = broadcast_with_labeling(
        sim,
        &labeling,
        source,
        layer_bound,
        1,
        &Sr::Local,
        &mut rngs,
    );
    sim.span_exit();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det::is_ruling_set;
    use ebc_graphs::deterministic::{cycle, grid, path};
    use ebc_graphs::random::bounded_degree;

    #[test]
    fn flood_round_reaches_gl_neighbors() {
        // Cycle of 8, 4 clusters: G_L is a 4-cycle.
        let g = cycle(8);
        let l = Labeling::from_labels(vec![0, 1, 0, 1, 0, 1, 0, 1]);
        let mut sim = Sim::new(g, Model::Local, 0);
        let mut seed: Vec<Vec<u32>> = vec![Vec::new(); 8];
        seed[0] = vec![99];
        let out = gl_flood_round(&mut sim, &l, 8, &seed);
        // Roots 2 and 6 are G_L-neighbors of 0; root 4 is not.
        assert!(out[2].contains(&99));
        assert!(out[6].contains(&99));
        assert!(!out[4].contains(&99));
    }

    #[test]
    fn ruling_set_is_3_2logn_on_trivial_labeling() {
        // All-zero labeling: G_L = G.
        for n in [16usize, 33] {
            let g = cycle(n);
            let mut sim = Sim::new(g.clone(), Model::Local, 0);
            let l = Labeling::all_zero(n);
            let ids: Vec<u64> = (0..n).map(|v| v as u64 + 1).collect();
            let set = gl_ruling_set(&mut sim, &l, &ids, n as u64, n as u32);
            assert!(!set.is_empty());
            let beta = 2 * ceil_log2(n + 1);
            assert!(
                is_ruling_set(&g, &set, 3, beta),
                "n={n}: {set:?} not a (3,{beta})-ruling set"
            );
        }
    }

    #[test]
    fn ruling_set_halves_roots() {
        let n = 32;
        let g = cycle(n);
        let mut sim = Sim::new(g, Model::Local, 0);
        let l = Labeling::all_zero(n);
        let ids: Vec<u64> = (0..n).map(|v| v as u64 + 1).collect();
        let set = gl_ruling_set(&mut sim, &l, &ids, n as u64, n as u32);
        assert!(set.len() <= n / 2, "|I| = {}", set.len());
    }

    #[test]
    fn det_local_broadcast_informs_everyone() {
        for (name, g) in [
            ("path", path(24)),
            ("cycle", cycle(25)),
            ("grid", grid(5, 5)),
            ("bounded", bounded_degree(30, 4, 1.5, 3)),
        ] {
            let mut sim = Sim::new(g, Model::Local, 7);
            let out = broadcast_det_local(&mut sim, 0, &DetLocalConfig::default());
            assert!(out.all_informed(), "{name}");
        }
    }

    #[test]
    fn det_local_is_deterministic() {
        let g = grid(4, 4);
        let run = |seed: u64| -> (bool, u64, u64) {
            let mut sim = Sim::new(g.clone(), Model::Local, seed);
            let out = broadcast_det_local(&mut sim, 2, &DetLocalConfig::default());
            (out.all_informed(), sim.now(), sim.meter().max_energy())
        };
        // Different master seeds: identical behavior (no randomness used).
        assert_eq!(run(1), run(999));
    }

    #[test]
    fn det_local_respects_permuted_ids() {
        let n = 16;
        let g = cycle(n);
        let mut ids: Vec<u64> = (0..n).map(|v| ((v * 7) % n) as u64 + 1).collect();
        ids.rotate_left(3);
        let mut sim = Sim::new(g, Model::Local, 0);
        let cfg = DetLocalConfig {
            ids: Some(ids),
            id_space: Some(n as u64),
        };
        let out = broadcast_det_local(&mut sim, 5, &cfg);
        assert!(out.all_informed());
    }

    #[test]
    fn det_local_energy_scales_polylogarithmically() {
        // O(log n log N) with modest constants: compare n=32 vs n=128 —
        // energy should grow far slower than n.
        let e = |n: usize| -> u64 {
            let g = cycle(n);
            let mut sim = Sim::new(g, Model::Local, 1);
            broadcast_det_local(&mut sim, 0, &DetLocalConfig::default());
            sim.meter().max_energy()
        };
        let e32 = e(32);
        let e128 = e(128);
        assert!(
            (e128 as f64) < 3.0 * e32 as f64,
            "energy jumped {e32} → {e128}"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate ID")]
    fn rejects_duplicate_ids() {
        let g = path(4);
        let mut sim = Sim::new(g, Model::Local, 0);
        let cfg = DetLocalConfig {
            ids: Some(vec![1, 2, 2, 4]),
            id_space: Some(8),
        };
        broadcast_det_local(&mut sim, 0, &cfg);
    }
}
