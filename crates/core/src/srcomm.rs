//! SR-communication (paper §4): the basic building block.
//!
//! Given disjoint vertex sets `S` (each holding a message) and `R`, an
//! SR-communication algorithm guarantees that every `v ∈ R` with a neighbor
//! in `S` receives *some* neighbor's message with probability `1 − f`.
//!
//! Four interchangeable strategies are provided, selected by [`Sr`]:
//!
//! * [`Sr::Local`] — in the LOCAL model there are no collisions, so one
//!   slot suffices (`O(1)` time and energy).
//! * [`Sr::Decay`] — the decay algorithm of Bar-Yehuda, Goldreich and Itai
//!   for No-CD (Lemma 7): sweeps of exponentially decreasing transmission
//!   probabilities; `O(log Δ log 1/f)` time and energy.
//! * [`Sr::CdTransform`] — Lemma 8's generic transformation of a *uniform*
//!   single-hop leader-election schedule (from [`ebc_singlehop`]) into
//!   SR-communication for CD: `O(log Δ (log log Δ + log 1/f))` time but
//!   only `O(log log Δ + log 1/f)` energy, plus Remark 9's constant-energy
//!   relevance check.
//! * [`Sr::Tdma`] — collision-free scheduling over a coloring of `G + G²`
//!   (Theorem 3's simulation): sender energy 1, receiver energy ≤ Δ.
//!
//! All strategies keep the paper's energy accounting honest: a No-CD
//! receiver pays for every listening slot even when no neighbor transmits,
//! because it cannot know.

use ebc_radio::{Action, Feedback, Model, NodeId, Schedule, Sim, SlotBehavior, SparseSchedule};
use ebc_singlehop::{Obs, UniformLeaderElection};
use rand::Rng;

use crate::util::{ceil_log2, IdIndex, NodeRngs, RoleMap};

/// Wrapper distinguishing payload messages from Remark 9 relevance markers.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SrMsg<M> {
    Marker,
    Payload(M),
}

/// An SR-communication strategy with its parameters.
///
/// `delta` is the public maximum-degree bound Δ; the repetition parameters
/// control the failure probability `f` (`sweeps`/`epochs` `= Θ(log 1/f)`).
#[derive(Debug, Clone)]
pub enum Sr {
    /// One collision-free slot (LOCAL model only).
    Local,
    /// Decay for No-CD (Lemma 7).
    Decay {
        /// Maximum degree bound Δ.
        delta: usize,
        /// Number of decay sweeps (`Θ(log 1/f)`).
        sweeps: u32,
    },
    /// The Lemma 8 transformation for CD.
    CdTransform {
        /// Maximum degree bound Δ.
        delta: usize,
        /// Number of epochs (`Θ(log log Δ + log 1/f)`).
        epochs: u32,
        /// Run Remark 9's 2-slot relevance check so vertices with no
        /// counterpart drop out at `O(1)` energy.
        relevance_check: bool,
    },
    /// TDMA over a proper coloring of `G + G²` (Theorem 3).
    Tdma {
        /// `colors[v]` is the color of vertex `v`.
        colors: std::sync::Arc<Vec<u32>>,
        /// Number of colors (the TDMA frame length).
        num_colors: u32,
    },
}

impl Sr {
    /// The number of slots one invocation occupies on the global clock,
    /// whether or not any vertex participates (the schedule is public, so
    /// idle invocations still consume this much *time*).
    pub fn round_slots(&self) -> u64 {
        match self {
            Sr::Local => 1,
            Sr::Decay { delta, sweeps } => u64::from(*sweeps) * slots_per_sweep(*delta),
            Sr::CdTransform {
                delta,
                epochs,
                relevance_check,
            } => {
                let check = if *relevance_check { 2 } else { 0 };
                check + u64::from(*epochs) * slots_per_sweep(*delta)
            }
            Sr::Tdma { num_colors, .. } => u64::from(*num_colors),
        }
    }

    /// Runs one SR-communication instance.
    ///
    /// `senders` pairs each `S`-vertex with its message; `receivers` lists
    /// `R`. Returns, aligned with `receivers`, the message each receiver
    /// obtained (if any). Vertices outside `S ∪ R` idle and pay nothing.
    ///
    /// # Panics
    ///
    /// Panics if the strategy is incompatible with the simulation's
    /// collision model (e.g. [`Sr::Local`] outside [`Model::Local`]).
    pub fn run<M>(
        &self,
        sim: &mut Sim,
        senders: &[(NodeId, M)],
        receivers: &[NodeId],
        rngs: &mut NodeRngs,
    ) -> Vec<Option<M>>
    where
        M: Clone + core::fmt::Debug + PartialEq,
    {
        match self {
            Sr::Local => run_local(sim, senders, receivers),
            Sr::Decay { delta, sweeps } => {
                run_decay(sim, senders, receivers, *delta, *sweeps, rngs)
            }
            Sr::CdTransform {
                delta,
                epochs,
                relevance_check,
            } => run_cd(
                sim,
                senders,
                receivers,
                *delta,
                *epochs,
                *relevance_check,
                rngs,
            ),
            Sr::Tdma { colors, num_colors } => {
                run_tdma(sim, senders, receivers, colors, *num_colors)
            }
        }
    }
}

fn slots_per_sweep(delta: usize) -> u64 {
    // Transmission probabilities 2^0, 2^-1, …, 2^-⌈log2(Δ+1)⌉.
    u64::from(ceil_log2(delta.max(1) + 1)) + 1
}

fn run_local<M: Clone + core::fmt::Debug>(
    sim: &mut Sim,
    senders: &[(NodeId, M)],
    receivers: &[NodeId],
) -> Vec<Option<M>> {
    assert_eq!(sim.model(), Model::Local, "Sr::Local needs the LOCAL model");
    let mut got: Vec<Option<M>> = vec![None; receivers.len()];
    let roles = RoleMap::new(
        sim.graph().n(),
        senders.iter().map(|(v, _)| *v),
        receivers.iter().copied(),
    );
    let participants: Vec<NodeId> = senders
        .iter()
        .map(|(v, _)| *v)
        .chain(receivers.iter().copied())
        .collect();
    let mut behavior = ebc_radio::from_fns(
        |v, _t| {
            if let Some(si) = roles.sender(v) {
                Action::Send(senders[si].1.clone())
            } else {
                Action::Listen
            }
        },
        |v, _t, fb: Feedback<M>| {
            if let Feedback::Many(ms) = fb {
                if let Some(m) = ms.into_iter().next() {
                    got[roles.receiver(v).expect("listener is a receiver")] = Some(m);
                }
            }
        },
    );
    sim.drive(
        Schedule::Dense {
            participants: &participants,
            slots: 1,
        },
        &mut behavior,
    );
    drop(behavior);
    got
}

/// Shared state of one decay run, as a [`SlotBehavior`] so the act and
/// feedback paths can both touch `got`.
struct DecayBehavior<'a, M> {
    senders: &'a [(NodeId, M)],
    roles: RoleMap,
    got: Vec<Option<M>>,
    sweep_len: u64,
    rngs: &'a mut NodeRngs,
}

impl<M: Clone> SlotBehavior<M> for DecayBehavior<'_, M> {
    fn act(&mut self, v: NodeId, t: u64) -> Action<M> {
        if let Some(si) = self.roles.sender(v) {
            let i = (t % self.sweep_len) as i32;
            if self.rngs.get(v).gen_bool(0.5_f64.powi(i)) {
                Action::Send(self.senders[si].1.clone())
            } else {
                Action::Idle
            }
        } else if self.got[self.roles.receiver(v).expect("participant is S or R")].is_none() {
            Action::Listen
        } else {
            Action::Idle
        }
    }

    fn feedback(&mut self, v: NodeId, _t: u64, fb: Feedback<M>) {
        if let Feedback::One(m) = fb {
            let slot = &mut self.got[self.roles.receiver(v).expect("listener is a receiver")];
            if slot.is_none() {
                *slot = Some(m);
            }
        }
    }

    // Senders draw randomness every slot, so they can never skip; a
    // receiver that already holds a message is provably Idle (no
    // randomness) for the rest of the run and drops out of the wake queue.
    fn next_wake(&mut self, v: NodeId, t: u64) -> Option<u64> {
        match self.roles.receiver(v) {
            Some(ri) if self.got[ri].is_some() => None,
            _ => Some(t + 1),
        }
    }
}

fn run_decay<M: Clone + core::fmt::Debug>(
    sim: &mut Sim,
    senders: &[(NodeId, M)],
    receivers: &[NodeId],
    delta: usize,
    sweeps: u32,
    rngs: &mut NodeRngs,
) -> Vec<Option<M>> {
    let sweep_len = slots_per_sweep(delta);
    let total = u64::from(sweeps) * sweep_len;
    if receivers.is_empty() && senders.is_empty() {
        sim.skip(total);
        return Vec::new();
    }
    let participants: Vec<NodeId> = senders
        .iter()
        .map(|(v, _)| *v)
        .chain(receivers.iter().copied())
        .collect();
    let mut behavior = DecayBehavior {
        senders,
        roles: RoleMap::new(
            sim.graph().n(),
            senders.iter().map(|(v, _)| *v),
            receivers.iter().copied(),
        ),
        got: vec![None; receivers.len()],
        sweep_len,
        rngs,
    };
    sim.drive(
        Schedule::Dynamic {
            participants: &participants,
            slots: total,
        },
        &mut behavior,
    );
    behavior.got
}

#[allow(clippy::too_many_arguments)]
fn run_cd<M>(
    sim: &mut Sim,
    senders: &[(NodeId, M)],
    receivers: &[NodeId],
    delta: usize,
    epochs: u32,
    relevance_check: bool,
    rngs: &mut NodeRngs,
) -> Vec<Option<M>>
where
    M: Clone + core::fmt::Debug + PartialEq,
{
    assert!(
        matches!(sim.model(), Model::Cd | Model::CdStar),
        "Sr::CdTransform needs collision detection"
    );
    let sweep_len = slots_per_sweep(delta);
    let mut active_s: Vec<bool> = vec![true; senders.len()];
    let mut active_r: Vec<bool> = vec![true; receivers.len()];

    // Remark 9: in CD, one slot where S transmits and R listens tells every
    // receiver whether it has any S-neighbor (noise and messages are both
    // "activity"); a second, mirrored slot tells every sender whether it has
    // any R-neighbor. Irrelevant vertices then idle for the main phase,
    // paying O(1) instead of O(epochs).
    if relevance_check {
        run_marker_slot(
            sim,
            senders.iter().map(|(v, _)| *v),
            receivers,
            &mut active_r,
        );
        let sender_ids: Vec<NodeId> = senders.iter().map(|(v, _)| *v).collect();
        let mut sender_active_flags = active_s.clone();
        run_marker_slot(
            sim,
            receivers.iter().copied(),
            &sender_ids,
            &mut sender_active_flags,
        );
        active_s = sender_active_flags;
    }

    let participants: Vec<NodeId> = senders
        .iter()
        .map(|(v, _)| *v)
        .chain(receivers.iter().copied())
        .collect();
    let mut behavior = CdBehavior {
        senders,
        roles: RoleMap::new(
            sim.graph().n(),
            senders.iter().map(|(v, _)| *v),
            receivers.iter().copied(),
        ),
        got: vec![None; receivers.len()],
        active_s,
        active_r,
        // Each receiver privately simulates the uniform leader-election
        // schedule: in epoch e it listens only at the slot matching its
        // current exponent k_e.
        scheds: receivers
            .iter()
            .map(|_| UniformLeaderElection::new(delta.max(1)))
            .collect(),
        sends: vec![[0; 2]; senders.len()],
        sends_len: vec![0; senders.len()],
        sends_next: vec![0; senders.len()],
        cur_epoch: vec![0; senders.len()],
        epochs: u64::from(epochs),
        sweep_len,
        rngs,
    };
    // All epochs are one dynamic primitive (epoch boundaries live inside
    // the behavior): irrelevant or satisfied vertices drop out of the wake
    // queue once instead of being re-seeded per epoch, so the whole call
    // costs O(|S| + |R|) setup plus the genuinely active polls — the
    // difference that lets the Theorem 12 casts keep their huge
    // participant sets at n = 10^6.
    sim.drive(
        Schedule::Dynamic {
            participants: &participants,
            slots: u64::from(epochs) * sweep_len,
        },
        &mut behavior,
    );
    behavior.got
}

/// State of one Lemma 8 run.
struct CdBehavior<'a, M> {
    senders: &'a [(NodeId, M)],
    roles: RoleMap,
    got: Vec<Option<M>>,
    active_s: Vec<bool>,
    active_r: Vec<bool>,
    scheds: Vec<UniformLeaderElection>,
    /// Predetermined absolute send slots of epoch `cur_epoch[si]`:
    /// `sends[si][..sends_len[si]]`, with `sends_next[si]` consumed so far.
    ///
    /// Slot i of an epoch (1-based) transmits with probability 2^{-i}, at
    /// most twice per epoch, so whichever slot a receiver samples sees the
    /// uniform probability it expects. The Bernoulli draws of one epoch are
    /// batched at the epoch boundary — per-node draw order is identical to
    /// drawing slot-by-slot (each draw stops being made once two sends are
    /// fixed, exactly like the in-slot early-out) — which lets a sender
    /// wake only at its actual send slots instead of polling every slot.
    sends: Vec<[u64; 2]>,
    sends_len: Vec<u8>,
    sends_next: Vec<u8>,
    cur_epoch: Vec<u64>,
    epochs: u64,
    sweep_len: u64,
    rngs: &'a mut NodeRngs,
}

impl<M: Clone> CdBehavior<'_, M> {
    /// Draws sender `si`'s send slots for `epoch` (consuming exactly the
    /// Bernoulli draws the slot-by-slot protocol would).
    fn draw_sends(&mut self, v: NodeId, si: usize, epoch: u64) {
        self.cur_epoch[si] = epoch;
        let mut len = 0u8;
        let rng = self.rngs.get(v);
        for slot in 0..self.sweep_len {
            if rng.gen_bool(0.5_f64.powi(slot as i32 + 1)) {
                self.sends[si][usize::from(len)] = epoch * self.sweep_len + slot;
                len += 1;
                if len == 2 {
                    break;
                }
            }
        }
        self.sends_len[si] = len;
        self.sends_next[si] = 0;
    }

    /// The sender's next send slot, drawing further epochs as needed; the
    /// returned slot is consumed (it becomes the sender's next wake).
    fn next_send_wake(&mut self, v: NodeId, si: usize) -> Option<u64> {
        loop {
            if self.sends_next[si] < self.sends_len[si] {
                let t = self.sends[si][usize::from(self.sends_next[si])];
                self.sends_next[si] += 1;
                return Some(t);
            }
            let next_epoch = self.cur_epoch[si] + 1;
            if next_epoch >= self.epochs {
                return None;
            }
            self.draw_sends(v, si, next_epoch);
        }
    }
}

impl<M: Clone> SlotBehavior<SrMsg<M>> for CdBehavior<'_, M> {
    fn act(&mut self, v: NodeId, t: u64) -> Action<SrMsg<M>> {
        let slot = t % self.sweep_len;
        if let Some(si) = self.roles.sender(v) {
            // A sender is only ever woken at one of its predetermined send
            // slots.
            debug_assert!(self.active_s[si]);
            debug_assert!(self.sends[si][..usize::from(self.sends_len[si])].contains(&t));
            Action::Send(SrMsg::Payload(self.senders[si].1.clone()))
        } else {
            let ri = self.roles.receiver(v).expect("participant is S or R");
            if !self.active_r[ri] || self.got[ri].is_some() {
                return Action::Idle;
            }
            let k = self.scheds[ri].k().clamp(1, self.sweep_len as u32);
            if slot + 1 == u64::from(k) {
                Action::Listen
            } else {
                Action::Idle
            }
        }
    }

    fn feedback(&mut self, v: NodeId, _t: u64, fb: Feedback<SrMsg<M>>) {
        let ri = self.roles.receiver(v).expect("listener is a receiver");
        let obs = match fb {
            Feedback::One(SrMsg::Payload(m)) => {
                self.got[ri] = Some(m);
                Obs::Unique
            }
            Feedback::One(SrMsg::Marker) => Obs::Unique,
            Feedback::Noise | Feedback::Beep => Obs::Noise,
            Feedback::Silence => Obs::Silence,
            Feedback::Many(_) => unreachable!("CD never delivers Many"),
        };
        // A receiver listens once per epoch, so its single observation
        // feeds the leader-election schedule immediately.
        self.scheds[ri].observe(obs);
    }

    // Across the whole run: an inactive or satisfied sender/receiver never
    // enters the wake queue, an active sender wakes only at its
    // predetermined send slots (epochs' draws are batched at the
    // boundary), and an active receiver wakes only at its one sampled slot
    // `k_e - 1` of each epoch.
    fn first_wake(&mut self, v: NodeId) -> Option<u64> {
        if let Some(si) = self.roles.sender(v) {
            if !self.active_s[si] {
                return None;
            }
            self.draw_sends(v, si, 0);
            self.next_send_wake(v, si)
        } else {
            let ri = self.roles.receiver(v).expect("participant is S or R");
            if !self.active_r[ri] || self.got[ri].is_some() {
                return None;
            }
            let k = self.scheds[ri].k().clamp(1, self.sweep_len as u32);
            Some(u64::from(k) - 1)
        }
    }

    fn next_wake(&mut self, v: NodeId, t: u64) -> Option<u64> {
        let epoch = t / self.sweep_len;
        if let Some(si) = self.roles.sender(v) {
            self.next_send_wake(v, si)
        } else {
            let ri = self.roles.receiver(v).expect("participant is S or R");
            if !self.active_r[ri] || self.got[ri].is_some() {
                return None;
            }
            // `feedback` already observed this epoch's outcome, so `k` is
            // next epoch's sampled slot.
            let k = self.scheds[ri].k().clamp(1, self.sweep_len as u32);
            Some((epoch + 1) * self.sweep_len + u64::from(k) - 1)
        }
    }
}

/// One Remark 9 marker slot: everyone in `markers` transmits a marker,
/// everyone in `checkers` listens; `active[i]` is cleared for checkers that
/// hear true silence (no counterpart in range).
fn run_marker_slot(
    sim: &mut Sim,
    markers: impl Iterator<Item = NodeId>,
    checkers: &[NodeId],
    active: &mut [bool],
) {
    let marker_ids: Vec<NodeId> = markers.collect();
    let roles = RoleMap::new(
        sim.graph().n(),
        marker_ids.iter().copied(),
        checkers.iter().copied(),
    );
    let participants: Vec<NodeId> = marker_ids
        .iter()
        .copied()
        .chain(checkers.iter().copied())
        .collect();
    let mut behavior = ebc_radio::from_fns(
        |v, _t| {
            if roles.sender(v).is_some() {
                Action::Send(SrMsg::<u8>::Marker)
            } else {
                Action::Listen
            }
        },
        |v, _t, fb: Feedback<SrMsg<u8>>| {
            if matches!(fb, Feedback::Silence) {
                active[roles.receiver(v).expect("listener is a checker")] = false;
            }
        },
    );
    sim.drive(
        Schedule::Dense {
            participants: &participants,
            slots: 1,
        },
        &mut behavior,
    );
}

/// State of one TDMA round.
struct TdmaBehavior<'a, M> {
    senders: &'a [(NodeId, M)],
    send_index: IdIndex,
    recv_index: IdIndex,
    got: Vec<Option<M>>,
    colors: &'a [u32],
}

impl<M: Clone> SlotBehavior<M> for TdmaBehavior<'_, M> {
    fn act(&mut self, v: NodeId, t: u64) -> Action<M> {
        let c = t as u32;
        if let Some(si) = self.send_index.get(v) {
            if self.colors[v] == c {
                return Action::Send(self.senders[si].1.clone());
            }
            Action::Idle
        } else {
            // Only scheduled in slots matching a neighbor's color — the
            // listen schedule every vertex knows after Learn-Degree +
            // coloring — so listen unless the message already arrived.
            if self.got[self.recv_index.get(v).expect("participant is S or R")].is_none() {
                return Action::Listen;
            }
            Action::Idle
        }
    }

    fn feedback(&mut self, v: NodeId, _t: u64, fb: Feedback<M>) {
        let m = match fb {
            Feedback::One(m) => Some(m),
            Feedback::Many(ms) => ms.into_iter().next(),
            _ => None,
        };
        if let Some(m) = m {
            let slot = &mut self.got[self.recv_index.get(v).expect("listener is a receiver")];
            if slot.is_none() {
                *slot = Some(m);
            }
        }
    }
}

fn run_tdma<M: Clone + core::fmt::Debug>(
    sim: &mut Sim,
    senders: &[(NodeId, M)],
    receivers: &[NodeId],
    colors: &[u32],
    num_colors: u32,
) -> Vec<Option<M>> {
    // The TDMA schedule is public: slot `c` can only carry color class `c`,
    // and a receiver only ever listens in its neighbors' color slots. Build
    // that sparse schedule once and let the engine batch-skip every other
    // slot instead of polling all participants through the whole frame.
    let sender_set: std::collections::HashSet<NodeId> = senders.iter().map(|(v, _)| *v).collect();
    let mut per_slot: Vec<Vec<NodeId>> = vec![Vec::new(); num_colors as usize];
    for &(v, _) in senders {
        per_slot[colors[v] as usize].push(v);
    }
    let mut seen = vec![false; num_colors as usize];
    for &r in receivers {
        if sender_set.contains(&r) {
            continue; // senders never listen in a TDMA round
        }
        for c in seen.iter_mut() {
            *c = false;
        }
        for u in sim.graph().neighbors(r) {
            let c = colors[u] as usize;
            if !seen[c] {
                seen[c] = true;
                per_slot[c].push(r);
            }
        }
    }
    let mut schedule = SparseSchedule::new();
    for (c, ps) in per_slot.into_iter().enumerate() {
        if !ps.is_empty() {
            schedule.push(c as u64, ps);
        }
    }
    let mut behavior = TdmaBehavior {
        senders,
        send_index: IdIndex::new(senders.iter().map(|(v, _)| *v)),
        recv_index: IdIndex::new(receivers.iter().copied()),
        got: vec![None; receivers.len()],
        colors,
    };
    sim.drive(
        Schedule::Sparse {
            schedule: &schedule,
            slots: u64::from(num_colors),
        },
        &mut behavior,
    );
    behavior.got
}

/// Deterministic LOCAL SR-communication delivering *all* messages: one
/// slot in which every sender transmits and every receiver hears the full
/// multiset (Appendix A: "in deterministic LOCAL ... each vertex in R can
/// obtain all messages sent from N⁺(v) ∩ S").
///
/// Returns, aligned with `receivers`, the messages heard (sender-id order).
/// A receiver that is also a sender additionally hears its own message.
///
/// # Panics
///
/// Panics if the model is not [`Model::Local`].
pub fn local_gather<M: Clone + core::fmt::Debug>(
    sim: &mut Sim,
    senders: &[(NodeId, M)],
    receivers: &[NodeId],
) -> Vec<Vec<M>> {
    assert_eq!(sim.model(), Model::Local, "local_gather needs LOCAL");
    if senders.is_empty() && receivers.is_empty() {
        sim.skip(1);
        return Vec::new();
    }
    let sender_of: std::collections::HashMap<NodeId, M> = senders.iter().cloned().collect();
    let recv_index: std::collections::HashMap<NodeId, usize> =
        receivers.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut got: Vec<Vec<M>> = vec![Vec::new(); receivers.len()];
    // Senders that also receive use full duplex; they hear neighbors but
    // not themselves, so their own message is appended afterwards.
    let participants: Vec<NodeId> = senders
        .iter()
        .map(|(v, _)| *v)
        .filter(|v| !recv_index.contains_key(v))
        .chain(receivers.iter().copied())
        .collect();
    let mut behavior = ebc_radio::from_fns(
        |v, _t| match (sender_of.get(&v), recv_index.contains_key(&v)) {
            (Some(m), true) => Action::SendListen(m.clone()),
            (Some(m), false) => Action::Send(m.clone()),
            (None, _) => Action::Listen,
        },
        |v, _t, fb: Feedback<M>| {
            if let Feedback::Many(ms) = fb {
                got[recv_index[&v]] = ms;
            }
        },
    );
    sim.drive(
        Schedule::Dense {
            participants: &participants,
            slots: 1,
        },
        &mut behavior,
    );
    drop(behavior);
    for (i, &v) in receivers.iter().enumerate() {
        if let Some(m) = sender_of.get(&v) {
            got[i].push(m.clone());
        }
    }
    got
}

/// Deterministic SR-communication in CD (Lemma 24).
///
/// Messages are integers in `0..msg_space`. `S` and `R` need not be
/// disjoint; each `v ∈ R` with `N⁺(v) ∩ S ≠ ∅` learns
/// `f_v = min { m_u : u ∈ N⁺(v) ∩ S }` — exactly, with zero failure
/// probability — by binary-searching the bits of `f_v`: at level `x` the
/// slot block has one slot per `(x+1)`-bit prefix; senders transmit at
/// their prefix's slot, and collision detection lets a listener test
/// whether the `p_x(f_v)‖0` branch is occupied.
///
/// Time `O(msg_space)`, per-vertex energy `O(log msg_space)`.
///
/// Returns, aligned with `receivers`, `Some(f_v)` or `None` (no sender in
/// `N⁺(v)`).
///
/// # Panics
///
/// Panics if the model lacks collision detection or a message is out of
/// range.
pub fn det_sr(
    sim: &mut Sim,
    senders: &[(NodeId, u64)],
    receivers: &[NodeId],
    msg_space: u64,
) -> Vec<Option<u64>> {
    assert!(
        matches!(sim.model(), Model::Cd | Model::CdStar),
        "det_sr needs collision detection"
    );
    assert!(msg_space >= 1);
    for (v, m) in senders {
        assert!(*m < msg_space, "message {m} of {v} out of 0..{msg_space}");
    }
    let bits = if msg_space == 1 {
        1
    } else {
        ceil_log2(msg_space as usize)
    };
    let sender_of: std::collections::HashMap<NodeId, u64> = senders.iter().cloned().collect();
    // prefix[ri]: the bits of f_v learned so far; alive[ri]: whether any
    // occupied slot has been seen (i.e. N+(v) ∩ S ≠ ∅ is still possible).
    let mut prefix: Vec<u64> = vec![0; receivers.len()];
    let mut alive: Vec<bool> = vec![true; receivers.len()];
    let recv_index: std::collections::HashMap<NodeId, usize> =
        receivers.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    for x in 0..bits {
        let level_bits = x + 1;
        let level_slots = 1u64 << level_bits;
        // occupied0[ri]: whether the prefix‖0 slot had activity this level.
        let mut heard0: Vec<bool> = vec![false; receivers.len()];
        let mut heard1: Vec<bool> = vec![false; receivers.len()];
        // Only slots where someone acts are simulated; the rest of the
        // level block advances the clock untouched (the schedule is
        // public, so this is exact).
        let mut by_slot: std::collections::BTreeMap<u64, (Vec<NodeId>, Vec<NodeId>)> =
            Default::default();
        for (v, m) in senders {
            by_slot
                .entry(m >> (bits - level_bits))
                .or_default()
                .0
                .push(*v);
        }
        for (ri, &v) in receivers.iter().enumerate() {
            if !alive[ri] {
                continue;
            }
            let base = prefix[ri] << 1;
            // Listening at a slot occupied by our own message is pointless
            // (and impossible while sending); our own slot is
            // known-occupied instead.
            let own = sender_of.get(&v).map(|m| m >> (bits - level_bits));
            if own != Some(base) {
                by_slot.entry(base).or_default().1.push(v);
            }
            if own != Some(base + 1) {
                by_slot.entry(base + 1).or_default().1.push(v);
            }
        }
        let mut consumed = 0u64;
        for (t, (slot_senders, slot_listeners)) in by_slot {
            sim.skip(t - consumed);
            consumed = t + 1;
            let sender_set: std::collections::HashSet<NodeId> =
                slot_senders.iter().copied().collect();
            let mut behavior = ebc_radio::from_fns(
                |v, _lt| {
                    if sender_set.contains(&v) {
                        Action::Send(1u8)
                    } else {
                        Action::Listen
                    }
                },
                |v, _lt, fb: Feedback<u8>| {
                    let ri = recv_index[&v];
                    let occupied = !matches!(fb, Feedback::Silence);
                    let base = prefix[ri] << 1;
                    if t == base {
                        heard0[ri] = occupied;
                    } else if t == base + 1 {
                        heard1[ri] = occupied;
                    }
                },
            );
            let slot_participants: Vec<NodeId> = slot_senders
                .iter()
                .copied()
                .chain(
                    slot_listeners
                        .iter()
                        .copied()
                        .filter(|v| !sender_set.contains(v)),
                )
                .collect();
            sim.drive(
                Schedule::Dense {
                    participants: &slot_participants,
                    slots: 1,
                },
                &mut behavior,
            );
        }
        sim.skip(level_slots - consumed);
        for (ri, &v) in receivers.iter().enumerate() {
            if !alive[ri] {
                continue;
            }
            let own = sender_of.get(&v).map(|m| m >> (bits - level_bits));
            let base = prefix[ri] << 1;
            let occ0 = heard0[ri] || own == Some(base);
            let occ1 = heard1[ri] || own == Some(base + 1);
            if occ0 {
                prefix[ri] = base;
            } else if occ1 {
                prefix[ri] = base + 1;
            } else {
                alive[ri] = false;
            }
        }
    }
    receivers
        .iter()
        .enumerate()
        .map(|(ri, _)| alive[ri].then_some(prefix[ri]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_graphs::deterministic::{complete_bipartite, k2k, star};
    use ebc_radio::{Model, Sim};

    fn rngs(n: usize) -> NodeRngs {
        NodeRngs::new(77, n, 1)
    }

    #[test]
    fn local_sr_one_slot() {
        let g = star(3);
        let mut sim = Sim::new(g, Model::Local, 0);
        let senders = vec![(1usize, "a"), (2, "b")];
        let got = Sr::Local.run(&mut sim, &senders, &[0], &mut rngs(4));
        assert!(got[0].is_some());
        assert_eq!(sim.now(), 1);
        assert_eq!(sim.meter().max_energy(), 1);
    }

    #[test]
    fn decay_sr_delivers_from_single_sender() {
        let g = star(1);
        let mut sim = Sim::new(g, Model::NoCd, 3);
        let got = Sr::Decay {
            delta: 1,
            sweeps: 8,
        }
        .run(&mut sim, &[(1usize, 42u32)], &[0], &mut rngs(2));
        assert_eq!(got[0], Some(42));
    }

    #[test]
    fn decay_sr_resolves_contention_whp() {
        // Hub listens; 16 leaves all want to deliver. One decay run with
        // enough sweeps succeeds essentially always.
        let g = star(16);
        let mut fails = 0;
        for seed in 0..30u64 {
            let mut sim = Sim::new(g.clone(), Model::NoCd, seed);
            let senders: Vec<(NodeId, u32)> = (1..=16).map(|v| (v, v as u32)).collect();
            let mut r = NodeRngs::new(seed, 17, 1);
            let got = Sr::Decay {
                delta: 16,
                sweeps: 20,
            }
            .run(&mut sim, &senders, &[0], &mut r);
            if got[0].is_none() {
                fails += 1;
            }
        }
        assert_eq!(fails, 0);
    }

    #[test]
    fn decay_sr_energy_matches_lemma7() {
        let g = star(8);
        let mut sim = Sim::new(g, Model::NoCd, 1);
        let senders: Vec<(NodeId, u8)> = (1..=8).map(|v| (v, 1u8)).collect();
        let sr = Sr::Decay {
            delta: 8,
            sweeps: 10,
        };
        let total = sr.round_slots();
        sr.run(&mut sim, &senders, &[0], &mut rngs(9));
        // The receiver listens at most the full round; senders pay at most
        // one send per slot.
        assert!(sim.meter().energy(0) <= total);
        assert_eq!(sim.now(), total);
    }

    #[test]
    fn decay_receivers_pay_even_without_senders() {
        // No-CD receivers cannot detect absence of senders.
        let g = star(2);
        let mut sim = Sim::new(g, Model::NoCd, 1);
        let sr = Sr::Decay {
            delta: 2,
            sweeps: 4,
        };
        let got = sr.run::<u8>(&mut sim, &[], &[1, 2], &mut rngs(3));
        assert_eq!(got, vec![None, None]);
        assert_eq!(sim.meter().energy(1), sr.round_slots());
    }

    #[test]
    fn cd_sr_delivers_and_saves_receiver_energy() {
        let g = star(64);
        let mut sim = Sim::new(g, Model::Cd, 5);
        let senders: Vec<(NodeId, u32)> = (1..=64).map(|v| (v, v as u32)).collect();
        let sr = Sr::CdTransform {
            delta: 64,
            epochs: 40,
            relevance_check: false,
        };
        let got = sr.run(&mut sim, &senders, &[0], &mut rngs(65));
        assert!(got[0].is_some());
        // Receiver listens once per epoch at most.
        assert!(sim.meter().energy(0) <= 40);
        // Senders transmit at most twice per epoch.
        for v in 1..=64 {
            assert!(sim.meter().energy(v) <= 80);
        }
    }

    #[test]
    fn cd_sr_relevance_check_drops_lonely_vertices() {
        // K_{2,k}: middles 2..k+2 see both s=0 and t=1. Sender s, receiver
        // t has no S-neighbor (s–t not adjacent) so after the relevance
        // check t pays O(1).
        let g = k2k(8);
        let mut sim = Sim::new(g, Model::Cd, 9);
        let sr = Sr::CdTransform {
            delta: 8,
            epochs: 30,
            relevance_check: true,
        };
        let got = sr.run(&mut sim, &[(0usize, 7u8)], &[1], &mut rngs(10));
        // t cannot receive: its only potential senders are the middles.
        assert_eq!(got[0], None);
        assert!(
            sim.meter().energy(1) <= 2,
            "irrelevant receiver paid {}",
            sim.meter().energy(1)
        );
    }

    #[test]
    fn cd_sr_succeeds_across_bipartite_contention() {
        let g = complete_bipartite(10, 10);
        let mut ok = 0;
        for seed in 0..20u64 {
            let mut sim = Sim::new(g.clone(), Model::Cd, seed);
            let senders: Vec<(NodeId, u32)> = (0..10).map(|v| (v, v as u32)).collect();
            let receivers: Vec<NodeId> = (10..20).collect();
            let mut r = NodeRngs::new(seed ^ 1, 20, 2);
            let got = Sr::CdTransform {
                delta: 10,
                epochs: 30,
                relevance_check: false,
            }
            .run(&mut sim, &senders, &receivers, &mut r);
            if got.iter().all(|g| g.is_some()) {
                ok += 1;
            }
        }
        assert!(ok >= 19, "{ok}/20");
    }

    #[test]
    fn tdma_sr_is_collision_free_and_cheap() {
        // Path 0-1-2 colored 0,1,2 (a proper G+G² coloring).
        let g = ebc_graphs::deterministic::path(3);
        let mut sim = Sim::new(g, Model::NoCd, 0);
        let colors = std::sync::Arc::new(vec![0u32, 1, 2]);
        let sr = Sr::Tdma {
            colors,
            num_colors: 3,
        };
        let got = sr.run(&mut sim, &[(0usize, 5u8), (2, 6u8)], &[1], &mut rngs(3));
        // Receiver hears one of them (its two neighbors have distinct
        // colors, so no collision).
        assert!(got[0].is_some());
        assert!(sim.meter().energy(1) <= 2);
        assert_eq!(sim.now(), 3);
    }

    #[test]
    fn det_sr_learns_minimum_exactly() {
        let g = star(5);
        let mut sim = Sim::new(g, Model::Cd, 0);
        let senders: Vec<(NodeId, u64)> = vec![(1, 9), (2, 4), (3, 12), (4, 4)];
        let got = det_sr(&mut sim, &senders, &[0], 16);
        assert_eq!(got[0], Some(4));
    }

    #[test]
    fn det_sr_handles_self_in_both_sets() {
        // Receiver 0 is also a sender with the minimum message: N+ includes
        // itself.
        let g = star(2);
        let mut sim = Sim::new(g, Model::Cd, 0);
        let senders: Vec<(NodeId, u64)> = vec![(0, 3), (1, 7)];
        let got = det_sr(&mut sim, &senders, &[0], 8);
        assert_eq!(got[0], Some(3));
    }

    #[test]
    fn det_sr_reports_no_sender() {
        let g = ebc_graphs::deterministic::path(3);
        let mut sim = Sim::new(g, Model::Cd, 0);
        // Sender at 0; receiver at 2 has no sender in N+.
        let got = det_sr(&mut sim, &[(0, 1)], &[1, 2], 4);
        assert_eq!(got[0], Some(1));
        assert_eq!(got[1], None);
    }

    #[test]
    fn det_sr_energy_logarithmic_in_message_space() {
        let g = star(32);
        let mut sim = Sim::new(g, Model::Cd, 0);
        let senders: Vec<(NodeId, u64)> = (1..=32).map(|v| (v, v as u64 * 7 % 256)).collect();
        det_sr(&mut sim, &senders, &[0], 256);
        // Receiver: ≤ 2 listens per level, 8 levels.
        assert!(sim.meter().energy(0) <= 16, "{}", sim.meter().energy(0));
        // Senders: 1 send per level.
        assert!(sim.meter().energy(1) <= 8);
    }

    #[test]
    fn det_sr_is_deterministic() {
        let g = star(6);
        let senders: Vec<(NodeId, u64)> = vec![(1, 5), (3, 2), (6, 9)];
        let mut s1 = Sim::new(g.clone(), Model::Cd, 1);
        let mut s2 = Sim::new(g, Model::Cd, 999);
        assert_eq!(
            det_sr(&mut s1, &senders, &[0], 16),
            det_sr(&mut s2, &senders, &[0], 16)
        );
    }

    #[test]
    fn round_slots_accounting() {
        assert_eq!(Sr::Local.round_slots(), 1);
        let d = Sr::Decay {
            delta: 7,
            sweeps: 3,
        };
        assert_eq!(d.round_slots(), 3 * 4); // ⌈log2 8⌉ + 1 = 4
        let c = Sr::CdTransform {
            delta: 7,
            epochs: 5,
            relevance_check: true,
        };
        assert_eq!(c.round_slots(), 2 + 5 * 4);
    }
}
