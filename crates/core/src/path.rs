//! The path algorithm (paper §8, Algorithm 1, Theorem 21).
//!
//! Broadcast on an `n`-vertex path in worst-case time `2n` with expected
//! per-vertex energy `O(log n)` — both optimal to constant factors.
//!
//! Each vertex samples a *blocking time* `B = 2^b` with `P(b = i) = 2^{-i}`
//! (capped at `n`). At slot 1 it announces when it will next transmit and
//! learns the same from its upstream neighbor; until slot `B` it *blocks*:
//! sync messages only reschedule its listen alarm. From slot `B` on it
//! *forwards*: every message received at a listen alarm is retransmitted one
//! slot later, so the payload advances one hop per slot except where still
//! blocked. Vertices with large `B` shield downstream vertices from
//! synchronization traffic, which is what caps the expected number of
//! messages any vertex handles at `O(log n)` (Lemmas 22, 23).
//!
//! The orientation-free variant runs two mirrored instances per vertex
//! (upstream = lower / higher neighbor) bundled into single transmissions —
//! the LOCAL model allows this with only a doubling of energy. A dead-end
//! marker from the path's endpoints retires the instance that never sees
//! the payload.

use ebc_radio::{Action, EventEngine, Feedback, Model, NextWake, NodeId, Protocol, Slot};
use rand::Rng;

use crate::util::NodeRngs;

/// Per-instance message content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Content {
    /// "Next message after `delay` timesteps."
    Sync {
        /// Slots until this sender's next transmission.
        delay: u64,
    },
    /// The broadcast payload.
    Payload,
    /// Nothing will ever arrive from this direction (endpoint marker).
    DeadEnd,
}

/// One transmission: contents for the rightward and leftward instances,
/// bundled (LOCAL messages have unbounded size).
#[derive(Debug, Clone, PartialEq, Eq)]
struct PathMsg {
    from: NodeId,
    /// Content of the rightward instance (upstream = lower neighbor).
    r: Option<Content>,
    /// Content of the leftward instance (upstream = higher neighbor).
    l: Option<Content>,
}

/// Which instance a vertex is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// Payload flows low → high; upstream is `v − 1`.
    Right,
    /// Payload flows high → low; upstream is `v + 1`.
    Left,
}

#[derive(Debug, Clone)]
struct Inst {
    dir: Dir,
    /// Blocking time `B`.
    b: Slot,
    listen_alarm: Option<Slot>,
    /// Message stored while blocking, to transmit at `B`.
    stored: Option<Content>,
    /// A forward scheduled for this slot (forwarding mode).
    forward: Option<(Slot, Content)>,
    /// Set once the slot-`B` transmission has happened.
    fired_b: bool,
    done: bool,
}

impl Inst {
    fn next_wake(&self) -> Option<Slot> {
        if self.done {
            return None;
        }
        let mut t: Option<Slot> = None;
        let mut consider = |x: Option<Slot>| {
            if let Some(x) = x {
                t = Some(t.map_or(x, |y: Slot| y.min(x)));
            }
        };
        if !self.fired_b {
            consider(Some(self.b));
        }
        consider(self.listen_alarm);
        consider(self.forward.map(|(s, _)| s));
        t
    }
}

/// Statistics of one path-broadcast run.
#[derive(Debug, Clone)]
pub struct PathRunStats {
    /// Whether every vertex received the payload.
    pub all_informed: bool,
    /// Slot at which each vertex first held the payload (source: 0).
    pub delivery_slot: Vec<Option<Slot>>,
    /// The latest payload delivery slot — the broadcast's completion time.
    pub delivery_time: Slot,
    /// Slot of the last protocol action (quiescence; ≥ `delivery_time`).
    pub quiescence: Slot,
}

/// The Algorithm 1 protocol over the event engine.
struct PathProtocol {
    n: usize,
    source: NodeId,
    oriented: bool,
    insts: Vec<Vec<Inst>>,
    got_payload: Vec<Option<Slot>>,
    source_done: bool,
}

impl PathProtocol {
    fn new(
        n: usize,
        source: NodeId,
        oriented: bool,
        cap: Option<u64>,
        rngs: &mut NodeRngs,
    ) -> Self {
        let mut insts: Vec<Vec<Inst>> = Vec::with_capacity(n);
        for v in 0..n {
            let mut list = Vec::new();
            if v != source {
                let dirs: &[Dir] = if oriented {
                    &[Dir::Right]
                } else {
                    &[Dir::Right, Dir::Left]
                };
                for &dir in dirs {
                    let b = sample_blocking_time(rngs.get(v), cap);
                    list.push(Inst {
                        dir,
                        b,
                        listen_alarm: Some(1),
                        stored: None,
                        forward: None,
                        fired_b: false,
                        done: false,
                    });
                }
            }
            insts.push(list);
        }
        PathProtocol {
            n,
            source,
            oriented,
            insts,
            got_payload: vec![None; n],
            source_done: false,
        }
    }

    fn upstream(&self, v: NodeId, dir: Dir) -> Option<NodeId> {
        match dir {
            Dir::Right => v.checked_sub(1),
            Dir::Left => (v + 1 < self.n).then_some(v + 1),
        }
    }

    fn downstream(&self, v: NodeId, dir: Dir) -> Option<NodeId> {
        match dir {
            Dir::Right => (v + 1 < self.n).then_some(v + 1),
            Dir::Left => v.checked_sub(1),
        }
    }

    /// What instance `i` of `v` transmits at slot `now`, if anything.
    fn pending_send(&self, v: NodeId, i: usize, now: Slot) -> Option<Content> {
        let inst = &self.insts[v][i];
        if inst.done {
            return None;
        }
        if let Some((s, c)) = inst.forward {
            if s == now {
                return Some(c);
            }
        }
        if !inst.fired_b && inst.b == now {
            // The slot-B transmission: payload/dead-end if stored, else a
            // sync pointing one slot after our next listen alarm.
            return Some(match inst.stored {
                Some(c) => c,
                None => match inst.listen_alarm {
                    Some(a) => Content::Sync {
                        delay: (a + 1).saturating_sub(now).max(1),
                    },
                    // Nothing will ever arrive (no upstream): retire the
                    // direction.
                    None => Content::DeadEnd,
                },
            });
        }
        None
    }
}

fn sample_blocking_time(rng: &mut impl Rng, cap: Option<u64>) -> Slot {
    let mut b = 1u32;
    while rng.gen_bool(0.5) {
        b += 1;
        if b >= 62 {
            break;
        }
    }
    let raw = 1u64 << b;
    match cap {
        Some(n) => raw.min(n.next_power_of_two()),
        None => raw,
    }
}

impl Protocol<PathMsg> for PathProtocol {
    fn first_wake(&mut self, _v: NodeId) -> NextWake {
        // Everyone acts at slot 1: the source transmits the payload, all
        // others announce their blocking time and listen.
        NextWake::At(1)
    }

    fn on_wake(&mut self, v: NodeId, now: Slot) -> Action<PathMsg> {
        if v == self.source {
            if now == 1 && !self.source_done {
                self.got_payload[v] = Some(0);
                return Action::Send(PathMsg {
                    from: v,
                    r: Some(Content::Payload),
                    l: if self.oriented {
                        None
                    } else {
                        Some(Content::Payload)
                    },
                });
            }
            return Action::Idle;
        }
        let mut r_content = None;
        let mut l_content = None;
        let mut listens = false;
        for i in 0..self.insts[v].len() {
            let inst = &self.insts[v][i];
            if inst.done {
                continue;
            }
            if now == 1 {
                // Initial announcement: "next message after B − 1".
                let c = Content::Sync { delay: inst.b - 1 };
                match inst.dir {
                    Dir::Right => r_content = Some(c),
                    Dir::Left => l_content = Some(c),
                }
                listens = true;
                continue;
            }
            if let Some(c) = self.pending_send(v, i, now) {
                match inst.dir {
                    Dir::Right => r_content = Some(c),
                    Dir::Left => l_content = Some(c),
                }
            }
            if inst.listen_alarm == Some(now) {
                listens = true;
            }
        }
        let sends = r_content.is_some() || l_content.is_some();
        let msg = PathMsg {
            from: v,
            r: r_content,
            l: l_content,
        };
        match (sends, listens) {
            (true, true) => Action::SendListen(msg),
            (true, false) => Action::Send(msg),
            (false, true) => Action::Listen,
            (false, false) => Action::Idle,
        }
    }

    // Index loop kept: the body borrows `self` (downstream, got_payload)
    // while mutating `self.insts[v][i]`, which `iter_mut` would forbid.
    #[allow(clippy::needless_range_loop)]
    fn after_slot(&mut self, v: NodeId, now: Slot, heard: Option<Feedback<PathMsg>>) -> NextWake {
        if v == self.source {
            self.source_done = true;
            return NextWake::Done;
        }
        // Extract, per instance, the content heard from its upstream.
        let mut heard_contents: Vec<Option<Content>> = vec![None; self.insts[v].len()];
        if let Some(Feedback::Many(msgs)) = &heard {
            for (i, inst) in self.insts[v].iter().enumerate() {
                if inst.listen_alarm != Some(now) && now != 1 {
                    continue;
                }
                let up = self.upstream(v, inst.dir);
                for m in msgs {
                    if Some(m.from) == up {
                        heard_contents[i] = match inst.dir {
                            Dir::Right => m.r,
                            Dir::Left => m.l,
                        };
                    }
                }
            }
        }
        for i in 0..self.insts[v].len() {
            // Clear a forward that fired this slot.
            if let Some((s, c)) = self.insts[v][i].forward {
                if s == now {
                    self.insts[v][i].forward = None;
                    if matches!(c, Content::Payload | Content::DeadEnd) {
                        self.insts[v][i].done = true;
                        continue;
                    }
                }
            }
            // The slot-B transmission fired.
            if !self.insts[v][i].fired_b && self.insts[v][i].b == now {
                self.insts[v][i].fired_b = true;
                if matches!(
                    self.insts[v][i].stored,
                    Some(Content::Payload) | Some(Content::DeadEnd)
                ) || (self.insts[v][i].stored.is_none()
                    && self.insts[v][i].listen_alarm.is_none())
                {
                    self.insts[v][i].done = true;
                    continue;
                }
                self.insts[v][i].stored = None;
            }
            // Process what was heard at a listen alarm.
            if self.insts[v][i].listen_alarm == Some(now) {
                self.insts[v][i].listen_alarm = None;
                if let Some(c) = heard_contents[i] {
                    if c == Content::Payload && self.got_payload[v].is_none() {
                        self.got_payload[v] = Some(now);
                    }
                    let down_exists = self.downstream(v, self.insts[v][i].dir).is_some();
                    let inst = &mut self.insts[v][i];
                    let blocking = now < inst.b;
                    match c {
                        Content::Sync { delay } => {
                            inst.listen_alarm = Some(now + delay.max(1));
                            if !blocking {
                                inst.forward = Some((now + 1, c));
                            }
                        }
                        Content::Payload | Content::DeadEnd => {
                            if blocking {
                                inst.stored = Some(c);
                            } else if down_exists {
                                inst.forward = Some((now + 1, c));
                            } else {
                                inst.done = true;
                            }
                        }
                    }
                } else if self.insts[v][i].listen_alarm.is_none() {
                    // Hearing nothing at an alarm means the upstream vertex
                    // has quit (e.g. the source, or a vertex retired by the
                    // mirrored instance); retire this direction.
                    self.insts[v][i].done = true;
                }
            }
        }
        let next = self.insts[v]
            .iter()
            .filter_map(|inst| inst.next_wake())
            .min();
        match next {
            Some(t) if t > now => NextWake::At(t),
            Some(_) => NextWake::At(now + 1),
            None => NextWake::Done,
        }
    }
}

/// Configuration for [`run_path_broadcast`].
#[derive(Debug, Clone)]
pub struct PathConfig {
    /// If `true`, vertices know the payload flows low → high (the §8.1
    /// "knows upstream/downstream" model; source must be vertex 0). If
    /// `false`, every vertex runs both mirrored instances.
    pub oriented: bool,
    /// Cap blocking times at `n` (the paper's default). `false` reproduces
    /// the §8.2.1 unknown-`n` remark: expected time infinite, but `O(n)`
    /// with probability `1 − ε`.
    pub cap_blocking: bool,
}

impl Default for PathConfig {
    fn default() -> Self {
        PathConfig {
            oriented: false,
            cap_blocking: true,
        }
    }
}

/// Runs Algorithm 1 on the path `engine.graph()` (which must be the
/// `0–1–…–(n−1)` path) from `source`.
///
/// # Panics
///
/// Panics if the graph is not that path or `oriented` is set with
/// `source != 0`.
pub fn run_path_broadcast(
    engine: &mut EventEngine,
    source: NodeId,
    cfg: &PathConfig,
    seed: u64,
) -> PathRunStats {
    let n = engine.graph().n();
    assert!(
        n >= 2
            && engine.graph().m() == n - 1
            && (0..n - 1).all(|v| engine.graph().has_edge(v, v + 1)),
        "graph must be the 0–1–…–(n−1) path"
    );
    assert!(
        !cfg.oriented || source == 0,
        "oriented mode assumes the source is vertex 0"
    );
    let mut rngs = NodeRngs::new(seed, n, 0x9a78);
    let cap = cfg.cap_blocking.then_some(n as u64);
    let mut proto = PathProtocol::new(n, source, cfg.oriented, cap, &mut rngs);
    let budget = if cfg.cap_blocking {
        8 * n as u64 + 64
    } else {
        1 << 40
    };
    let outcome = engine.run(&mut proto, budget);
    let delivery_time = proto
        .got_payload
        .iter()
        .filter_map(|&s| s)
        .max()
        .unwrap_or(0);
    PathRunStats {
        all_informed: proto.got_payload.iter().all(|s| s.is_some()),
        delivery_slot: proto.got_payload,
        delivery_time,
        quiescence: outcome.last_slot.unwrap_or(0),
    }
}

/// Convenience: build a LOCAL event engine over the `n`-path and run the
/// broadcast, returning the stats and the engine (for energy inspection).
pub fn path_broadcast(
    n: usize,
    source: NodeId,
    cfg: &PathConfig,
    seed: u64,
) -> (PathRunStats, EventEngine) {
    let g = ebc_graphs::deterministic::path(n);
    let mut engine = EventEngine::new(g, Model::Local);
    let stats = run_path_broadcast(&mut engine, source, cfg, seed);
    (stats, engine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oriented_informs_everyone() {
        for seed in 0..10u64 {
            let (stats, _) = path_broadcast(
                64,
                0,
                &PathConfig {
                    oriented: true,
                    cap_blocking: true,
                },
                seed,
            );
            assert!(stats.all_informed, "seed {seed}");
        }
    }

    #[test]
    fn unoriented_informs_everyone_from_the_middle() {
        for seed in 0..10u64 {
            let (stats, _) = path_broadcast(65, 32, &PathConfig::default(), seed);
            assert!(stats.all_informed, "seed {seed}");
        }
    }

    #[test]
    fn unoriented_source_at_end() {
        for seed in 0..5u64 {
            let (stats, _) = path_broadcast(32, 31, &PathConfig::default(), seed);
            assert!(stats.all_informed, "seed {seed}");
        }
    }

    #[test]
    fn delivery_time_within_2n_for_power_of_two() {
        // Theorem 21: worst-case running time 2n (n a power of two, source
        // at the end).
        let n = 128;
        for seed in 0..10u64 {
            let (stats, _) = path_broadcast(
                n,
                0,
                &PathConfig {
                    oriented: true,
                    cap_blocking: true,
                },
                seed,
            );
            assert!(stats.all_informed);
            assert!(
                stats.delivery_time <= 2 * n as u64,
                "seed {seed}: {} > 2n",
                stats.delivery_time
            );
        }
    }

    #[test]
    fn expected_energy_logarithmic() {
        // Mean per-vertex energy over a few runs stays O(log n) with a
        // modest constant (Lemma 23 gives ~4e/(e−2) · ln(2n)).
        let n = 512;
        let mut total_mean = 0.0;
        let runs = 5;
        for seed in 0..runs {
            let (stats, engine) = path_broadcast(
                n,
                0,
                &PathConfig {
                    oriented: true,
                    cap_blocking: true,
                },
                seed,
            );
            assert!(stats.all_informed);
            total_mean += engine.meter().report().mean;
        }
        let avg = total_mean / runs as f64;
        let logn = (n as f64).log2();
        assert!(avg <= 8.0 * logn, "mean energy {avg} vs log n {logn}");
    }

    #[test]
    fn unoriented_costs_at_most_a_small_multiple() {
        let n = 256;
        let (_, e1) = path_broadcast(
            n,
            0,
            &PathConfig {
                oriented: true,
                cap_blocking: true,
            },
            3,
        );
        let (_, e2) = path_broadcast(n, 0, &PathConfig::default(), 3);
        assert!(
            e2.meter().report().mean <= 3.0 * e1.meter().report().mean + 4.0,
            "{} vs {}",
            e2.meter().report().mean,
            e1.meter().report().mean
        );
    }

    #[test]
    fn blocking_times_are_powers_of_two_capped() {
        let mut rngs = NodeRngs::new(9, 1, 0);
        for _ in 0..200 {
            let b = sample_blocking_time(rngs.get(0), Some(64));
            assert!(b.is_power_of_two());
            assert!(b <= 64);
        }
    }

    #[test]
    fn uncapped_blocking_times_can_exceed_n() {
        let mut rngs = NodeRngs::new(10, 1, 0);
        let mut max = 0;
        for _ in 0..10_000 {
            max = max.max(sample_blocking_time(rngs.get(0), None));
        }
        assert!(max > 64, "max = {max}");
    }

    #[test]
    fn two_vertex_path() {
        let (stats, _) = path_broadcast(2, 0, &PathConfig::default(), 1);
        assert!(stats.all_informed);
        assert!(stats.delivery_time <= 8);
    }

    #[test]
    fn delivery_slots_monotone_with_distance_oriented() {
        let (stats, _) = path_broadcast(
            64,
            0,
            &PathConfig {
                oriented: true,
                cap_blocking: true,
            },
            5,
        );
        assert!(stats.all_informed);
        let slots: Vec<Slot> = stats.delivery_slot.iter().map(|s| s.unwrap()).collect();
        for w in slots.windows(2) {
            assert!(w[0] <= w[1], "{slots:?}");
        }
    }
}
