//! Energy-efficient Broadcast in multi-hop radio networks.
//!
//! This crate implements every algorithm of *The Energy Complexity of
//! Broadcast* (Chang, Dani, Hayes, He, Li, Pettie — PODC 2018) on the
//! [`ebc_radio`] simulator:
//!
//! | Paper artifact | Module |
//! |----------------|--------|
//! | SR-communication: decay (Lem. 7), CD transformation (Lem. 8), deterministic (Lem. 24) | [`srcomm`] |
//! | LOCAL simulation in No-CD: Learn-Degree, Two-Hop-Coloring, TDMA (Thm. 3) | [`localsim`] |
//! | Good labelings, Down/All/Up-cast, Broadcast-from-labeling (Lem. 10) | [`labeling`], [`cast`] |
//! | Iterative relabeling broadcast (Thms. 11, 12; Cor. 13) | [`randomized`] |
//! | Partition(β) and the `O(D^{1+ε})`-time algorithm (§6, Thm. 16) | [`cluster`] |
//! | The improved CD algorithm (§7, Thm. 20) | [`cdfast`] |
//! | The path algorithm (§8, Alg. 1, Thm. 21) | [`path`] |
//! | Deterministic broadcast via ruling sets (App. A, Thms. 25, 27) | [`det`] |
//! | Baselines: naive flood, BGI decay broadcast | [`baseline`] |
//! | The Theorem 2 lower-bound reduction, executable | [`reduction`] |
//! | Unified algorithm registry (all of the above behind one trait) | [`suite`] |
//!
//! # Quickstart
//!
//! ```
//! use ebc_core::randomized::{broadcast_theorem11, Theorem11Config};
//! use ebc_graphs::random::bounded_degree;
//! use ebc_radio::{Model, Sim};
//!
//! let g = bounded_degree(64, 4, 1.5, 7);
//! let mut sim = Sim::new(g, Model::NoCd, 42);
//! let out = broadcast_theorem11(&mut sim, 0, &Theorem11Config::default());
//! assert!(out.all_informed());
//! println!("time = {} slots, max energy = {}", sim.now(), sim.meter().max_energy());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cast;
pub mod cdfast;
pub mod cluster;
pub mod det;
pub mod labeling;
pub mod localsim;
pub mod path;
pub mod randomized;
pub mod reduction;
pub mod srcomm;
pub mod suite;
pub mod util;

pub use ebc_radio::{
    Action, EnergyMeter, FaultPlan, Feedback, Graph, JammerStrategy, Model, NodeId, Sim, Slot,
};

/// The outcome of a broadcast run: which vertices ended up informed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastOutcome {
    /// `informed[v]` is `true` iff `v` knows the message.
    pub informed: Vec<bool>,
    /// The source vertex.
    pub source: NodeId,
}

impl BroadcastOutcome {
    /// Whether every vertex was informed — the broadcast correctness
    /// criterion.
    pub fn all_informed(&self) -> bool {
        self.informed.iter().all(|&b| b)
    }

    /// The number of informed vertices.
    pub fn count(&self) -> usize {
        self.informed.iter().filter(|&&b| b).count()
    }

    /// The fraction of vertices informed, in `[0, 1]` — the success
    /// measure of fault-injected runs, where a partial informed set is an
    /// expected outcome rather than a bug. An empty network counts as
    /// fully informed, matching [`BroadcastOutcome::all_informed`].
    pub fn informed_fraction(&self) -> f64 {
        if self.informed.is_empty() {
            1.0
        } else {
            self.count() as f64 / self.informed.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::BroadcastOutcome;

    #[test]
    fn outcome_all_informed_and_count() {
        let out = BroadcastOutcome {
            informed: vec![true, true, true],
            source: 0,
        };
        assert!(out.all_informed());
        assert_eq!(out.count(), 3);
    }

    #[test]
    fn outcome_partial_counts_without_all_informed() {
        let out = BroadcastOutcome {
            informed: vec![true, false, true, false],
            source: 2,
        };
        assert!(!out.all_informed());
        assert_eq!(out.count(), 2);
    }

    #[test]
    fn outcome_none_informed() {
        let out = BroadcastOutcome {
            informed: vec![false; 5],
            source: 0,
        };
        assert!(!out.all_informed());
        assert_eq!(out.count(), 0);
    }

    #[test]
    fn outcome_of_empty_network_is_vacuously_complete() {
        // Zero vertices: `all` over an empty set holds, `count` is zero —
        // callers relying on `count() > 0` must special-case n = 0.
        let out = BroadcastOutcome {
            informed: Vec::new(),
            source: 0,
        };
        assert!(out.all_informed());
        assert_eq!(out.count(), 0);
    }

    #[test]
    fn outcome_single_vertex_source_only() {
        // The degenerate n = 1 broadcast: the source alone is the network.
        let out = BroadcastOutcome {
            informed: vec![true],
            source: 0,
        };
        assert!(out.all_informed());
        assert_eq!(out.count(), 1);
    }
}
