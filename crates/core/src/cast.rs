//! Down-cast, All-cast, Up-cast, Broadcast-from-labeling (Lemma 10) and the
//! relabeling procedure (§5's "computing a new labeling L′ from L").
//!
//! All three casts are sequences of SR-communication rounds over the layers
//! of a good labeling:
//!
//! * **Down-cast** — for `i = 0 … L−2`: layer-`i` holders send, layer-`(i+1)`
//!   non-holders receive.
//! * **All-cast** — every holder sends, every non-holder receives.
//! * **Up-cast** — for `i = L−1 … 1`: layer-`i` holders send,
//!   layer-`(i−1)` non-holders receive.
//!
//! `L` is the *public* layer bound every vertex knows (the paper uses
//! `L = n` in §5 and `L = D̄` in §6), so the slot schedule is agreed even
//! though most rounds are empty. Rounds in which provably nobody acts still
//! consume their slots on the global clock; rounds with receivers but no
//! senders still charge the receivers (a No-CD listener cannot know).

use ebc_radio::{NodeId, Sim};

use crate::labeling::Labeling;
use crate::srcomm::Sr;
use crate::util::NodeRngs;
use crate::BroadcastOutcome;

/// One SR round between computed sender/receiver sets, with clean skipping.
///
/// Returns `(receiver, message)` pairs for successful receptions.
pub fn sr_round<M>(
    sim: &mut Sim,
    sr: &Sr,
    senders: Vec<(NodeId, M)>,
    receivers: Vec<NodeId>,
    rngs: &mut NodeRngs,
) -> Vec<(NodeId, M)>
where
    M: Clone + core::fmt::Debug + PartialEq,
{
    if senders.is_empty() && receivers.is_empty() {
        sim.skip(sr.round_slots());
        return Vec::new();
    }
    let got = sr.run(sim, &senders, &receivers, rngs);
    receivers
        .into_iter()
        .zip(got)
        .filter_map(|(v, m)| m.map(|m| (v, m)))
        .collect()
}

/// The occupied layers of a labeling, ascending by layer.
///
/// The public layer bound `L` can be as large as `n` (§5 uses `L = n`),
/// but a labeling occupies at most `#distinct labels` of those layers —
/// and a cast round can only be non-trivial when one of its two adjacent
/// layers is occupied. Materializing only the occupied layers lets the
/// casts iterate `O(#occupied)` candidate rounds and batch-skip the empty
/// stretches in one clock jump, instead of allocating `L` buckets and
/// walking every round. Labels at or beyond `layer_bound` are clamped
/// into the last layer (they never arise for labelings from this crate).
struct Layers {
    /// `(layer, its vertices in ascending id order)`, sorted by layer.
    occupied: Vec<(u32, Vec<NodeId>)>,
}

impl Layers {
    fn build(labeling: &Labeling, layer_bound: u32) -> Layers {
        let n = labeling.n();
        // Pass 1: bitmap of present (clamped) labels.
        let mut present = vec![0u64; (layer_bound as usize).div_ceil(64)];
        for v in 0..n {
            let l = labeling.label(v).min(layer_bound - 1);
            present[(l >> 6) as usize] |= 1 << (l & 63);
        }
        let mut occupied: Vec<(u32, Vec<NodeId>)> = Vec::new();
        for (w, &word) in present.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let l = (w as u32) << 6 | word.trailing_zeros();
                occupied.push((l, Vec::new()));
                word &= word - 1;
            }
        }
        // Pass 2: fill each occupied layer in vertex order.
        for v in 0..n {
            let l = labeling.label(v).min(layer_bound - 1);
            let i = occupied
                .binary_search_by_key(&l, |e| e.0)
                .expect("label marked present");
            occupied[i].1.push(v);
        }
        Layers { occupied }
    }

    /// The layer-`l` vertices (empty slice if unoccupied).
    fn get(&self, l: u32) -> &[NodeId] {
        match self.occupied.binary_search_by_key(&l, |e| e.0) {
            Ok(i) => &self.occupied[i].1,
            Err(_) => &[],
        }
    }

    /// Down-cast rounds that can involve anyone, ascending: round `i`
    /// (senders layer `i`, receivers layer `i + 1`) for `i ≤ L - 2` with
    /// layer `i` or `i + 1` occupied.
    fn down_rounds(&self, layer_bound: u32) -> Vec<u64> {
        let mut rounds = Vec::with_capacity(2 * self.occupied.len());
        for &(l, _) in &self.occupied {
            let l = u64::from(l);
            if l + 2 <= u64::from(layer_bound) {
                rounds.push(l); // this layer sends down to l + 1
            }
            if l >= 1 {
                rounds.push(l - 1); // this layer receives from l - 1
            }
        }
        rounds.sort_unstable();
        rounds.dedup();
        rounds
    }

    /// Up-cast rounds that can involve anyone, ascending: round `i`
    /// (senders layer `i`, receivers layer `i - 1`) for `1 ≤ i ≤ L - 1`
    /// with layer `i` or `i - 1` occupied. The cast itself runs them in
    /// descending order.
    fn up_rounds(&self, layer_bound: u32) -> Vec<u64> {
        let mut rounds = Vec::with_capacity(2 * self.occupied.len());
        for &(l, _) in &self.occupied {
            let l = u64::from(l);
            if l >= 1 {
                rounds.push(l); // this layer sends up to l - 1
            }
            if l + 1 < u64::from(layer_bound) {
                rounds.push(l + 1); // this layer receives from l + 1
            }
        }
        rounds.sort_unstable();
        rounds.dedup();
        rounds
    }
}

/// Runs the candidate rounds of one cast sweep at their public clock
/// positions, batch-skipping the provably-empty rounds in between so the
/// sweep still occupies exactly `total_rounds × round_slots` slots.
///
/// `scheduled` yields `(clock position, round index)` in ascending
/// position order; `f` runs one SR round.
fn run_rounds_at(
    sim: &mut Sim,
    sr: &Sr,
    total_rounds: u64,
    scheduled: impl Iterator<Item = (u64, u32)>,
    mut f: impl FnMut(&mut Sim, u32),
) {
    let mut next = 0u64;
    for (pos, i) in scheduled {
        sim.skip((pos - next) * sr.round_slots());
        f(sim, i);
        next = pos + 1;
    }
    sim.skip((total_rounds - next) * sr.round_slots());
}

/// Flag message used when relaying a single payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Payload;

/// The per-payload cast engine shared by [`broadcast_with_labeling`]: holds
/// the occupied layers so a sweep costs `O(#occupied)` rounds plus batched
/// clock skips, not `O(L)`.
struct PayloadCaster<'a> {
    layers: Layers,
    layer_bound: u32,
    sr: &'a Sr,
}

impl PayloadCaster<'_> {
    fn down(&self, sim: &mut Sim, has: &mut [bool], rngs: &mut NodeRngs) {
        let total = u64::from(self.layer_bound) - 1;
        let rounds = self.layers.down_rounds(self.layer_bound);
        run_rounds_at(
            sim,
            self.sr,
            total,
            rounds.into_iter().map(|i| (i, i as u32)),
            |sim, i| {
                let senders: Vec<(NodeId, Payload)> = self
                    .layers
                    .get(i)
                    .iter()
                    .filter(|&&v| has[v])
                    .map(|&v| (v, Payload))
                    .collect();
                let receivers: Vec<NodeId> = self
                    .layers
                    .get(i + 1)
                    .iter()
                    .copied()
                    .filter(|&v| !has[v])
                    .collect();
                for (v, _) in sr_round(sim, self.sr, senders, receivers, rngs) {
                    has[v] = true;
                }
            },
        );
    }

    fn all(&self, sim: &mut Sim, has: &mut [bool], rngs: &mut NodeRngs) {
        let n = has.len();
        let senders: Vec<(NodeId, Payload)> =
            (0..n).filter(|&v| has[v]).map(|v| (v, Payload)).collect();
        let receivers: Vec<NodeId> = (0..n).filter(|&v| !has[v]).collect();
        for (v, _) in sr_round(sim, self.sr, senders, receivers, rngs) {
            has[v] = true;
        }
    }

    fn up(&self, sim: &mut Sim, has: &mut [bool], rngs: &mut NodeRngs) {
        let total = u64::from(self.layer_bound) - 1;
        let rounds = self.layers.up_rounds(self.layer_bound);
        run_rounds_at(
            sim,
            self.sr,
            total,
            rounds.into_iter().rev().map(|i| (total - i, i as u32)),
            |sim, i| {
                let senders: Vec<(NodeId, Payload)> = self
                    .layers
                    .get(i)
                    .iter()
                    .filter(|&&v| has[v])
                    .map(|&v| (v, Payload))
                    .collect();
                let receivers: Vec<NodeId> = self
                    .layers
                    .get(i - 1)
                    .iter()
                    .copied()
                    .filter(|&v| !has[v])
                    .collect();
                for (v, _) in sr_round(sim, self.sr, senders, receivers, rngs) {
                    has[v] = true;
                }
            },
        );
    }
}

/// Broadcast given a good labeling (Lemma 10).
///
/// `layer_bound` is the public bound `L` on the number of layers
/// (`n` in the §5 algorithms); `d_bound` upper-bounds the diameter of
/// `G_L` (0 when there is a single layer-0 vertex). The protocol is:
/// Up-cast, then `d_bound` repetitions of (Down-cast, All-cast, Up-cast),
/// then a final Down-cast.
///
/// # Panics
///
/// Panics if `layer_bound == 0`, or (debug builds) if `labeling` is not
/// good for the simulation graph.
pub fn broadcast_with_labeling(
    sim: &mut Sim,
    labeling: &Labeling,
    source: NodeId,
    layer_bound: u32,
    d_bound: u32,
    sr: &Sr,
    rngs: &mut NodeRngs,
) -> BroadcastOutcome {
    assert!(layer_bound >= 1);
    // Goodness is an invariant of clean-channel label learning; under an
    // active fault plan a degraded labeling is an expected outcome (the
    // casts below stay bounded either way — they just inform fewer
    // vertices).
    debug_assert!(sim.fault_plan().is_active() || labeling.is_good(sim.graph()));
    let n = labeling.n();
    let caster = PayloadCaster {
        layers: Layers::build(labeling, layer_bound),
        layer_bound,
        sr,
    };
    let mut has = vec![false; n];
    has[source] = true;
    sim.span_enter("up_cast");
    caster.up(sim, &mut has, rngs);
    sim.span_exit();
    for _ in 0..d_bound {
        sim.span_enter("down_cast");
        caster.down(sim, &mut has, rngs);
        sim.span_exit();
        sim.span_enter("all_cast");
        caster.all(sim, &mut has, rngs);
        sim.span_exit();
        sim.span_enter("up_cast");
        caster.up(sim, &mut has, rngs);
        sim.span_exit();
        if sim.telemetry_enabled() {
            let informed = has.iter().filter(|&&x| x).count();
            sim.record_gauge("informed", sim.now(), informed as f64);
        }
    }
    sim.span_enter("down_cast");
    caster.down(sim, &mut has, rngs);
    sim.span_exit();
    BroadcastOutcome {
        informed: has,
        source,
    }
}

/// Computes a new good labeling `L′` from `L` (§5).
///
/// 1. Each layer-0 vertex adopts `L′ = 0` independently with probability
///    `p` (private randomness from `coin_rngs`).
/// 2. `s` repetitions of (Down-cast, All-cast, Up-cast) over the *old*
///    layers, transmitting `L′` labels: an unlabelled vertex receiving `m`
///    adopts `L′ = m + 1`.
/// 3. A final Down-cast; unlabelled vertices retain their old label.
///
/// With all SR rounds succeeding, the result is a good labeling in which
/// each old layer-0 vertex remains layer-0 with probability at most
/// `p + (1−p)^{min(s+1,w)}` (`w` = #old roots), and no new roots appear.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn relabel(
    sim: &mut Sim,
    labeling: &Labeling,
    p: f64,
    s: u32,
    layer_bound: u32,
    sr: &Sr,
    rngs: &mut NodeRngs,
    coin_rngs: &mut NodeRngs,
) -> Labeling {
    use rand::Rng;
    assert!((0.0..=1.0).contains(&p));
    let n = labeling.n();
    let mut newl: Vec<Option<u32>> = vec![None; n];
    for (v, slot) in newl.iter_mut().enumerate() {
        if labeling.label(v) == 0 && coin_rngs.get(v).gen_bool(p) {
            *slot = Some(0);
        }
    }
    relabel_from(sim, labeling, newl, s, layer_bound, sr, rngs)
}

/// The deterministic variant used by Appendix A: the new layer-0 set is
/// given explicitly (a ruling set of `G_L`) instead of coin flips.
pub fn relabel_from_roots(
    sim: &mut Sim,
    labeling: &Labeling,
    roots: &[NodeId],
    s: u32,
    layer_bound: u32,
    sr: &Sr,
    rngs: &mut NodeRngs,
) -> Labeling {
    let n = labeling.n();
    let mut newl: Vec<Option<u32>> = vec![None; n];
    for &r in roots {
        debug_assert_eq!(labeling.label(r), 0, "roots must be old layer-0 vertices");
        newl[r] = Some(0);
    }
    relabel_from(sim, labeling, newl, s, layer_bound, sr, rngs)
}

fn relabel_from(
    sim: &mut Sim,
    labeling: &Labeling,
    mut newl: Vec<Option<u32>>,
    s: u32,
    layer_bound: u32,
    sr: &Sr,
    rngs: &mut NodeRngs,
) -> Labeling {
    assert!(layer_bound >= 1);
    let n = labeling.n();
    // The casts sweep the *old* layers (which never change during the
    // relabel), so the occupied-layer structure is built once.
    let layers = Layers::build(labeling, layer_bound);
    let total = u64::from(layer_bound) - 1;
    let down = |sim: &mut Sim, newl: &mut Vec<Option<u32>>, rngs: &mut NodeRngs| {
        let rounds = layers.down_rounds(layer_bound);
        run_rounds_at(
            sim,
            sr,
            total,
            rounds.into_iter().map(|i| (i, i as u32)),
            |sim, i| {
                let senders: Vec<(NodeId, u32)> = layers
                    .get(i)
                    .iter()
                    .filter_map(|&v| newl[v].map(|m| (v, m)))
                    .collect();
                let receivers: Vec<NodeId> = layers
                    .get(i + 1)
                    .iter()
                    .copied()
                    .filter(|&v| newl[v].is_none())
                    .collect();
                for (v, m) in sr_round(sim, sr, senders, receivers, rngs) {
                    newl[v] = Some(m + 1);
                }
            },
        );
    };
    let all = |sim: &mut Sim, newl: &mut Vec<Option<u32>>, rngs: &mut NodeRngs| {
        let senders: Vec<(NodeId, u32)> = (0..n).filter_map(|v| newl[v].map(|m| (v, m))).collect();
        let receivers: Vec<NodeId> = (0..n).filter(|&v| newl[v].is_none()).collect();
        for (v, m) in sr_round(sim, sr, senders, receivers, rngs) {
            newl[v] = Some(m + 1);
        }
    };
    let up = |sim: &mut Sim, newl: &mut Vec<Option<u32>>, rngs: &mut NodeRngs| {
        let rounds = layers.up_rounds(layer_bound);
        run_rounds_at(
            sim,
            sr,
            total,
            rounds.into_iter().rev().map(|i| (total - i, i as u32)),
            |sim, i| {
                let senders: Vec<(NodeId, u32)> = layers
                    .get(i)
                    .iter()
                    .filter_map(|&v| newl[v].map(|m| (v, m)))
                    .collect();
                let receivers: Vec<NodeId> = layers
                    .get(i - 1)
                    .iter()
                    .copied()
                    .filter(|&v| newl[v].is_none())
                    .collect();
                for (v, m) in sr_round(sim, sr, senders, receivers, rngs) {
                    newl[v] = Some(m + 1);
                }
            },
        );
    };
    for _ in 0..s {
        down(sim, &mut newl, rngs);
        all(sim, &mut newl, rngs);
        up(sim, &mut newl, rngs);
    }
    down(sim, &mut newl, rngs);
    Labeling::from_labels(
        (0..n)
            .map(|v| newl[v].unwrap_or_else(|| labeling.label(v)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_graphs::deterministic::{cycle, path};
    use ebc_radio::{Model, Sim};

    fn setup(g: ebc_radio::Graph, model: Model, seed: u64) -> (Sim, NodeRngs, NodeRngs) {
        let n = g.n();
        (
            Sim::new(g, model, seed),
            NodeRngs::new(seed, n, 10),
            NodeRngs::new(seed, n, 11),
        )
    }

    #[test]
    fn broadcast_single_root_path_local() {
        let g = path(8);
        let (mut sim, mut rngs, _) = setup(g, Model::Local, 1);
        let l = Labeling::from_labels((0..8).map(|v| v as u32).collect());
        let out = broadcast_with_labeling(&mut sim, &l, 3, 8, 0, &Sr::Local, &mut rngs);
        assert!(out.all_informed());
    }

    #[test]
    fn broadcast_single_root_nocd_decay() {
        let g = path(8);
        let (mut sim, mut rngs, _) = setup(g, Model::NoCd, 2);
        let l = Labeling::from_labels((0..8).map(|v| v as u32).collect());
        let sr = Sr::Decay {
            delta: 2,
            sweeps: 12,
        };
        let out = broadcast_with_labeling(&mut sim, &l, 7, 8, 0, &sr, &mut rngs);
        assert!(out.all_informed());
    }

    #[test]
    fn broadcast_multi_root_needs_dbound() {
        // 4 clusters on a cycle of 8; G_L is a 4-cycle with diameter 2.
        let g = cycle(8);
        let l = Labeling::from_labels(vec![0, 1, 0, 1, 0, 1, 0, 1]);
        let (mut sim, mut rngs, _) = setup(g, Model::Local, 3);
        let out = broadcast_with_labeling(&mut sim, &l, 0, 8, 2, &Sr::Local, &mut rngs);
        assert!(out.all_informed());
    }

    #[test]
    fn broadcast_insufficient_dbound_fails_on_local() {
        // With d_bound = 0 on the 4-cluster cycle, distant clusters cannot
        // be reached (deterministic in LOCAL).
        let g = cycle(8);
        let l = Labeling::from_labels(vec![0, 1, 0, 1, 0, 1, 0, 1]);
        let (mut sim, mut rngs, _) = setup(g, Model::Local, 3);
        let out = broadcast_with_labeling(&mut sim, &l, 0, 8, 0, &Sr::Local, &mut rngs);
        assert!(!out.all_informed());
    }

    #[test]
    fn relabel_keeps_goodness_and_shrinks_roots() {
        let g = cycle(16);
        let (mut sim, mut rngs, mut coins) = setup(g.clone(), Model::Local, 4);
        let mut l = Labeling::all_zero(16);
        for _ in 0..10 {
            let l2 = relabel(&mut sim, &l, 0.5, 1, 16, &Sr::Local, &mut rngs, &mut coins);
            assert!(l2.is_good(&g), "not good: {:?}", l2.labels());
            assert!(l2.layer0_count() <= l.layer0_count());
            l = l2;
        }
        assert_eq!(l.layer0_count(), 1, "roots: {:?}", l.layer0());
    }

    #[test]
    fn relabel_never_creates_new_roots() {
        let g = path(12);
        let (mut sim, mut rngs, mut coins) = setup(g.clone(), Model::Local, 5);
        let l = Labeling::all_zero(12);
        let l2 = relabel(&mut sim, &l, 0.3, 2, 12, &Sr::Local, &mut rngs, &mut coins);
        for v in 0..12 {
            if l.label(v) != 0 {
                assert_ne!(l2.label(v), 0);
            }
        }
    }

    #[test]
    fn relabel_with_decay_nocd() {
        let g = cycle(12);
        let (mut sim, mut rngs, mut coins) = setup(g.clone(), Model::NoCd, 6);
        let sr = Sr::Decay {
            delta: 2,
            sweeps: 15,
        };
        let mut l = Labeling::all_zero(12);
        for _ in 0..12 {
            l = relabel(&mut sim, &l, 0.5, 1, 12, &sr, &mut rngs, &mut coins);
            assert!(l.is_good(&g));
        }
        assert!(l.layer0_count() <= 2, "roots = {}", l.layer0_count());
    }

    #[test]
    fn time_accounts_for_empty_rounds() {
        // With layer bound 8 on an all-zero labeling, a relabel sweep still
        // clocks the full public schedule: (8-1) down + 1 all + 7 up + 7
        // final-down rounds of 1 slot each in LOCAL.
        let g = path(4);
        let (mut sim, mut rngs, mut coins) = setup(g, Model::Local, 7);
        let l = Labeling::all_zero(4);
        let before = sim.now();
        relabel(&mut sim, &l, 0.5, 1, 8, &Sr::Local, &mut rngs, &mut coins);
        assert_eq!(sim.now() - before, 7 + 1 + 7 + 7);
    }
}
