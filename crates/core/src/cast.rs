//! Down-cast, All-cast, Up-cast, Broadcast-from-labeling (Lemma 10) and the
//! relabeling procedure (§5's "computing a new labeling L′ from L").
//!
//! All three casts are sequences of SR-communication rounds over the layers
//! of a good labeling:
//!
//! * **Down-cast** — for `i = 0 … L−2`: layer-`i` holders send, layer-`(i+1)`
//!   non-holders receive.
//! * **All-cast** — every holder sends, every non-holder receives.
//! * **Up-cast** — for `i = L−1 … 1`: layer-`i` holders send,
//!   layer-`(i−1)` non-holders receive.
//!
//! `L` is the *public* layer bound every vertex knows (the paper uses
//! `L = n` in §5 and `L = D̄` in §6), so the slot schedule is agreed even
//! though most rounds are empty. Rounds in which provably nobody acts still
//! consume their slots on the global clock; rounds with receivers but no
//! senders still charge the receivers (a No-CD listener cannot know).

use ebc_radio::{NodeId, Sim};

use crate::labeling::Labeling;
use crate::srcomm::Sr;
use crate::util::NodeRngs;
use crate::BroadcastOutcome;

/// One SR round between computed sender/receiver sets, with clean skipping.
///
/// Returns `(receiver, message)` pairs for successful receptions.
pub fn sr_round<M>(
    sim: &mut Sim,
    sr: &Sr,
    senders: Vec<(NodeId, M)>,
    receivers: Vec<NodeId>,
    rngs: &mut NodeRngs,
) -> Vec<(NodeId, M)>
where
    M: Clone + core::fmt::Debug + PartialEq,
{
    if senders.is_empty() && receivers.is_empty() {
        sim.skip(sr.round_slots());
        return Vec::new();
    }
    let got = sr.run(sim, &senders, &receivers, rngs);
    receivers
        .into_iter()
        .zip(got)
        .filter_map(|(v, m)| m.map(|m| (v, m)))
        .collect()
}

/// Groups vertices by label; index `i` holds the layer-`i` vertices.
/// Labels at or beyond `layer_bound` are clamped into the last bucket
/// (they never arise for labelings produced by this crate).
fn layer_buckets(labeling: &Labeling, layer_bound: u32) -> Vec<Vec<NodeId>> {
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); layer_bound as usize];
    for v in 0..labeling.n() {
        let l = (labeling.label(v)).min(layer_bound - 1) as usize;
        buckets[l].push(v);
    }
    buckets
}

/// Flag message used when relaying a single payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Payload;

/// The per-payload cast engine shared by [`broadcast_with_labeling`]: holds
/// the layer buckets so each round costs `O(|bucket|)`, not `O(n)`.
struct PayloadCaster<'a> {
    buckets: Vec<Vec<NodeId>>,
    sr: &'a Sr,
}

impl PayloadCaster<'_> {
    fn down(&self, sim: &mut Sim, has: &mut [bool], rngs: &mut NodeRngs) {
        for i in 0..self.buckets.len().saturating_sub(1) {
            let senders: Vec<(NodeId, Payload)> = self.buckets[i]
                .iter()
                .filter(|&&v| has[v])
                .map(|&v| (v, Payload))
                .collect();
            let receivers: Vec<NodeId> = self.buckets[i + 1]
                .iter()
                .copied()
                .filter(|&v| !has[v])
                .collect();
            for (v, _) in sr_round(sim, self.sr, senders, receivers, rngs) {
                has[v] = true;
            }
        }
    }

    fn all(&self, sim: &mut Sim, has: &mut [bool], rngs: &mut NodeRngs) {
        let n = has.len();
        let senders: Vec<(NodeId, Payload)> =
            (0..n).filter(|&v| has[v]).map(|v| (v, Payload)).collect();
        let receivers: Vec<NodeId> = (0..n).filter(|&v| !has[v]).collect();
        for (v, _) in sr_round(sim, self.sr, senders, receivers, rngs) {
            has[v] = true;
        }
    }

    fn up(&self, sim: &mut Sim, has: &mut [bool], rngs: &mut NodeRngs) {
        for i in (1..self.buckets.len()).rev() {
            let senders: Vec<(NodeId, Payload)> = self.buckets[i]
                .iter()
                .filter(|&&v| has[v])
                .map(|&v| (v, Payload))
                .collect();
            let receivers: Vec<NodeId> = self.buckets[i - 1]
                .iter()
                .copied()
                .filter(|&v| !has[v])
                .collect();
            for (v, _) in sr_round(sim, self.sr, senders, receivers, rngs) {
                has[v] = true;
            }
        }
    }
}

/// Broadcast given a good labeling (Lemma 10).
///
/// `layer_bound` is the public bound `L` on the number of layers
/// (`n` in the §5 algorithms); `d_bound` upper-bounds the diameter of
/// `G_L` (0 when there is a single layer-0 vertex). The protocol is:
/// Up-cast, then `d_bound` repetitions of (Down-cast, All-cast, Up-cast),
/// then a final Down-cast.
///
/// # Panics
///
/// Panics if `layer_bound == 0`, or (debug builds) if `labeling` is not
/// good for the simulation graph.
pub fn broadcast_with_labeling(
    sim: &mut Sim,
    labeling: &Labeling,
    source: NodeId,
    layer_bound: u32,
    d_bound: u32,
    sr: &Sr,
    rngs: &mut NodeRngs,
) -> BroadcastOutcome {
    assert!(layer_bound >= 1);
    debug_assert!(labeling.is_good(sim.graph()));
    let n = labeling.n();
    let caster = PayloadCaster {
        buckets: layer_buckets(labeling, layer_bound),
        sr,
    };
    let mut has = vec![false; n];
    has[source] = true;
    caster.up(sim, &mut has, rngs);
    for _ in 0..d_bound {
        caster.down(sim, &mut has, rngs);
        caster.all(sim, &mut has, rngs);
        caster.up(sim, &mut has, rngs);
    }
    caster.down(sim, &mut has, rngs);
    BroadcastOutcome {
        informed: has,
        source,
    }
}

/// Computes a new good labeling `L′` from `L` (§5).
///
/// 1. Each layer-0 vertex adopts `L′ = 0` independently with probability
///    `p` (private randomness from `coin_rngs`).
/// 2. `s` repetitions of (Down-cast, All-cast, Up-cast) over the *old*
///    layers, transmitting `L′` labels: an unlabelled vertex receiving `m`
///    adopts `L′ = m + 1`.
/// 3. A final Down-cast; unlabelled vertices retain their old label.
///
/// With all SR rounds succeeding, the result is a good labeling in which
/// each old layer-0 vertex remains layer-0 with probability at most
/// `p + (1−p)^{min(s+1,w)}` (`w` = #old roots), and no new roots appear.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn relabel(
    sim: &mut Sim,
    labeling: &Labeling,
    p: f64,
    s: u32,
    layer_bound: u32,
    sr: &Sr,
    rngs: &mut NodeRngs,
    coin_rngs: &mut NodeRngs,
) -> Labeling {
    use rand::Rng;
    assert!((0.0..=1.0).contains(&p));
    let n = labeling.n();
    let mut newl: Vec<Option<u32>> = vec![None; n];
    for (v, slot) in newl.iter_mut().enumerate() {
        if labeling.label(v) == 0 && coin_rngs.get(v).gen_bool(p) {
            *slot = Some(0);
        }
    }
    relabel_from(sim, labeling, newl, s, layer_bound, sr, rngs)
}

/// The deterministic variant used by Appendix A: the new layer-0 set is
/// given explicitly (a ruling set of `G_L`) instead of coin flips.
pub fn relabel_from_roots(
    sim: &mut Sim,
    labeling: &Labeling,
    roots: &[NodeId],
    s: u32,
    layer_bound: u32,
    sr: &Sr,
    rngs: &mut NodeRngs,
) -> Labeling {
    let n = labeling.n();
    let mut newl: Vec<Option<u32>> = vec![None; n];
    for &r in roots {
        debug_assert_eq!(labeling.label(r), 0, "roots must be old layer-0 vertices");
        newl[r] = Some(0);
    }
    relabel_from(sim, labeling, newl, s, layer_bound, sr, rngs)
}

fn relabel_from(
    sim: &mut Sim,
    labeling: &Labeling,
    mut newl: Vec<Option<u32>>,
    s: u32,
    layer_bound: u32,
    sr: &Sr,
    rngs: &mut NodeRngs,
) -> Labeling {
    assert!(layer_bound >= 1);
    let n = labeling.n();
    let buckets = layer_buckets(labeling, layer_bound);
    let down = |sim: &mut Sim, newl: &mut Vec<Option<u32>>, rngs: &mut NodeRngs| {
        for i in 0..buckets.len().saturating_sub(1) {
            let senders: Vec<(NodeId, u32)> = buckets[i]
                .iter()
                .filter_map(|&v| newl[v].map(|m| (v, m)))
                .collect();
            let receivers: Vec<NodeId> = buckets[i + 1]
                .iter()
                .copied()
                .filter(|&v| newl[v].is_none())
                .collect();
            for (v, m) in sr_round(sim, sr, senders, receivers, rngs) {
                newl[v] = Some(m + 1);
            }
        }
    };
    let all = |sim: &mut Sim, newl: &mut Vec<Option<u32>>, rngs: &mut NodeRngs| {
        let senders: Vec<(NodeId, u32)> = (0..n).filter_map(|v| newl[v].map(|m| (v, m))).collect();
        let receivers: Vec<NodeId> = (0..n).filter(|&v| newl[v].is_none()).collect();
        for (v, m) in sr_round(sim, sr, senders, receivers, rngs) {
            newl[v] = Some(m + 1);
        }
    };
    let up = |sim: &mut Sim, newl: &mut Vec<Option<u32>>, rngs: &mut NodeRngs| {
        for i in (1..buckets.len()).rev() {
            let senders: Vec<(NodeId, u32)> = buckets[i]
                .iter()
                .filter_map(|&v| newl[v].map(|m| (v, m)))
                .collect();
            let receivers: Vec<NodeId> = buckets[i - 1]
                .iter()
                .copied()
                .filter(|&v| newl[v].is_none())
                .collect();
            for (v, m) in sr_round(sim, sr, senders, receivers, rngs) {
                newl[v] = Some(m + 1);
            }
        }
    };
    for _ in 0..s {
        down(sim, &mut newl, rngs);
        all(sim, &mut newl, rngs);
        up(sim, &mut newl, rngs);
    }
    down(sim, &mut newl, rngs);
    Labeling::from_labels(
        (0..n)
            .map(|v| newl[v].unwrap_or_else(|| labeling.label(v)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_graphs::deterministic::{cycle, path};
    use ebc_radio::{Model, Sim};

    fn setup(g: ebc_radio::Graph, model: Model, seed: u64) -> (Sim, NodeRngs, NodeRngs) {
        let n = g.n();
        (
            Sim::new(g, model, seed),
            NodeRngs::new(seed, n, 10),
            NodeRngs::new(seed, n, 11),
        )
    }

    #[test]
    fn broadcast_single_root_path_local() {
        let g = path(8);
        let (mut sim, mut rngs, _) = setup(g, Model::Local, 1);
        let l = Labeling::from_labels((0..8).map(|v| v as u32).collect());
        let out = broadcast_with_labeling(&mut sim, &l, 3, 8, 0, &Sr::Local, &mut rngs);
        assert!(out.all_informed());
    }

    #[test]
    fn broadcast_single_root_nocd_decay() {
        let g = path(8);
        let (mut sim, mut rngs, _) = setup(g, Model::NoCd, 2);
        let l = Labeling::from_labels((0..8).map(|v| v as u32).collect());
        let sr = Sr::Decay {
            delta: 2,
            sweeps: 12,
        };
        let out = broadcast_with_labeling(&mut sim, &l, 7, 8, 0, &sr, &mut rngs);
        assert!(out.all_informed());
    }

    #[test]
    fn broadcast_multi_root_needs_dbound() {
        // 4 clusters on a cycle of 8; G_L is a 4-cycle with diameter 2.
        let g = cycle(8);
        let l = Labeling::from_labels(vec![0, 1, 0, 1, 0, 1, 0, 1]);
        let (mut sim, mut rngs, _) = setup(g, Model::Local, 3);
        let out = broadcast_with_labeling(&mut sim, &l, 0, 8, 2, &Sr::Local, &mut rngs);
        assert!(out.all_informed());
    }

    #[test]
    fn broadcast_insufficient_dbound_fails_on_local() {
        // With d_bound = 0 on the 4-cluster cycle, distant clusters cannot
        // be reached (deterministic in LOCAL).
        let g = cycle(8);
        let l = Labeling::from_labels(vec![0, 1, 0, 1, 0, 1, 0, 1]);
        let (mut sim, mut rngs, _) = setup(g, Model::Local, 3);
        let out = broadcast_with_labeling(&mut sim, &l, 0, 8, 0, &Sr::Local, &mut rngs);
        assert!(!out.all_informed());
    }

    #[test]
    fn relabel_keeps_goodness_and_shrinks_roots() {
        let g = cycle(16);
        let (mut sim, mut rngs, mut coins) = setup(g.clone(), Model::Local, 4);
        let mut l = Labeling::all_zero(16);
        for _ in 0..10 {
            let l2 = relabel(&mut sim, &l, 0.5, 1, 16, &Sr::Local, &mut rngs, &mut coins);
            assert!(l2.is_good(&g), "not good: {:?}", l2.labels());
            assert!(l2.layer0_count() <= l.layer0_count());
            l = l2;
        }
        assert_eq!(l.layer0_count(), 1, "roots: {:?}", l.layer0());
    }

    #[test]
    fn relabel_never_creates_new_roots() {
        let g = path(12);
        let (mut sim, mut rngs, mut coins) = setup(g.clone(), Model::Local, 5);
        let l = Labeling::all_zero(12);
        let l2 = relabel(&mut sim, &l, 0.3, 2, 12, &Sr::Local, &mut rngs, &mut coins);
        for v in 0..12 {
            if l.label(v) != 0 {
                assert_ne!(l2.label(v), 0);
            }
        }
    }

    #[test]
    fn relabel_with_decay_nocd() {
        let g = cycle(12);
        let (mut sim, mut rngs, mut coins) = setup(g.clone(), Model::NoCd, 6);
        let sr = Sr::Decay {
            delta: 2,
            sweeps: 15,
        };
        let mut l = Labeling::all_zero(12);
        for _ in 0..12 {
            l = relabel(&mut sim, &l, 0.5, 1, 12, &sr, &mut rngs, &mut coins);
            assert!(l.is_good(&g));
        }
        assert!(l.layer0_count() <= 2, "roots = {}", l.layer0_count());
    }

    #[test]
    fn time_accounts_for_empty_rounds() {
        // With layer bound 8 on an all-zero labeling, a relabel sweep still
        // clocks the full public schedule: (8-1) down + 1 all + 7 up + 7
        // final-down rounds of 1 slot each in LOCAL.
        let g = path(4);
        let (mut sim, mut rngs, mut coins) = setup(g, Model::Local, 7);
        let l = Labeling::all_zero(4);
        let before = sim.now();
        relabel(&mut sim, &l, 0.5, 1, 8, &Sr::Local, &mut rngs, &mut coins);
        assert_eq!(sim.now() - before, 7 + 1 + 7 + 7);
    }
}
