//! Partition(β) and the `O(D^{1+ε})`-time broadcast algorithm (paper §6).
//!
//! **Partition(β)** (Miller–Peng–Xu, as used by Haeupler–Wajc) clusters the
//! graph with exponential random shifts: each center candidate draws
//! `δ ~ Exponential(β)` and starts claiming vertices at epoch
//! `2 log n / β − ⌈δ⌉`; unclustered vertices join the first cluster they
//! hear. The resulting clustering cuts each edge with probability `≤ 2β`
//! (Lemma 14) and, iterated on the *cluster graph*, shrinks the diameter by
//! a `3β` factor per round w.h.p. (Lemma 15).
//!
//! **Theorem 16** iterates Partition on the cluster graph
//! `log_{1/3β} D` times, maintaining a good labeling and cluster ids
//! (shared cluster randomness, §6.2), simulating each cluster-graph round
//! with Down-cast / All-cast / Up-cast (§6.3) and re-rooting merged
//! clusters per §6.4. With `β = 1/log^{1/ε} n` this yields
//! `O(D^{1+ε} polylog n)` time and `polylog n` energy.
//!
//! Implementation notes (deviations documented in DESIGN.md): inter-cluster
//! *offers* use plain decay SR-communication (any offer is acceptable, so
//! Lemma 17's subsampling is unnecessary there); intra-cluster casts use
//! the Lemma 17 cluster-subsampling so a vertex's own cluster periodically
//! talks without interference from the ≤ C neighboring clusters.

use ebc_radio::rng::{cluster_rng, splitmix64};
use ebc_radio::{NodeId, Sim};

use crate::cast::{broadcast_with_labeling, sr_round};
use crate::labeling::Labeling;
use crate::srcomm::Sr;
use crate::util::{ceil_log2, sample_exponential, NodeRngs};
use crate::BroadcastOutcome;

/// A clustering of the graph: cluster ids, a within-cluster good labeling,
/// and the parent pointers the §6.2 cluster structure maintains.
#[derive(Debug, Clone)]
pub struct ClusterState {
    /// `cid[v]`: the id of `v`'s cluster (the original root vertex's id).
    pub cid: Vec<u64>,
    /// Within-cluster layers; layer 0 = the cluster center. Good for the
    /// underlying graph *through same-cluster neighbors*.
    pub labeling: Labeling,
}

impl ClusterState {
    /// The trivial clustering: every vertex is its own singleton cluster.
    pub fn trivial(n: usize) -> Self {
        ClusterState {
            cid: (0..n as u64).collect(),
            labeling: Labeling::all_zero(n),
        }
    }

    /// The number of distinct clusters.
    pub fn cluster_count(&self) -> usize {
        let mut ids: Vec<u64> = self.cid.clone();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Whether every vertex with positive layer has a *same-cluster*
    /// neighbor exactly one layer down — the §6.2 structural invariant.
    pub fn is_valid(&self, g: &ebc_radio::Graph) -> bool {
        (0..g.n()).all(|v| {
            let l = self.labeling.label(v);
            l == 0
                || g.neighbors(v)
                    .any(|u| self.cid[u] == self.cid[v] && self.labeling.label(u) + 1 == l)
        })
    }

    /// Builds the cluster graph (contract each cluster) for analysis.
    /// Returns `(graph, cluster index per vertex)`.
    pub fn cluster_graph(&self, g: &ebc_radio::Graph) -> (ebc_radio::Graph, Vec<usize>) {
        let mut ids: Vec<u64> = self.cid.clone();
        ids.sort_unstable();
        ids.dedup();
        let index: std::collections::HashMap<u64, usize> =
            ids.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let of: Vec<usize> = self.cid.iter().map(|c| index[c]).collect();
        let mut edges = Vec::new();
        for u in 0..g.n() {
            for v in g.neighbors(u) {
                if u < v && of[u] != of[v] {
                    edges.push((of[u], of[v]));
                }
            }
        }
        (
            ebc_radio::Graph::from_edges(ids.len(), &edges).expect("valid cluster graph"),
            of,
        )
    }

    /// The fraction of graph edges cut by the clustering (Lemma 14 bounds
    /// this by `2β` in expectation for Partition(β)).
    pub fn edge_cut_fraction(&self, g: &ebc_radio::Graph) -> f64 {
        let mut cut = 0usize;
        let mut total = 0usize;
        for u in 0..g.n() {
            for v in g.neighbors(u) {
                if u < v {
                    total += 1;
                    if self.cid[u] != self.cid[v] {
                        cut += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            cut as f64 / total as f64
        }
    }
}

/// Runs Partition(β) on the flat graph (the first §6.1 iteration) using
/// plain SR-communication per epoch.
///
/// Returns the clustering; every vertex is clustered (it self-activates at
/// its own start epoch at the latest).
///
/// # Panics
///
/// Panics if `beta` is not in `(0, 1)`.
pub fn partition_beta(sim: &mut Sim, beta: f64, sr: &Sr, rngs: &mut NodeRngs) -> ClusterState {
    assert!(beta > 0.0 && beta < 1.0);
    let n = sim.graph().n();
    let epochs = ((2.0 * ceil_log2(n.max(2)) as f64) / beta).ceil() as u64;
    // start_v = epochs − ⌈δ_v⌉, clamped into [1, epochs].
    let mut start: Vec<u64> = (0..n)
        .map(|v| {
            let d = sample_exponential(rngs.get(v), beta).ceil() as u64;
            epochs.saturating_sub(d).max(1)
        })
        .collect();
    let mut assigned: Vec<Option<(u64, u32)>> = vec![None; n];
    for t in 1..=epochs {
        for v in 0..n {
            if assigned[v].is_none() && start[v] == t {
                assigned[v] = Some((v as u64, 0));
            }
        }
        let senders: Vec<(NodeId, (u64, u32))> = (0..n)
            .filter_map(|v| assigned[v].map(|(c, l)| (v, (c, l))))
            .collect();
        let receivers: Vec<NodeId> = (0..n).filter(|&v| assigned[v].is_none()).collect();
        for (v, (c, l)) in sr_round(sim, sr, senders, receivers, rngs) {
            assigned[v] = Some((c, l + 1));
        }
    }
    // Everyone self-activated at the latest at its own start epoch.
    start.clear();
    let cid: Vec<u64> = assigned.iter().map(|a| a.expect("assigned").0).collect();
    let labels: Vec<u32> = assigned.iter().map(|a| a.expect("assigned").1).collect();
    ClusterState {
        cid,
        labeling: Labeling::from_labels(labels),
    }
}

/// Messages of the §6 cluster machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CMsg {
    /// A merge offer from a super-clustered vertex: join super-cluster
    /// `scid`; the receiver's layer would be `slayer + 1`.
    Offer { scid: u64, slayer: u32 },
    /// Election candidate / announcement inside cluster `cid`: `vstar`
    /// accepted an offer into `scid` at layer `slayer`.
    Cand {
        cid: u64,
        vstar: NodeId,
        scid: u64,
        slayer: u32,
    },
    /// A new-label broadcast inside cluster `cid`.
    Lab { cid: u64, label: u32 },
}

/// One Lemma 17-style subsampled SR sweep: groups (clusters) are active in
/// a sub-round iff a shared hash elects them, so each receiver periodically
/// hears its own cluster without interference from the ≤ `c_bound` others.
///
/// `senders`: `(vertex, message, group key)`. `receivers`: `(vertex,
/// accept)` where `accept` filters messages. Returns first accepted message
/// per receiver.
#[allow(clippy::too_many_arguments)]
fn subsampled_sr(
    sim: &mut Sim,
    sr: &Sr,
    senders: &[(NodeId, CMsg, u64)],
    receivers: &[(NodeId, u64)],
    accept: impl Fn(&CMsg, u64) -> bool,
    c_bound: u32,
    sub_rounds: u32,
    tag: u64,
    rngs: &mut NodeRngs,
) -> Vec<(NodeId, CMsg)> {
    let mut got: Vec<Option<CMsg>> = vec![None; receivers.len()];
    for q in 0..sub_rounds {
        let active = |group: u64| -> bool {
            splitmix64(sim.seed() ^ group.wrapping_mul(0x9e37) ^ tag ^ (q as u64) << 32)
                % u64::from(c_bound.max(1))
                == 0
        };
        let s: Vec<(NodeId, CMsg)> = senders
            .iter()
            .filter(|(_, _, grp)| active(*grp))
            .map(|(v, m, _)| (*v, m.clone()))
            .collect();
        let r: Vec<NodeId> = receivers
            .iter()
            .enumerate()
            .filter(|(i, _)| got[*i].is_none())
            .map(|(_, (v, _))| *v)
            .collect();
        if s.is_empty() && r.is_empty() {
            sim.skip(sr.round_slots());
            continue;
        }
        let res = sr.run(sim, &s, &r, rngs);
        let mut ri = 0;
        for (i, (_, key)) in receivers.iter().enumerate() {
            if got[i].is_some() {
                continue;
            }
            if let Some(m) = &res[ri] {
                if accept(m, *key) {
                    got[i] = Some(m.clone());
                }
            }
            ri += 1;
        }
    }
    receivers
        .iter()
        .zip(got)
        .filter_map(|((v, _), m)| m.map(|m| (*v, m)))
        .collect()
}

/// Parameters of one cluster-graph Partition iteration.
#[derive(Debug, Clone)]
pub struct IterateConfig {
    /// The shift parameter β.
    pub beta: f64,
    /// Public bound on the number of distinct neighboring clusters
    /// (Lemma 14(2): `O(log_{1/3β} n)` after the first iteration).
    pub c_bound: u32,
    /// Public bound on the number of layers of the current labeling.
    pub layer_bound: u32,
    /// Sub-rounds per intra-cluster SR sweep (`Θ(C log n)` for w.h.p. —
    /// Lemma 17 needs a sub-round in which the receiver's own cluster is
    /// active and its ≤ C interfering neighbors are not).
    pub sub_rounds: u32,
}

impl IterateConfig {
    /// The Lemma 17 sub-round count for `c_bound` neighboring clusters on
    /// an `n`-vertex graph: `Θ(C log n)`.
    pub fn default_sub_rounds(c_bound: u32, n: usize) -> u32 {
        2 * c_bound * crate::util::ceil_log2(n.max(2)) + 8
    }
}

/// Runs one Partition(β) iteration on the cluster graph of `state`,
/// merging clusters into super-clusters and re-rooting labels per §6.4.
pub fn iterate_partition(
    sim: &mut Sim,
    state: &ClusterState,
    cfg: &IterateConfig,
    sr: &Sr,
    rngs: &mut NodeRngs,
    iter_tag: u64,
) -> ClusterState {
    let n = state.cid.len();
    let epochs = ((2.0 * ceil_log2(n.max(2)) as f64) / cfg.beta).ceil() as u64;
    // Shared cluster randomness: every member derives its cluster's start
    // epoch locally — no communication needed (§6.2).
    let shared_seed = sim.seed();
    let start_of = move |cid: u64| -> u64 {
        let mut rng = cluster_rng(shared_seed ^ iter_tag, cid as usize, 0);
        let d = sample_exponential(&mut rng, cfg.beta).ceil() as u64;
        epochs.saturating_sub(d).max(1)
    };
    // Per-vertex super-cluster assignment being built.
    let mut scid: Vec<Option<u64>> = vec![None; n];
    let mut slab: Vec<Option<u32>> = vec![None; n];
    // Bucket members by (old) layer once; the old labeling is fixed.
    let lb = cfg.layer_bound.max(1) as usize;
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); lb];
    for v in 0..n {
        buckets[(state.labeling.label(v) as usize).min(lb - 1)].push(v);
    }
    for t in 1..=epochs {
        // Self-activation: unmerged clusters whose start epoch arrived
        // become super-cluster centers; members keep their labels.
        for v in 0..n {
            if scid[v].is_none() && start_of(state.cid[v]) == t {
                scid[v] = Some(state.cid[v]);
                slab[v] = Some(state.labeling.label(v));
            }
        }
        // Inter-cluster offers: one plain SR round (any offer serves).
        let senders: Vec<(NodeId, CMsg)> = (0..n)
            .filter_map(|v| {
                scid[v].map(|c| {
                    (
                        v,
                        CMsg::Offer {
                            scid: c,
                            slayer: slab[v].expect("labeled with scid"),
                        },
                    )
                })
            })
            .collect();
        let receivers: Vec<NodeId> = (0..n).filter(|&v| scid[v].is_none()).collect();
        let offers = sr_round(sim, sr, senders, receivers, rngs);
        // pending[v] = (scid, my would-be layer).
        let mut pending: std::collections::HashMap<NodeId, (u64, u32)> = Default::default();
        for (v, m) in offers {
            if let CMsg::Offer { scid: c, slayer } = m {
                pending.insert(v, (c, slayer + 1));
            }
        }
        // Election: candidates rise to the old cluster root (§6.4 step 1),
        // which re-announces the winner downward. Messages are filtered by
        // the old cluster id.
        let mut cand: Vec<Option<(NodeId, u64, u32)>> = vec![None; n];
        for (&v, &(c, l)) in &pending {
            cand[v] = Some((v, c, l));
        }
        for i in (1..lb).rev() {
            let s: Vec<(NodeId, CMsg, u64)> = buckets[i]
                .iter()
                .filter_map(|&v| {
                    cand[v].map(|(vs, c, l)| {
                        (
                            v,
                            CMsg::Cand {
                                cid: state.cid[v],
                                vstar: vs,
                                scid: c,
                                slayer: l,
                            },
                            state.cid[v],
                        )
                    })
                })
                .collect();
            let r: Vec<(NodeId, u64)> = buckets[i - 1]
                .iter()
                .filter(|&&v| scid[v].is_none())
                .map(|&v| (v, state.cid[v]))
                .collect();
            for (v, m) in subsampled_sr(
                sim,
                sr,
                &s,
                &r,
                |m, key| matches!(m, CMsg::Cand { cid, .. } if *cid == key),
                cfg.c_bound,
                cfg.sub_rounds,
                iter_tag ^ (t << 8) ^ (i as u64) << 20,
                rngs,
            ) {
                if let CMsg::Cand {
                    vstar,
                    scid,
                    slayer,
                    ..
                } = m
                {
                    // Keep the first candidate heard (roots pick any one).
                    if cand[v].is_none() {
                        cand[v] = Some((vstar, scid, slayer));
                    }
                }
            }
        }
        // Announce down from the root: the root's candidate wins.
        let mut winner: Vec<Option<(NodeId, u64, u32)>> = vec![None; n];
        for &v in &buckets[0] {
            if scid[v].is_none() {
                winner[v] = cand[v];
            }
        }
        for i in 0..lb - 1 {
            let s: Vec<(NodeId, CMsg, u64)> = buckets[i]
                .iter()
                .filter_map(|&v| {
                    winner[v].map(|(vs, c, l)| {
                        (
                            v,
                            CMsg::Cand {
                                cid: state.cid[v],
                                vstar: vs,
                                scid: c,
                                slayer: l,
                            },
                            state.cid[v],
                        )
                    })
                })
                .collect();
            let r: Vec<(NodeId, u64)> = buckets[i + 1]
                .iter()
                .filter(|&&v| scid[v].is_none())
                .map(|&v| (v, state.cid[v]))
                .collect();
            for (v, m) in subsampled_sr(
                sim,
                sr,
                &s,
                &r,
                |m, key| matches!(m, CMsg::Cand { cid, .. } if *cid == key),
                cfg.c_bound,
                cfg.sub_rounds,
                iter_tag ^ (t << 8) ^ (i as u64) << 20 ^ 0xa,
                rngs,
            ) {
                if let CMsg::Cand {
                    vstar,
                    scid,
                    slayer,
                    ..
                } = m
                {
                    winner[v] = Some((vstar, scid, slayer));
                }
            }
        }
        // Re-rooting (§6.4 step 2): v* adopts its offered layer, labels
        // ascend to the old root, then descend to everyone else.
        let mut newlab: Vec<Option<(u64, u32)>> = vec![None; n];
        for v in 0..n {
            if let Some((vs, c, l)) = winner[v] {
                if vs == v && scid[v].is_none() && pending.get(&v).map(|&(pc, _)| pc) == Some(c) {
                    newlab[v] = Some((c, l));
                }
            }
        }
        let relabel_pass = |sim: &mut Sim,
                            newlab: &mut Vec<Option<(u64, u32)>>,
                            rngs: &mut NodeRngs,
                            upward: bool,
                            tag: u64| {
            let range: Vec<usize> = if upward {
                (1..lb).rev().collect()
            } else {
                (0..lb - 1).collect()
            };
            for i in range {
                let target = if upward { i - 1 } else { i + 1 };
                let s: Vec<(NodeId, CMsg, u64)> = buckets[i]
                    .iter()
                    .filter_map(|&v| {
                        newlab[v].map(|(_, l)| {
                            (
                                v,
                                CMsg::Lab {
                                    cid: state.cid[v],
                                    label: l,
                                },
                                state.cid[v],
                            )
                        })
                    })
                    .collect();
                let r: Vec<(NodeId, u64)> = buckets[target]
                    .iter()
                    .filter(|&&v| scid[v].is_none() && newlab[v].is_none() && winner[v].is_some())
                    .map(|&v| (v, state.cid[v]))
                    .collect();
                for (v, m) in subsampled_sr(
                    sim,
                    sr,
                    &s,
                    &r,
                    |m, key| matches!(m, CMsg::Lab { cid, .. } if *cid == key),
                    cfg.c_bound,
                    cfg.sub_rounds,
                    tag ^ (i as u64) << 20,
                    rngs,
                ) {
                    if let CMsg::Lab { label, .. } = m {
                        let c = winner[v].expect("receiver filtered").1;
                        newlab[v] = Some((c, label + 1));
                    }
                }
            }
        };
        relabel_pass(sim, &mut newlab, rngs, true, iter_tag ^ (t << 8) ^ 0xb);
        relabel_pass(sim, &mut newlab, rngs, false, iter_tag ^ (t << 8) ^ 0xc);
        for v in 0..n {
            if let Some((c, l)) = newlab[v] {
                scid[v] = Some(c);
                slab[v] = Some(l);
            }
        }
    }
    // Fallback (never needed when all SR rounds succeed): retain the old
    // structure for any vertex the w.h.p. guarantees missed.
    let cid: Vec<u64> = (0..n).map(|v| scid[v].unwrap_or(state.cid[v])).collect();
    let labels: Vec<u32> = (0..n)
        .map(|v| slab[v].unwrap_or_else(|| state.labeling.label(v)))
        .collect();
    ClusterState {
        cid,
        labeling: Labeling::from_labels(labels),
    }
}

/// Parameters of the Theorem 16 driver.
#[derive(Debug, Clone)]
pub struct Theorem16Config {
    /// The time/energy tradeoff parameter ε: `β = 1/log^{1/ε} n`. Larger ε
    /// → larger β → fewer, cheaper iterations but slower diameter decay.
    pub epsilon: f64,
    /// Override β directly (for ablation benches).
    pub beta_override: Option<f64>,
    /// Override the iteration count (default `log_{1/3β} D`).
    pub iters: Option<u32>,
    /// Sub-rounds per intra-cluster sweep; `None` → the Lemma 17 default
    /// `Θ(C log n)`.
    pub sub_rounds: Option<u32>,
}

impl Default for Theorem16Config {
    fn default() -> Self {
        Theorem16Config {
            epsilon: 0.5,
            beta_override: None,
            iters: None,
            sub_rounds: None,
        }
    }
}

/// Theorem 16: `O(D^{1+ε} polylog n)`-time, `polylog n`-energy broadcast in
/// No-CD (or any model, using that model's SR strategy).
///
/// Phase 1 iterates Partition(β) — first on the flat graph, then on the
/// cluster graph — until the cluster-graph diameter bound drops below the
/// `O(log² n / β⁴)` floor of Lemma 15; phase 2 runs Lemma 10's broadcast on
/// the final labeling.
pub fn broadcast_theorem16(
    sim: &mut Sim,
    source: NodeId,
    cfg: &Theorem16Config,
) -> BroadcastOutcome {
    let n = sim.graph().n();
    let logn = ceil_log2(n.max(2)) as f64;
    let beta = cfg
        .beta_override
        .unwrap_or_else(|| logn.powf(-1.0 / cfg.epsilon))
        .clamp(0.02, 0.45);
    let delta = sim.graph().max_degree().max(1);
    let sr = crate::randomized::default_sr_for(sim.model(), delta, n);
    let d = sim
        .graph()
        .diameter_double_sweep()
        .expect("graph must be connected") as f64;
    // Diameter shrinks by 3β per iteration until the Lemma 15 floor. The
    // paper's floor is O(log²n/β⁴) — astronomically conservative at
    // simulable sizes — so when the caller pins β explicitly (ablation
    // mode) we use the practical floor 4 log n instead.
    let floor = if cfg.beta_override.is_some() {
        (4.0 * logn).max(4.0)
    } else {
        (4.0 * logn / beta).max(4.0)
    };
    let iters = cfg.iters.unwrap_or_else(|| {
        let mut k = 0u32;
        let mut cur = d;
        while cur > floor && 3.0 * beta < 0.95 && k < 24 {
            cur *= 3.0 * beta;
            k += 1;
        }
        k
    });
    let mut rngs = NodeRngs::new(sim.seed(), n, 0x5e16);
    let mut state = if iters == 0 {
        ClusterState::trivial(n)
    } else {
        sim.span_enter("partition");
        let s = partition_beta(sim, beta, &sr, &mut rngs);
        sim.span_exit();
        s
    };
    // Public parameter evolution: layer bound multiplies by ~4 log n / β
    // per iteration (§6.1), capped at n (labels are path lengths); C is the
    // Lemma 14(2) bound after the first iteration.
    let epoch_layers = ((2.0 * logn) / beta).ceil() as u32;
    let mut layer_bound = epoch_layers.min(n as u32).max(2);
    let c_bound = ((2.0 * logn / (1.0 / (3.0 * beta)).log2().max(0.3)).ceil() as u32).max(2);
    for k in 1..iters {
        let icfg = IterateConfig {
            beta,
            c_bound,
            layer_bound,
            sub_rounds: cfg
                .sub_rounds
                .unwrap_or_else(|| IterateConfig::default_sub_rounds(c_bound, n)),
        };
        sim.span_enter("iterate");
        state = iterate_partition(sim, &state, &icfg, &sr, &mut rngs, 0x17e4 + u64::from(k));
        sim.span_exit();
        layer_bound = layer_bound
            .saturating_mul(4 * epoch_layers.max(1))
            .min(n as u32)
            .max(2);
    }
    // Phase 2: Lemma 10 over the final labeling. The d bound is the
    // cluster-graph diameter bound after shrinkage.
    let mut d_bound = d;
    for _ in 0..iters.saturating_sub(1) {
        d_bound = (d_bound * 3.0 * beta).max(1.0);
    }
    let d_bound = (d_bound.ceil() as u32).max(1).min(n as u32) + 2;
    let final_layer_bound = (state.labeling.max_label() + 1).max(2).min(n as u32);
    sim.span_enter("broadcast");
    let out = broadcast_with_labeling(
        sim,
        &state.labeling,
        source,
        final_layer_bound,
        d_bound,
        &sr,
        &mut rngs,
    );
    sim.span_exit();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_graphs::deterministic::{cycle, grid, path};
    use ebc_radio::Model;

    fn setup(g: ebc_radio::Graph, seed: u64) -> (Sim, NodeRngs) {
        let n = g.n();
        (Sim::new(g, Model::Local, seed), NodeRngs::new(seed, n, 30))
    }

    #[test]
    fn partition_assigns_everyone_with_valid_structure() {
        for seed in 0..5u64 {
            let g = cycle(64);
            let (mut sim, mut rngs) = setup(g.clone(), seed);
            let st = partition_beta(&mut sim, 0.25, &Sr::Local, &mut rngs);
            assert!(st.is_valid(&g), "seed {seed}");
            assert!(st.labeling.is_good(&g), "seed {seed}");
            assert!(st.cluster_count() >= 1);
        }
    }

    #[test]
    fn partition_edge_cut_scales_with_beta() {
        // Lemma 14(1): cut probability ≤ 2β. Average over seeds with slack.
        let g = cycle(256);
        for &beta in &[0.1f64, 0.3] {
            let mut total = 0.0;
            let runs = 10;
            for seed in 0..runs {
                let (mut sim, mut rngs) = setup(g.clone(), seed);
                let st = partition_beta(&mut sim, beta, &Sr::Local, &mut rngs);
                total += st.edge_cut_fraction(&g);
            }
            let avg = total / runs as f64;
            assert!(avg <= 2.5 * beta + 0.05, "β={beta}: cut fraction {avg}");
        }
    }

    #[test]
    fn partition_cluster_radius_bounded_by_epochs() {
        let g = path(128);
        let (mut sim, mut rngs) = setup(g.clone(), 3);
        let beta = 0.2;
        let st = partition_beta(&mut sim, beta, &Sr::Local, &mut rngs);
        let epochs = (2.0 * ceil_log2(128) as f64 / beta).ceil() as u32;
        assert!(st.labeling.max_label() <= epochs);
    }

    #[test]
    fn partition_shrinks_cluster_graph_diameter() {
        // Lemma 15 direction: the cluster graph is much smaller than G.
        let g = cycle(256);
        let (mut sim, mut rngs) = setup(g.clone(), 7);
        let st = partition_beta(&mut sim, 0.25, &Sr::Local, &mut rngs);
        let (cg, _) = st.cluster_graph(&g);
        let d0 = g.diameter_exact().unwrap();
        let d1 = cg.diameter_exact().unwrap();
        assert!(
            f64::from(d1) <= 0.9 * f64::from(d0),
            "cluster graph diameter {d1} vs {d0}"
        );
    }

    #[test]
    fn iterate_partition_merges_clusters() {
        let g = cycle(64);
        let (mut sim, mut rngs) = setup(g.clone(), 11);
        let st = partition_beta(&mut sim, 0.3, &Sr::Local, &mut rngs);
        let before = st.cluster_count();
        let cfg = IterateConfig {
            beta: 0.3,
            c_bound: 4,
            layer_bound: st.labeling.max_label() + 40,
            sub_rounds: IterateConfig::default_sub_rounds(4, 64),
        };
        let st2 = iterate_partition(&mut sim, &st, &cfg, &Sr::Local, &mut rngs, 99);
        assert!(st2.is_valid(&g), "invalid after merge");
        let after = st2.cluster_count();
        assert!(after <= before, "{after} > {before}");
    }

    #[test]
    fn theorem16_informs_everyone_on_grid() {
        for seed in 0..2u64 {
            let g = grid(8, 8);
            let mut sim = Sim::new(g, Model::Local, seed);
            let out = broadcast_theorem16(&mut sim, 0, &Theorem16Config::default());
            assert!(out.all_informed(), "seed {seed}");
        }
    }

    #[test]
    fn theorem16_informs_everyone_nocd() {
        let g = grid(6, 6);
        let mut sim = Sim::new(g, Model::NoCd, 5);
        let out = broadcast_theorem16(&mut sim, 3, &Theorem16Config::default());
        assert!(out.all_informed());
    }

    #[test]
    fn theorem16_beta_override_controls_iterations() {
        let g = cycle(128);
        let mut sim = Sim::new(g, Model::Local, 9);
        let cfg = Theorem16Config {
            beta_override: Some(0.3),
            ..Theorem16Config::default()
        };
        let out = broadcast_theorem16(&mut sim, 0, &cfg);
        assert!(out.all_informed());
    }

    #[test]
    fn trivial_state_is_valid() {
        let g = path(10);
        let st = ClusterState::trivial(10);
        assert!(st.is_valid(&g));
        assert_eq!(st.cluster_count(), 10);
        assert_eq!(st.edge_cut_fraction(&g), 1.0);
    }

    #[test]
    fn cluster_graph_contracts_correctly() {
        let g = path(4);
        let st = ClusterState {
            cid: vec![0, 0, 3, 3],
            labeling: Labeling::from_labels(vec![0, 1, 1, 0]),
        };
        assert!(st.is_valid(&g));
        let (cg, of) = st.cluster_graph(&g);
        assert_eq!(cg.n(), 2);
        assert_eq!(cg.m(), 1);
        assert_eq!(of[0], of[1]);
        assert_ne!(of[1], of[2]);
    }
}
