//! Good labelings (paper §5): the layered-clustering representation.
//!
//! A labeling `L : V → {0, …, n−1}` is *good* if every vertex `v` with
//! `L(v) > 0` has a neighbor `u` with `L(u) = L(v) − 1`. A good labeling
//! encodes a clustering: following parents (any neighbor one layer down)
//! from each vertex reaches a layer-0 vertex, the root of its cluster.
//!
//! The derived graph `G_L` has the layer-0 vertices as nodes, two being
//! adjacent if a label-ascending path from each meets in an edge — the
//! "cluster graph" whose diameter controls the broadcast cost (Lemma 10).

use ebc_radio::{Graph, NodeId};

/// A vertex labeling, intended to satisfy the *good* property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labeling {
    labels: Vec<u32>,
}

impl Labeling {
    /// The trivial all-zero labeling (every vertex its own cluster root) —
    /// the starting point of the iterative algorithms.
    pub fn all_zero(n: usize) -> Self {
        Labeling { labels: vec![0; n] }
    }

    /// Wraps explicit labels.
    pub fn from_labels(labels: Vec<u32>) -> Self {
        Labeling { labels }
    }

    /// The number of labelled vertices.
    pub fn n(&self) -> usize {
        self.labels.len()
    }

    /// The label (layer) of `v`.
    pub fn label(&self, v: NodeId) -> u32 {
        self.labels[v]
    }

    /// Sets the label of `v`.
    pub fn set(&mut self, v: NodeId, l: u32) {
        self.labels[v] = l;
    }

    /// All labels, indexed by vertex.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// The largest label in use.
    pub fn max_label(&self) -> u32 {
        self.labels.iter().copied().max().unwrap_or(0)
    }

    /// The layer-0 vertices (cluster roots).
    pub fn layer0(&self) -> Vec<NodeId> {
        (0..self.labels.len())
            .filter(|&v| self.labels[v] == 0)
            .collect()
    }

    /// The number of layer-0 vertices.
    pub fn layer0_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l == 0).count()
    }

    /// Whether the labeling is *good* for `g`: every positive-label vertex
    /// has a neighbor exactly one layer below.
    pub fn is_good(&self, g: &Graph) -> bool {
        (0..g.n()).all(|v| {
            let l = self.labels[v];
            l == 0 || g.neighbors(v).any(|u| self.labels[u] + 1 == l)
        })
    }

    /// Builds the cluster graph `G_L` on the layer-0 vertices.
    ///
    /// Two roots `u, v` are `L`-adjacent if there is a path
    /// `(u, u_1, …, u_a, v_b, …, v_1, v)` with `L(u_i) = i` and
    /// `L(v_j) = j` (paper §5). Returns the graph together with the map
    /// from `G_L` indices back to original vertex ids.
    ///
    /// Intended for analysis and tests; `O(m · w²/64)` with `w` roots.
    ///
    /// # Panics
    ///
    /// Panics if the labeling is not good for `g`.
    pub fn gl_graph(&self, g: &Graph) -> (Graph, Vec<NodeId>) {
        assert!(self.is_good(g), "G_L is defined for good labelings only");
        let roots = self.layer0();
        let w = roots.len();
        let words = w.div_ceil(64).max(1);
        // reach[v] = bitset of roots r such that v lies on a label-ascending
        // path from r (L-values 0,1,2,… along the path).
        let mut reach = vec![vec![0u64; words]; g.n()];
        for (i, &r) in roots.iter().enumerate() {
            reach[r][i / 64] |= 1 << (i % 64);
        }
        let mut order: Vec<NodeId> = (0..g.n()).collect();
        order.sort_by_key(|&v| self.labels[v]);
        for &v in &order {
            let lv = self.labels[v];
            if lv == 0 {
                continue;
            }
            let mut acc = vec![0u64; words];
            for u in g.neighbors(v) {
                if self.labels[u] + 1 == lv {
                    for (a, b) in acc.iter_mut().zip(&reach[u]) {
                        *a |= *b;
                    }
                }
            }
            reach[v] = acc;
        }
        // Roots u, v are L-adjacent iff some edge (x, y) has u ∈ reach[x]
        // and v ∈ reach[y].
        let mut adj = vec![vec![0u64; words]; w];
        for x in 0..g.n() {
            for y in g.neighbors(x) {
                if x > y {
                    continue;
                }
                for i in 0..w {
                    if reach[x][i / 64] >> (i % 64) & 1 == 1 {
                        for (a, b) in adj[i].iter_mut().zip(&reach[y]) {
                            *a |= *b;
                        }
                    }
                    if reach[y][i / 64] >> (i % 64) & 1 == 1 {
                        for (a, b) in adj[i].iter_mut().zip(&reach[x]) {
                            *a |= *b;
                        }
                    }
                }
            }
        }
        let mut edges = Vec::new();
        for (i, row) in adj.iter().enumerate() {
            for j in i + 1..w {
                if row[j / 64] >> (j % 64) & 1 == 1 {
                    edges.push((i, j));
                }
            }
        }
        let gl = Graph::from_edges(w.max(1), &edges).expect("valid G_L");
        (gl, roots)
    }

    /// The diameter of `G_L` (for analysis; `None` if `G_L` disconnected).
    pub fn gl_diameter(&self, g: &Graph) -> Option<u32> {
        let (gl, _) = self.gl_graph(g);
        gl.diameter_exact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_graphs::deterministic::{cycle, path, star};

    #[test]
    fn all_zero_is_good() {
        let g = path(5);
        let l = Labeling::all_zero(5);
        assert!(l.is_good(&g));
        assert_eq!(l.layer0_count(), 5);
        assert_eq!(l.max_label(), 0);
    }

    #[test]
    fn bfs_labeling_is_good() {
        let g = path(5);
        let l = Labeling::from_labels(vec![0, 1, 2, 3, 4]);
        assert!(l.is_good(&g));
        assert_eq!(l.layer0_count(), 1);
    }

    #[test]
    fn gap_labeling_is_not_good() {
        let g = path(3);
        let l = Labeling::from_labels(vec![0, 2, 1]);
        assert!(!l.is_good(&g));
    }

    #[test]
    fn star_labelings() {
        let g = star(4);
        let l = Labeling::from_labels(vec![0, 1, 1, 1, 1]);
        assert!(l.is_good(&g));
        // Hub labelled 1 whose neighbors are all 0 is good...
        let hub1 = Labeling::from_labels(vec![1, 0, 0, 0, 0]);
        assert!(hub1.is_good(&g));
        // ...but labelled 2 it has no layer-1 neighbor.
        let hub2 = Labeling::from_labels(vec![2, 0, 0, 0, 0]);
        assert!(!hub2.is_good(&g));
    }

    #[test]
    fn gl_of_all_zero_is_original_graph() {
        let g = cycle(6);
        let l = Labeling::all_zero(6);
        let (gl, roots) = l.gl_graph(&g);
        assert_eq!(gl.n(), 6);
        assert_eq!(gl.m(), 6);
        assert_eq!(roots, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn gl_single_root_has_no_edges() {
        let g = path(5);
        let l = Labeling::from_labels(vec![0, 1, 2, 3, 4]);
        let (gl, roots) = l.gl_graph(&g);
        assert_eq!(gl.n(), 1);
        assert_eq!(gl.m(), 0);
        assert_eq!(roots, vec![0]);
    }

    #[test]
    fn gl_two_clusters_on_path() {
        // Path of 6: roots at 0 and 5, ascending toward the middle.
        let g = path(6);
        let l = Labeling::from_labels(vec![0, 1, 2, 2, 1, 0]);
        assert!(l.is_good(&g));
        let (gl, roots) = l.gl_graph(&g);
        assert_eq!(roots, vec![0, 5]);
        // The middle edge (2,3) connects ascending paths from both roots.
        assert_eq!(gl.m(), 1);
        assert!(gl.has_edge(0, 1));
    }

    #[test]
    fn gl_adjacency_via_middle_edge() {
        let g = path(4);
        let l = Labeling::from_labels(vec![0, 1, 1, 0]);
        let (gl, _) = l.gl_graph(&g);
        assert_eq!(gl.m(), 1);
    }

    #[test]
    fn gl_diameter_on_cycle_clusters() {
        // Cycle of 8 with 4 roots at even positions, odd vertices layer 1.
        let g = cycle(8);
        let l = Labeling::from_labels(vec![0, 1, 0, 1, 0, 1, 0, 1]);
        assert!(l.is_good(&g));
        let d = l.gl_diameter(&g).unwrap();
        assert_eq!(d, 2); // G_L is a 4-cycle
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut l = Labeling::all_zero(3);
        l.set(1, 7);
        assert_eq!(l.label(1), 7);
        assert_eq!(l.max_label(), 7);
        assert_eq!(l.labels(), &[0, 7, 0]);
    }
}
