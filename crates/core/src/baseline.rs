//! Baseline broadcast algorithms the paper compares against implicitly.
//!
//! * [`flood_local`] — synchronous flooding in LOCAL: time `D`, but every
//!   vertex listens every slot until informed, so per-vertex energy grows
//!   with `D` (and with its distance from the source).
//! * [`bgi_decay_broadcast`] — the classic Bar-Yehuda–Goldreich–Itai decay
//!   broadcast \[4\] for No-CD: near-optimal `O((D + log n) log n)` *time*,
//!   but uninformed vertices listen continuously, so the *energy* is as
//!   large as the time — the gap that motivates the paper.

use ebc_radio::{Action, Feedback, Model, NodeId, Schedule, Sim, SlotBehavior};
use rand::Rng;

use crate::util::{ceil_log2, NodeRngs};
use crate::BroadcastOutcome;

/// Flooding over one [`Schedule::Dynamic`] primitive: round `r` is global
/// slot `r - 1`, and a vertex that has already relayed is provably idle
/// forever, so its `next_wake` of `None` drops it from the wake queue.
struct FloodBehavior {
    informed_at: Vec<Option<u64>>,
}

impl SlotBehavior<u8> for FloodBehavior {
    fn act(&mut self, v: NodeId, t: u64) -> Action<u8> {
        match self.informed_at[v] {
            // Send exactly once, the round after becoming informed.
            Some(r) if r == t => Action::Send(1),
            Some(_) => Action::Idle,
            None => Action::Listen,
        }
    }
    fn feedback(&mut self, v: NodeId, t: u64, fb: Feedback<u8>) {
        if matches!(fb, Feedback::One(_) | Feedback::Many(_)) && self.informed_at[v].is_none() {
            self.informed_at[v] = Some(t + 1);
        }
    }
    fn next_wake(&mut self, v: NodeId, t: u64) -> Option<u64> {
        match self.informed_at[v] {
            // Relayed in slot t (or before): idle for the rest of the run,
            // without drawing randomness — safe to never wake again.
            Some(r) if r <= t => None,
            // Just informed (wake to relay) or still uninformed (listen).
            _ => Some(t + 1),
        }
    }
}

/// Naive flooding in the LOCAL model: each vertex transmits once, the round
/// after it first hears the payload; everyone else listens every round.
///
/// Time is exactly the source's eccentricity + 1; max energy is `Θ(time)`
/// (the farthest vertices listen the whole way). The energy-optimal
/// contrast is [`crate::randomized::broadcast_theorem11`].
pub fn flood_local(sim: &mut Sim, source: NodeId) -> BroadcastOutcome {
    assert_eq!(sim.model(), Model::Local, "flood_local needs LOCAL");
    let n = sim.graph().n();
    let ecc = sim
        .graph()
        .eccentricity(source)
        .expect("graph must be connected") as u64;
    let participants: Vec<NodeId> = (0..n).collect();
    let mut b = FloodBehavior {
        informed_at: vec![None; n],
    };
    b.informed_at[source] = Some(0);
    let start = sim.now();
    sim.span_enter("flood");
    sim.drive(
        Schedule::Dynamic {
            participants: &participants,
            slots: ecc + 1,
        },
        &mut b,
    );
    sim.span_exit();
    if sim.telemetry_enabled() {
        // The exact informed-set curve: vertex v first holds the payload in
        // the slot before its relay slot `informed_at[v]` (source: slot 0).
        for t in 0..=ecc {
            let informed = b
                .informed_at
                .iter()
                .filter(|r| r.is_some_and(|r| r <= t + 1))
                .count();
            sim.record_gauge("informed", start + t, informed as f64);
        }
    }
    BroadcastOutcome {
        informed: b.informed_at.iter().map(|x| x.is_some()).collect(),
        source,
    }
}

struct BgiBehavior<'a> {
    informed: Vec<bool>,
    sweep_len: u64,
    rngs: &'a mut NodeRngs,
}

impl SlotBehavior<u8> for BgiBehavior<'_> {
    fn act(&mut self, v: NodeId, t: u64) -> Action<u8> {
        if self.informed[v] {
            let i = (t % self.sweep_len) as i32;
            if self.rngs.get(v).gen_bool(0.5_f64.powi(i)) {
                Action::Send(1)
            } else {
                Action::Idle
            }
        } else {
            Action::Listen
        }
    }
    fn feedback(&mut self, v: NodeId, _t: u64, fb: Feedback<u8>) {
        if matches!(fb, Feedback::One(_)) {
            self.informed[v] = true;
        }
    }
}

/// The decay broadcast of Bar-Yehuda, Goldreich and Itai \[4\] in No-CD.
///
/// Informed vertices run decay sweeps continuously; uninformed vertices
/// listen continuously. `sweeps` defaults to `2D + O(log n)` (enough
/// w.h.p.); time is `sweeps · (⌈log Δ⌉ + 1)` slots, and the last vertices
/// to be informed spend energy close to the full running time.
pub fn bgi_decay_broadcast(sim: &mut Sim, source: NodeId, sweeps: Option<u32>) -> BroadcastOutcome {
    assert!(
        matches!(sim.model(), Model::NoCd | Model::Cd | Model::CdStar),
        "bgi runs on collision channels"
    );
    let n = sim.graph().n();
    let delta = sim.graph().max_degree().max(1);
    let logn = ceil_log2(n.max(2));
    let d = sim
        .graph()
        .eccentricity(source)
        .expect("graph must be connected");
    let sweeps = sweeps.unwrap_or(2 * d + 6 * logn + 8);
    let sweep_len = u64::from(ceil_log2(delta + 1)) + 1;
    let participants: Vec<NodeId> = (0..n).collect();
    let mut rngs = NodeRngs::new(sim.seed(), n, 0xb91);
    let mut b = BgiBehavior {
        informed: vec![false; n],
        sweep_len,
        rngs: &mut rngs,
    };
    b.informed[source] = true;
    let start = sim.now();
    sim.span_enter("decay");
    sim.drive(
        Schedule::Dense {
            participants: &participants,
            slots: u64::from(sweeps) * sweep_len,
        },
        &mut b,
    );
    sim.span_exit();
    if sim.telemetry_enabled() {
        // Phase structure: one span per decay sweep of ⌈log Δ⌉ + 1 slots.
        for i in 0..u64::from(sweeps) {
            let s = start + i * sweep_len;
            sim.span_at("sweep", s, s + sweep_len);
        }
        let informed = b.informed.iter().filter(|&&x| x).count();
        sim.record_gauge("informed", sim.now(), informed as f64);
    }
    BroadcastOutcome {
        informed: b.informed,
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_graphs::deterministic::{grid, path};
    use ebc_graphs::random::gnp_connected;

    #[test]
    fn flood_informs_everyone_in_diameter_time() {
        let g = path(32);
        let mut sim = Sim::new(g, Model::Local, 0);
        let out = flood_local(&mut sim, 0);
        assert!(out.all_informed());
        assert_eq!(sim.now(), 32); // ecc + 1
    }

    #[test]
    fn flood_energy_grows_with_distance() {
        let g = path(64);
        let mut sim = Sim::new(g, Model::Local, 0);
        flood_local(&mut sim, 0);
        // The last vertex listened ~D slots.
        assert!(sim.meter().energy(63) >= 60);
        // A near vertex is cheap.
        assert!(sim.meter().energy(1) <= 3);
    }

    #[test]
    fn bgi_informs_everyone_on_paths() {
        for seed in 0..5u64 {
            let g = path(48);
            let mut sim = Sim::new(g, Model::NoCd, seed);
            let out = bgi_decay_broadcast(&mut sim, 0, None);
            assert!(out.all_informed(), "seed {seed}");
        }
    }

    #[test]
    fn bgi_informs_everyone_on_grids_and_random_graphs() {
        for seed in 0..3u64 {
            let g = grid(6, 6);
            let mut sim = Sim::new(g, Model::NoCd, seed);
            assert!(bgi_decay_broadcast(&mut sim, 0, None).all_informed());
            let g = gnp_connected(40, 0.1, seed);
            let mut sim = Sim::new(g, Model::NoCd, seed + 50);
            assert!(bgi_decay_broadcast(&mut sim, 0, None).all_informed());
        }
    }

    #[test]
    fn bgi_energy_is_order_of_time() {
        // The energy-hungriness that motivates the paper: max energy is a
        // constant fraction of total time.
        let g = path(64);
        let mut sim = Sim::new(g, Model::NoCd, 3);
        bgi_decay_broadcast(&mut sim, 0, None);
        let time = sim.now();
        let e = sim.meter().max_energy();
        assert!(e * 3 >= time, "energy {e} << time {time}");
    }

    #[test]
    #[should_panic(expected = "needs LOCAL")]
    fn flood_rejects_other_models() {
        let g = path(4);
        let mut sim = Sim::new(g, Model::NoCd, 0);
        flood_local(&mut sim, 0);
    }
}
