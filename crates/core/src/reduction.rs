//! The Theorem 2 reduction, executable: Broadcast on `K_{2,k}` ⇒
//! single-hop LeaderElection.
//!
//! The paper's argument: on the gadget `G_k ≅ K_{2,k}` (source `s`, sink
//! `t`, `k` middle vertices), `s` and `t` know nothing beyond their own
//! random bits and the channel feedback — so each middle can *simulate*
//! them locally given shared randomness, and the real communication
//! reduces to the clique of middles. The broadcast succeeds only when some
//! slot has exactly one middle transmitting — precisely leader election.
//! Hence `E_broadcast(K_{2,k}) ≥ T_leader-election(k) / 2`, importing the
//! `Ω(log n)` (CD) and `Ω(log Δ log n)` (No-CD) lower bounds.
//!
//! We make the reduction executable for the natural class of broadcast
//! protocols in which a middle's behavior depends on its private
//! randomness, the slot number, and what it has heard ([`MiddleBehavior`]).
//! [`run_reduction`] runs such a protocol *as* a leader election on a
//! single-hop network and reports the elected middle and slot count —
//! which equals (up to the factor-2 slot skipping) the middles' energy in
//! the original broadcast.

use ebc_radio::{Action, Feedback, Model, NodeId};
use ebc_singlehop::Clique;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::util::ceil_log2;

/// What a middle vertex does in one (non-skipped) slot of a `K_{2,k}`
/// broadcast protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiddleAction {
    /// Transmit the payload toward `t`.
    Forward,
    /// Listen to the channel.
    Listen,
    /// Sleep.
    Idle,
}

/// A middle vertex's strategy in a `K_{2,k}` broadcast protocol, in the
/// form the reduction consumes: a function of private randomness, slot
/// index, and channel history.
pub trait MiddleBehavior {
    /// The action for slot `slot`.
    fn act(&mut self, rng: &mut SmallRng, slot: u64) -> MiddleAction;
    /// Channel feedback for a slot in which the middle listened (or, full
    /// duplex, transmitted): `None` = silence, `Some(true)` = unique
    /// transmission heard, `Some(false)` = collision (CD only).
    fn observe(&mut self, unique: Option<bool>);
}

/// The decay-style forwarding strategy: after receiving the payload from
/// `s` (slot 0), a middle transmits with probability `2^{-(slot mod L)}`
/// where `L = ⌈log₂ k⌉ + 1` — the classic contention-resolution middle of
/// a broadcast protocol on `K_{2,k}` (No-CD-compatible).
#[derive(Debug, Clone)]
pub struct DecayMiddle {
    sweep_len: u64,
    done: bool,
}

impl DecayMiddle {
    /// A decay middle for gadgets with at most `k` middles.
    pub fn new(k: usize) -> Self {
        DecayMiddle {
            sweep_len: u64::from(ceil_log2(k.max(1) + 1)) + 1,
            done: false,
        }
    }
}

impl MiddleBehavior for DecayMiddle {
    fn act(&mut self, rng: &mut SmallRng, slot: u64) -> MiddleAction {
        if self.done {
            return MiddleAction::Idle;
        }
        let i = (slot % self.sweep_len) as i32;
        if rng.gen_bool(0.5_f64.powi(i)) {
            MiddleAction::Forward
        } else {
            MiddleAction::Idle
        }
    }
    fn observe(&mut self, unique: Option<bool>) {
        if unique == Some(true) {
            self.done = true;
        }
    }
}

/// The uniform CD strategy: all middles share the public exponent schedule
/// of [`ebc_singlehop::UniformLeaderElection`] (they can, because in CD
/// the virtual `t`'s feedback is public), transmitting with probability
/// `2^{-k_t}`.
#[derive(Debug)]
pub struct UniformCdMiddle {
    sched: ebc_singlehop::UniformLeaderElection,
}

impl UniformCdMiddle {
    /// A uniform middle for gadgets with at most `k` middles.
    pub fn new(k: usize) -> Self {
        UniformCdMiddle {
            sched: ebc_singlehop::UniformLeaderElection::new(k.max(1)),
        }
    }
}

impl MiddleBehavior for UniformCdMiddle {
    fn act(&mut self, rng: &mut SmallRng, _slot: u64) -> MiddleAction {
        if self.sched.succeeded() {
            return MiddleAction::Idle;
        }
        if rng.gen_bool(0.5_f64.powi(self.sched.k() as i32)) {
            MiddleAction::Forward
        } else {
            MiddleAction::Listen
        }
    }
    fn observe(&mut self, unique: Option<bool>) {
        let obs = match unique {
            None => ebc_singlehop::Obs::Silence,
            Some(true) => ebc_singlehop::Obs::Unique,
            Some(false) => ebc_singlehop::Obs::Noise,
        };
        self.sched.observe(obs);
    }
}

/// Result of running the reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionResult {
    /// The elected middle (the one whose transmission the virtual `t`
    /// uniquely received), if any within the budget.
    pub leader: Option<NodeId>,
    /// Slots consumed — a lower bound witness for the broadcast energy of
    /// the underlying protocol (`E ≥ slots/2` after the paper's skipping
    /// argument).
    pub slots: u64,
}

/// Runs a `K_{2,k}` broadcast protocol as a single-hop leader election
/// among `k` middles (the Theorem 2 simulation).
///
/// Every middle runs full duplex (allowed in the lower-bound model): it
/// transmits per its strategy while observing the channel, which is
/// exactly the virtual `t`'s view. The election terminates the first time
/// `t` would have received the payload — a slot with exactly one
/// transmitter.
pub fn run_reduction<B, F>(
    k: usize,
    model: Model,
    mut make_behavior: F,
    seed: u64,
    max_slots: u64,
) -> (ReductionResult, Clique)
where
    B: MiddleBehavior,
    F: FnMut(usize) -> B,
{
    assert!(k >= 1);
    assert!(
        matches!(model, Model::NoCd | Model::Cd),
        "the reduction targets the CD / No-CD gadget models"
    );
    let mut clique = Clique::new(k, Model::Cd);
    let mut behaviors: Vec<B> = (0..k).map(&mut make_behavior).collect();
    let mut rngs: Vec<SmallRng> = (0..k)
        .map(|v| ebc_radio::rng::node_rng(seed, v, 0x7ed))
        .collect();
    for slot in 0..max_slots {
        let mut actions: Vec<(NodeId, Action<u64>)> = Vec::with_capacity(k);
        let mut senders: Vec<NodeId> = Vec::new();
        for v in 0..k {
            match behaviors[v].act(&mut rngs[v], slot) {
                MiddleAction::Forward => {
                    senders.push(v);
                    actions.push((v, Action::SendListen(v as u64)));
                }
                MiddleAction::Listen => actions.push((v, Action::Listen)),
                MiddleAction::Idle => {}
            }
        }
        let fbs = clique.slot(&actions);
        // The virtual t hears the true channel state (it is adjacent to all
        // middles); under No-CD it cannot distinguish collision from
        // silence, faithfully to the gadget model.
        let _t_view: Option<bool> = match senders.len() {
            0 => None,
            1 => Some(true),
            _ => match model {
                Model::NoCd => None,
                _ => Some(false),
            },
        };
        for (v, fb) in fbs {
            // What v can infer about the virtual t's reception. A collision
            // at t reads as noise in CD but as silence in No-CD.
            let collision = match model {
                Model::NoCd => None,
                _ => Some(false),
            };
            let v_sent = senders.binary_search(&v).is_ok();
            let unique = match fb {
                Feedback::Silence => {
                    // A unique full-duplex transmitter hears silence: its
                    // own send was the one t received.
                    if senders.len() == 1 && senders[0] == v {
                        Some(true)
                    } else {
                        None
                    }
                }
                Feedback::One(_) if v_sent => {
                    // v's own transmission plus exactly one other: t heard
                    // a collision, not the payload.
                    collision
                }
                Feedback::One(_) => Some(true),
                Feedback::Noise | Feedback::Beep | Feedback::Many(_) => collision,
            };
            behaviors[v].observe(unique);
        }
        if senders.len() == 1 {
            return (
                ReductionResult {
                    leader: Some(senders[0]),
                    slots: slot + 1,
                },
                clique,
            );
        }
    }
    (
        ReductionResult {
            leader: None,
            slots: max_slots,
        },
        clique,
    )
}

/// The analytic Theorem 2 energy lower bounds for `K_{2,k}` with failure
/// probability `f`: `Ω(log log k + log 1/f)` in CD and
/// `Ω(log k · log 1/f)` in No-CD, divided by 2 per the reduction.
pub fn theorem2_lower_bound(model: Model, k: usize, f: f64) -> f64 {
    let log_inv_f = (1.0 / f).log2().max(1.0);
    let logk = (k.max(2) as f64).log2();
    match model {
        Model::Cd | Model::CdStar => (logk.log2().max(1.0) + log_inv_f) / 2.0,
        _ => (logk * log_inv_f) / 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_reduction_elects_leader() {
        for seed in 0..10u64 {
            let (res, _) = run_reduction(16, Model::NoCd, |_| DecayMiddle::new(16), seed, 4000);
            assert!(res.leader.is_some(), "seed {seed}");
            assert!(res.leader.unwrap() < 16);
        }
    }

    #[test]
    fn uniform_cd_reduction_elects_leader_fast() {
        let mut total = 0u64;
        let runs = 20;
        for seed in 0..runs {
            let (res, _) = run_reduction(256, Model::Cd, |_| UniformCdMiddle::new(256), seed, 2000);
            assert!(res.leader.is_some(), "seed {seed}");
            total += res.slots;
        }
        let avg = total as f64 / runs as f64;
        // O(log log k) + constant race: far below log² k.
        assert!(avg < 40.0, "avg = {avg}");
    }

    #[test]
    fn nocd_reduction_is_slower_than_cd() {
        // The Ω(log k log 1/f) vs Ω(log log k) separation, empirically.
        let runs = 20;
        let mut no_cd = 0u64;
        let mut cd = 0u64;
        for seed in 0..runs {
            let (r1, _) = run_reduction(256, Model::NoCd, |_| DecayMiddle::new(256), seed, 20_000);
            let (r2, _) =
                run_reduction(256, Model::Cd, |_| UniformCdMiddle::new(256), seed, 20_000);
            no_cd += r1.slots;
            cd += r2.slots;
        }
        assert!(
            no_cd > cd,
            "No-CD total {no_cd} should exceed CD total {cd}"
        );
    }

    #[test]
    fn single_middle_elected_immediately_in_cd() {
        let (res, _) = run_reduction(1, Model::Cd, |_| UniformCdMiddle::new(1), 0, 200);
        assert_eq!(res.leader, Some(0));
    }

    #[test]
    fn lower_bound_formulas_are_monotone() {
        let cd16 = theorem2_lower_bound(Model::Cd, 16, 0.01);
        let cd4096 = theorem2_lower_bound(Model::Cd, 4096, 0.01);
        assert!(cd4096 >= cd16);
        let nocd16 = theorem2_lower_bound(Model::NoCd, 16, 0.01);
        let nocd4096 = theorem2_lower_bound(Model::NoCd, 4096, 0.01);
        assert!(nocd4096 > nocd16);
        // No-CD bound dominates the CD bound.
        assert!(nocd4096 > cd4096);
    }

    #[test]
    fn reduction_slots_bound_broadcast_energy_shape() {
        // Broadcast energy on K_{2,k} must grow at least like the LE time;
        // check the reduction's slot counts grow with k under No-CD.
        let avg = |k: usize| -> f64 {
            let runs = 10;
            let mut tot = 0;
            for seed in 0..runs {
                let (r, _) = run_reduction(k, Model::NoCd, |_| DecayMiddle::new(k), seed, 40_000);
                tot += r.slots;
            }
            tot as f64 / runs as f64
        };
        let small = avg(4);
        let large = avg(512);
        assert!(large > small, "slots: k=4 → {small}, k=512 → {large}");
    }
}
