//! The unified broadcast-algorithm registry.
//!
//! Every broadcast entry point in this crate — the Table 1 rows, the §8
//! path algorithm, and the baselines — wrapped behind one object-safe
//! trait, so harnesses can sweep the full `algorithm × model × topology`
//! cross-product the paper's claims range over without hard-coding entry
//! points.
//!
//! Each adapter is *n-aware*: iteration counts, repetition counts, and
//! tradeoff knobs are derived from the instance (`n`, `Δ`, `D`) at run
//! time via the algorithms' own default-config scaling, so one registry
//! entry covers every size.
//!
//! ```
//! use ebc_core::suite::{by_name, ALGORITHMS};
//! use ebc_graphs::deterministic::cycle;
//! use ebc_radio::{Model, Sim};
//!
//! let alg = by_name("theorem11").unwrap();
//! assert!(alg.supports_model(Model::NoCd));
//! let mut sim = Sim::new(cycle(32), Model::NoCd, 7);
//! assert!(alg.run(&mut sim, 0).all_informed());
//! ```

use ebc_radio::{EventEngine, Graph, Model, NodeId, Sim};

use crate::baseline::{bgi_decay_broadcast, flood_local};
use crate::cdfast::{broadcast_theorem20, Theorem20Config};
use crate::cluster::{broadcast_theorem16, Theorem16Config};
use crate::det::{broadcast_det_cd, broadcast_det_local, DetCdConfig, DetLocalConfig};
use crate::path::{run_path_broadcast, PathConfig};
use crate::randomized::{
    broadcast_corollary13, broadcast_theorem11, broadcast_theorem12, Theorem11Config,
    Theorem12Config,
};
use crate::BroadcastOutcome;

/// A broadcast algorithm as a uniform, object-safe strategy.
///
/// Implementations must be deterministic given `sim.seed()` and must meter
/// all energy through `sim` (adapters that internally delegate to an
/// [`EventEngine`] fold the sub-run's meter back via
/// [`Sim::absorb_meter`]).
pub trait BroadcastAlgorithm: Sync {
    /// Stable machine name (also the scenario-matrix JSON key).
    fn name(&self) -> &'static str;

    /// The collision models the algorithm is defined in.
    fn supported_models(&self) -> &'static [Model];

    /// Whether the algorithm is defined in `model`.
    fn supports_model(&self, model: Model) -> bool {
        self.supported_models().contains(&model)
    }

    /// Whether the algorithm can run on `graph`. Defaults to `true`;
    /// topology-restricted algorithms (the §8 path algorithm, bounded-Δ
    /// Corollary 13) override this so harnesses can filter — and count —
    /// incompatible pairs instead of crashing on them.
    fn supports_graph(&self, graph: &Graph) -> bool {
        let _ = graph;
        true
    }

    /// Whether the adapter's entire slot pipeline flows through
    /// [`Sim::drive`]'s fault choke point, so an active
    /// [`ebc_radio::FaultPlan`] on the `sim` actually reaches every
    /// transmission.
    ///
    /// Defaults to `true`: adapters drive all their slots through the
    /// `Sim` they are handed, and every registered algorithm runs a
    /// bounded, instance-derived number of slots, so under message loss
    /// they degrade to a partial informed set rather than hanging.
    /// Adapters that delegate slots to a sub-engine bypassing the choke
    /// point (the §8 path algorithm's [`EventEngine`]) override this to
    /// `false` — running them under an active plan would silently
    /// simulate a clean channel, which harnesses must skip or flag.
    fn fault_tolerant(&self) -> bool {
        true
    }

    /// Runs the algorithm on `sim` from `source`. All default parameters
    /// scale with the instance (`n`, `Δ`, `D`).
    ///
    /// # Panics
    ///
    /// May panic if `sim.model()` or `sim.graph()` is unsupported — check
    /// [`supports_model`]/[`supports_graph`] first.
    ///
    /// [`supports_model`]: BroadcastAlgorithm::supports_model
    /// [`supports_graph`]: BroadcastAlgorithm::supports_graph
    fn run(&self, sim: &mut Sim, source: NodeId) -> BroadcastOutcome;
}

/// The outcome of one fault-injected broadcast run: the (possibly
/// partial) informed set plus the success/timeout verdicts harnesses
/// aggregate into `success_rate` columns.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyOutcome {
    /// The informed set the run ended with — under an active plan a
    /// partial set is an expected outcome, not a bug.
    pub outcome: BroadcastOutcome,
    /// Whether every device ended informed despite the faults.
    pub success: bool,
    /// Global slots the run consumed ([`Sim::now`] at exit).
    pub slots: u64,
    /// Whether the run blew through `slot_budget` — the no-hang
    /// guarantee turned into a report instead of a wedged harness.
    pub timed_out: bool,
}

/// A generous no-hang slot budget for a fault-injected run at size `n`
/// whose clean twin consumed `clean_slots`.
///
/// Every registered adapter derives its schedule lengths from the
/// instance, so faults stretch a run by at most a constant factor —
/// degraded feedback inflates the *data* an adaptive schedule is built
/// from, not the number of retries. Calibrating on the clean reference
/// run (which fault harnesses execute anyway, to compute energy
/// overhead) absorbs the enormous spread in clean clocks across the
/// registry: Theorem 27's skip-dominated `O(n N² log n log N)` clock is
/// ~10⁴× Theorem 16's at the same `n`. The additive `n³ polylog` floor
/// keeps the budget meaningful for the fastest adapters, where a tiny
/// `clean_slots` would otherwise make the constant factor too strict.
/// When sweeping many families at one size, pass the slowest clean
/// clock among them: heavily degraded adaptive schedules collapse
/// toward their graph-independent worst case, which an easy family's
/// own clean run underestimates. A faulty run exceeding this budget
/// indicates an unbounded retry loop, not ordinary degradation.
pub fn fault_slot_budget(n: usize, clean_slots: u64) -> u64 {
    let n = n.max(2);
    let log = u64::from(crate::util::ceil_log2(n)).max(1);
    let n = n as u64;
    16 * clean_slots + 64 * n * n * n * log * log
}

/// Runs `alg` from `source` on a `sim` (typically built with
/// [`Sim::with_faults`]) and wraps the result in a [`FaultyOutcome`]:
/// partial informed sets become a `success = false` report, and a run
/// that consumed more than `slot_budget` slots is flagged `timed_out`
/// instead of wedging the harness.
///
/// The registered adapters all run bounded schedules, so the budget
/// check is reporting, not preemption; callers gate un-instrumentable
/// adapters with [`BroadcastAlgorithm::fault_tolerant`] first.
pub fn run_faulty(
    alg: &dyn BroadcastAlgorithm,
    sim: &mut Sim,
    source: NodeId,
    slot_budget: u64,
) -> FaultyOutcome {
    let outcome = alg.run(sim, source);
    let slots = sim.now();
    FaultyOutcome {
        success: outcome.all_informed(),
        slots,
        timed_out: slots > slot_budget,
        outcome,
    }
}

/// The four messaging models, in the paper's Table 1 column order. (Beep is
/// excluded: beeps carry no message content, so broadcast is not
/// expressible there.)
pub const MESSAGING_MODELS: [Model; 4] = [Model::Local, Model::Cd, Model::CdStar, Model::NoCd];

/// Theorem 11 — iterated relabeling with `p = 1/2, s = 1`; the paper's
/// general-purpose row, defined in every messaging model.
pub struct Theorem11;

impl BroadcastAlgorithm for Theorem11 {
    fn name(&self) -> &'static str {
        "theorem11"
    }
    fn supported_models(&self) -> &'static [Model] {
        &MESSAGING_MODELS
    }
    fn run(&self, sim: &mut Sim, source: NodeId) -> BroadcastOutcome {
        sim.span_enter(self.name());
        let out = broadcast_theorem11(sim, source, &Theorem11Config::default());
        sim.span_exit();
        out
    }
}

/// Theorem 12 — CD-only relabeling with model-dependent `(p, s)`, trading
/// slower label growth for `O(log² n / (ε log log n))` energy.
pub struct Theorem12;

impl BroadcastAlgorithm for Theorem12 {
    fn name(&self) -> &'static str {
        "theorem12"
    }
    fn supported_models(&self) -> &'static [Model] {
        &[Model::Cd, Model::CdStar]
    }
    fn run(&self, sim: &mut Sim, source: NodeId) -> BroadcastOutcome {
        sim.span_enter(self.name());
        let out = broadcast_theorem12(sim, source, &Theorem12Config::default());
        sim.span_exit();
        out
    }
}

/// Corollary 13 — No-CD broadcast on bounded-degree graphs via the
/// Theorem 3 LOCAL simulation (TDMA over a `G + G²` coloring).
pub struct Corollary13;

impl BroadcastAlgorithm for Corollary13 {
    fn name(&self) -> &'static str {
        "corollary13"
    }
    fn supported_models(&self) -> &'static [Model] {
        &[Model::NoCd]
    }
    fn supports_graph(&self, graph: &Graph) -> bool {
        // The corollary assumes Δ = O(1); the TDMA schedule's length grows
        // with Δ², so unbounded-degree families are out of scope.
        graph.max_degree() <= 16
    }
    fn run(&self, sim: &mut Sim, source: NodeId) -> BroadcastOutcome {
        sim.span_enter(self.name());
        let out = broadcast_corollary13(sim, source);
        sim.span_exit();
        out
    }
}

/// Theorem 16 — Partition(β) clustering for `O(D^{1+ε} polylog n)` time;
/// runs in any messaging model via that model's SR strategy.
pub struct Theorem16;

impl BroadcastAlgorithm for Theorem16 {
    fn name(&self) -> &'static str {
        "theorem16"
    }
    fn supported_models(&self) -> &'static [Model] {
        &MESSAGING_MODELS
    }
    fn run(&self, sim: &mut Sim, source: NodeId) -> BroadcastOutcome {
        sim.span_enter(self.name());
        let out = broadcast_theorem16(sim, source, &Theorem16Config::default());
        sim.span_exit();
        out
    }
}

/// Theorem 20 — the improved CD algorithm: less energy, `O(Δ n^{1+ξ})`
/// time.
pub struct Theorem20;

impl BroadcastAlgorithm for Theorem20 {
    fn name(&self) -> &'static str {
        "theorem20"
    }
    fn supported_models(&self) -> &'static [Model] {
        // CD only: the §7.2 merge elections detect contention through the
        // noise signal λN, which CD* (arbitrary-message delivery) never
        // produces — under CD* the cluster state goes invalid.
        &[Model::Cd]
    }
    fn run(&self, sim: &mut Sim, source: NodeId) -> BroadcastOutcome {
        sim.span_enter(self.name());
        let out = broadcast_theorem20(sim, source, &Theorem20Config::default());
        sim.span_exit();
        out
    }
}

/// The §8 path algorithm (Theorem 21): `≤ 2n` delivery time at `O(log n)`
/// expected per-vertex energy — defined only on the canonical
/// `0–1–…–(n−1)` path.
pub struct PathAlgorithm;

impl BroadcastAlgorithm for PathAlgorithm {
    fn name(&self) -> &'static str {
        "path_theorem21"
    }
    fn supported_models(&self) -> &'static [Model] {
        &[Model::Local]
    }
    fn supports_graph(&self, graph: &Graph) -> bool {
        let n = graph.n();
        n >= 2 && graph.m() == n - 1 && (0..n - 1).all(|v| graph.has_edge(v, v + 1))
    }
    fn fault_tolerant(&self) -> bool {
        // The slots run on a private EventEngine, which bypasses the
        // Sim's fault choke point: an active plan would be silently
        // ignored, simulating a clean channel under a faulty label.
        false
    }
    fn run(&self, sim: &mut Sim, source: NodeId) -> BroadcastOutcome {
        // The protocol sleeps for long data-dependent stretches, so it runs
        // on the event-driven engine (over the *same* shared graph — no CSR
        // copy) and its meter folds back into `sim`.
        sim.span_enter(self.name());
        let mut engine = EventEngine::new(sim.graph_arc().clone(), sim.model());
        let stats = run_path_broadcast(&mut engine, source, &PathConfig::default(), sim.seed());
        sim.absorb_meter(engine.meter());
        sim.skip(stats.quiescence + 1);
        sim.span_exit();
        if sim.telemetry_enabled() {
            // The engine's slots bypass the sim; surface the delivery curve
            // it reported as gauges on the global clock instead.
            let mut slots: Vec<u64> = stats.delivery_slot.iter().flatten().copied().collect();
            slots.sort_unstable();
            for (rank, s) in slots.iter().enumerate() {
                sim.record_gauge("informed", *s, (rank + 1) as f64);
            }
        }
        BroadcastOutcome {
            informed: stats.delivery_slot.iter().map(|s| s.is_some()).collect(),
            source,
        }
    }
}

/// Deterministic LOCAL broadcast (Theorem 25) via `G_L` ruling sets.
pub struct DetLocal;

impl BroadcastAlgorithm for DetLocal {
    fn name(&self) -> &'static str {
        "det_local_theorem25"
    }
    fn supported_models(&self) -> &'static [Model] {
        &[Model::Local]
    }
    fn run(&self, sim: &mut Sim, source: NodeId) -> BroadcastOutcome {
        sim.span_enter(self.name());
        let out = broadcast_det_local(sim, source, &DetLocalConfig::default());
        sim.span_exit();
        out
    }
}

/// Deterministic CD broadcast (Theorem 27) via iterated ruling-set
/// clustering.
pub struct DetCd;

impl BroadcastAlgorithm for DetCd {
    fn name(&self) -> &'static str {
        "det_cd_theorem27"
    }
    fn supported_models(&self) -> &'static [Model] {
        &[Model::Cd, Model::CdStar]
    }
    fn run(&self, sim: &mut Sim, source: NodeId) -> BroadcastOutcome {
        sim.span_enter(self.name());
        let out = broadcast_det_cd(sim, source, &DetCdConfig::default());
        sim.span_exit();
        out
    }
}

/// Naive LOCAL flooding — the time-optimal, energy-hungry baseline.
pub struct NaiveFlood;

impl BroadcastAlgorithm for NaiveFlood {
    fn name(&self) -> &'static str {
        "naive_flood"
    }
    fn supported_models(&self) -> &'static [Model] {
        &[Model::Local]
    }
    fn run(&self, sim: &mut Sim, source: NodeId) -> BroadcastOutcome {
        sim.span_enter(self.name());
        let out = flood_local(sim, source);
        sim.span_exit();
        out
    }
}

/// The Bar-Yehuda–Goldreich–Itai decay broadcast — near-optimal time,
/// `Θ(time)` energy; the gap that motivates the paper.
pub struct BgiDecay;

impl BroadcastAlgorithm for BgiDecay {
    fn name(&self) -> &'static str {
        "bgi_decay"
    }
    fn supported_models(&self) -> &'static [Model] {
        &[Model::NoCd, Model::Cd, Model::CdStar]
    }
    fn run(&self, sim: &mut Sim, source: NodeId) -> BroadcastOutcome {
        sim.span_enter(self.name());
        let out = bgi_decay_broadcast(sim, source, None);
        sim.span_exit();
        out
    }
}

/// Every registered algorithm, in presentation order: the Table 1 rows
/// first, then the §8 path algorithm, then the baselines.
pub static ALGORITHMS: &[&dyn BroadcastAlgorithm] = &[
    &Theorem11,
    &Theorem12,
    &Corollary13,
    &Theorem16,
    &Theorem20,
    &PathAlgorithm,
    &DetLocal,
    &DetCd,
    &NaiveFlood,
    &BgiDecay,
];

/// Looks up a registered algorithm by exact name.
pub fn by_name(name: &str) -> Option<&'static dyn BroadcastAlgorithm> {
    ALGORITHMS.iter().copied().find(|a| a.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_graphs::deterministic::{cycle, path};
    use ebc_graphs::families::Family;

    #[test]
    fn registry_names_are_unique_and_stable() {
        let mut names: Vec<&str> = ALGORITHMS.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names, deduped, "duplicate algorithm names");
        for n in names {
            assert!(
                n.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "name {n:?} is not a stable key"
            );
        }
    }

    #[test]
    fn by_name_round_trips() {
        for alg in ALGORITHMS {
            assert_eq!(by_name(alg.name()).unwrap().name(), alg.name());
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn every_algorithm_supports_at_least_one_model() {
        for alg in ALGORITHMS {
            assert!(
                !alg.supported_models().is_empty(),
                "{} supports no model",
                alg.name()
            );
            for &m in alg.supported_models() {
                assert!(alg.supports_model(m));
                assert_ne!(m, Model::Beep, "broadcast is not expressible in Beep");
            }
        }
    }

    #[test]
    fn every_algorithm_informs_a_cycle_in_its_first_model() {
        // The cycle is in every algorithm's topology scope; each runs in
        // its first supported model.
        for alg in ALGORITHMS {
            let g = cycle(16);
            if !alg.supports_graph(&g) {
                continue; // path_theorem21: cycles are out of scope
            }
            let model = alg.supported_models()[0];
            let mut sim = Sim::new(g, model, 42);
            let out = alg.run(&mut sim, 0);
            assert!(out.all_informed(), "{} failed on cycle(16)", alg.name());
            assert!(
                sim.meter().total_energy() > 0,
                "{} metered no energy",
                alg.name()
            );
        }
    }

    #[test]
    fn registry_conformance_every_algorithm_model_family() {
        // The permanent cross-product conformance sweep: every registered
        // algorithm, under every model it claims to support, on every
        // compatible family at n = 16, must inform all nodes and meter
        // energy. This is the test shape that caught Theorem 20's CD*
        // bug (its §7.2 elections need the λN noise signal) after the
        // fact — any new algorithm or family joins the sweep
        // automatically.
        let mut combinations = 0usize;
        for alg in ALGORITHMS {
            for &model in alg.supported_models() {
                for family in Family::ALL {
                    let instance = family.instance(16, 0xc0f0);
                    if !alg.supports_graph(&instance.graph) {
                        continue;
                    }
                    combinations += 1;
                    let mut sim = Sim::new(instance.graph, model, 42);
                    let out = alg.run(&mut sim, 0);
                    assert!(
                        out.all_informed(),
                        "{} under {:?} on {} (n={}) left nodes uninformed",
                        alg.name(),
                        model,
                        family.name(),
                        sim.graph().n(),
                    );
                    assert!(
                        sim.meter().total_energy() > 0,
                        "{} under {:?} on {} metered no energy",
                        alg.name(),
                        model,
                        family.name(),
                    );
                }
            }
        }
        // The sweep must be substantial: ≥ 10 algorithms × ≥ 1 model ×
        // several families each. Guards against a silent registry or
        // family-list regression emptying the loop.
        assert!(combinations >= 100, "only {combinations} combinations ran");
    }

    #[test]
    fn registry_conformance_no_hang_under_heavy_slot_loss() {
        // The no-hang guarantee: every fault-tolerant adapter, under
        // every model it supports, on every compatible family at n = 16,
        // must terminate within its slot budget under SlotLoss{p = 0.5}
        // — reporting a (possibly partial) informed set rather than
        // wedging. Non-instrumentable adapters must say so explicitly
        // via `fault_tolerant()`.
        use ebc_radio::FaultPlan;
        let mut combinations = 0usize;
        let mut successes = 0usize;
        for alg in ALGORITHMS {
            if !alg.fault_tolerant() {
                assert_eq!(
                    alg.name(),
                    "path_theorem21",
                    "only the EventEngine-backed path adapter may opt out"
                );
                continue;
            }
            for &model in alg.supported_models() {
                // Calibrate one budget per (algorithm, model) on the
                // slowest clean family: under heavy loss an adaptive
                // schedule collapses toward its graph-independent worst
                // case, so a fast family's own clean clock is the wrong
                // yardstick for its degraded run.
                let mut slowest_clean = 0u64;
                for family in Family::ALL {
                    let instance = family.instance(16, 0xc0f0);
                    if !alg.supports_graph(&instance.graph) {
                        continue;
                    }
                    let mut clean = Sim::new(instance.graph, model, 42);
                    alg.run(&mut clean, 0);
                    slowest_clean = slowest_clean.max(clean.now());
                }
                let budget = fault_slot_budget(16, slowest_clean);
                for family in Family::ALL {
                    let instance = family.instance(16, 0xc0f0);
                    if !alg.supports_graph(&instance.graph) {
                        continue;
                    }
                    combinations += 1;
                    let mut sim =
                        Sim::with_faults(instance.graph, model, 42, FaultPlan::SlotLoss { p: 0.5 });
                    let res = run_faulty(*alg, &mut sim, 0, budget);
                    assert!(
                        !res.timed_out,
                        "{} under {:?} on {} ran {} slots (budget {budget})",
                        alg.name(),
                        model,
                        family.name(),
                        res.slots,
                    );
                    assert_eq!(res.outcome.informed.len(), sim.graph().n());
                    assert!(res.outcome.informed_fraction() >= 0.0);
                    if res.success {
                        successes += 1;
                    }
                }
            }
        }
        assert!(combinations >= 90, "only {combinations} combinations ran");
        // Half the slots are lost: some runs must degrade (a registry
        // where every run still fully informs means the fault layer is
        // not reaching the pipeline), yet the fixed-schedule flooders
        // should still succeed occasionally.
        assert!(
            successes < combinations,
            "no run degraded under p = 0.5 slot loss"
        );
    }

    #[test]
    fn path_adapter_merges_engine_energy_into_sim() {
        let mut sim = Sim::new(path(32), Model::Local, 3);
        let out = PathAlgorithm.run(&mut sim, 0);
        assert!(out.all_informed());
        assert!(sim.meter().total_energy() > 0, "engine energy not absorbed");
        assert!(sim.now() > 0, "clock did not advance over the sub-run");
        assert!(sim.meter().last_active().unwrap() < sim.now());
    }

    #[test]
    fn path_adapter_rejects_non_paths_via_supports_graph() {
        assert!(PathAlgorithm.supports_graph(&path(8)));
        assert!(!PathAlgorithm.supports_graph(&cycle(8)));
        assert!(!PathAlgorithm.supports_graph(&ebc_graphs::deterministic::star(4)));
    }

    #[test]
    fn corollary13_scopes_out_unbounded_degree() {
        assert!(Corollary13.supports_graph(&cycle(64)));
        assert!(!Corollary13.supports_graph(&ebc_graphs::deterministic::star(64)));
    }

    #[test]
    fn model_filtering_matches_table1() {
        assert!(by_name("theorem12").unwrap().supports_model(Model::Cd));
        assert!(!by_name("theorem12").unwrap().supports_model(Model::NoCd));
        assert!(!by_name("det_local_theorem25")
            .unwrap()
            .supports_model(Model::Cd));
        assert!(by_name("bgi_decay").unwrap().supports_model(Model::NoCd));
        for alg in ALGORITHMS {
            assert!(!alg.supports_model(Model::Beep), "{}", alg.name());
        }
    }

    #[test]
    fn every_adapter_emits_phase_spans_when_telemetry_is_on() {
        // Satellite of the telemetry layer: each registered algorithm marks
        // its protocol phases, nested under a top-level span named after
        // the adapter, and closes everything it opens.
        for alg in ALGORITHMS {
            let g = if alg.supports_graph(&cycle(16)) {
                cycle(16)
            } else {
                path(16) // path_theorem21
            };
            let model = alg.supported_models()[0];
            let mut sim = Sim::new(g, model, 42);
            sim.enable_telemetry();
            let out = alg.run(&mut sim, 0);
            assert!(out.all_informed(), "{}", alg.name());
            let tel = sim.telemetry().expect("telemetry stays attached");
            let spans = tel.spans();
            assert!(
                spans.iter().any(|s| s.name == alg.name() && s.depth == 0),
                "{} has no top-level span",
                alg.name()
            );
            assert!(
                spans.iter().any(|s| s.depth > 0 || s.name != alg.name())
                    || !tel.gauges().is_empty(),
                "{} marked no internal phases or gauges",
                alg.name()
            );
            assert!(
                spans.iter().all(|s| !s.is_open()),
                "{} left a span open",
                alg.name()
            );
        }
    }

    #[test]
    fn telemetry_does_not_change_suite_results() {
        // The layer must be observational: informed set, clock, and energy
        // are bit-identical with telemetry on or off.
        for alg in ALGORITHMS {
            let g = if alg.supports_graph(&cycle(16)) {
                cycle(16)
            } else {
                path(16)
            };
            let model = alg.supported_models()[0];
            let mut plain = Sim::new(g.clone(), model, 7);
            let out_plain = alg.run(&mut plain, 0);
            let mut traced = Sim::new(g, model, 7);
            traced.enable_telemetry();
            let out_traced = alg.run(&mut traced, 0);
            assert_eq!(out_plain, out_traced, "{}", alg.name());
            assert_eq!(plain.now(), traced.now(), "{}", alg.name());
            assert_eq!(
                plain.meter().total_energy(),
                traced.meter().total_energy(),
                "{}",
                alg.name()
            );
        }
    }

    #[test]
    fn suite_runs_are_deterministic_per_seed() {
        let run = |seed| {
            let g = Family::Grid.instance(16, 1).graph;
            let mut sim = Sim::new(g, Model::Cd, seed);
            let out = Theorem11.run(&mut sim, 0);
            (out.count(), sim.now(), sim.meter().total_energy())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
