//! Shared helpers for the algorithm implementations.

use ebc_radio::rng::node_rng;
use ebc_radio::NodeId;
use rand::rngs::SmallRng;
use rand::Rng;

/// One private RNG per device, derived from a master seed and a logical
/// stream tag so different algorithm phases get independent randomness.
#[derive(Debug)]
pub struct NodeRngs {
    rngs: Vec<SmallRng>,
}

impl NodeRngs {
    /// RNGs for `n` devices under `(seed, stream)`.
    pub fn new(seed: u64, n: usize, stream: u64) -> Self {
        NodeRngs {
            rngs: (0..n).map(|v| node_rng(seed, v, stream)).collect(),
        }
    }

    /// The RNG of device `v`.
    pub fn get(&mut self, v: NodeId) -> &mut SmallRng {
        &mut self.rngs[v]
    }
}

/// A read-only map from device id to its position in a caller-owned list
/// (e.g. a receiver's index into the aligned `got` results), backed by one
/// sorted array and binary search.
///
/// The per-slot behaviors dispatch on "is `v` a sender, and which one?"
/// every poll; a `HashMap` rebuilt per SR round costs an allocation per
/// entry plus hashing per poll, where this is one flat sort and `O(log k)`
/// probes of a cache-resident array.
#[derive(Debug, Clone)]
pub struct IdIndex {
    /// `(id, position in the original list)`, sorted by id.
    sorted: Vec<(NodeId, u32)>,
}

impl IdIndex {
    /// An index over `ids`, remembering each id's original position.
    ///
    /// Ids must be distinct (as participant lists are).
    pub fn new(ids: impl IntoIterator<Item = NodeId>) -> Self {
        let mut sorted: Vec<(NodeId, u32)> = ids
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, i as u32))
            .collect();
        sorted.sort_unstable();
        IdIndex { sorted }
    }

    /// The original position of `v`, or `None` if absent.
    #[inline]
    pub fn get(&self, v: NodeId) -> Option<usize> {
        self.sorted
            .binary_search_by_key(&v, |&(id, _)| id)
            .ok()
            .map(|i| self.sorted[i].1 as usize)
    }

    /// Whether `v` is in the index.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.sorted.binary_search_by_key(&v, |&(id, _)| id).is_ok()
    }

    /// The number of indexed ids.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// O(1) vertex → SR-role lookup over the full id space: one flat `u32`
/// per vertex holding "not a participant", "sender `si`", or "receiver
/// `ri`".
///
/// The SR behaviors ask "is `v` a sender, and which one?" on *every*
/// poll; at `n = 10^6` participant sets, per-poll binary search
/// ([`IdIndex`]) costs ~17 probes of a cold array and dominated the CD
/// rounds. This map is one indexed load. Building it is `O(n)` — the same
/// order as the participant list the round already builds.
#[derive(Debug)]
pub struct RoleMap {
    /// `0` = no role; else index + 1, receivers tagged by the high bit.
    role: Vec<u32>,
}

impl RoleMap {
    const RECV: u32 = 1 << 31;

    /// A map over vertices `0..n` with the given sender/receiver lists.
    ///
    /// Senders and receivers must be disjoint, each duplicate-free.
    pub fn new(
        n: usize,
        senders: impl IntoIterator<Item = NodeId>,
        receivers: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        let mut role = vec![0u32; n];
        for (i, v) in senders.into_iter().enumerate() {
            debug_assert_eq!(role[v], 0, "duplicate role for {v}");
            role[v] = i as u32 + 1;
        }
        for (i, v) in receivers.into_iter().enumerate() {
            debug_assert_eq!(role[v], 0, "duplicate role for {v}");
            role[v] = (i as u32 + 1) | Self::RECV;
        }
        RoleMap { role }
    }

    /// `v`'s index in the sender list, if a sender.
    #[inline]
    pub fn sender(&self, v: NodeId) -> Option<usize> {
        match self.role[v] {
            0 => None,
            r if r & Self::RECV != 0 => None,
            r => Some(r as usize - 1),
        }
    }

    /// `v`'s index in the receiver list, if a receiver.
    #[inline]
    pub fn receiver(&self, v: NodeId) -> Option<usize> {
        match self.role[v] {
            0 => None,
            r if r & Self::RECV == 0 => None,
            r => Some((r & !Self::RECV) as usize - 1),
        }
    }
}

/// `⌈log₂ x⌉` for `x ≥ 1`, with `ceil_log2(1) = 0`.
pub fn ceil_log2(x: usize) -> u32 {
    assert!(x >= 1);
    usize::BITS - (x - 1).leading_zeros()
}

/// Samples `Exponential(β)` (rate `β`, mean `1/β`) by inversion.
pub fn sample_exponential(rng: &mut impl Rng, beta: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / beta
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_radio::rng::node_rng;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn node_rngs_are_independent_and_stable() {
        let mut a = NodeRngs::new(1, 4, 9);
        let mut b = NodeRngs::new(1, 4, 9);
        let x: u64 = a.get(2).gen();
        let y: u64 = b.get(2).gen();
        assert_eq!(x, y);
        let z: u64 = b.get(3).gen();
        assert_ne!(x, z);
    }

    #[test]
    fn exponential_mean_roughly_inverse_rate() {
        let mut rng = node_rng(5, 0, 0);
        let beta = 0.25;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| sample_exponential(&mut rng, beta))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 4.0).abs() < 0.3, "mean = {mean}");
    }

    #[test]
    fn id_index_finds_original_positions() {
        let idx = IdIndex::new([9usize, 2, 40, 7]);
        assert_eq!(idx.get(9), Some(0));
        assert_eq!(idx.get(2), Some(1));
        assert_eq!(idx.get(40), Some(2));
        assert_eq!(idx.get(7), Some(3));
        assert_eq!(idx.get(8), None);
        assert!(idx.contains(40));
        assert!(!idx.contains(0));
        assert_eq!(idx.len(), 4);
        assert!(!idx.is_empty());
        assert!(IdIndex::new([]).is_empty());
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = node_rng(6, 0, 0);
        for _ in 0..1000 {
            assert!(sample_exponential(&mut rng, 1.0) >= 0.0);
        }
    }
}
