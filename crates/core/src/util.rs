//! Shared helpers for the algorithm implementations.

use ebc_radio::rng::node_rng;
use ebc_radio::NodeId;
use rand::rngs::SmallRng;
use rand::Rng;

/// One private RNG per device, derived from a master seed and a logical
/// stream tag so different algorithm phases get independent randomness.
#[derive(Debug)]
pub struct NodeRngs {
    rngs: Vec<SmallRng>,
}

impl NodeRngs {
    /// RNGs for `n` devices under `(seed, stream)`.
    pub fn new(seed: u64, n: usize, stream: u64) -> Self {
        NodeRngs {
            rngs: (0..n).map(|v| node_rng(seed, v, stream)).collect(),
        }
    }

    /// The RNG of device `v`.
    pub fn get(&mut self, v: NodeId) -> &mut SmallRng {
        &mut self.rngs[v]
    }
}

/// `⌈log₂ x⌉` for `x ≥ 1`, with `ceil_log2(1) = 0`.
pub fn ceil_log2(x: usize) -> u32 {
    assert!(x >= 1);
    usize::BITS - (x - 1).leading_zeros()
}

/// Samples `Exponential(β)` (rate `β`, mean `1/β`) by inversion.
pub fn sample_exponential(rng: &mut impl Rng, beta: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / beta
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_radio::rng::node_rng;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn node_rngs_are_independent_and_stable() {
        let mut a = NodeRngs::new(1, 4, 9);
        let mut b = NodeRngs::new(1, 4, 9);
        let x: u64 = a.get(2).gen();
        let y: u64 = b.get(2).gen();
        assert_eq!(x, y);
        let z: u64 = b.get(3).gen();
        assert_ne!(x, z);
    }

    #[test]
    fn exponential_mean_roughly_inverse_rate() {
        let mut rng = node_rng(5, 0, 0);
        let beta = 0.25;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| sample_exponential(&mut rng, beta))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 4.0).abs() < 0.3, "mean = {mean}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = node_rng(6, 0, 0);
        for _ in 0..1000 {
            assert!(sample_exponential(&mut rng, 1.0) >= 0.0);
        }
    }
}
