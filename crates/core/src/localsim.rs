//! Simulation of LOCAL algorithms in No-CD (paper §3, Theorem 3).
//!
//! The preprocessing computes a proper coloring of `G + G²` with `2Δ²`
//! colors, after which any LOCAL algorithm runs collision-free under TDMA:
//! time is divided into frames of `2Δ²` slots, a vertex transmits only in
//! its color's slot, and listens only in its neighbors' color slots — no
//! two vertices within distance 2 ever transmit together.
//!
//! * [`learn_degree`] — `C·Δ·log n` slots in which each vertex transmits its
//!   id with probability `1/Δ`; w.h.p. every vertex learns all neighbor ids
//!   (Lemma 4).
//! * [`two_hop_coloring`] — the iterated propose/announce/fix protocol of
//!   §3.1 (Lemmas 5, 6).
//! * [`build_tdma`] — runs both and returns an [`Sr::Tdma`] strategy ready
//!   for the Corollary 13 pipeline.

use ebc_radio::{Action, Feedback, NodeId, Schedule, Sim, SlotBehavior};
use rand::Rng;

use crate::srcomm::Sr;
use crate::util::{ceil_log2, NodeRngs};

/// Outcome of [`learn_degree`]: what each vertex discovered.
#[derive(Debug, Clone)]
pub struct NeighborKnowledge {
    /// `known[v]` lists the neighbor ids `v` heard (sorted).
    pub known: Vec<Vec<NodeId>>,
}

impl NeighborKnowledge {
    /// Whether every vertex learned its complete neighborhood.
    pub fn complete(&self, g: &ebc_radio::Graph) -> bool {
        (0..g.n()).all(|v| {
            let mut expect: Vec<NodeId> = g.neighbors(v).collect();
            expect.sort_unstable();
            self.known[v] == expect
        })
    }
}

struct LearnDegreeBehavior<'a> {
    delta: usize,
    heard: Vec<std::collections::BTreeSet<NodeId>>,
    rngs: &'a mut NodeRngs,
}

impl SlotBehavior<NodeId> for LearnDegreeBehavior<'_> {
    fn act(&mut self, v: NodeId, _t: u64) -> Action<NodeId> {
        if self.rngs.get(v).gen_bool(1.0 / self.delta as f64) {
            Action::Send(v)
        } else {
            Action::Listen
        }
    }
    fn feedback(&mut self, v: NodeId, _t: u64, fb: Feedback<NodeId>) {
        if let Feedback::One(u) = fb {
            self.heard[v].insert(u);
        }
    }
}

/// Algorithm *Learn-degree* (§3.1): for `C·Δ·log n` slots each vertex sends
/// its id with probability `1/Δ`, otherwise listens. W.h.p. every vertex
/// learns the ids of all its neighbors (Lemma 4, coupon collection).
pub fn learn_degree(sim: &mut Sim, c: f64, rngs: &mut NodeRngs) -> NeighborKnowledge {
    let n = sim.graph().n();
    let delta = sim.graph().max_degree().max(1);
    let slots = (c * delta as f64 * (ceil_log2(n.max(2)) as f64)).ceil() as u64;
    let participants: Vec<NodeId> = (0..n).collect();
    let mut b = LearnDegreeBehavior {
        delta,
        heard: vec![Default::default(); n],
        rngs,
    };
    sim.drive(
        Schedule::Dense {
            participants: &participants,
            slots,
        },
        &mut b,
    );
    NeighborKnowledge {
        known: b
            .heard
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect(),
    }
}

/// A Two-Hop-Coloring announcement: `(id, fixed, color, L(v))` where `L(v)`
/// maps each of `v`'s neighbors to the last color `v` heard from them.
#[derive(Debug, Clone, PartialEq)]
struct ColorMsg {
    id: NodeId,
    color: u32,
    l: Vec<(NodeId, Option<u32>)>,
}

/// One neighbor's announced color table: `(neighbor, its color)` pairs.
type ColorTable = Vec<(NodeId, Option<u32>)>;

struct ColoringState {
    color: Vec<u32>,
    fixed: Vec<bool>,
    /// `l[v]`: v's record of each neighbor's last announced color.
    l: Vec<std::collections::BTreeMap<NodeId, Option<u32>>>,
    /// `copies[v]`: v's copy of each neighbor w's own `L(w)`.
    copies: Vec<std::collections::BTreeMap<NodeId, ColorTable>>,
}

struct ColoringBehavior<'a> {
    state: &'a mut ColoringState,
    delta: usize,
    rngs: &'a mut NodeRngs,
}

impl SlotBehavior<ColorMsg> for ColoringBehavior<'_> {
    fn act(&mut self, v: NodeId, _t: u64) -> Action<ColorMsg> {
        if self.rngs.get(v).gen_bool(1.0 / self.delta as f64) {
            Action::Send(ColorMsg {
                id: v,
                color: self.state.color[v],
                l: self.state.l[v].iter().map(|(&k, &c)| (k, c)).collect(),
            })
        } else {
            Action::Listen
        }
    }
    fn feedback(&mut self, v: NodeId, _t: u64, fb: Feedback<ColorMsg>) {
        if let Feedback::One(m) = fb {
            self.state.l[v].insert(m.id, Some(m.color));
            self.state.copies[v].insert(m.id, m.l);
        }
    }
}

/// Algorithm *Two-Hop-Coloring* (§3.1): returns a proper coloring of
/// `G + G²` with `2Δ²` colors, w.h.p., in `O(Δ log Δ log n)` time and
/// energy.
///
/// `knowledge` must list each vertex's neighbors (from [`learn_degree`]).
/// `iters` defaults to `C log n` when `None`.
///
/// Returns `(colors, num_colors)`.
pub fn two_hop_coloring(
    sim: &mut Sim,
    knowledge: &NeighborKnowledge,
    iters: Option<u32>,
    rngs: &mut NodeRngs,
    coin_rngs: &mut NodeRngs,
) -> (Vec<u32>, u32) {
    let n = sim.graph().n();
    let delta = sim.graph().max_degree().max(1);
    let num_colors = (2 * delta * delta) as u32;
    let iters = iters.unwrap_or(4 * ceil_log2(n.max(2)) + 8);
    // Per iteration: Θ(Δ (log Δ + 1)) announcement slots, plus a margin so
    // each vertex hears each neighbor ~twice (Lemma 5's two coupon phases).
    let slots_per_iter = (8.0 * delta as f64 * ((ceil_log2(delta + 1) as f64) + 2.0)).ceil() as u64;
    let mut state = ColoringState {
        color: vec![0; n],
        fixed: vec![false; n],
        l: (0..n)
            .map(|v| knowledge.known[v].iter().map(|&u| (u, None)).collect())
            .collect(),
        copies: vec![Default::default(); n],
    };
    let participants: Vec<NodeId> = (0..n).collect();
    for _ in 0..iters {
        // Step 1: unfixed vertices propose a fresh random color.
        for v in 0..n {
            if !state.fixed[v] {
                state.color[v] = coin_rngs.get(v).gen_range(0..num_colors);
            }
        }
        // Steps 2–3: announce (id, color, L(v)) at rate 1/Δ.
        let mut b = ColoringBehavior {
            state: &mut state,
            delta,
            rngs,
        };
        sim.drive(
            Schedule::Dense {
                participants: &participants,
                slots: slots_per_iter,
            },
            &mut b,
        );
        // Step 4: fix the color if no conflict is visible within distance 2.
        for v in 0..n {
            if state.fixed[v] {
                continue;
            }
            let c = state.color[v];
            let cond_i = state.l[v].values().any(|&e| e.is_none() || e == Some(c));
            let cond_ii = knowledge.known[v].iter().any(|w| {
                match state.copies[v].get(w) {
                    None => true, // never heard w's list
                    Some(lw) => {
                        lw.iter().any(|(_, e)| e.is_none())
                            || lw.iter().filter(|(_, e)| *e == Some(c)).count() >= 2
                    }
                }
            });
            if !cond_i && !cond_ii {
                state.fixed[v] = true;
            }
        }
    }
    (state.color, num_colors)
}

/// Verifies that `colors` is a proper coloring of `G + G²`: all vertices in
/// every closed neighborhood `N⁺(v)` have pairwise distinct colors.
pub fn is_two_hop_proper(g: &ebc_radio::Graph, colors: &[u32]) -> bool {
    (0..g.n()).all(|v| {
        let mut seen = std::collections::HashSet::new();
        seen.insert(colors[v]);
        g.neighbors(v).all(|u| seen.insert(colors[u]))
    })
}

/// Runs the full Theorem 3 preprocessing (Learn-Degree, then
/// Two-Hop-Coloring) and packages the result as a TDMA SR strategy.
///
/// Afterwards any LOCAL algorithm — in particular the Lemma 10 / §5
/// pipeline — runs collision-free with a `2Δ²` time and `Δ` energy
/// overhead, which is how Corollary 13 gets `O(n log n)` time and
/// `O(log n)` energy on bounded-degree graphs.
pub fn build_tdma(sim: &mut Sim, rngs: &mut NodeRngs, coin_rngs: &mut NodeRngs) -> Sr {
    let knowledge = learn_degree(sim, 8.0, rngs);
    let (colors, num_colors) = two_hop_coloring(sim, &knowledge, None, rngs, coin_rngs);
    Sr::Tdma {
        colors: std::sync::Arc::new(colors),
        num_colors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_graphs::deterministic::{cycle, grid, path};
    use ebc_graphs::random::bounded_degree;
    use ebc_radio::Model;

    fn rngs2(seed: u64, n: usize) -> (NodeRngs, NodeRngs) {
        (NodeRngs::new(seed, n, 20), NodeRngs::new(seed, n, 21))
    }

    #[test]
    fn learn_degree_discovers_all_neighbors() {
        let g = path(16);
        let mut sim = Sim::new(g.clone(), Model::NoCd, 3);
        let (mut r, _) = rngs2(3, 16);
        let k = learn_degree(&mut sim, 8.0, &mut r);
        assert!(k.complete(&g));
    }

    #[test]
    fn learn_degree_on_grid() {
        let g = grid(5, 5);
        let mut sim = Sim::new(g.clone(), Model::NoCd, 4);
        let (mut r, _) = rngs2(4, 25);
        let k = learn_degree(&mut sim, 8.0, &mut r);
        assert!(k.complete(&g));
    }

    #[test]
    fn learn_degree_energy_linear_in_delta_logn() {
        let g = path(64);
        let mut sim = Sim::new(g.clone(), Model::NoCd, 5);
        let (mut r, _) = rngs2(5, 64);
        learn_degree(&mut sim, 8.0, &mut r);
        // Every vertex is active every slot: energy == slots == C·Δ·log n.
        let expect = 8 * 2 * ceil_log2(64) as u64;
        assert_eq!(sim.meter().max_energy(), expect);
    }

    #[test]
    fn coloring_is_proper_on_cycle() {
        let g = cycle(24);
        let mut sim = Sim::new(g.clone(), Model::NoCd, 6);
        let (mut r, mut c) = rngs2(6, 24);
        let k = learn_degree(&mut sim, 8.0, &mut r);
        assert!(k.complete(&g));
        let (colors, num) = two_hop_coloring(&mut sim, &k, None, &mut r, &mut c);
        assert!(colors.iter().all(|&x| x < num));
        assert!(is_two_hop_proper(&g, &colors));
    }

    #[test]
    fn coloring_is_proper_on_bounded_degree_graphs() {
        for seed in 0..3u64 {
            let g = bounded_degree(40, 4, 1.5, seed);
            let mut sim = Sim::new(g.clone(), Model::NoCd, seed);
            let (mut r, mut c) = rngs2(seed, 40);
            let k = learn_degree(&mut sim, 8.0, &mut r);
            assert!(k.complete(&g), "seed {seed}");
            let (colors, _) = two_hop_coloring(&mut sim, &k, None, &mut r, &mut c);
            assert!(is_two_hop_proper(&g, &colors), "seed {seed}");
        }
    }

    #[test]
    fn is_two_hop_proper_rejects_distance_two_conflict() {
        let g = path(3);
        // Endpoints share a color: distance 2 via the middle.
        assert!(!is_two_hop_proper(&g, &[0, 1, 0]));
        assert!(is_two_hop_proper(&g, &[0, 1, 2]));
    }

    #[test]
    fn build_tdma_produces_usable_strategy() {
        let g = path(12);
        let mut sim = Sim::new(g.clone(), Model::NoCd, 7);
        let (mut r, mut c) = rngs2(7, 12);
        let sr = build_tdma(&mut sim, &mut r, &mut c);
        // Use it: vertex 0 sends to vertex 1 collision-free.
        let got = sr.run(&mut sim, &[(0usize, 9u8)], &[1], &mut r);
        assert_eq!(got[0], Some(9));
    }
}
