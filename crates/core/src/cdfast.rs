//! The improved randomized CD algorithm (paper §7, Theorem 20):
//! `O(log n (log log Δ + 1/ξ) / log log log Δ)` energy at the price of
//! `O(Δ n^{1+ξ})` time.
//!
//! Two ideas power the improvement over §5:
//!
//! 1. **Vertex colorings (§7.1).** `c = O(1/ξ)` public pseudo-random
//!    colorings with `n^ξ Δ` colors each. For a child `u` with parent `v`,
//!    `Ind(u, v)` is the first coloring in which `v`'s color is unique in
//!    `N(u)` — learned once by the Lemma 19 protocol. Downward
//!    transmissions then cost the child exactly *one* listen (at slot
//!    `(Ind, color)` the parent is the only possible transmitter), and
//!    upward transmissions fall into Lemma 8's cheap special case (each
//!    sender is adjacent to exactly one receiver: its parent).
//! 2. **Cluster merging with Active/Wait/Halt states (§7.2).** Whole
//!    clusters merge into neighbors' groups via merge requests, with the
//!    gentle failure probability `f = 1/polyloglog Δ` — energy per request
//!    is only `O(log log Δ)` instead of `O(log n)`.
//!
//! The cluster structure (ids, layers, designated parents) is the same
//! tree structure as Appendix A.3's [`DetClusterState`], which this module
//! reuses.

use ebc_radio::rng::{cluster_rng, splitmix64};
use ebc_radio::{Model, NodeId, Schedule, Sim};
use rand::Rng;

use crate::det::cd::DetClusterState;
use crate::labeling::Labeling;
use crate::srcomm::Sr;
use crate::util::{ceil_log2, NodeRngs};
use crate::BroadcastOutcome;

/// The public coloring family: `colors.get(j, v)` is `Color_j(v)`,
/// derived from the master seed so every vertex can evaluate any other
/// vertex's colors from its id (which is how children know their parent's
/// colors).
#[derive(Debug, Clone)]
pub struct Colorings {
    seed: u64,
    /// Number of colorings, `c = O(1/ξ)`.
    pub c: u32,
    /// Colors per coloring, `≈ n^ξ Δ`.
    pub num_colors: u32,
}

impl Colorings {
    /// A family of `c` colorings with `num_colors` colors under `seed`.
    pub fn new(seed: u64, c: u32, num_colors: u32) -> Self {
        assert!(c >= 1 && num_colors >= 1);
        Colorings {
            seed,
            c,
            num_colors,
        }
    }

    /// `Color_j(v)`.
    pub fn get(&self, j: u32, v: NodeId) -> u32 {
        (splitmix64(self.seed ^ ((j as u64) << 40) ^ (v as u64).wrapping_mul(0x9e37_79b9))
            % u64::from(self.num_colors)) as u32
    }

    /// The analytic `Ind(u, v)`: the first `j` where `v`'s color is unique
    /// among `N(u)` (test helper; the protocol learns it by listening).
    pub fn analytic_ind(&self, g: &ebc_radio::Graph, u: NodeId, v: NodeId) -> Option<u32> {
        (0..self.c).find(|&j| {
            let cv = self.get(j, v);
            g.neighbors(u).all(|w| w == v || self.get(j, w) != cv)
        })
    }
}

/// The Lemma 19 protocol: each vertex with a parent learns
/// `Ind(v, parent(v))` in `O(c · num_colors)` slots and `O(c)` energy.
///
/// For `j = 1..c`, `k = 1..num_colors`: every vertex whose `j`-th color is
/// `k` speaks; every vertex whose parent's `j`-th color is `k` listens.
/// The first `j` with a clean reception is `Ind`.
pub fn lemma19_ind(sim: &mut Sim, st: &DetClusterState, colors: &Colorings) -> Vec<Option<u32>> {
    let n = st.cid.len();
    let mut ind: Vec<Option<u32>> = vec![None; n];
    for j in 0..colors.c {
        // Bucket vertices by color for this coloring.
        let mut by_color: Vec<Vec<NodeId>> = vec![Vec::new(); colors.num_colors as usize];
        for v in 0..n {
            by_color[colors.get(j, v) as usize].push(v);
        }
        let mut listeners_by_color: Vec<Vec<NodeId>> = vec![Vec::new(); colors.num_colors as usize];
        for (v, i) in ind.iter().enumerate() {
            if i.is_none() {
                if let Some(p) = st.parent[v] {
                    listeners_by_color[colors.get(j, p) as usize].push(v);
                }
            }
        }
        for k in 0..colors.num_colors as usize {
            let senders = &by_color[k];
            let listeners = &listeners_by_color[k];
            if listeners.is_empty() {
                sim.skip(1);
                continue;
            }
            let mut heard: Vec<bool> = vec![false; listeners.len()];
            let sender_set: std::collections::HashSet<NodeId> = senders.iter().copied().collect();
            let mut behavior = ebc_radio::from_fns(
                |u, _t| {
                    if sender_set.contains(&u) {
                        ebc_radio::Action::Send(1u8)
                    } else {
                        ebc_radio::Action::Listen
                    }
                },
                |u, _t, fb: ebc_radio::Feedback<u8>| {
                    if matches!(fb, ebc_radio::Feedback::One(_)) {
                        let i = listeners.iter().position(|&x| x == u).expect("listener");
                        heard[i] = true;
                    }
                },
            );
            // A vertex can be both sender and listener only if its parent
            // shares its color; then it cannot listen while sending and
            // Ind(j) is not this j anyway.
            let participants: Vec<NodeId> = senders
                .iter()
                .copied()
                .chain(
                    listeners
                        .iter()
                        .copied()
                        .filter(|u| !sender_set.contains(u)),
                )
                .collect();
            sim.drive(
                Schedule::Dense {
                    participants: &participants,
                    slots: 1,
                },
                &mut behavior,
            );
            drop(behavior);
            for (i, &u) in listeners.iter().enumerate() {
                if heard[i] && ind[u].is_none() {
                    ind[u] = Some(j);
                }
            }
        }
    }
    ind
}

/// One colored downward sweep: per layer, per `(j, k)` slot, layer-`i`
/// holders with `Color_j = k` transmit; a child listens only at its
/// `(Ind, parent color)` slot — one listen per layer round, zero failure.
/// `fold` fires on reception, so messages chain down in one sweep.
fn colored_down(
    sim: &mut Sim,
    st: &DetClusterState,
    colors: &Colorings,
    ind: &[Option<u32>],
    msgs: &mut Vec<Option<u64>>,
    mut fold: impl FnMut(&mut Vec<Option<u64>>, NodeId, u64),
) {
    let n = st.cid.len();
    let max_layer = st.max_layer_pub();
    for layer in 0..=max_layer {
        for j in 0..colors.c {
            let mut send_by_color: Vec<Vec<NodeId>> = vec![Vec::new(); colors.num_colors as usize];
            for v in 0..n {
                if st.labeling.label(v) == layer && msgs[v].is_some() {
                    send_by_color[colors.get(j, v) as usize].push(v);
                }
            }
            let mut listen_by_color: Vec<Vec<NodeId>> =
                vec![Vec::new(); colors.num_colors as usize];
            for (u, i) in ind.iter().enumerate() {
                if st.labeling.label(u) == layer + 1 && *i == Some(j) {
                    if let Some(p) = st.parent[u] {
                        listen_by_color[colors.get(j, p) as usize].push(u);
                    }
                }
            }
            for k in 0..colors.num_colors as usize {
                let senders = &send_by_color[k];
                let listeners = &listen_by_color[k];
                if senders.is_empty() && listeners.is_empty() {
                    sim.skip(1);
                    continue;
                }
                let sender_msg: std::collections::HashMap<NodeId, u64> = senders
                    .iter()
                    .map(|&v| (v, msgs[v].expect("holder")))
                    .collect();
                let mut heard: Vec<Option<u64>> = vec![None; listeners.len()];
                let mut behavior = ebc_radio::from_fns(
                    |u, _t| match sender_msg.get(&u) {
                        Some(&m) => ebc_radio::Action::Send(m),
                        None => ebc_radio::Action::Listen,
                    },
                    |u, _t, fb: ebc_radio::Feedback<u64>| {
                        if let ebc_radio::Feedback::One(m) = fb {
                            let i = listeners.iter().position(|&x| x == u).expect("listener");
                            heard[i] = Some(m);
                        }
                    },
                );
                let participants: Vec<NodeId> = senders
                    .iter()
                    .copied()
                    .chain(
                        listeners
                            .iter()
                            .copied()
                            .filter(|u| !sender_msg.contains_key(u)),
                    )
                    .collect();
                sim.drive(
                    Schedule::Dense {
                        participants: &participants,
                        slots: 1,
                    },
                    &mut behavior,
                );
                drop(behavior);
                for (i, &u) in listeners.iter().enumerate() {
                    if let Some(m) = heard[i] {
                        // Accept only the parent's message: at the Ind slot
                        // the parent is the unique possible same-color
                        // transmitter in N(u), so a clean reception is it.
                        fold(msgs, u, m);
                    }
                }
            }
        }
    }
}

/// One colored upward sweep: per layer (deepest first), per `(j, k)` slot
/// group, Lemma 8 SR-communication from children (whose parent has
/// `Color_j = k` and `Ind = j`) to those parents — the cheap special case,
/// since each sender has exactly one receiver. Parents take the first
/// message received; `fold` fires on reception so values chain to the
/// root in one sweep.
#[allow(clippy::too_many_arguments)]
fn colored_up(
    sim: &mut Sim,
    st: &DetClusterState,
    colors: &Colorings,
    ind: &[Option<u32>],
    epochs: u32,
    rngs: &mut NodeRngs,
    msgs: &mut Vec<Option<u64>>,
    mut fold: impl FnMut(&mut Vec<Option<u64>>, NodeId, u64),
) {
    let n = st.cid.len();
    let delta = sim.graph().max_degree().max(1);
    let max_layer = st.max_layer_pub();
    let sr = Sr::CdTransform {
        delta,
        epochs,
        relevance_check: true,
    };
    for layer in (1..=max_layer).rev() {
        for j in 0..colors.c {
            let mut senders_by_color: Vec<Vec<(NodeId, u64)>> =
                vec![Vec::new(); colors.num_colors as usize];
            for u in 0..n {
                if st.labeling.label(u) == layer && ind[u] == Some(j) {
                    if let (Some(p), Some(m)) = (st.parent[u], msgs[u]) {
                        senders_by_color[colors.get(j, p) as usize].push((u, m));
                    }
                }
            }
            let mut recv_by_color: Vec<Vec<NodeId>> = vec![Vec::new(); colors.num_colors as usize];
            for v in 0..n {
                if st.labeling.label(v) + 1 == layer {
                    recv_by_color[colors.get(j, v) as usize].push(v);
                }
            }
            for k in 0..colors.num_colors as usize {
                let s = &senders_by_color[k];
                let r = &recv_by_color[k];
                if s.is_empty() && r.is_empty() {
                    sim.skip(sr.round_slots());
                    continue;
                }
                let got = sr.run(sim, s, r, rngs);
                for (i, &v) in r.iter().enumerate() {
                    if let Some(m) = got[i] {
                        fold(msgs, v, m);
                    }
                }
            }
        }
    }
}

/// Extension trait-ish helper: `DetClusterState` exposes `max_layer` only
/// privately; mirror it here.
trait MaxLayer {
    fn max_layer_pub(&self) -> u32;
}

impl MaxLayer for DetClusterState {
    fn max_layer_pub(&self) -> u32 {
        self.labeling.max_label()
    }
}

/// Parameters of the Theorem 20 driver.
#[derive(Debug, Clone)]
pub struct Theorem20Config {
    /// The time/energy knob ξ: `n^ξ Δ` colors per coloring and
    /// `c = ⌈2/ξ⌉` colorings.
    pub xi: f64,
    /// Override the outer iteration count
    /// (default `O(log n / log log log Δ)`).
    pub iters: Option<u32>,
    /// Override the §7.2 parameters `(p, s)`.
    pub ps: Option<(f64, u32)>,
}

impl Default for Theorem20Config {
    fn default() -> Self {
        Theorem20Config {
            xi: 0.34,
            iters: None,
            ps: None,
        }
    }
}

/// Theorem 20: energy
/// `O(log n (log log Δ + 1/ξ) / log log log Δ)`, time `O(Δ n^{1+ξ})`,
/// in the CD model.
///
/// # Panics
///
/// Panics if the model lacks collision detection or `ξ ∉ (0, 1]`.
pub fn broadcast_theorem20(
    sim: &mut Sim,
    source: NodeId,
    cfg: &Theorem20Config,
) -> BroadcastOutcome {
    assert!(
        matches!(sim.model(), Model::Cd | Model::CdStar),
        "Theorem 20 is a CD algorithm"
    );
    assert!(cfg.xi > 0.0 && cfg.xi <= 1.0);
    let n = sim.graph().n();
    let delta = sim.graph().max_degree().max(1);
    let c = (2.0 / cfg.xi).ceil() as u32;
    let num_colors = (((n as f64).powf(cfg.xi) * delta as f64).ceil() as u32).max(2);
    let colors = Colorings::new(sim.seed() ^ 0x7e20, c, num_colors);
    let logn = ceil_log2(n.max(2)) as f64;
    let loglog_delta = ((delta.max(4) as f64).log2().log2()).max(1.0);
    let (p, s) = cfg.ps.unwrap_or_else(|| {
        // Paper: p = log^{-1/2} log Δ, s = log log Δ. At simulable sizes
        // these round to ~(0.7, 2); clamp into a useful range.
        (
            (1.0 / loglog_delta.sqrt()).clamp(0.2, 0.7),
            (loglog_delta.ceil() as u32).max(2),
        )
    });
    let iters = cfg.iters.unwrap_or_else(|| {
        let lll = loglog_delta.log2().max(0.5);
        ((3.0 * logn / lll).ceil() as u32).max(4)
    });
    // Lemma 8 epochs at the §7 failure rate f = 1/polyloglog Δ — small.
    let epochs = (2.0 * loglog_delta).ceil() as u32 + 6;
    let mut rngs = NodeRngs::new(sim.seed(), n, 0x5e20);
    let ids: Vec<u64> = (0..n).map(|v| v as u64 + 1).collect();
    let mut st = DetClusterState::initial(&ids);
    for iter in 0..iters {
        if st.cluster_count() <= 1 {
            break;
        }
        sim.span_enter("merge_round");
        st = merge_round(
            sim,
            &st,
            &colors,
            epochs,
            p,
            s,
            &mut rngs,
            0x20_0000 + u64::from(iter),
        );
        sim.span_exit();
        if sim.telemetry_enabled() {
            sim.record_gauge("clusters", sim.now(), st.cluster_count() as f64);
        }
        // Validity is a clean-channel invariant; under an active fault
        // plan merge elections can misfire and leave a degraded (but
        // bounded) state.
        debug_assert!(
            sim.fault_plan().is_active() || st.is_valid(sim.graph()),
            "invalid state at iter {iter}"
        );
    }
    // Final broadcast: Lemma 10 with the CD SR strategy. The labeling is
    // graph-good because parents are graph neighbors.
    let sr = crate::randomized::default_sr_for(sim.model(), delta, n);
    let layer_bound = (st.labeling.max_label() + 1).max(2);
    let d_bound = (st.cluster_count() as u32).max(1).min(n as u32);
    sim.span_enter("broadcast");
    let out = crate::cast::broadcast_with_labeling(
        sim,
        &st.labeling,
        source,
        layer_bound,
        d_bound,
        &sr,
        &mut rngs,
    );
    sim.span_exit();
    out
}

/// One §7.2 merging phase: Active clusters issue requests; Wait clusters
/// that receive one elect a winner, re-root into the requester's group,
/// and turn Active for the next step.
#[allow(clippy::too_many_arguments)]
fn merge_round(
    sim: &mut Sim,
    st: &DetClusterState,
    colors: &Colorings,
    epochs: u32,
    p: f64,
    s: u32,
    rngs: &mut NodeRngs,
    tag: u64,
) -> DetClusterState {
    let n = st.cid.len();
    let delta = sim.graph().max_degree().max(1);
    let bits_id = ceil_log2(n + 2).max(1);
    let bits_lab = ceil_log2(2 * n + 4) + 1;
    let pack3 = |a: u64, b: u64, c_: u64| (((a << bits_lab) | b) << bits_id) | c_;
    let unpack3 = |m: u64| {
        (
            m >> (bits_lab + bits_id),
            (m >> bits_id) & ((1 << bits_lab) - 1),
            m & ((1 << bits_id) - 1),
        )
    };
    // Cluster states via shared randomness.
    #[derive(Clone, Copy, PartialEq)]
    enum ClState {
        Active,
        Wait,
        Halt,
    }
    let mut cl_state: std::collections::HashMap<u64, ClState> = Default::default();
    {
        let mut roots: Vec<u64> = st.cid.clone();
        roots.sort_unstable();
        roots.dedup();
        for c_ in roots {
            let mut rng = cluster_rng(sim.seed() ^ tag, c_ as usize, 1);
            cl_state.insert(
                c_,
                if rng.gen_bool(p) {
                    ClState::Active
                } else {
                    ClState::Wait
                },
            );
        }
    }
    // group[v] = the forming super-cluster id; labels/parents relative to it.
    let mut group: Vec<u64> = st.cid.clone();
    let mut newlab: Vec<u32> = (0..n).map(|v| st.labeling.label(v)).collect();
    let mut newpar: Vec<Option<NodeId>> = st.parent.clone();
    // Ind is relative to the *old* trees, which all within-phase casts use.
    let ind = lemma19_ind(sim, st, colors);
    let sr_req = Sr::CdTransform {
        delta,
        epochs,
        relevance_check: true,
    };
    for _step in 0..s {
        // (a) Merge requests from members of Active clusters.
        let senders: Vec<(NodeId, u64)> = (0..n)
            .filter(|&v| cl_state.get(&st.cid[v]).copied() == Some(ClState::Active))
            .map(|v| (v, pack3(group[v], u64::from(newlab[v]), v as u64 + 1)))
            .collect();
        let receivers: Vec<NodeId> = (0..n)
            .filter(|&v| cl_state.get(&st.cid[v]).copied() == Some(ClState::Wait))
            .collect();
        let got = sr_req.run(sim, &senders, &receivers, rngs);
        let mut pending: Vec<Option<(u64, u32, NodeId)>> = vec![None; n];
        for (i, &v) in receivers.iter().enumerate() {
            if let Some(m) = got[i] {
                let (grp, lay, sid) = unpack3(m);
                pending[v] = Some((grp, lay as u32 + 1, (sid - 1) as NodeId));
            }
        }
        // Active clusters halt after sending.
        for (_, stt) in cl_state.iter_mut() {
            if *stt == ClState::Active {
                *stt = ClState::Halt;
            }
        }
        // (b) Wait clusters with pending requests elect a winner and
        // re-root into the requester's group.
        let mut msgs: Vec<Option<u64>> = vec![None; n];
        for v in 0..n {
            if let Some((grp, l, _)) = pending[v] {
                msgs[v] = Some(pack3(u64::from(l), grp, v as u64 + 1));
            }
        }
        colored_up(
            sim,
            st,
            colors,
            &ind,
            epochs,
            rngs,
            &mut msgs,
            |msgs, v, m| {
                msgs[v] = Some(match msgs[v] {
                    Some(old) => old.min(m),
                    None => m,
                });
            },
        );
        // Roots announce winners down their trees.
        let mut announced: Vec<Option<u64>> = (0..n)
            .map(|v| {
                (st.labeling.label(v) == 0
                    && cl_state.get(&st.cid[v]).copied() == Some(ClState::Wait))
                .then(|| msgs[v])
                .flatten()
            })
            .collect();
        colored_down(sim, st, colors, &ind, &mut announced, |msgs, v, m| {
            msgs[v] = Some(m);
        });
        // Re-root the winning clusters.
        let mut labmsg: Vec<Option<u64>> = vec![None; n];
        let mut labeled: Vec<bool> = vec![false; n];
        for v in 0..n {
            if let (Some(w), Some((grp, l, phi))) = (announced[v], pending[v]) {
                let (_, wgrp, wid) = unpack3(w);
                if wid == v as u64 + 1 && wgrp == grp {
                    group[v] = grp;
                    newlab[v] = l;
                    newpar[v] = Some(phi);
                    labeled[v] = true;
                    labmsg[v] = Some((u64::from(l) << bits_id) | (v as u64 + 1));
                }
            }
        }
        {
            let announced_ref = &announced;
            let labeled_ref = &mut labeled;
            let group_ref = &mut group;
            colored_up(
                sim,
                st,
                colors,
                &ind,
                epochs,
                rngs,
                &mut labmsg,
                |msgs, v, m| {
                    if labeled_ref[v] || announced_ref[v].is_none() {
                        return;
                    }
                    let l = m >> bits_id;
                    let child = ((m & ((1 << bits_id) - 1)) - 1) as NodeId;
                    let (_, wgrp, _) = unpack3(announced_ref[v].expect("checked"));
                    group_ref[v] = wgrp;
                    newlab[v] = l as u32 + 1;
                    newpar[v] = Some(child);
                    labeled_ref[v] = true;
                    msgs[v] = Some((u64::from(newlab[v]) << bits_id) | (v as u64 + 1));
                },
            );
            colored_down(sim, st, colors, &ind, &mut labmsg, |msgs, v, m| {
                if labeled_ref[v] || announced_ref[v].is_none() {
                    return;
                }
                let l = m >> bits_id;
                let (_, wgrp, _) = unpack3(announced_ref[v].expect("checked"));
                group_ref[v] = wgrp;
                newlab[v] = l as u32 + 1;
                labeled_ref[v] = true;
                msgs[v] = Some((u64::from(newlab[v]) << bits_id) | (v as u64 + 1));
            });
        }
        // Merged clusters turn Active for the next step.
        for (v, &was_labeled) in labeled.iter().enumerate() {
            if was_labeled {
                cl_state.insert(st.cid[v], ClState::Active);
            }
        }
    }
    DetClusterState {
        cid: group,
        labeling: Labeling::from_labels(newlab),
        parent: newpar,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_graphs::deterministic::{cycle, grid, path};

    #[test]
    fn colorings_are_deterministic_and_in_range() {
        let c = Colorings::new(7, 3, 10);
        for j in 0..3 {
            for v in 0..20 {
                let x = c.get(j, v);
                assert!(x < 10);
                assert_eq!(x, c.get(j, v));
            }
        }
    }

    #[test]
    fn lemma19_matches_analytic_ind() {
        let g = grid(4, 4);
        let n = g.n();
        let mut sim = Sim::new(g.clone(), Model::Cd, 3);
        // Build a BFS tree from 0 as the cluster structure.
        let dist = g.bfs(0);
        let parent: Vec<Option<NodeId>> = (0..n)
            .map(|v| {
                if v == 0 {
                    None
                } else {
                    g.neighbors(v).find(|&u| dist[u] + 1 == dist[v])
                }
            })
            .collect();
        let st = DetClusterState {
            cid: vec![1; n],
            labeling: Labeling::from_labels(dist.clone()),
            parent: parent.clone(),
        };
        let colors = Colorings::new(99, 4, 16);
        let ind = lemma19_ind(&mut sim, &st, &colors);
        for v in 0..n {
            if let Some(p) = parent[v] {
                assert_eq!(
                    ind[v],
                    colors.analytic_ind(&g, v, p),
                    "vertex {v} (parent {p})"
                );
            }
        }
    }

    #[test]
    fn lemma19_energy_is_c_per_vertex() {
        let g = cycle(16);
        let mut sim = Sim::new(g, Model::Cd, 1);
        let ids: Vec<u64> = (0..16).map(|v| v as u64 + 1).collect();
        let mut st = DetClusterState::initial(&ids);
        // Chain structure: parent = v-1.
        for v in 1..16 {
            st.parent[v] = Some(v - 1);
            st.labeling.set(v, v as u32);
        }
        st.cid = vec![1; 16];
        let colors = Colorings::new(5, 3, 8);
        lemma19_ind(&mut sim, &st, &colors);
        // Each vertex sends once per coloring and listens at most once per
        // coloring: ≤ 2c.
        assert!(sim.meter().max_energy() <= 6);
    }

    #[test]
    fn theorem20_informs_everyone_on_small_graphs() {
        for (name, g) in [
            ("path", path(16)),
            ("cycle", cycle(16)),
            ("grid", grid(4, 4)),
        ] {
            let mut sim = Sim::new(g, Model::Cd, 11);
            let out = broadcast_theorem20(&mut sim, 0, &Theorem20Config::default());
            assert!(out.all_informed(), "{name}");
        }
    }

    #[test]
    fn theorem20_with_explicit_parameters() {
        let g = cycle(24);
        let mut sim = Sim::new(g, Model::Cd, 5);
        let cfg = Theorem20Config {
            xi: 0.5,
            iters: Some(12),
            ps: Some((0.5, 2)),
        };
        let out = broadcast_theorem20(&mut sim, 3, &cfg);
        assert!(out.all_informed());
    }

    #[test]
    #[should_panic(expected = "CD algorithm")]
    fn theorem20_rejects_local() {
        let g = path(4);
        let mut sim = Sim::new(g, Model::Local, 0);
        broadcast_theorem20(&mut sim, 0, &Theorem20Config::default());
    }
}
