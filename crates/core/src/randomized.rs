//! The basic energy-efficient randomized broadcast algorithms (paper §5).
//!
//! All three share one skeleton: start from the all-zero good labeling,
//! iterate the §5 relabeling until few layer-0 vertices remain, then run
//! Lemma 10's broadcast over the final labeling.
//!
//! | Driver | Model | Time | Energy |
//! |--------|-------|------|--------|
//! | [`broadcast_theorem11`] | LOCAL | `O(n log n)` | `O(log n)` |
//! | [`broadcast_theorem11`] | No-CD | `O(n log Δ log² n)` | `O(log Δ log² n)` |
//! | [`broadcast_theorem11`] | CD | `O(n log Δ log² n)` | `O(log² n)` |
//! | [`broadcast_theorem12`] | CD | `O(n log Δ log^{2+ε} n / (ε log log n))` | `O(log² n / (ε log log n))` |
//! | [`broadcast_corollary13`] | No-CD, `Δ = O(1)` | `O(n log n)` | `O(log n)` |

use ebc_radio::{Model, NodeId, Sim};

use crate::cast::{broadcast_with_labeling, relabel};
use crate::labeling::Labeling;
use crate::localsim::build_tdma;
use crate::srcomm::Sr;
use crate::util::{ceil_log2, NodeRngs};
use crate::BroadcastOutcome;

/// Picks the SR-communication strategy Lemma 10 / §5 use in each model,
/// with repetition counts giving failure probability `1/poly(n)`.
///
/// # Panics
///
/// Panics for [`Model::Beep`]: beeps carry no message content, so
/// SR-communication (and hence Broadcast) is not expressible there.
pub fn default_sr_for(model: Model, delta: usize, n: usize) -> Sr {
    let logn = ceil_log2(n.max(2));
    match model {
        Model::Beep => {
            panic!("the Beep model carries no message content; broadcast needs a messaging model")
        }
        Model::Local => Sr::Local,
        Model::NoCd => Sr::Decay {
            delta,
            // Each sweep succeeds with constant probability; Θ(log n)
            // sweeps give 1/poly(n) failure (Lemma 7).
            sweeps: 3 * logn + 6,
        },
        Model::Cd | Model::CdStar => Sr::CdTransform {
            delta,
            // O(log log Δ + log 1/f) epochs (Lemma 8).
            epochs: 2 * ceil_log2(ceil_log2(delta.max(2) + 1) as usize + 1) + 2 * logn + 8,
            relevance_check: true,
        },
    }
}

/// Parameters of the Theorem 11 driver.
#[derive(Debug, Clone)]
pub struct Theorem11Config {
    /// Relabeling iterations; `None` → `3·⌈log₂ n⌉ + 16` (enough for the
    /// root count to hit 1 w.h.p. at `p = 1/2, s = 1`).
    pub relabel_iters: Option<u32>,
    /// The `G_L` diameter bound handed to Lemma 10; with a single root, 0
    /// suffices — 1 adds slack against the rare two-root outcome.
    pub d_bound: u32,
    /// Override the SR strategy (else [`default_sr_for`]).
    pub sr: Option<Sr>,
}

impl Default for Theorem11Config {
    fn default() -> Self {
        Theorem11Config {
            relabel_iters: None,
            d_bound: 1,
            sr: None,
        }
    }
}

/// Theorem 11: broadcast via iterated relabeling with `p = 1/2, s = 1`.
///
/// Works in every collision model; the strategy (and thus the cost) adapts
/// to `sim.model()`.
pub fn broadcast_theorem11(
    sim: &mut Sim,
    source: NodeId,
    cfg: &Theorem11Config,
) -> BroadcastOutcome {
    let n = sim.graph().n();
    let delta = sim.graph().max_degree().max(1);
    let sr = cfg
        .sr
        .clone()
        .unwrap_or_else(|| default_sr_for(sim.model(), delta, n));
    let iters = cfg.relabel_iters.unwrap_or(3 * ceil_log2(n.max(2)) + 16);
    let layer_bound = n as u32;
    let mut rngs = NodeRngs::new(sim.seed(), n, 0x5e11);
    let mut coins = NodeRngs::new(sim.seed(), n, 0xc011);
    let mut l = Labeling::all_zero(n);
    for _ in 0..iters {
        sim.span_enter("relabel");
        l = relabel(sim, &l, 0.5, 1, layer_bound, &sr, &mut rngs, &mut coins);
        sim.span_exit();
        if sim.telemetry_enabled() {
            sim.record_gauge("layer0", sim.now(), l.layer0_count() as f64);
        }
    }
    sim.span_enter("broadcast");
    let out = broadcast_with_labeling(sim, &l, source, layer_bound, cfg.d_bound, &sr, &mut rngs);
    sim.span_exit();
    out
}

/// Parameters of the Theorem 12 driver.
#[derive(Debug, Clone)]
pub struct Theorem12Config {
    /// The tradeoff parameter ε ∈ (0, 1).
    pub epsilon: f64,
    /// Override the relabeling iteration count.
    pub relabel_iters: Option<u32>,
}

impl Default for Theorem12Config {
    fn default() -> Self {
        Theorem12Config {
            epsilon: 0.5,
            relabel_iters: None,
        }
    }
}

/// Theorem 12 (CD only): relabeling with `p = log^{-ε/2} n`, `s = log n`
/// shrinks the root count by a `log^{ε/2} n` factor per iteration, so
/// `O(log n / (ε log log n))` iterations reach ≤ `log n` roots; Lemma 10
/// with `d = log n` finishes. Energy `O(log² n / (ε log log n))`.
///
/// # Panics
///
/// Panics if the model lacks collision detection or ε ∉ (0, 1].
pub fn broadcast_theorem12(
    sim: &mut Sim,
    source: NodeId,
    cfg: &Theorem12Config,
) -> BroadcastOutcome {
    assert!(
        matches!(sim.model(), Model::Cd | Model::CdStar),
        "Theorem 12 is a CD algorithm"
    );
    assert!(cfg.epsilon > 0.0 && cfg.epsilon <= 1.0);
    let n = sim.graph().n();
    let delta = sim.graph().max_degree().max(1);
    let logn = ceil_log2(n.max(2)) as f64;
    let sr = default_sr_for(sim.model(), delta, n);
    let p = logn.powf(-cfg.epsilon / 2.0).clamp(0.01, 0.9);
    let s = logn.ceil() as u32;
    let iters = cfg.relabel_iters.unwrap_or_else(|| {
        // O(log n / (ε log log n)) iterations, with a safety constant.
        let denom = (cfg.epsilon * logn.log2().max(1.0)).max(0.5);
        (3.0 * logn / denom).ceil() as u32 + 8
    });
    let layer_bound = n as u32;
    let mut rngs = NodeRngs::new(sim.seed(), n, 0x5e12);
    let mut coins = NodeRngs::new(sim.seed(), n, 0xc012);
    let mut l = Labeling::all_zero(n);
    for _ in 0..iters {
        sim.span_enter("relabel");
        l = relabel(sim, &l, p, s, layer_bound, &sr, &mut rngs, &mut coins);
        sim.span_exit();
        if sim.telemetry_enabled() {
            sim.record_gauge("layer0", sim.now(), l.layer0_count() as f64);
        }
    }
    let d_bound = ceil_log2(n.max(2)) + 1;
    sim.span_enter("broadcast");
    let out = broadcast_with_labeling(sim, &l, source, layer_bound, d_bound, &sr, &mut rngs);
    sim.span_exit();
    out
}

/// Corollary 13 (No-CD, bounded degree): Theorem 3's preprocessing builds a
/// `G + G²` coloring, after which the LOCAL Theorem 11 algorithm runs under
/// TDMA — `O(n log n)` time and `O(log n)` energy when `Δ = O(1)`.
pub fn broadcast_corollary13(sim: &mut Sim, source: NodeId) -> BroadcastOutcome {
    assert_eq!(sim.model(), Model::NoCd, "Corollary 13 targets No-CD");
    let n = sim.graph().n();
    let mut rngs = NodeRngs::new(sim.seed(), n, 0x5e13);
    let mut coins = NodeRngs::new(sim.seed(), n, 0xc013);
    sim.span_enter("tdma_build");
    let sr = build_tdma(sim, &mut rngs, &mut coins);
    sim.span_exit();
    let cfg = Theorem11Config {
        sr: Some(sr),
        ..Theorem11Config::default()
    };
    broadcast_theorem11(sim, source, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_graphs::deterministic::{cycle, grid, path};
    use ebc_graphs::random::{bounded_degree, cluster_chain, gnp_connected};

    #[test]
    fn theorem11_local_informs_everyone() {
        for seed in 0..3u64 {
            let g = gnp_connected(48, 0.08, seed);
            let mut sim = Sim::new(g, Model::Local, seed);
            let out = broadcast_theorem11(&mut sim, 0, &Theorem11Config::default());
            assert!(out.all_informed(), "seed {seed}");
        }
    }

    #[test]
    fn theorem11_local_energy_logarithmic() {
        let g = cycle(256);
        let mut sim = Sim::new(g, Model::Local, 11);
        let out = broadcast_theorem11(&mut sim, 0, &Theorem11Config::default());
        assert!(out.all_informed());
        // O(log n): generous constant for the 8-bit log.
        assert!(
            sim.meter().max_energy() <= 60 * 8,
            "energy {}",
            sim.meter().max_energy()
        );
    }

    #[test]
    fn theorem11_nocd_informs_everyone() {
        for seed in 0..3u64 {
            let g = bounded_degree(40, 4, 1.2, seed);
            let mut sim = Sim::new(g, Model::NoCd, seed + 100);
            let out = broadcast_theorem11(&mut sim, 3, &Theorem11Config::default());
            assert!(out.all_informed(), "seed {seed}");
        }
    }

    #[test]
    fn theorem11_cd_informs_everyone() {
        for seed in 0..3u64 {
            let g = grid(6, 6);
            let mut sim = Sim::new(g, Model::Cd, seed + 7);
            let out = broadcast_theorem11(&mut sim, 5, &Theorem11Config::default());
            assert!(out.all_informed(), "seed {seed}");
        }
    }

    #[test]
    fn theorem11_handles_high_contention() {
        let g = cluster_chain(4, 8, 3);
        let mut sim = Sim::new(g, Model::NoCd, 9);
        let out = broadcast_theorem11(&mut sim, 0, &Theorem11Config::default());
        assert!(out.all_informed());
    }

    #[test]
    fn theorem12_cd_informs_everyone() {
        for seed in 0..2u64 {
            let g = grid(5, 5);
            let mut sim = Sim::new(g, Model::Cd, seed + 21);
            let out = broadcast_theorem12(&mut sim, 0, &Theorem12Config::default());
            assert!(out.all_informed(), "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "CD algorithm")]
    fn theorem12_rejects_nocd() {
        let g = path(8);
        let mut sim = Sim::new(g, Model::NoCd, 0);
        broadcast_theorem12(&mut sim, 0, &Theorem12Config::default());
    }

    #[test]
    fn corollary13_bounded_degree() {
        let g = cycle(32);
        let mut sim = Sim::new(g, Model::NoCd, 31);
        let out = broadcast_corollary13(&mut sim, 0);
        assert!(out.all_informed());
    }

    #[test]
    fn corollary13_energy_beats_plain_nocd_on_paths() {
        // On a constant-degree graph the TDMA pipeline spends asymptotically
        // less energy than the decay pipeline; check the direction at n=128.
        let g = cycle(128);
        let mut tdma_sim = Sim::new(g.clone(), Model::NoCd, 5);
        let out = broadcast_corollary13(&mut tdma_sim, 0);
        assert!(out.all_informed());
        let mut decay_sim = Sim::new(g, Model::NoCd, 5);
        let out2 = broadcast_theorem11(&mut decay_sim, 0, &Theorem11Config::default());
        assert!(out2.all_informed());
        assert!(
            tdma_sim.meter().max_energy() < decay_sim.meter().max_energy(),
            "tdma {} vs decay {}",
            tdma_sim.meter().max_energy(),
            decay_sim.meter().max_energy()
        );
    }

    #[test]
    fn default_sr_strategies_by_model() {
        assert!(matches!(default_sr_for(Model::Local, 4, 64), Sr::Local));
        assert!(matches!(
            default_sr_for(Model::NoCd, 4, 64),
            Sr::Decay { .. }
        ));
        assert!(matches!(
            default_sr_for(Model::Cd, 4, 64),
            Sr::CdTransform { .. }
        ));
    }
}
