//! Property test: `parse → CSR → binary cache → load` is bit-identical
//! across every dataset format.
//!
//! Each case generates one random connected graph, renders it as a plain
//! edge list, a SNAP export (sparse ids, duplicate/reversed edges,
//! self-loops — everything normalization must undo), and a DIMACS file,
//! with randomized comment placement (including unicode comments) and
//! randomized LF/CRLF line endings. All three must parse to the same
//! [`Graph`], and for each the binary CSR cache must serve a second load
//! warm with byte-for-byte identical CSR arrays.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ebc_graphs::datasets::{load_graph_cached, DatasetFormat};
use ebc_radio::Graph;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A fresh scratch dir per case (cases run sequentially, but keep names
/// collision-free across processes and cases anyway).
fn scratch() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ebc_ds_roundtrip_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const COMMENTS: [&str; 4] = [
    "a plain ascii comment",
    "ünïcødé — naïve café ✓ ∑∞",
    "tabs\tand  spaces",
    "日本語のコメント",
];

/// Renders one comment line for `format`, or `None` to skip.
fn comment(rng: &mut SmallRng, format: DatasetFormat) -> Option<String> {
    if !rng.gen_bool(0.4) {
        return None;
    }
    let text = COMMENTS[rng.gen_range(0..COMMENTS.len())];
    Some(match format {
        DatasetFormat::EdgeList => format!("# {text}"),
        DatasetFormat::Snap => format!("# {text}"),
        DatasetFormat::Dimacs => format!("c {text}"),
    })
}

fn join(lines: Vec<String>, crlf: bool) -> String {
    let sep = if crlf { "\r\n" } else { "\n" };
    let mut out = lines.join(sep);
    out.push_str(sep);
    out
}

/// A random connected edge set on `n` vertices: a path backbone (so every
/// vertex appears in some edge — SNAP and edge lists cannot represent
/// isolated vertices) plus random extras.
fn random_edges(n: usize, rng: &mut SmallRng) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let extras = rng.gen_range(0..2 * n + 1);
    for _ in 0..extras {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            edges.push((u.min(v), u.max(v)));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

fn render_edge_list(edges: &[(usize, usize)], rng: &mut SmallRng) -> String {
    let mut lines = Vec::new();
    let mut order = edges.to_vec();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..i + 1));
    }
    for &(u, v) in &order {
        if let Some(c) = comment(rng, DatasetFormat::EdgeList) {
            lines.push(c);
        }
        let sep = if rng.gen_bool(0.5) { " " } else { "\t" };
        lines.push(format!("{u}{sep}{v}"));
    }
    join(lines, rng.gen_bool(0.5))
}

fn render_snap(edges: &[(usize, usize)], rng: &mut SmallRng) -> String {
    // Sparse but ascending id map: the dense remap (rank in ascending id
    // order) then reproduces the original labels exactly.
    let stride = rng.gen_range(1usize..9);
    let offset = rng.gen_range(0usize..1000);
    let id = |v: usize| offset + stride * v;
    let mut lines = vec![format!("# Nodes: ? Edges: {}", edges.len())];
    let mut order = edges.to_vec();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..i + 1));
    }
    for &(u, v) in &order {
        if let Some(c) = comment(rng, DatasetFormat::Snap) {
            lines.push(c);
        }
        // SNAP mess: sometimes reversed, sometimes duplicated, plus the
        // occasional self-loop — normalization must erase all of it.
        if rng.gen_bool(0.3) {
            lines.push(format!("{}\t{}", id(v), id(u)));
        }
        lines.push(format!("{}\t{}", id(u), id(v)));
        if rng.gen_bool(0.1) {
            let w = rng.gen_range(0..edges.len() + 2);
            lines.push(format!("{}\t{}", id(w), id(w)));
        }
    }
    join(lines, rng.gen_bool(0.5))
}

fn render_dimacs(n: usize, edges: &[(usize, usize)], rng: &mut SmallRng) -> String {
    let mut lines = vec![format!("p edge {n} {}", edges.len())];
    let mut order = edges.to_vec();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..i + 1));
    }
    for &(u, v) in &order {
        if let Some(c) = comment(rng, DatasetFormat::Dimacs) {
            lines.push(c);
        }
        lines.push(format!("e {} {}", u + 1, v + 1));
    }
    join(lines, rng.gen_bool(0.5))
}

/// Parses `text` (written under `name` so extension-based detection picks
/// the right parser), twice through the binary cache; returns the cold
/// and warm graphs plus the warm load's cache bit.
fn through_cache(dir: &std::path::Path, name: &str, text: &str) -> (Graph, Graph, bool) {
    let src = dir.join(name);
    let cache = dir.join("csr");
    std::fs::write(&src, text).unwrap();
    let cold = load_graph_cached(&src, &cache).unwrap();
    assert!(!cold.from_cache);
    let warm = load_graph_cached(&src, &cache).unwrap();
    (cold.graph, warm.graph, warm.from_cache)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parse_csr_cache_load_is_bit_identical_across_formats(
        n in 2usize..48,
        graph_seed in any::<u64>(),
        text_seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(graph_seed);
        let edges = random_edges(n, &mut rng);
        let expected = Graph::from_edges(n, &edges).unwrap();
        let dir = scratch();

        let mut rng = SmallRng::seed_from_u64(text_seed);
        let renders = [
            ("g.edges", render_edge_list(&edges, &mut rng)),
            ("g.txt", render_snap(&edges, &mut rng)),
            ("g.gr", render_dimacs(n, &edges, &mut rng)),
        ];
        for (name, text) in renders {
            let (cold, warm, from_cache) = through_cache(&dir, name, &text);
            // Cold parse reproduces the generating graph exactly…
            prop_assert_eq!(&cold, &expected, "{} cold", name);
            // …and the warm load is served from the binary cache with
            // byte-identical CSR arrays.
            prop_assert!(from_cache, "{} second load must be warm", name);
            prop_assert_eq!(warm.offsets(), expected.offsets(), "{} offsets", name);
            prop_assert_eq!(
                warm.neighbor_data(),
                expected.neighbor_data(),
                "{} neighbors",
                name
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
