//! Demonstrates the binary CSR dataset cache at the scale the tentpole
//! promises: a million-edge edge list parses cold exactly once, then
//! every later load comes from the `.csrbin` entry tens of times faster.
//!
//! ```text
//! cargo run --release -p ebc-graphs --example dataset_ingest
//! ```
//!
//! Exits nonzero if the warm load is not at least 50× faster than the
//! cold parse or any load disagrees with the others, so CI can run it as
//! an assertion, not just a demo.

use std::time::Instant;

use ebc_graphs::datasets::load_graph_cached;
use ebc_radio::rng::node_rng;
use rand::Rng;

const TARGET_EDGES: usize = 1_000_000;

fn main() {
    let dir = std::env::temp_dir().join(format!("ebc_dataset_ingest_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let src = dir.join("million.txt");
    let cache = dir.join("csr");

    // A connected million-edge graph in SNAP form — sparse crawl-style
    // ids the parser must remap densely, exactly like a real social
    // export: a path backbone plus random extras.
    let n = TARGET_EDGES / 4;
    let id = |v: usize| 1_000_000 + 17 * v;
    let mut rng = node_rng(0xda7a, 0, 0);
    let mut text = String::with_capacity(TARGET_EDGES * 18);
    text.push_str("# synthetic million-edge SNAP sample for the ingest demo\n");
    for v in 1..n {
        text.push_str(&format!("{}\t{}\n", id(v - 1), id(v)));
    }
    for _ in 0..TARGET_EDGES - (n - 1) {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            text.push_str(&format!("{}\t{}\n", id(u), id(v)));
        }
    }
    std::fs::write(&src, &text).expect("write edge list");
    let megabytes = text.len() as f64 / (1024.0 * 1024.0);

    let t0 = Instant::now();
    let cold = load_graph_cached(&src, &cache).expect("cold load");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(!cold.from_cache, "first load must be a cold parse");

    let t1 = Instant::now();
    let warm = load_graph_cached(&src, &cache).expect("warm load");
    let warm_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert!(warm.from_cache, "second load must hit the binary cache");
    assert_eq!(cold.graph, warm.graph, "cache round trip must be exact");

    let ratio = cold_ms / warm_ms;
    println!(
        "dataset: {:.1} MiB edge list, n = {}, m = {}",
        megabytes,
        cold.graph.n(),
        cold.graph.m()
    );
    println!("cold parse : {cold_ms:>9.2} ms");
    println!("warm load  : {warm_ms:>9.2} ms  ({ratio:.0}x faster)");

    std::fs::remove_dir_all(&dir).ok();
    if ratio < 50.0 {
        eprintln!("FAIL: warm load only {ratio:.1}x faster (need >= 50x)");
        std::process::exit(1);
    }
}
