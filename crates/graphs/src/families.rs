//! Named, parameterized graph families for the benchmark harness.
//!
//! Each [`Family`] bundles a generator with the metadata benches need:
//! a display name and, when known analytically, the diameter — so harnesses
//! need not run `O(n²)` BFS sweeps on large instances.

use ebc_radio::Graph;

use crate::{datasets, deterministic, random};

/// A named graph family, scalable in `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// `deterministic::path`.
    Path,
    /// `deterministic::cycle`.
    Cycle,
    /// `deterministic::ladder` (n/2 rungs).
    Ladder,
    /// Near-square grid with ~n vertices.
    Grid,
    /// Complete binary tree with ≥ n vertices.
    BinaryTree,
    /// `random::bounded_degree` with Δ ≤ 4.
    BoundedDeg4,
    /// `random::bounded_degree` with Δ ≤ 16.
    BoundedDeg16,
    /// `random::gnp_connected` with expected degree ≈ 8.
    GnpAvgDeg8,
    /// `random::cluster_chain` with blocks of 8.
    ClusterChain8,
    /// `deterministic::k2k` with k = n − 2 middles.
    K2k,
    /// `deterministic::star` (hub + n−1 leaves).
    Star,
    /// `deterministic::hypercube` with dimension ⌊log₂ n⌉ — diameter and
    /// degree both `log n`, the densest family whose diameter still grows.
    Hypercube,
    /// `random::unit_disk` — random geometric graph with expected degree
    /// ≈ 8; collisions are spatially correlated.
    UnitDisk,
    /// `deterministic::barbell` — two n/3 cliques joined by an n/3 path;
    /// maximal contention at both ends of a long thin channel.
    Barbell,
    /// `datasets::social_instance` — a BFS ball of the vendored
    /// power-law social sample, rooted at its highest-degree hub. Real
    /// hub structure no synthetic family reproduces.
    DsSocial,
    /// `datasets::roadnet_instance` — a BFS ball of the vendored
    /// near-planar road/sensor mesh.
    DsRoadnet,
    /// `datasets::unit_disk_instance` — a unit-disk graph over real
    /// coordinates subsampled from the road dataset (expected degree ≈ 8).
    DsUnitDisk,
    /// `datasets::knn_instance` — a symmetric 6-nearest-neighbor sensor
    /// field over the same real coordinates.
    DsKnn,
    /// `datasets::chung_lu_instance` — a Chung-Lu graph matched to the
    /// social sample's observed degree sequence; power-law fan-out at any
    /// `n`.
    DsChungLu,
}

/// A generated instance plus its metadata.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Family display name.
    pub name: &'static str,
    /// The graph.
    pub graph: Graph,
    /// The diameter, if known analytically (else compute it).
    pub diameter: Option<u32>,
}

impl Family {
    /// The family's display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Path => "path",
            Family::Cycle => "cycle",
            Family::Ladder => "ladder",
            Family::Grid => "grid",
            Family::BinaryTree => "binary-tree",
            Family::BoundedDeg4 => "bounded-deg-4",
            Family::BoundedDeg16 => "bounded-deg-16",
            Family::GnpAvgDeg8 => "gnp-avg-deg-8",
            Family::ClusterChain8 => "cluster-chain-8",
            Family::K2k => "K_{2,k}",
            Family::Star => "star",
            Family::Hypercube => "hypercube",
            Family::UnitDisk => "unit-disk",
            Family::Barbell => "barbell",
            Family::DsSocial => "ds-social",
            Family::DsRoadnet => "ds-roadnet",
            Family::DsUnitDisk => "ds-unit-disk",
            Family::DsKnn => "ds-knn",
            Family::DsChungLu => "ds-chung-lu",
        }
    }

    /// Every family, in declaration order.
    pub const ALL: [Family; 19] = [
        Family::Path,
        Family::Cycle,
        Family::Ladder,
        Family::Grid,
        Family::BinaryTree,
        Family::BoundedDeg4,
        Family::BoundedDeg16,
        Family::GnpAvgDeg8,
        Family::ClusterChain8,
        Family::K2k,
        Family::Star,
        Family::Hypercube,
        Family::UnitDisk,
        Family::Barbell,
        Family::DsSocial,
        Family::DsRoadnet,
        Family::DsUnitDisk,
        Family::DsKnn,
        Family::DsChungLu,
    ];

    /// Whether this family is derived from an on-disk dataset (so its
    /// bench cells must be keyed on the dataset files' content digests —
    /// see `datasets::family_files`).
    pub fn is_dataset(self) -> bool {
        !crate::datasets::family_files(self.name()).is_empty()
    }

    /// Looks up a family by its display name.
    pub fn by_name(name: &str) -> Option<Family> {
        Family::ALL.iter().copied().find(|f| f.name() == name)
    }

    /// Generates an instance with approximately `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n` is too small for the family (all families accept
    /// `n ≥ 8`), or — for the dataset-derived `ds-*` families — if the
    /// vendored dataset files cannot be loaded (run from the repo, or
    /// point `EBC_DATASET_DIR` at them).
    pub fn instance(self, n: usize, seed: u64) -> Instance {
        assert!(n >= 8, "families are defined for n >= 8");
        let (graph, diameter) = match self {
            Family::Path => (deterministic::path(n), Some(n as u32 - 1)),
            Family::Cycle => (deterministic::cycle(n), Some(n as u32 / 2)),
            Family::Ladder => {
                let len = n / 2;
                (deterministic::ladder(len), Some(len as u32))
            }
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                (deterministic::grid(side, side), Some(2 * (side as u32 - 1)))
            }
            Family::BinaryTree => {
                // Smallest complete binary tree with ≥ n vertices: depth d
                // gives 2^{d+1} − 1 vertices. (The old ⌈log₂ n⌉ − 1 depth
                // undershot: instance(8) produced a 7-vertex tree.)
                let mut depth = 1u32;
                while (1usize << (depth + 1)) - 1 < n {
                    depth += 1;
                }
                (deterministic::complete_tree(2, depth), Some(2 * depth))
            }
            Family::BoundedDeg4 => (random::bounded_degree(n, 4, 1.5, seed), None),
            Family::BoundedDeg16 => (random::bounded_degree(n, 16, 4.0, seed), None),
            Family::GnpAvgDeg8 => {
                let p = (8.0 / n as f64).min(1.0);
                (random::gnp_connected(n, p, seed), None)
            }
            Family::ClusterChain8 => {
                let blocks = (n / 8).max(1);
                (random::cluster_chain(blocks, 8, seed), None)
            }
            Family::K2k => (deterministic::k2k(n - 2), Some(2)),
            Family::Star => (deterministic::star(n - 1), Some(2)),
            Family::Hypercube => {
                let d = ((n as f64).log2().round() as u32).max(3);
                (deterministic::hypercube(d), Some(d))
            }
            Family::UnitDisk => {
                // πr²n ≈ 8 → expected degree ≈ 8, above the connectivity
                // threshold at bench sizes.
                let r = (8.0 / (std::f64::consts::PI * n as f64)).sqrt();
                (random::unit_disk(n, r, seed), None)
            }
            Family::Barbell => {
                let k = (n / 3).max(3);
                let bridge = n.saturating_sub(2 * k);
                (deterministic::barbell(k, bridge), Some(bridge as u32 + 3))
            }
            Family::DsSocial => (datasets::social_instance(n), None),
            Family::DsRoadnet => (datasets::roadnet_instance(n), None),
            Family::DsUnitDisk => (datasets::unit_disk_instance(n, seed), None),
            Family::DsKnn => (datasets::knn_instance(n, seed), None),
            Family::DsChungLu => (datasets::chung_lu_instance(n, seed), None),
        };
        Instance {
            name: self.name(),
            graph,
            diameter,
        }
    }
}

impl Instance {
    /// The diameter: the known value, or computed exactly on demand.
    pub fn diameter(&self) -> u32 {
        self.diameter
            .unwrap_or_else(|| self.graph.diameter_exact().expect("connected"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_generates_connected_instances() {
        for fam in Family::ALL {
            let inst = fam.instance(64, 12345);
            assert!(
                inst.graph.is_connected(),
                "{} disconnected at n=64",
                fam.name()
            );
        }
    }

    #[test]
    fn known_diameters_match_exact() {
        for fam in Family::ALL {
            for n in [8, 32] {
                let inst = fam.instance(n, 7);
                if let Some(d) = inst.diameter {
                    assert_eq!(
                        d,
                        inst.graph.diameter_exact().unwrap(),
                        "family {} at n={n}",
                        fam.name()
                    );
                }
            }
        }
    }

    #[test]
    fn instance_sizes_are_close_to_requested() {
        for fam in Family::ALL {
            let inst = fam.instance(128, 3);
            let n = inst.graph.n();
            assert!(
                (64..=300).contains(&n),
                "{}: n = {n} far from requested 128",
                fam.name()
            );
        }
    }

    #[test]
    fn size_contract_holds_at_the_n8_boundary() {
        // The documented contract: instance(n) has approximately n vertices
        // for every n ≥ 8. "Approximately" means within [n/2, 2n] — the
        // regression this pins: BinaryTree::instance(8) used to produce a
        // 7-vertex graph.
        for fam in Family::ALL {
            for n in [8, 9, 12, 16] {
                let inst = fam.instance(n, 11);
                let got = inst.graph.n();
                assert!(
                    (n / 2..=2 * n).contains(&got),
                    "{}: instance({n}) has {got} vertices",
                    fam.name()
                );
                assert!(got >= 8, "{}: instance({n}) shrank below 8", fam.name());
                assert!(
                    inst.graph.is_connected(),
                    "{}: instance({n}) disconnected",
                    fam.name()
                );
            }
        }
    }

    #[test]
    fn binary_tree_has_at_least_n_vertices() {
        for n in [8, 15, 16, 31, 100] {
            let got = Family::BinaryTree.instance(n, 0).graph.n();
            assert!(got >= n, "instance({n}) has only {got} vertices");
            assert!(got <= 2 * n, "instance({n}) overshot to {got}");
        }
    }

    #[test]
    fn dataset_families_are_in_all_and_flagged() {
        // The size-contract, connectivity, and diameter tests above all
        // iterate Family::ALL, so the ds-* families are covered by the
        // same n ≥ 8 contract as the synthetic ones; this pins that they
        // actually are in ALL (and only they carry dataset backing).
        let ds: Vec<&str> = Family::ALL
            .iter()
            .filter(|f| f.is_dataset())
            .map(|f| f.name())
            .collect();
        assert_eq!(
            ds,
            [
                "ds-social",
                "ds-roadnet",
                "ds-unit-disk",
                "ds-knn",
                "ds-chung-lu"
            ]
        );
        for fam in Family::ALL {
            assert_eq!(fam.is_dataset(), fam.name().starts_with("ds-"));
        }
    }

    #[test]
    fn dataset_families_are_reproducible() {
        for fam in Family::ALL.iter().filter(|f| f.is_dataset()) {
            let a = fam.instance(32, 9);
            let b = fam.instance(32, 9);
            assert_eq!(a.graph, b.graph, "{} not deterministic", fam.name());
        }
    }

    #[test]
    fn by_name_round_trips() {
        for fam in Family::ALL {
            assert_eq!(Family::by_name(fam.name()), Some(fam));
        }
        assert_eq!(Family::by_name("nope"), None);
    }
}
