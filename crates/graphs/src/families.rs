//! Named, parameterized graph families for the benchmark harness.
//!
//! Each [`Family`] bundles a generator with the metadata benches need:
//! a display name and, when known analytically, the diameter — so harnesses
//! need not run `O(n²)` BFS sweeps on large instances.

use ebc_radio::Graph;

use crate::{deterministic, random};

/// A named graph family, scalable in `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// `deterministic::path`.
    Path,
    /// `deterministic::cycle`.
    Cycle,
    /// `deterministic::ladder` (n/2 rungs).
    Ladder,
    /// Near-square grid with ~n vertices.
    Grid,
    /// Complete binary tree with ≥ n vertices.
    BinaryTree,
    /// `random::bounded_degree` with Δ ≤ 4.
    BoundedDeg4,
    /// `random::bounded_degree` with Δ ≤ 16.
    BoundedDeg16,
    /// `random::gnp_connected` with expected degree ≈ 8.
    GnpAvgDeg8,
    /// `random::cluster_chain` with blocks of 8.
    ClusterChain8,
    /// `deterministic::k2k` with k = n − 2 middles.
    K2k,
    /// `deterministic::star` (hub + n−1 leaves).
    Star,
}

/// A generated instance plus its metadata.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Family display name.
    pub name: &'static str,
    /// The graph.
    pub graph: Graph,
    /// The diameter, if known analytically (else compute it).
    pub diameter: Option<u32>,
}

impl Family {
    /// The family's display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Path => "path",
            Family::Cycle => "cycle",
            Family::Ladder => "ladder",
            Family::Grid => "grid",
            Family::BinaryTree => "binary-tree",
            Family::BoundedDeg4 => "bounded-deg-4",
            Family::BoundedDeg16 => "bounded-deg-16",
            Family::GnpAvgDeg8 => "gnp-avg-deg-8",
            Family::ClusterChain8 => "cluster-chain-8",
            Family::K2k => "K_{2,k}",
            Family::Star => "star",
        }
    }

    /// Generates an instance with approximately `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n` is too small for the family (all families accept
    /// `n ≥ 8`).
    pub fn instance(self, n: usize, seed: u64) -> Instance {
        assert!(n >= 8, "families are defined for n >= 8");
        let (graph, diameter) = match self {
            Family::Path => (deterministic::path(n), Some(n as u32 - 1)),
            Family::Cycle => (deterministic::cycle(n), Some(n as u32 / 2)),
            Family::Ladder => {
                let len = n / 2;
                (deterministic::ladder(len), Some(len as u32))
            }
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                (deterministic::grid(side, side), Some(2 * (side as u32 - 1)))
            }
            Family::BinaryTree => {
                let depth = (n as f64).log2().ceil() as u32;
                let g = deterministic::complete_tree(2, depth.saturating_sub(1).max(1));
                (g, Some(2 * depth.saturating_sub(1).max(1)))
            }
            Family::BoundedDeg4 => (random::bounded_degree(n, 4, 1.5, seed), None),
            Family::BoundedDeg16 => (random::bounded_degree(n, 16, 4.0, seed), None),
            Family::GnpAvgDeg8 => {
                let p = (8.0 / n as f64).min(1.0);
                (random::gnp_connected(n, p, seed), None)
            }
            Family::ClusterChain8 => {
                let blocks = (n / 8).max(1);
                (random::cluster_chain(blocks, 8, seed), None)
            }
            Family::K2k => (deterministic::k2k(n - 2), Some(2)),
            Family::Star => (deterministic::star(n - 1), Some(2)),
        };
        Instance {
            name: self.name(),
            graph,
            diameter,
        }
    }
}

impl Instance {
    /// The diameter: the known value, or computed exactly on demand.
    pub fn diameter(&self) -> u32 {
        self.diameter
            .unwrap_or_else(|| self.graph.diameter_exact().expect("connected"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Family; 11] = [
        Family::Path,
        Family::Cycle,
        Family::Ladder,
        Family::Grid,
        Family::BinaryTree,
        Family::BoundedDeg4,
        Family::BoundedDeg16,
        Family::GnpAvgDeg8,
        Family::ClusterChain8,
        Family::K2k,
        Family::Star,
    ];

    #[test]
    fn every_family_generates_connected_instances() {
        for fam in ALL {
            let inst = fam.instance(64, 12345);
            assert!(
                inst.graph.is_connected(),
                "{} disconnected at n=64",
                fam.name()
            );
        }
    }

    #[test]
    fn known_diameters_match_exact() {
        for fam in ALL {
            let inst = fam.instance(32, 7);
            if let Some(d) = inst.diameter {
                assert_eq!(
                    d,
                    inst.graph.diameter_exact().unwrap(),
                    "family {}",
                    fam.name()
                );
            }
        }
    }

    #[test]
    fn instance_sizes_are_close_to_requested() {
        for fam in ALL {
            let inst = fam.instance(128, 3);
            let n = inst.graph.n();
            assert!(
                (64..=300).contains(&n),
                "{}: n = {n} far from requested 128",
                fam.name()
            );
        }
    }
}
