//! Topology generators for radio-network experiments.
//!
//! Every generator returns a *connected* [`Graph`] (the paper's model
//! assumes connectivity). Deterministic families live in [`deterministic`],
//! randomized ones in [`random`], real-graph ingestion (dataset parsers,
//! the binary CSR cache, and topologies derived from observed data) in
//! [`datasets`], and [`families`] wraps them all into named, parameterized
//! families with known diameters for the benchmark harness.
//!
//! # Example
//!
//! ```
//! use ebc_graphs::deterministic::{path, k2k};
//!
//! let p = path(8);
//! assert_eq!(p.diameter_exact(), Some(7));
//!
//! // The paper's Theorem 2 gadget: s and t joined through k middle vertices.
//! let g = k2k(5);
//! assert_eq!(g.n(), 7);
//! assert_eq!(g.diameter_exact(), Some(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod deterministic;
pub mod families;
pub mod random;

pub use ebc_radio::{Graph, GraphError};
